//! Differential property tests for the event-horizon run loop: for any
//! workload shape, prefetcher behaviour, and core count, jumping dead
//! cycles must be *observationally identical* to ticking every cycle —
//! same [`SimReport`] bit for bit, same total cycle count, and same
//! telemetry interval snapshots. Only wall-clock time may differ.
//!
//! These are the executable form of the exactness argument in DESIGN.md
//! §5d: if skipping ever visited or missed a cycle that mattered, some
//! counter here would diverge.

use ppf_sim::{
    AccessContext, FillLevel, Prefetcher, PrefetchRequest, SimReport, Simulation, SystemConfig,
    TelemetryConfig,
};
use ppf_trace::{AccessPattern, Interleave, PointerChase, SequentialStream};
use proptest::prelude::*;

/// A randomized prefetcher (xorshift-driven): emits 0..=3 requests at
/// arbitrary nearby offsets and fill levels, so the differential check
/// covers prefetch-queue wakeups, MSHR contention, and redundancy drops —
/// not just the demand path.
struct ChaosPrefetcher {
    state: u64,
}

impl Prefetcher for ChaosPrefetcher {
    fn on_demand_access(&mut self, ctx: &AccessContext, out: &mut Vec<PrefetchRequest>) {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        let n = self.state % 4;
        for k in 0..n {
            let delta = ((self.state >> (8 + k * 8)) % 128) as i64 - 64;
            let target = ctx.addr as i64 + delta * 64;
            if target > 0 {
                let fill = if (self.state >> (3 + k)) & 1 == 1 {
                    FillLevel::L2
                } else {
                    FillLevel::Llc
                };
                out.push(PrefetchRequest::new(target as u64, fill));
            }
        }
    }

    fn name(&self) -> &'static str {
        "chaos"
    }
}

fn mixed_workload(seed: u64, streams: u64, work: u8) -> Box<dyn AccessPattern> {
    let mut parts: Vec<(Box<dyn AccessPattern>, u32)> = Vec::new();
    for i in 0..streams {
        parts.push((
            Box::new(SequentialStream::new(
                0x1000_0000 + i * 0x100_0000,
                4096,
                0x400000 + i * 64,
                work,
            )) as _,
            1,
        ));
    }
    parts
        .push((Box::new(PointerChase::new(0x9000_0000, 4096, 64, 0x410000, work, seed)) as _, 1));
    Box::new(Interleave::new(parts))
}

/// Builds an n-core simulation over per-core variants of the mixed
/// workload, with telemetry snapshotting enabled (a no-op compile-out when
/// the `telemetry` feature is absent — both modes then compare empty rings).
fn build(cores: usize, seed: u64, streams: u64, work: u8, skip: bool) -> Simulation {
    let cfg =
        if cores == 1 { SystemConfig::single_core() } else { SystemConfig::multi_core(cores) };
    let mut sim = Simulation::new(cfg);
    for c in 0..cores as u64 {
        sim.add_core(
            format!("chaos{c}"),
            mixed_workload(seed.wrapping_add(c.wrapping_mul(0x9e37_79b9)), streams, work),
            Box::new(ChaosPrefetcher { state: (seed ^ (c << 32)) | 1 }),
        );
    }
    sim.set_telemetry(TelemetryConfig { interval: 5_000 });
    sim.set_cycle_skip(skip);
    sim
}

/// Runs both modes and asserts every observable agrees; returns the pair of
/// reports so callers can add shape-specific checks.
fn assert_modes_agree(
    cores: usize,
    seed: u64,
    streams: u64,
    work: u8,
    warmup: u64,
    measure: u64,
) -> Result<(SimReport, SimReport), String> {
    let mut naive = build(cores, seed, streams, work, false);
    let mut skip = build(cores, seed, streams, work, true);
    let naive_report = naive.run(warmup, measure);
    let skip_report = skip.run(warmup, measure);

    prop_assert_eq!(&naive_report, &skip_report, "SimReports diverged (seed {})", seed);

    let n = naive.cycle_stats();
    let s = skip.cycle_stats();
    prop_assert_eq!(n.total_cycles, s.total_cycles, "cycle counts diverged");
    prop_assert_eq!(n.skipped_cycles, 0, "naive mode must tick every cycle");
    prop_assert_eq!(n.ticks, n.total_cycles);
    prop_assert_eq!(s.ticks + s.skipped_cycles, s.total_cycles, "skip accounting leak");
    prop_assert!(s.ticks <= n.ticks, "horizon mode executed more ticks than naive");

    // Interval snapshots are retirement-driven, so the horizon must never
    // shift a boundary: sequence, cycle stamps, and every counter agree.
    prop_assert_eq!(
        naive.all_interval_snapshots(),
        skip.all_interval_snapshots(),
        "telemetry snapshots diverged"
    );
    Ok((naive_report, skip_report))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Single core, arbitrary workload mix and chaotic prefetching: the two
    /// run loops are indistinguishable from the outside.
    #[test]
    fn single_core_skip_is_exact(seed in any::<u64>(), streams in 1u64..6, work in 0u8..40) {
        let (report, _) = assert_modes_agree(1, seed, streams, work, 1_000, 10_000)?;
        prop_assert!(report.cores[0].instructions >= 10_000);
    }

    /// Two cores sharing the LLC: cross-core wakeups (shared MSHR drains,
    /// credit returns) must not let a sleeping core miss a cycle it needed.
    #[test]
    fn two_core_skip_is_exact(seed in any::<u64>(), work in 0u8..24) {
        let (report, _) = assert_modes_agree(2, seed, 2, work, 1_000, 6_000)?;
        prop_assert_eq!(report.cores.len(), 2);
        for core in &report.cores {
            prop_assert!(core.instructions >= 6_000);
        }
    }

    /// Compute-free pointer chasing is the skip-friendliest shape (every
    /// load is a dependent long-latency miss); the horizon loop must both
    /// stay exact *and* actually skip there.
    #[test]
    fn dead_time_is_actually_skipped(seed in any::<u64>()) {
        let mut skip = build(1, seed, 1, 0, true);
        let mut naive = build(1, seed, 1, 0, false);
        let a = skip.run(1_000, 8_000);
        let b = naive.run(1_000, 8_000);
        prop_assert_eq!(a, b);
        let s = skip.cycle_stats();
        prop_assert!(
            s.skipped_cycles > 0,
            "pointer-chase run skipped nothing ({} ticks over {} cycles)",
            s.ticks,
            s.total_cycles
        );
    }
}
