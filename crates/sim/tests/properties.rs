//! System-level property tests: whole-simulation invariants under random
//! workload shapes and prefetcher behaviours.

use ppf_sim::{
    run_single_core, AccessContext, FillLevel, NoPrefetcher, Prefetcher, PrefetchRequest,
    SystemConfig,
};
use ppf_trace::{AccessPattern, Interleave, PointerChase, SequentialStream, TraceRecord};
use proptest::prelude::*;

/// A randomized prefetcher: emits 0..=3 requests at arbitrary nearby
/// offsets and fill levels. Used to check that *no* prefetcher behaviour,
/// however silly, can break the simulator's accounting.
struct ChaosPrefetcher {
    state: u64,
}

impl Prefetcher for ChaosPrefetcher {
    fn on_demand_access(&mut self, ctx: &AccessContext, out: &mut Vec<PrefetchRequest>) {
        // xorshift for deterministic "randomness"
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        let n = self.state % 4;
        for k in 0..n {
            let delta = ((self.state >> (8 + k * 8)) % 128) as i64 - 64;
            let target = ctx.addr as i64 + delta * 64;
            if target > 0 {
                let fill = if (self.state >> (3 + k)) & 1 == 1 {
                    FillLevel::L2
                } else {
                    FillLevel::Llc
                };
                out.push(PrefetchRequest::new(target as u64, fill));
            }
        }
    }

    fn name(&self) -> &'static str {
        "chaos"
    }
}

fn mixed_workload(seed: u64, streams: u64, work: u8) -> Box<dyn AccessPattern> {
    let mut parts: Vec<(Box<dyn AccessPattern>, u32)> = Vec::new();
    for i in 0..streams {
        parts.push((
            Box::new(SequentialStream::new(
                0x1000_0000 + i * 0x100_0000,
                4096,
                0x400000 + i * 64,
                work,
            )) as _,
            1,
        ));
    }
    parts.push((
        Box::new(PointerChase::new(0x9000_0000, 4096, 64, 0x410000, work, seed)) as _,
        1,
    ));
    Box::new(Interleave::new(parts))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever the workload shape, the simulation terminates, retires at
    /// least the requested instructions, and reports an IPC within the
    /// machine's physical limits.
    #[test]
    fn simulation_within_physical_limits(seed in any::<u64>(), streams in 1u64..6, work in 0u8..40) {
        let r = run_single_core(
            SystemConfig::single_core(),
            "prop",
            mixed_workload(seed, streams, work),
            Box::new(NoPrefetcher),
            2_000,
            20_000,
        );
        let c = &r.cores[0];
        prop_assert!(c.instructions >= 20_000);
        prop_assert!(c.ipc() > 0.0);
        prop_assert!(c.ipc() <= 4.0 + 1e-9, "retire width exceeded: {}", c.ipc());
        // Hierarchy conservation: every L2 access was an L1 miss.
        prop_assert_eq!(c.l2.demand_accesses, c.l1d.demand_misses());
        // The LLC cannot see more demand traffic than the L2 missed. (The
        // shared-LLC counters are snapshotted a tick later than the core's,
        // so allow the width of one dispatch group.)
        prop_assert!(
            r.llc.demand_accesses <= c.l2.demand_misses() + 8,
            "LLC {} vs L2 misses {}",
            r.llc.demand_accesses,
            c.l2.demand_misses()
        );
    }

    /// A chaotic prefetcher can waste bandwidth but can never break
    /// accounting invariants or deadlock the machine.
    #[test]
    fn chaos_prefetcher_cannot_corrupt(seed in any::<u64>()) {
        let r = run_single_core(
            SystemConfig::single_core(),
            "chaos",
            mixed_workload(seed, 3, 4),
            Box::new(ChaosPrefetcher { state: seed | 1 }),
            2_000,
            20_000,
        );
        let c = &r.cores[0];
        prop_assert!(c.instructions >= 20_000);
        let p = &c.prefetch;
        prop_assert!(p.issued <= p.emitted);
        prop_assert!(
            p.dropped_queue + p.dropped_redundant + p.dropped_mshr <= p.emitted,
            "drops exceed emissions"
        );
        // Useful prefetches need an issued prefetch somewhere (warmup-reset
        // slack allows a small overhang). Timely and late are disjoint, so
        // their sum is bounded too.
        prop_assert!(p.useful_total() <= p.issued + 2_000);
    }

    /// Two identical configurations produce bit-identical reports, whatever
    /// the seed (whole-system determinism).
    #[test]
    fn determinism_holds_for_any_seed(seed in any::<u64>()) {
        let run = || {
            run_single_core(
                SystemConfig::single_core(),
                "det",
                mixed_workload(seed, 2, 6),
                Box::new(ChaosPrefetcher { state: seed | 1 }),
                1_000,
                10_000,
            )
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.cores[0].cycles, b.cores[0].cycles);
        prop_assert_eq!(a.cores[0].prefetch, b.cores[0].prefetch);
        prop_assert_eq!(a.dram.reads, b.dram.reads);
        prop_assert_eq!(a.llc, b.llc);
    }

    /// The trace's dependence bits matter: serializing every load cannot be
    /// faster than the same stream without dependences.
    #[test]
    fn dependence_never_speeds_up(seed in any::<u64>()) {
        struct DepToggle {
            inner: Box<dyn AccessPattern>,
            strip: bool,
        }
        impl AccessPattern for DepToggle {
            fn next_record(&mut self) -> TraceRecord {
                let mut r = self.inner.next_record();
                if self.strip {
                    r.dependent = false;
                }
                r
            }
        }
        let mk = |strip| {
            run_single_core(
                SystemConfig::single_core(),
                "dep",
                Box::new(DepToggle {
                    inner: Box::new(PointerChase::new(0x9000_0000, 1 << 15, 64, 0x400000, 2, seed)),
                    strip,
                }),
                Box::new(NoPrefetcher),
                1_000,
                10_000,
            )
        };
        let dependent = mk(false);
        let independent = mk(true);
        prop_assert!(
            dependent.ipc() <= independent.ipc() * 1.05,
            "dependent {} cannot beat independent {}",
            dependent.ipc(),
            independent.ipc()
        );
    }
}
