//! Property tests for the heap-indexed MSHR file: the lazily-invalidated
//! readiness heap must behave exactly like the obvious scan-everything
//! implementation under arbitrary allocate / promote / drain interleavings.

use ppf_sim::mshr::{MissOrigin, MshrAlloc, MshrFile};
use proptest::collection::vec;
use proptest::prelude::*;

const CAPACITY: usize = 8;

/// One step of a random MSHR workout. Block numbers are drawn from a small
/// range so merges, re-allocations after drain, and capacity pressure all
/// actually happen.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Allocate `block` completing at `cycle + delay`.
    Alloc { block: u64, delay: u64 },
    /// Promote `block` by `credit`, floored at `cycle + floor_delay`.
    Promote { block: u64, credit: u64, floor_delay: u64 },
    /// Advance time by `step` and drain.
    Drain { step: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..3, 0u64..12, 0u64..60, 0u64..20).prop_map(|(kind, block, a, b)| match kind {
        0 => Op::Alloc { block, delay: a },
        1 => Op::Promote { block, credit: a, floor_delay: b },
        _ => Op::Drain { step: b % 8 },
    })
}

/// Reference model: a plain map of block -> ready_at, drained by scanning.
#[derive(Default)]
struct Model {
    entries: std::collections::BTreeMap<u64, u64>,
}

impl Model {
    fn alloc(&mut self, block: u64, ready_at: u64) -> MshrAlloc {
        if let Some(&t) = self.entries.get(&block) {
            return MshrAlloc::Merged(t);
        }
        if self.entries.len() >= CAPACITY {
            return MshrAlloc::Full;
        }
        self.entries.insert(block, ready_at);
        MshrAlloc::Allocated
    }

    fn promote(&mut self, block: u64, credit: u64, floor: u64) {
        if let Some(t) = self.entries.get_mut(&block) {
            *t = t.saturating_sub(credit).max(floor).min(*t);
        }
    }

    fn drain(&mut self, cycle: u64) -> Vec<(u64, u64)> {
        let ready: Vec<(u64, u64)> =
            self.entries.iter().filter(|(_, &t)| t <= cycle).map(|(&b, &t)| (b, t)).collect();
        for (b, _) in &ready {
            self.entries.remove(b);
        }
        ready // BTreeMap iteration is already block-number order
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under any interleaving of allocates, promotes, and drains, the heap
    /// implementation returns exactly what the scan-based model returns:
    /// same allocation outcomes, same drained blocks in block-number order,
    /// same completion times, same occupancy.
    #[test]
    fn matches_scan_model(ops in vec(op_strategy(), 1..120)) {
        let mut file = MshrFile::new(CAPACITY);
        let mut model = Model::default();
        let mut cycle = 0u64;
        for op in ops {
            match op {
                Op::Alloc { block, delay } => {
                    let ready_at = cycle + delay;
                    let got = file.allocate(block, ready_at, MissOrigin::Demand, false, 0);
                    let want = model.alloc(block, ready_at);
                    prop_assert_eq!(got, want, "allocate({}, {})", block, ready_at);
                }
                Op::Promote { block, credit, floor_delay } => {
                    file.promote(block, credit, cycle + floor_delay);
                    model.promote(block, credit, cycle + floor_delay);
                }
                Op::Drain { step } => {
                    cycle += step;
                    let got: Vec<(u64, u64)> = file
                        .drain_ready(cycle)
                        .into_iter()
                        .map(|(b, e)| (b, e.ready_at))
                        .collect();
                    let want = model.drain(cycle);
                    prop_assert_eq!(got, want, "drain at {}", cycle);
                }
            }
            prop_assert_eq!(file.len(), model.entries.len());
            prop_assert_eq!(file.is_full(), model.entries.len() >= CAPACITY);
        }
        // Everything eventually drains, in block order.
        let rest: Vec<u64> = file.drain_ready(u64::MAX).into_iter().map(|(b, _)| b).collect();
        let want: Vec<u64> = model.drain(u64::MAX).into_iter().map(|(b, _)| b).collect();
        prop_assert_eq!(rest, want);
        prop_assert!(file.is_empty());
    }

    /// Nothing is ever drained before its completion time, and a drained
    /// batch is strictly sorted by block number (the deterministic order the
    /// simulator's fill loop depends on).
    #[test]
    fn drain_respects_readiness_and_order(
        blocks in vec((0u64..64, 1u64..200), 1..20),
        probe in 0u64..250,
    ) {
        let mut file = MshrFile::new(64);
        for &(block, ready_at) in &blocks {
            file.allocate(block, ready_at, MissOrigin::Prefetch, false, 0);
        }
        let drained = file.drain_ready(probe);
        for w in drained.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "not sorted: {} then {}", w[0].0, w[1].0);
        }
        for (b, e) in &drained {
            prop_assert!(e.ready_at <= probe, "block {} drained {} early", b, e.ready_at - probe);
        }
        // Whatever remains really is not ready yet.
        prop_assert!(file.drain_ready(probe).is_empty());
    }

    /// `promote` interacts correctly with the cached next-ready bound: after
    /// pulling an entry earlier, a drain at the new time must return it, and
    /// a drain just before must not.
    #[test]
    fn promote_moves_drain_time(
        block in 0u64..1000,
        ready_at in 100u64..1000,
        credit in 1u64..1500,
        floor in 1u64..1000,
    ) {
        let mut file = MshrFile::new(4);
        file.allocate(block, ready_at, MissOrigin::Prefetch, false, 0);
        file.promote(block, credit, floor);
        let expected = ready_at.saturating_sub(credit).max(floor).min(ready_at);
        if expected > 0 {
            prop_assert!(file.drain_ready(expected - 1).is_empty());
        }
        let drained = file.drain_ready(expected);
        prop_assert_eq!(drained.len(), 1);
        prop_assert_eq!(drained[0].0, block);
        prop_assert_eq!(drained[0].1.ready_at, expected);
    }
}
