//! The prefetcher interface the simulator drives.
//!
//! Mirroring ChampSim (and the paper's Figure 4), a prefetcher is attached
//! to the L2: it is *triggered* on every demand access to the L2, may emit
//! prefetch requests targeted at the L2 or the LLC, and receives feedback
//! when prefetched lines are used or evicted.

use crate::addr;
use crate::telemetry::FilterCounters;

/// Where a prefetch fill is directed (paper: high-confidence prefetches go
/// to L2, low-confidence ones to the larger LLC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FillLevel {
    /// Fill into the L2 (and the LLC below it).
    L2,
    /// Fill into the LLC only.
    Llc,
}

/// A prefetch emitted by a prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrefetchRequest {
    /// Block-aligned byte address to prefetch.
    pub addr: u64,
    /// Target fill level.
    pub fill: FillLevel,
}

impl PrefetchRequest {
    /// Creates a request, aligning the address to its block.
    pub fn new(addr: u64, fill: FillLevel) -> Self {
        Self { addr: addr::block_align(addr), fill }
    }

    /// Block number of the request.
    pub fn block(&self) -> u64 {
        addr::block_number(self.addr)
    }
}

/// Context of the demand access that triggered the prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessContext {
    /// Program counter of the triggering instruction.
    pub pc: u64,
    /// Byte address of the demand access.
    pub addr: u64,
    /// The access was a store.
    pub is_store: bool,
    /// The access hit in the L2.
    pub l2_hit: bool,
    /// Current core cycle.
    pub cycle: u64,
    /// Index of the issuing core.
    pub core: usize,
}

/// Information about an L2 eviction, delivered to the prefetcher for
/// training (the paper trains PPF negatively when a prefetched line is
/// evicted unused).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionInfo {
    /// Block-aligned byte address of the victim.
    pub addr: u64,
    /// The victim had been brought in by a prefetch.
    pub was_prefetch: bool,
    /// The victim was demanded at least once while resident.
    pub was_used: bool,
}

/// A hardware prefetcher attached to the L2 cache.
///
/// Implementations must be deterministic. The simulator calls the hooks in
/// this order each cycle: evictions first, then demand accesses (which also
/// collect new prefetch requests), then fill notifications.
pub trait Prefetcher {
    /// Called on every demand access to the L2 (the trigger point). Push any
    /// prefetch requests into `out`; the simulator applies queue limits,
    /// redundancy and MSHR checks afterwards.
    fn on_demand_access(&mut self, ctx: &AccessContext, out: &mut Vec<PrefetchRequest>);

    /// Called when a demand access hits a line that a prefetch brought in
    /// (first use only) — the "useful prefetch" feedback event.
    ///
    /// Feedback is deliberately **address-keyed**: the cache models real
    /// hardware, which knows only which block was hit, not which internal
    /// scheme of a composed prefetcher predicted it. Prefetchers that fuse
    /// multiple schemes (see `ppf_prefetchers::Hybrid` behind the PPF
    /// wrapper) resolve the address back to the issuing scheme via their
    /// own issued-prefetch tracking table before routing credit, rather
    /// than expecting provenance on the wire here.
    fn on_useful_prefetch(&mut self, addr: u64) {
        let _ = addr;
    }

    /// Called when the L2 evicts a line.
    fn on_eviction(&mut self, info: &EvictionInfo) {
        let _ = info;
    }

    /// Called when the shared LLC evicts a line a prefetch brought in that
    /// was never demanded. The LLC does not track which core prefetched the
    /// line, so every core's prefetcher is notified; filters match against
    /// their own metadata tables (this is how LLC-directed prefetches get
    /// negative feedback).
    fn on_llc_eviction(&mut self, info: &EvictionInfo) {
        let _ = info;
    }

    /// Called when a prefetch fill completes at `level`.
    fn on_prefetch_fill(&mut self, addr: u64, level: FillLevel) {
        let _ = (addr, level);
    }

    /// Display name (used in result tables).
    fn name(&self) -> &'static str;

    /// Current prefetch-filter counters, for telemetry snapshots. Filterless
    /// prefetchers keep the default (all zeros); only read when telemetry is
    /// enabled, so implementations may compute it rather than cache it.
    fn filter_counters(&self) -> FilterCounters {
        FilterCounters::default()
    }

    /// A human-readable introspection dump (weight saturation, margin
    /// histograms, recent verdicts — whatever the scheme tracks), rendered
    /// on demand for diagnostics. Only called on cold paths (invariant
    /// violations, end-of-run reporting), so allocation is fine here.
    fn telemetry_dump(&self) -> String {
        String::new()
    }
}

/// The no-prefetching baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPrefetcher;

impl Prefetcher for NoPrefetcher {
    fn on_demand_access(&mut self, _ctx: &AccessContext, _out: &mut Vec<PrefetchRequest>) {}

    fn name(&self) -> &'static str {
        "none"
    }
}

impl<P: Prefetcher + ?Sized> Prefetcher for Box<P> {
    fn on_demand_access(&mut self, ctx: &AccessContext, out: &mut Vec<PrefetchRequest>) {
        (**self).on_demand_access(ctx, out)
    }

    fn on_useful_prefetch(&mut self, addr: u64) {
        (**self).on_useful_prefetch(addr)
    }

    fn on_eviction(&mut self, info: &EvictionInfo) {
        (**self).on_eviction(info)
    }

    fn on_llc_eviction(&mut self, info: &EvictionInfo) {
        (**self).on_llc_eviction(info)
    }

    fn on_prefetch_fill(&mut self, addr: u64, level: FillLevel) {
        (**self).on_prefetch_fill(addr, level)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn filter_counters(&self) -> FilterCounters {
        (**self).filter_counters()
    }

    fn telemetry_dump(&self) -> String {
        (**self).telemetry_dump()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_aligns_address() {
        let r = PrefetchRequest::new(0x12345, FillLevel::L2);
        assert_eq!(r.addr, 0x12340);
        assert_eq!(r.block(), 0x12340 >> 6);
    }

    #[test]
    fn no_prefetcher_emits_nothing() {
        let mut p = NoPrefetcher;
        let mut out = Vec::new();
        let ctx = AccessContext { pc: 0, addr: 0, is_store: false, l2_hit: false, cycle: 0, core: 0 };
        p.on_demand_access(&ctx, &mut out);
        assert!(out.is_empty());
        assert_eq!(p.name(), "none");
    }

    #[test]
    fn boxed_prefetcher_delegates() {
        let mut p: Box<dyn Prefetcher> = Box::new(NoPrefetcher);
        assert_eq!(p.name(), "none");
        let mut out = Vec::new();
        let ctx = AccessContext { pc: 0, addr: 0, is_store: false, l2_hit: true, cycle: 1, core: 0 };
        p.on_demand_access(&ctx, &mut out);
        p.on_useful_prefetch(0x40);
        p.on_eviction(&EvictionInfo { addr: 0x40, was_prefetch: true, was_used: false });
        p.on_prefetch_fill(0x80, FillLevel::Llc);
        assert!(out.is_empty());
    }
}
