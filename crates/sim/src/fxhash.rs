//! A small, fast, non-cryptographic hasher for the simulator's internal
//! maps (an Fx/FNV-style multiply-rotate mix, as used by rustc's FxHashMap).
//!
//! The default `HashMap` hasher (SipHash-1-3) costs tens of nanoseconds per
//! lookup to defend against hash-flooding. The simulator's maps are keyed
//! by block numbers it generates itself — there is no adversarial input —
//! so the hot path (MSHR lookups on every demand access, prefetch-queue
//! membership checks on every emitted candidate) uses this hasher instead.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative mixing constant (high-entropy odd number, from FxHash).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Width tags xor-ed into sub-word writes so that `write_u16(n)` and
/// `write_u32(n)` do not collide with `write_u64(n as u64)`. Without them a
/// 16/32-bit key hashes identically to its zero-extended u64 form, which
/// weakens mixing for maps that key on short tags (only 16/32 low bits of
/// the first mixed word would ever vary). The tags live in the high bits so
/// they cannot collide with small values of wider writes either.
const TAG_U16: u64 = 0x9e37_79b9_0000_0000;
const TAG_U32: u64 = 0xc2b2_ae35_0000_0000;

/// Fx-style hasher: rotate, xor, multiply per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n) ^ TAG_U16);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n) ^ TAG_U32);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_i8(&mut self, n: i8) {
        self.add(n as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, n: i16) {
        self.write_u16(n as u16);
    }

    #[inline]
    fn write_i32(&mut self, n: i32) {
        self.write_u32(n as u32);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }

    #[inline]
    fn write_isize(&mut self, n: isize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_word_sensitive() {
        let h = |n: u64| {
            let mut x = FxHasher::default();
            x.write_u64(n);
            x.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
        assert_ne!(h(0), h(1)); // even near-zero keys separate
    }

    #[test]
    fn byte_stream_matches_padding_rules() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3]);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[1, 2, 4]);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn short_writes_diverge_from_zero_extended_u64() {
        let h16 = |n: u16| {
            let mut x = FxHasher::default();
            x.write_u16(n);
            x.finish()
        };
        let h32 = |n: u32| {
            let mut x = FxHasher::default();
            x.write_u32(n);
            x.finish()
        };
        let h64 = |n: u64| {
            let mut x = FxHasher::default();
            x.write_u64(n);
            x.finish()
        };
        for n in [0u64, 1, 42, 0xffff, 0x1234] {
            assert_ne!(h16(n as u16), h64(n), "u16 {n} collides with u64");
            assert_ne!(h32(n as u32), h64(n), "u32 {n} collides with u64");
            assert_ne!(h16(n as u16), h32(n as u32), "u16 {n} collides with u32");
        }
    }

    #[test]
    fn short_write_bucket_distribution_is_flat() {
        // Hash a dense range of 16-bit keys (the worst case the width tags
        // address) into a power-of-two bucket table and check no bucket is
        // pathologically loaded. Expected load is KEYS/BUCKETS = 64; a
        // broken mix concentrates hundreds of keys in a few buckets.
        const KEYS: u32 = 16 * 1024;
        const BUCKETS: usize = 256;
        let mut load = [0u32; BUCKETS];
        for n in 0..KEYS {
            let mut x = FxHasher::default();
            x.write_u16(n as u16);
            // High bits, like hashbrown's bucket selection.
            load[(x.finish() >> (64 - 8)) as usize] += 1;
        }
        let expected = KEYS / BUCKETS as u32;
        let max = *load.iter().max().unwrap();
        let empty = load.iter().filter(|&&c| c == 0).count();
        assert!(
            max < expected * 4,
            "worst bucket holds {max} keys (expected ~{expected})"
        );
        assert!(empty < BUCKETS / 8, "{empty} of {BUCKETS} buckets empty");
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for k in 0..1000u64 {
            m.insert(k * 977, k as u32);
        }
        for k in 0..1000u64 {
            assert_eq!(m.get(&(k * 977)), Some(&(k as u32)));
        }
    }
}
