//! A ChampSim-like, trace-driven, cycle-approximate simulator.
//!
//! This crate is the substrate the PPF (ISCA '19) reproduction runs on. It
//! models the parts of the machine the paper's results depend on:
//!
//! * an out-of-order **core model** (ROB, fetch/retire widths, dependent
//!   loads serialize) driven by [`ppf_trace`] records,
//! * a three-level **cache hierarchy** (private L1D and L2, shared LLC) with
//!   LRU replacement, MSHRs, and per-line prefetch metadata,
//! * a banked **DRAM** channel with row buffers and a bandwidth-limited data
//!   bus,
//! * the **prefetch path**: prefetchers trigger on L2 demand accesses, fill
//!   into L2 or LLC, and receive useful/eviction feedback (paper Fig. 4).
//!
//! # Quick start
//!
//! ```
//! use ppf_sim::{run_single_core, NoPrefetcher, SystemConfig};
//! use ppf_trace::SequentialStream;
//!
//! let trace = Box::new(SequentialStream::new(0x10_0000, 1 << 12, 0x400000, 4));
//! let report = run_single_core(
//!     SystemConfig::single_core(),
//!     "stream",
//!     trace,
//!     Box::new(NoPrefetcher),
//!     1_000,  // warmup instructions
//!     10_000, // measured instructions
//! );
//! assert!(report.ipc() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod cache;
pub mod config;
pub mod dram;
pub mod fxhash;
pub mod horizon;
pub mod invariants;
pub mod mshr;
pub mod prefetcher;
pub mod prof;
pub mod rob;
pub mod simd;
pub mod stats;
pub mod system;
pub mod telemetry;

pub use cache::{Cache, CacheStats, FillKind};
pub use config::{CacheConfig, CoreConfig, DramConfig, PrefetchConfig, ReplacementPolicy, SystemConfig};
pub use dram::{Dram, DramStats};
pub use horizon::CycleStats;
pub use prefetcher::{
    AccessContext, EvictionInfo, FillLevel, NoPrefetcher, Prefetcher, PrefetchRequest,
};
pub use prof::{ProfConfig, Profiler, SharedSpanTable, Span, SpanStat, SPAN_COUNT};
pub use simd::SimdLevel;
pub use stats::{CoreReport, PrefetchStats, SimReport, IPC_SAMPLE_WINDOW};
pub use system::{run_single_core, Simulation};
pub use telemetry::{
    EventKind, EventRing, FilterCounters, IntervalRing, IntervalSnapshot, TelemetryConfig,
    TraceEvent,
};
