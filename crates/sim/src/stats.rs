//! Simulation statistics and reports.

use crate::cache::CacheStats;
use crate::dram::DramStats;

/// Prefetch-path counters for one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Requests produced by the prefetcher (before any filtering/dedup).
    pub emitted: u64,
    /// Requests actually sent to the memory system.
    pub issued: u64,
    /// Dropped: target block already cached or in flight.
    pub dropped_redundant: u64,
    /// Dropped: MSHRs full.
    pub dropped_mshr: u64,
    /// Dropped: prefetch queue overflow.
    pub dropped_queue: u64,
    /// Timely useful prefetches: blocks that were fully resident in a cache
    /// before their first demand hit. Disjoint from [`late`](Self::late) —
    /// a prefetch counts in exactly one of the two.
    pub useful: u64,
    /// Late useful prefetches: demands that merged into an in-flight
    /// prefetch. These still save most of the miss latency but are *not*
    /// included in `useful` (they used to be counted in both, which inflated
    /// [`accuracy`](Self::accuracy) above the paper's useful/issued
    /// definition).
    pub late: u64,
    /// Total remaining cycles demands waited on in-flight prefetches.
    pub late_wait_cycles: u64,
}

impl PrefetchStats {
    /// Average cycles a demand still had to wait when it merged into an
    /// in-flight prefetch (0 = perfectly timely).
    pub fn avg_late_wait(&self) -> f64 {
        if self.late == 0 {
            return 0.0;
        }
        self.late_wait_cycles as f64 / self.late as f64
    }

    /// All useful prefetches, timely or late (each counted once).
    pub fn useful_total(&self) -> u64 {
        self.useful + self.late
    }

    /// Accuracy as the paper defines it: useful / issued, where a late
    /// prefetch that a demand merged into still counts as useful (once).
    pub fn accuracy(&self) -> f64 {
        if self.issued == 0 {
            return 0.0;
        }
        self.useful_total() as f64 / self.issued as f64
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Per-core results for the measurement region.
///
/// `PartialEq` compares every field (including the raw IPC samples); the
/// horizon differential tests use it to assert the event-horizon scheduler
/// is bit-identical to naive per-cycle ticking.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreReport {
    /// Workload name driven on this core.
    pub workload: String,
    /// Instructions retired in the measurement region.
    pub instructions: u64,
    /// Cycles the core took to retire them.
    pub cycles: u64,
    /// L1D counters.
    pub l1d: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// Prefetch-path counters.
    pub prefetch: PrefetchStats,
    /// Number of load misses that waited on an L2 MSHR fill.
    pub load_miss_waits: u64,
    /// Total cycles those loads waited.
    pub load_miss_wait_cycles: u64,
    /// Windowed IPC samples over the measurement region (one per
    /// [`IPC_SAMPLE_WINDOW`] instructions), for phase analysis.
    pub ipc_samples: Vec<f64>,
}

/// Instructions per windowed-IPC sample in [`CoreReport::ipc_samples`].
pub const IPC_SAMPLE_WINDOW: u64 = 50_000;

impl CoreReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.instructions as f64 / self.cycles as f64
    }

    /// Average cycles a missing load waited for its fill.
    pub fn avg_load_miss_wait(&self) -> f64 {
        if self.load_miss_waits == 0 {
            return 0.0;
        }
        self.load_miss_wait_cycles as f64 / self.load_miss_waits as f64
    }

    /// L2 demand misses per kilo-instruction.
    pub fn l2_mpki(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.l2.demand_misses() as f64 * 1000.0 / self.instructions as f64
    }
}

/// Whole-simulation results for the measurement region.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// One report per core.
    pub cores: Vec<CoreReport>,
    /// Shared-LLC counters.
    pub llc: CacheStats,
    /// DRAM counters.
    pub dram: DramStats,
    /// Total cycles simulated in the measurement region (max over cores).
    pub total_cycles: u64,
}

impl SimReport {
    /// IPC of core 0 (convenience for single-core studies).
    pub fn ipc(&self) -> f64 {
        self.cores.first().map(CoreReport::ipc).unwrap_or(0.0)
    }

    /// LLC demand misses per kilo-instruction, aggregated over cores.
    pub fn llc_mpki(&self) -> f64 {
        let instr: u64 = self.cores.iter().map(|c| c.instructions).sum();
        if instr == 0 {
            return 0.0;
        }
        self.llc.demand_misses() as f64 * 1000.0 / instr as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_guards_division() {
        let s = PrefetchStats::default();
        assert_eq!(s.accuracy(), 0.0);
        let s = PrefetchStats { issued: 10, useful: 7, ..Default::default() };
        assert!((s.accuracy() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn accuracy_counts_each_late_prefetch_once() {
        // `useful` (timely) and `late` are disjoint: a demand-merged
        // in-flight prefetch increments `late` only. Accuracy therefore sums
        // the two — 4 timely + 3 late out of 10 issued is 70%, not the 40%
        // a timely-only reading would give nor an inflated double count.
        let s = PrefetchStats { issued: 10, useful: 4, late: 3, ..Default::default() };
        assert_eq!(s.useful_total(), 7);
        assert!((s.accuracy() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_every_prefetch_counter() {
        // Full struct literal on purpose — adding a field without updating
        // this test (and checking the warmup reset path) fails to compile.
        let mut s = PrefetchStats {
            emitted: 1,
            issued: 2,
            dropped_redundant: 3,
            dropped_mshr: 4,
            dropped_queue: 5,
            useful: 6,
            late: 7,
            late_wait_cycles: 8,
        };
        s.reset();
        assert_eq!(s, PrefetchStats::default());
    }

    #[test]
    fn ipc_and_mpki() {
        let l2 = CacheStats { demand_accesses: 100, demand_hits: 40, ..CacheStats::default() };
        let c = CoreReport {
            workload: "w".into(),
            instructions: 2000,
            cycles: 1000,
            l1d: CacheStats::default(),
            l2,
            prefetch: PrefetchStats::default(),
            load_miss_waits: 4,
            load_miss_wait_cycles: 400,
            ipc_samples: Vec::new(),
        };
        assert!((c.ipc() - 2.0).abs() < 1e-12);
        assert!((c.l2_mpki() - 30.0).abs() < 1e-12);
        assert!((c.avg_load_miss_wait() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = SimReport {
            cores: vec![],
            llc: CacheStats::default(),
            dram: DramStats::default(),
            total_cycles: 0,
        };
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.llc_mpki(), 0.0);
    }
}
