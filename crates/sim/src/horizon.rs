//! Event-horizon scheduling support: runtime control and skip accounting.
//!
//! The simulator's [`crate::Simulation::run`] loop does not tick through
//! cycles in which provably nothing can happen. Each executed tick computes
//! the *event horizon* — the earliest future cycle at which any simulated
//! state can change — and the run loop jumps the cycle counter straight to
//! it (see `DESIGN.md` §5d for the full argument that this is exact, not an
//! approximation). This module holds the pieces that live outside the hot
//! loop: the `PPF_NO_SKIP` escape hatch, the per-run [`CycleStats`]
//! accounting, and a process-wide tally that the bench crate reads to report
//! skip ratios in throughput records.
//!
//! Control via `PPF_NO_SKIP`:
//!
//! | value                      | behaviour                                 |
//! |----------------------------|-------------------------------------------|
//! | unset                      | cycle skipping enabled (the default)      |
//! | `0`, `off`, `false`, `no`  | cycle skipping enabled                    |
//! | anything else              | naive per-cycle ticking (debug/diff mode) |
//!
//! The setting is sampled once per [`crate::Simulation`] at construction;
//! tests that must not race on process-global environment use
//! [`crate::Simulation::set_cycle_skip`] instead.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cycle-accounting summary of one (or many) simulation runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleStats {
    /// Ticks actually executed (each runs the full per-cycle phase logic).
    pub ticks: u64,
    /// Cycles jumped over without executing a tick. Every skipped cycle is
    /// provably a no-op: no fill completes, no core can retire, dispatch,
    /// or issue, and no deferred queue is pending.
    pub skipped_cycles: u64,
    /// Total simulated cycles advanced (`ticks + skipped_cycles`).
    pub total_cycles: u64,
}

impl CycleStats {
    /// Fraction of simulated cycles that were skipped rather than executed
    /// (`0.0` for an empty tally, or when skipping is disabled).
    pub fn skip_ratio(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.skipped_cycles as f64 / self.total_cycles as f64
    }
}

/// Resolves the cycle-skip setting from `PPF_NO_SKIP`: `true` means skip
/// (the default), `false` means naive per-cycle ticking.
pub fn skip_cycles_from_env() -> bool {
    let raw = std::env::var("PPF_NO_SKIP").ok();
    skip_cycles_from(raw.as_deref())
}

/// Pure parser behind [`skip_cycles_from_env`]; `raw` is the variable's
/// value, `None` when unset. Any value other than an explicit "off" opts
/// into the naive loop — the variable *disables* an optimisation, so
/// misspellings must err on the side the user asked for.
fn skip_cycles_from(raw: Option<&str>) -> bool {
    match raw {
        None => true,
        Some(v) => matches!(v.trim().to_ascii_lowercase().as_str(), "" | "0" | "off" | "false" | "no"),
    }
}

// Process-wide tally across every `Simulation::run` in this process.
// Sweeps run many simulations on worker threads; relaxed atomics are enough
// because the bench harness only reads the totals after joining its workers.
static GLOBAL_TICKS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_SKIPPED: AtomicU64 = AtomicU64::new(0);
static GLOBAL_CYCLES: AtomicU64 = AtomicU64::new(0);

/// Folds one run's cycle accounting into the process-wide tally.
pub fn record_global(stats: CycleStats) {
    GLOBAL_TICKS.fetch_add(stats.ticks, Ordering::Relaxed);
    GLOBAL_SKIPPED.fetch_add(stats.skipped_cycles, Ordering::Relaxed);
    GLOBAL_CYCLES.fetch_add(stats.total_cycles, Ordering::Relaxed);
}

/// The process-wide cycle tally (all runs so far, every thread).
pub fn global_stats() -> CycleStats {
    CycleStats {
        ticks: GLOBAL_TICKS.load(Ordering::Relaxed),
        skipped_cycles: GLOBAL_SKIPPED.load(Ordering::Relaxed),
        total_cycles: GLOBAL_CYCLES.load(Ordering::Relaxed),
    }
}

/// Clears the process-wide tally (benches that measure one phase at a time).
pub fn reset_global() {
    GLOBAL_TICKS.store(0, Ordering::Relaxed);
    GLOBAL_SKIPPED.store(0, Ordering::Relaxed);
    GLOBAL_CYCLES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_and_off_values_enable_skipping() {
        for v in [None, Some(""), Some("0"), Some("off"), Some("FALSE"), Some(" no ")] {
            assert!(skip_cycles_from(v), "{v:?}");
        }
    }

    #[test]
    fn any_other_value_disables_skipping() {
        for v in ["1", "on", "true", "yes", "definitely"] {
            assert!(!skip_cycles_from(Some(v)), "{v:?}");
        }
    }

    #[test]
    fn skip_ratio_math() {
        let s = CycleStats { ticks: 25, skipped_cycles: 75, total_cycles: 100 };
        assert!((s.skip_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(CycleStats::default().skip_ratio(), 0.0);
    }

    #[test]
    fn global_tally_accumulates() {
        // Other tests in this binary may also record; check deltas only.
        let before = global_stats();
        record_global(CycleStats { ticks: 3, skipped_cycles: 7, total_cycles: 10 });
        let after = global_stats();
        assert_eq!(after.ticks - before.ticks, 3);
        assert_eq!(after.skipped_cycles - before.skipped_cycles, 7);
        assert_eq!(after.total_cycles - before.total_cycles, 10);
    }
}
