//! Zero-cost observability: interval stats, filter counters, event tracing.
//!
//! Long sweeps produce end-of-run aggregates; debugging a prefetcher (or
//! validating it against the paper's phase plots) needs to see *when* things
//! happened. This module provides three facilities, all bounded and
//! allocation-free on the hot path:
//!
//! * **Interval snapshots** — every N retired instructions per core, the
//!   cumulative measurement-region stats (IPC, L2/LLC misses, prefetch and
//!   filter counters) are copied into a bounded [`IntervalRing`]. The final
//!   snapshot is taken at the exact instant the end-of-run [`CoreReport`]
//!   snapshot is, so its counters equal the report's.
//! * **Filter counters** — a [`FilterCounters`] block every prefetcher can
//!   surface (PPF does; simple prefetchers return zeros), carrying the
//!   accept/reject/fill-level/training counts the paper's Figs. 9–13 derive
//!   from.
//! * **Event trace** — a bounded single-writer [`EventRing`] of the last
//!   [`TraceEvent`]s (demand misses, prefetch issues, PPF verdicts, fills,
//!   eviction trainings). It is lock-free by construction: each
//!   [`crate::Simulation`] owns its ring and writes from one thread; there
//!   is no shared mutable state to synchronise. The invariant checker dumps
//!   the ring on a violation so the cycles leading up to a corruption are
//!   visible.
//!
//! # Gating
//!
//! Everything is double-gated so the default build pays nothing:
//!
//! 1. the `telemetry` cargo feature — without it the hooks in
//!    [`crate::Simulation`] compile to no-ops (`cfg!` folds the guard to
//!    `false`, dead-code elimination removes the bodies);
//! 2. the `PPF_TELEMETRY` environment variable at runtime:
//!
//! | value                      | behaviour                                 |
//! |----------------------------|-------------------------------------------|
//! | unset                      | disabled                                  |
//! | `0`, `off`, `false`, `no`  | disabled                                  |
//! | `1`, `on`, `true`, `yes`   | snapshot every [`DEFAULT_INTERVAL`] instructions |
//! | `<N>` (positive integer)   | snapshot every `N` instructions           |
//!
//! Like `PPF_CHECK_INVARIANTS`, the value is sampled once per `Simulation`
//! at construction. [`crate::Simulation::set_telemetry`] overrides it
//! programmatically (used by tests, which must not race on process-global
//! environment).

use crate::cache::CacheStats;
use crate::stats::PrefetchStats;

/// Interval length (retired instructions per core) when telemetry is enabled
/// without an explicit period. A multiple of the windowed-IPC sample size so
/// the two sampling grids align.
pub const DEFAULT_INTERVAL: u64 = 100_000;

/// Snapshots retained per core before the ring wraps.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Trace events retained per simulation before the ring wraps.
pub const EVENT_RING_CAPACITY: usize = 1024;

/// Version stamped into every exported JSONL record.
pub const SCHEMA_VERSION: u32 = 1;

/// Runtime telemetry settings, resolved once per [`crate::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Retired instructions between snapshots; `0` disables telemetry.
    pub interval: u64,
}

impl TelemetryConfig {
    /// Telemetry off (the default without `PPF_TELEMETRY`).
    pub fn disabled() -> Self {
        Self { interval: 0 }
    }

    /// Resolves the configuration from `PPF_TELEMETRY`. Always disabled
    /// when the `telemetry` feature is not compiled in.
    pub fn from_env() -> Self {
        if !cfg!(feature = "telemetry") {
            return Self::disabled();
        }
        let raw = std::env::var("PPF_TELEMETRY").ok();
        Self { interval: parse(raw.as_deref()) }
    }
}

/// Pure parser behind [`TelemetryConfig::from_env`]; `raw` is the variable's
/// value, `None` when unset. Malformed values fall back to the default
/// interval after a warning (recording too often is recoverable; silently
/// dropping requested telemetry is not).
fn parse(raw: Option<&str>) -> u64 {
    let Some(raw) = raw else { return 0 };
    match raw.trim().to_ascii_lowercase().as_str() {
        "" | "0" | "off" | "false" | "no" => 0,
        "1" | "on" | "true" | "yes" => DEFAULT_INTERVAL,
        s => match s.parse::<u64>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!(
                    "warning: PPF_TELEMETRY={raw:?} is not an interval; \
                     snapshotting every {DEFAULT_INTERVAL} instructions"
                );
                DEFAULT_INTERVAL
            }
        },
    }
}

/// Prefetch-filter counters a [`crate::Prefetcher`] can surface for
/// telemetry. Filterless prefetchers report all zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterCounters {
    /// Candidates evaluated by the filter.
    pub inferences: u64,
    /// Accepted with L2 fill level.
    pub accepted_l2: u64,
    /// Accepted with LLC fill level.
    pub accepted_llc: u64,
    /// Rejected candidates.
    pub rejected: u64,
    /// Upward training events.
    pub positive_trains: u64,
    /// Downward training events.
    pub negative_trains: u64,
    /// Rejected candidates later demanded (Reject Table recoveries).
    pub false_negative_recoveries: u64,
    /// Negative trainings triggered by metadata-table replacement.
    pub replacement_trains: u64,
    /// Depth-window size used for batched inference (config metadata, not a
    /// counter: carried through [`FilterCounters::delta`] unchanged so
    /// interval snapshots record the knob a run was swept at).
    pub batch_window: u64,
}

impl FilterCounters {
    /// Field-wise `self - other` (saturating), for per-interval deltas.
    pub fn delta(&self, other: &Self) -> Self {
        Self {
            inferences: self.inferences.saturating_sub(other.inferences),
            accepted_l2: self.accepted_l2.saturating_sub(other.accepted_l2),
            accepted_llc: self.accepted_llc.saturating_sub(other.accepted_llc),
            rejected: self.rejected.saturating_sub(other.rejected),
            positive_trains: self.positive_trains.saturating_sub(other.positive_trains),
            negative_trains: self.negative_trains.saturating_sub(other.negative_trains),
            false_negative_recoveries: self
                .false_negative_recoveries
                .saturating_sub(other.false_negative_recoveries),
            replacement_trains: self.replacement_trains.saturating_sub(other.replacement_trains),
            batch_window: self.batch_window,
        }
    }
}

/// Cumulative measurement-region stats for one core at one interval
/// boundary. All counters count from the start of the measurement region, so
/// consecutive snapshots can be differenced for per-interval rates and the
/// final snapshot matches the end-of-run [`crate::CoreReport`] exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalSnapshot {
    /// Index of the core this snapshot describes.
    pub core: u32,
    /// Snapshot sequence number (0 = first interval boundary). Monotonic
    /// even after the ring wraps.
    pub seq: u64,
    /// Instructions retired in the measurement region so far.
    pub instructions: u64,
    /// Cycles elapsed in the measurement region so far.
    pub cycles: u64,
    /// This core's L2 counters.
    pub l2: CacheStats,
    /// Shared-LLC demand misses (whole system — the LLC does not attribute
    /// misses to cores).
    pub llc_demand_misses: u64,
    /// This core's prefetch-path counters.
    pub prefetch: PrefetchStats,
    /// This core's prefetch-filter counters (zeros for filterless schemes).
    pub filter: FilterCounters,
}

impl IntervalSnapshot {
    /// Cumulative IPC up to this snapshot.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.instructions as f64 / self.cycles as f64
    }

    /// Cumulative L2 demand misses per kilo-instruction.
    pub fn l2_mpki(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.l2.demand_misses() as f64 * 1000.0 / self.instructions as f64
    }

    /// Cumulative LLC demand misses per kilo-instruction of this core.
    pub fn llc_mpki(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.llc_demand_misses as f64 * 1000.0 / self.instructions as f64
    }

    /// One JSON object (no trailing newline) in the exported JSONL schema.
    /// Counters are exact integers; derived rates are 6-decimal floats.
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"v\":{},\"core\":{},\"seq\":{},\"instr\":{},\"cycles\":{},\
             \"ipc\":{:.6},\"l2_mpki\":{:.6},\"llc_mpki\":{:.6},\
             \"l2_acc\":{},\"l2_hit\":{},\"l2_demand_fills\":{},\
             \"l2_pf_fills\":{},\"l2_useful_pf\":{},\"l2_useless_pf\":{},\
             \"llc_miss\":{},\
             \"pf_emitted\":{},\"pf_issued\":{},\"pf_useful\":{},\
             \"pf_late\":{},\"pf_late_wait\":{},\"pf_dropped_redundant\":{},\
             \"pf_dropped_mshr\":{},\"pf_dropped_queue\":{},\
             \"ppf_inferences\":{},\"ppf_accept_l2\":{},\"ppf_accept_llc\":{},\
             \"ppf_reject\":{},\"ppf_pos_train\":{},\"ppf_neg_train\":{},\
             \"ppf_recoveries\":{},\"ppf_replacement_trains\":{},\
             \"ppf_batch_window\":{}}}",
            SCHEMA_VERSION,
            self.core,
            self.seq,
            self.instructions,
            self.cycles,
            self.ipc(),
            self.l2_mpki(),
            self.llc_mpki(),
            self.l2.demand_accesses,
            self.l2.demand_hits,
            self.l2.demand_fills,
            self.l2.prefetch_fills,
            self.l2.useful_prefetches,
            self.l2.useless_prefetches,
            self.llc_demand_misses,
            self.prefetch.emitted,
            self.prefetch.issued,
            self.prefetch.useful,
            self.prefetch.late,
            self.prefetch.late_wait_cycles,
            self.prefetch.dropped_redundant,
            self.prefetch.dropped_mshr,
            self.prefetch.dropped_queue,
            self.filter.inferences,
            self.filter.accepted_l2,
            self.filter.accepted_llc,
            self.filter.rejected,
            self.filter.positive_trains,
            self.filter.negative_trains,
            self.filter.false_negative_recoveries,
            self.filter.replacement_trains,
            self.filter.batch_window,
        )
    }

    /// Column header matching [`IntervalSnapshot::to_csv_row`].
    pub const CSV_HEADER: &'static str = "core,seq,instr,cycles,ipc,l2_mpki,llc_mpki,\
        pf_issued,pf_useful,pf_late,ppf_accept_l2,ppf_accept_llc,ppf_reject";

    /// One CSV row of the headline columns (full detail lives in JSONL).
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{:.6},{:.6},{:.6},{},{},{},{},{},{}",
            self.core,
            self.seq,
            self.instructions,
            self.cycles,
            self.ipc(),
            self.l2_mpki(),
            self.llc_mpki(),
            self.prefetch.issued,
            self.prefetch.useful,
            self.prefetch.late,
            self.filter.accepted_l2,
            self.filter.accepted_llc,
            self.filter.rejected,
        )
    }
}

/// A bounded ring of [`IntervalSnapshot`]s. Pushes never allocate after
/// construction; once full, the oldest snapshot is overwritten.
#[derive(Debug, Clone)]
pub struct IntervalRing {
    buf: Vec<IntervalSnapshot>,
    capacity: usize,
    /// Index of the oldest element once the ring is full.
    head: usize,
    /// Snapshots ever pushed (>= `len()`).
    total: u64,
}

impl IntervalRing {
    /// Creates a ring retaining up to `capacity` snapshots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "interval ring needs capacity");
        Self { buf: Vec::with_capacity(capacity), capacity, head: 0, total: 0 }
    }

    /// Appends a snapshot, overwriting the oldest once at capacity.
    pub fn push(&mut self, s: IntervalSnapshot) {
        if self.buf.len() < self.capacity {
            self.buf.push(s);
        } else {
            self.buf[self.head] = s;
            self.head = (self.head + 1) % self.capacity;
        }
        self.total += 1;
    }

    /// Snapshots currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum snapshots retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshots ever pushed, including overwritten ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Snapshots lost to wrapping.
    pub fn dropped(&self) -> u64 {
        self.total - self.len() as u64
    }

    /// Iterates retained snapshots oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &IntervalSnapshot> {
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter())
    }

    /// The most recent snapshot.
    pub fn last(&self) -> Option<&IntervalSnapshot> {
        if self.buf.is_empty() {
            None
        } else if self.head == 0 {
            self.buf.last()
        } else {
            Some(&self.buf[self.head - 1])
        }
    }
}

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A demand access missed the L2.
    DemandMiss,
    /// A prefetch left the queue for the memory system
    /// (payload: fill level, 0 = L2, 1 = LLC).
    PrefetchIssue,
    /// The prefetch filter judged a trigger's candidates
    /// (payload: accepted count in the high 32 bits, rejected in the low).
    PpfVerdict,
    /// A prefetch fill completed (payload: fill level, 0 = L2, 1 = LLC).
    Fill,
    /// A prefetched-but-unused line was evicted, training the filter
    /// negatively (payload: 1 if the LLC evicted it, 0 if an L2).
    EvictionTraining,
}

/// One entry in the event-trace ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle the event occurred.
    pub cycle: u64,
    /// Core it is attributed to; `u32::MAX` when unattributable (the shared
    /// LLC does not track which core prefetched an evicted line).
    pub core: u32,
    /// Event kind.
    pub kind: EventKind,
    /// Block number involved.
    pub block: u64,
    /// Kind-specific payload (see [`EventKind`]).
    pub payload: u64,
}

impl TraceEvent {
    /// One-line human-readable rendering (used in diagnostic dumps).
    pub fn render(&self) -> String {
        let what = match self.kind {
            EventKind::DemandMiss => "demand-miss".to_string(),
            EventKind::PrefetchIssue => format!(
                "prefetch-issue fill={}",
                if self.payload == 0 { "l2" } else { "llc" }
            ),
            EventKind::PpfVerdict => format!(
                "ppf-verdict accepted={} rejected={}",
                self.payload >> 32,
                self.payload & 0xffff_ffff
            ),
            EventKind::Fill => {
                format!("fill level={}", if self.payload == 0 { "l2" } else { "llc" })
            }
            EventKind::EvictionTraining => format!(
                "eviction-training at={}",
                if self.payload == 0 { "l2" } else { "llc" }
            ),
        };
        let core = if self.core == u32::MAX {
            "-".to_string()
        } else {
            self.core.to_string()
        };
        format!("cycle {:>10} core {core} block {:#012x} {what}", self.cycle, self.block)
    }
}

/// A bounded single-writer ring of the most recent [`TraceEvent`]s.
///
/// Lock-free by construction: the owning [`crate::Simulation`] is the only
/// writer and readers only run between ticks, so plain sequential writes
/// suffice — there is no synchronisation on the record path at all. Pushes
/// never allocate after construction.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<TraceEvent>,
    capacity: usize,
    head: usize,
    total: u64,
}

impl EventRing {
    /// Creates a ring retaining up to `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event ring needs capacity");
        Self { buf: Vec::with_capacity(capacity), capacity, head: 0, total: 0 }
    }

    /// Records an event, overwriting the oldest once at capacity.
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
        self.total += 1;
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events ever recorded, including overwritten ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Iterates retained events oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter())
    }

    /// Renders the retained events oldest → newest, one per line, for the
    /// invariant checker's diagnostic dump.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "event trace: {} retained of {} recorded\n",
            self.len(),
            self.total
        ));
        for ev in self.iter() {
            out.push_str("  ");
            out.push_str(&ev.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(core: u32, seq: u64) -> IntervalSnapshot {
        IntervalSnapshot {
            core,
            seq,
            instructions: (seq + 1) * 1000,
            cycles: (seq + 1) * 2000,
            l2: CacheStats { demand_accesses: 10 * (seq + 1), demand_hits: 5, ..Default::default() },
            llc_demand_misses: seq,
            prefetch: PrefetchStats { issued: seq, ..Default::default() },
            filter: FilterCounters { inferences: seq, ..Default::default() },
        }
    }

    #[test]
    fn env_parse_matches_invariants_conventions() {
        assert_eq!(parse(None), 0);
        for v in ["0", "off", "false", "no", " OFF ", ""] {
            assert_eq!(parse(Some(v)), 0, "{v:?}");
        }
        for v in ["1", "on", "true", "YES"] {
            assert_eq!(parse(Some(v)), DEFAULT_INTERVAL, "{v:?}");
        }
        assert_eq!(parse(Some("25000")), 25_000);
        assert_eq!(parse(Some("bogus")), DEFAULT_INTERVAL);
    }

    #[test]
    fn interval_ring_wraps_at_capacity() {
        let mut r = IntervalRing::new(4);
        for seq in 0..10 {
            r.push(snap(0, seq));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total(), 10);
        assert_eq!(r.dropped(), 6);
        let seqs: Vec<u64> = r.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest -> newest after wrap");
        assert_eq!(r.last().unwrap().seq, 9);
    }

    #[test]
    fn interval_ring_below_capacity_keeps_everything() {
        let mut r = IntervalRing::new(8);
        for seq in 0..3 {
            r.push(snap(1, seq));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
        let seqs: Vec<u64> = r.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(r.last().unwrap().seq, 2);
    }

    #[test]
    fn event_ring_wraps_and_orders() {
        let mut r = EventRing::new(3);
        for i in 0..5u64 {
            r.record(TraceEvent {
                cycle: i,
                core: 0,
                kind: EventKind::DemandMiss,
                block: i,
                payload: 0,
            });
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total(), 5);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
        let dump = r.render();
        assert!(dump.contains("3 retained of 5 recorded"), "{dump}");
        assert!(dump.contains("demand-miss"), "{dump}");
    }

    #[test]
    fn jsonl_carries_exact_counters_and_schema_version() {
        let s = snap(2, 7);
        let line = s.to_jsonl();
        assert!(line.starts_with(&format!("{{\"v\":{SCHEMA_VERSION},")), "{line}");
        assert!(line.contains("\"core\":2,"), "{line}");
        assert!(line.contains("\"seq\":7,"), "{line}");
        assert!(line.contains("\"instr\":8000,"), "{line}");
        assert!(line.contains("\"l2_acc\":80,"), "{line}");
        assert!(line.contains("\"ppf_inferences\":7,"), "{line}");
        assert!(line.contains("\"ppf_batch_window\":"), "{line}");
        assert!(line.ends_with('}'), "{line}");
        // Braces balance and there is exactly one object.
        assert_eq!(line.matches('{').count(), 1);
        assert_eq!(line.matches('}').count(), 1);
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let s = snap(0, 3);
        let cols = IntervalSnapshot::CSV_HEADER.split(',').count();
        assert_eq!(s.to_csv_row().split(',').count(), cols);
    }

    #[test]
    fn verdict_payload_packs_accept_reject() {
        let ev = TraceEvent {
            cycle: 1,
            core: 0,
            kind: EventKind::PpfVerdict,
            block: 0x40,
            payload: (3u64 << 32) | 2,
        };
        let line = ev.render();
        assert!(line.contains("accepted=3 rejected=2"), "{line}");
    }

    #[test]
    fn filter_counter_deltas() {
        let a = FilterCounters { inferences: 10, rejected: 4, ..Default::default() };
        let b = FilterCounters { inferences: 3, rejected: 1, ..Default::default() };
        let d = a.delta(&b);
        assert_eq!(d.inferences, 7);
        assert_eq!(d.rejected, 3);
        assert_eq!(d.accepted_l2, 0);
    }
}
