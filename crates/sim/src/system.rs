//! The simulated system: per-core pipeline + private caches, a shared LLC,
//! shared DRAM, and the prefetch path between them.
//!
//! The model is trace-driven and cycle-approximate. Each cycle, every core:
//!
//! 1. drains ready MSHR fills (waking dependent loads),
//! 2. retires completed instructions in order,
//! 3. dispatches new instructions from its trace (stalling on full MSHRs and
//!    on dependent loads whose producer is outstanding),
//! 4. issues queued prefetches.
//!
//! Demand misses are *latency-forwarded*: the full hierarchy latency and the
//! DRAM bank/bus schedule are computed when the request is accepted, and the
//! fill is delivered by the MSHR at that cycle. MSHR occupancy bounds the
//! memory-level parallelism, the DRAM bus bounds bandwidth — the two
//! first-order effects the PPF paper's results depend on.

use crate::addr;
use crate::cache::{Cache, FillKind};
use crate::config::SystemConfig;
use crate::dram::Dram;
use crate::fxhash::FxHashSet;
use crate::mshr::{MissOrigin, MshrAlloc, MshrFile};
use crate::prefetcher::{AccessContext, EvictionInfo, FillLevel, Prefetcher, PrefetchRequest};
use crate::rob::{Rob, PENDING};
use crate::stats::{CoreReport, PrefetchStats, SimReport, IPC_SAMPLE_WINDOW};
use crate::telemetry::{
    EventKind, EventRing, FilterCounters, IntervalRing, IntervalSnapshot, TelemetryConfig,
    TraceEvent, DEFAULT_RING_CAPACITY, EVENT_RING_CAPACITY,
};
use ppf_trace::{AccessKind, AccessPattern, TraceRecord};
use std::collections::VecDeque;

/// Outcome of attempting to start a demand access.
enum Demand {
    /// Completes at the given cycle (hit somewhere, or non-blocking store).
    Done(u64),
    /// Outstanding; the ROB entry must wait on this block's L2 MSHR.
    Pending(u64),
    /// Resources exhausted; retry next cycle.
    Stall,
}

/// Shifts every record of an inner pattern into a per-core address space,
/// modelling the distinct physical pages of multi-programmed workloads.
struct AddressSpace<P> {
    inner: P,
    offset: u64,
}

impl<P: AccessPattern> AccessPattern for AddressSpace<P> {
    fn next_record(&mut self) -> TraceRecord {
        let mut rec = self.inner.next_record();
        rec.addr += self.offset;
        rec
    }
}

struct CoreUnit {
    workload: String,
    trace: Box<dyn AccessPattern>,
    rob: Rob,
    l1d: Cache,
    l2: Cache,
    l2_mshr: MshrFile,
    prefetcher: Box<dyn Prefetcher>,
    pq: VecDeque<PrefetchRequest>,
    /// Mirror of `pq` for O(1) dedup-at-enqueue membership checks (queue
    /// entries are unique, so a set mirrors the queue exactly).
    pq_set: FxHashSet<PrefetchRequest>,
    pf_stats: PrefetchStats,
    /// Outstanding demand misses (bounded by the L1 MSHR count); prefetches
    /// do not count, so they can use the L2 MSHR headroom.
    demand_outstanding: usize,
    // Dispatch state.
    work_left: u8,
    pending_rec: Option<TraceRecord>,
    last_dep_seq: Option<u64>,
    // Accounting.
    retired: u64,
    load_miss_waits: u64,
    load_miss_wait_cycles: u64,
    ipc_samples: Vec<f64>,
    last_sample: (u64, u64), // (retired, cycle) at the last window boundary
    measure_start: Option<(u64, u64)>, // (cycle, retired)
    measure_end_cycle: Option<u64>,
    snapshot: Option<CoreReport>,
    // Scratch buffer reused across triggers.
    scratch: Vec<PrefetchRequest>,
    // Telemetry (inert single-slot ring unless telemetry is enabled).
    intervals: IntervalRing,
    interval_seq: u64,
}

/// A configured, runnable system.
///
/// Build with [`Simulation::new`], attach one `(trace, prefetcher)` pair per
/// configured core with [`Simulation::add_core`], then call
/// [`Simulation::run`].
pub struct Simulation {
    cfg: SystemConfig,
    cores: Vec<CoreUnit>,
    llc: Cache,
    llc_mshr: MshrFile,
    dram: Dram,
    cycle: u64,
    /// Deferred "useful prefetch" credits: (owner core, block byte addr).
    credits: Vec<(usize, u64)>,
    /// Deferred LLC-eviction notifications (unused prefetched victims).
    llc_evictions: Vec<EvictionInfo>,
    /// Cycles between invariant checks; `0` disables them (see
    /// [`crate::invariants`]). Sampled once at construction.
    invariant_period: u64,
    /// Telemetry settings (see [`crate::telemetry`]). Sampled once at
    /// construction from `PPF_TELEMETRY`; override with
    /// [`Simulation::set_telemetry`] before attaching cores.
    telemetry: TelemetryConfig,
    /// Bounded trace of recent events (inert single-slot ring unless
    /// telemetry is enabled).
    events: EventRing,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("cores", &self.cores.len())
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl Simulation {
    /// Creates an empty system for `cfg`.
    pub fn new(cfg: SystemConfig) -> Self {
        let llc = Cache::new(&cfg.llc);
        let llc_mshr = MshrFile::new(cfg.llc.mshrs);
        let dram = Dram::new(&cfg.dram);
        let mut sim = Self {
            cfg,
            cores: Vec::new(),
            llc,
            llc_mshr,
            dram,
            cycle: 0,
            credits: Vec::new(),
            llc_evictions: Vec::new(),
            invariant_period: crate::invariants::period(),
            telemetry: TelemetryConfig::from_env(),
            events: EventRing::new(1),
        };
        sim.events = EventRing::new(sim.event_ring_capacity());
        sim
    }

    /// Ring capacity for the current telemetry setting: full-size when
    /// telemetry is live, a single inert slot otherwise (so disabled runs
    /// pay no memory either).
    fn event_ring_capacity(&self) -> usize {
        if self.telemetry_active() {
            EVENT_RING_CAPACITY
        } else {
            1
        }
    }

    /// True when telemetry hooks should record. With the `telemetry` feature
    /// off, `cfg!` folds this to `false` and every hook body is eliminated.
    #[inline(always)]
    fn telemetry_active(&self) -> bool {
        cfg!(feature = "telemetry") && self.telemetry.interval != 0
    }

    /// Overrides the `PPF_TELEMETRY`-derived settings (tests and harnesses
    /// that must not race on process-global environment). Resizes the
    /// snapshot/event rings, discarding anything already recorded, so call
    /// it before [`Simulation::run`]. Ignored (forced off) when the
    /// `telemetry` feature is not compiled in.
    pub fn set_telemetry(&mut self, cfg: TelemetryConfig) {
        self.telemetry =
            if cfg!(feature = "telemetry") { cfg } else { TelemetryConfig::disabled() };
        self.events = EventRing::new(self.event_ring_capacity());
        let cap = self.interval_ring_capacity();
        for core in &mut self.cores {
            core.intervals = IntervalRing::new(cap);
            core.interval_seq = 0;
        }
    }

    /// Snapshot-ring capacity matching the current telemetry setting.
    fn interval_ring_capacity(&self) -> usize {
        if self.telemetry_active() {
            DEFAULT_RING_CAPACITY
        } else {
            1
        }
    }

    /// The telemetry settings this simulation runs with.
    pub fn telemetry(&self) -> TelemetryConfig {
        self.telemetry
    }

    /// The interval-snapshot ring of core `i` (empty unless telemetry was
    /// enabled during [`Simulation::run`]).
    pub fn interval_snapshots(&self, i: usize) -> &IntervalRing {
        &self.cores[i].intervals
    }

    /// All retained interval snapshots, ordered by `(core, seq)` — the
    /// layout the JSONL exporter writes.
    pub fn all_interval_snapshots(&self) -> Vec<IntervalSnapshot> {
        self.cores.iter().flat_map(|c| c.intervals.iter().copied()).collect()
    }

    /// The event-trace ring (empty unless telemetry was enabled).
    pub fn event_trace(&self) -> &EventRing {
        &self.events
    }

    /// Core `i`'s prefetcher introspection dump (empty for schemes that
    /// track nothing).
    pub fn prefetcher_dump(&self, i: usize) -> String {
        self.cores[i].prefetcher.telemetry_dump()
    }

    /// Attaches a core running `trace` with `prefetcher` on its L2.
    ///
    /// # Panics
    ///
    /// Panics if all configured cores are already attached.
    pub fn add_core(
        &mut self,
        workload: impl Into<String>,
        trace: Box<dyn AccessPattern>,
        prefetcher: Box<dyn Prefetcher>,
    ) {
        assert!(self.cores.len() < self.cfg.cores, "all configured cores already attached");
        // Each core gets its own 1 TB address-space slot so multi-programmed
        // workloads never alias (the paper's mixes are separate processes).
        let offset = (self.cores.len() as u64) << 40;
        let trace: Box<dyn AccessPattern> = Box::new(AddressSpace { inner: trace, offset });
        self.cores.push(CoreUnit {
            workload: workload.into(),
            trace,
            rob: Rob::new(self.cfg.core.rob_size),
            l1d: Cache::new(&self.cfg.l1d),
            l2: Cache::new(&self.cfg.l2),
            l2_mshr: MshrFile::new(self.cfg.l2.mshrs),
            prefetcher,
            pq: VecDeque::new(),
            pq_set: FxHashSet::default(),
            pf_stats: PrefetchStats::default(),
            demand_outstanding: 0,
            work_left: 0,
            pending_rec: None,
            last_dep_seq: None,
            retired: 0,
            load_miss_waits: 0,
            load_miss_wait_cycles: 0,
            ipc_samples: Vec::new(),
            last_sample: (0, 0),
            measure_start: None,
            measure_end_cycle: None,
            snapshot: None,
            scratch: Vec::new(),
            intervals: IntervalRing::new(self.interval_ring_capacity()),
            interval_seq: 0,
        });
    }

    /// Runs `warmup` instructions per core (structures warm, stats then
    /// reset) followed by `measure` instructions per core, and reports the
    /// measurement region. Cores that finish early keep executing until the
    /// last core completes, preserving contention (paper Sec 5.3).
    ///
    /// # Panics
    ///
    /// Panics if the number of attached cores differs from the configuration,
    /// if `measure == 0`, or if the simulation fails to make forward progress.
    pub fn run(&mut self, warmup: u64, measure: u64) -> SimReport {
        assert_eq!(self.cores.len(), self.cfg.cores, "attach one core per configured core");
        assert!(measure > 0, "measurement region must be non-empty");
        let mut stats_reset = false;
        // Generous forward-progress bound: no workload sustains a CPI > 2000.
        let cycle_limit = self.cycle + (warmup + measure) * 2000 + 1_000_000;

        while self.cores.iter().any(|c| c.measure_end_cycle.is_none()) {
            self.tick(warmup, measure);
            if !stats_reset && self.cores.iter().all(|c| c.retired >= warmup) {
                stats_reset = true;
                for c in &mut self.cores {
                    c.l1d.stats.reset();
                    c.l2.stats.reset();
                    c.pf_stats.reset();
                    c.load_miss_waits = 0;
                    c.load_miss_wait_cycles = 0;
                }
                self.llc.stats.reset();
                self.dram.stats.reset();
            }
            assert!(self.cycle < cycle_limit, "simulation failed to make forward progress");
        }

        let total_cycles = self
            .cores
            .iter()
            .map(|c| {
                let (start, _) = c.measure_start.expect("measured");
                c.measure_end_cycle.expect("finished") - start
            })
            .max()
            .unwrap_or(0);
        SimReport {
            cores: self.cores.iter().map(|c| c.snapshot.clone().expect("snapshot")).collect(),
            llc: self.llc.stats,
            dram: self.dram.stats,
            total_cycles,
        }
    }

    /// Advances the system one cycle.
    fn tick(&mut self, warmup: u64, measure: u64) {
        self.cycle += 1;
        let cycle = self.cycle;
        let telem = self.telemetry_active();

        // Shared LLC fills.
        let ready = self.llc_mshr.drain_ready(cycle);
        for (block, entry) in ready {
            let kind = if entry.origin == MissOrigin::Prefetch && !entry.demand_merged {
                FillKind::Prefetch
            } else {
                FillKind::Demand
            };
            if telem && kind == FillKind::Prefetch {
                self.events.record(TraceEvent {
                    cycle,
                    core: entry.owner as u32,
                    kind: EventKind::Fill,
                    block,
                    payload: 1,
                });
            }
            if let Some(ev) = self.llc.fill(block, kind, entry.write) {
                if ev.dirty {
                    self.dram.schedule_write(ev.block, cycle);
                }
                self.note_llc_eviction(&ev);
            }
            if entry.origin == MissOrigin::Prefetch {
                // L2-bound prefetches have a twin entry in the owner's L2
                // MSHR whose drain will deliver the fill notification; only
                // pure LLC-targeted prefetches notify from here (otherwise
                // every prefetch would be counted twice).
                let l2_bound = self.cores[entry.owner].l2_mshr.get(block).is_some();
                if !l2_bound {
                    self.cores[entry.owner]
                        .prefetcher
                        .on_prefetch_fill(block << addr::BLOCK_BITS, FillLevel::Llc);
                }
            }
        }

        // Apply deferred useful-prefetch credits. These are late merges, so
        // they count in `late` only (`useful` holds timely prefetches; the
        // two are disjoint and summed by `useful_total`).
        let credits = std::mem::take(&mut self.credits);
        for (owner, byte_addr) in credits {
            let core = &mut self.cores[owner];
            core.pf_stats.late += 1;
            core.prefetcher.on_useful_prefetch(byte_addr);
        }

        // Deliver LLC evictions of unused prefetched lines to every
        // prefetcher (filters match against their own tables).
        let evs = std::mem::take(&mut self.llc_evictions);
        for ev in evs {
            if telem {
                // The LLC does not track which core prefetched the victim,
                // so the event is unattributed (core = u32::MAX).
                self.events.record(TraceEvent {
                    cycle,
                    core: u32::MAX,
                    kind: EventKind::EvictionTraining,
                    block: addr::block_number(ev.addr),
                    payload: 1,
                });
            }
            for core in &mut self.cores {
                core.prefetcher.on_llc_eviction(&ev);
            }
        }

        for i in 0..self.cores.len() {
            self.drain_core_fills(i, cycle);
            self.retire_and_dispatch(i, cycle, warmup, measure);
            self.issue_prefetches(i, cycle);
        }

        if self.invariant_period != 0 && cycle.is_multiple_of(self.invariant_period) {
            self.enforce_invariants();
        }
    }

    /// Validates every simulated structure's invariants, returning a
    /// description of the first violation: the shared LLC and its MSHR file,
    /// and per core the L1D, L2, L2 MSHR file, and prefetch queue (bounded
    /// by the configured size, exactly mirrored by its dedup set).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.llc.check_invariants().map_err(|e| format!("llc: {e}"))?;
        self.llc_mshr.check_invariants().map_err(|e| format!("llc mshr: {e}"))?;
        for (i, core) in self.cores.iter().enumerate() {
            core.l1d.check_invariants().map_err(|e| format!("core {i} l1d: {e}"))?;
            core.l2.check_invariants().map_err(|e| format!("core {i} l2: {e}"))?;
            core.l2_mshr.check_invariants().map_err(|e| format!("core {i} l2 mshr: {e}"))?;
            if core.pq.len() > self.cfg.prefetch.queue_size {
                return Err(format!(
                    "core {i} prefetch queue holds {} entries, limit {}",
                    core.pq.len(),
                    self.cfg.prefetch.queue_size
                ));
            }
            if core.pq.len() != core.pq_set.len() {
                return Err(format!(
                    "core {i} prefetch queue ({}) and dedup set ({}) diverged",
                    core.pq.len(),
                    core.pq_set.len()
                ));
            }
            if let Some(req) = core.pq.iter().find(|r| !core.pq_set.contains(r)) {
                return Err(format!(
                    "core {i} queued prefetch of block {:#x} missing from dedup set",
                    req.block()
                ));
            }
        }
        Ok(())
    }

    /// Runs [`Simulation::check_invariants`] and, on a violation, dumps a
    /// diagnostic snapshot to stderr and panics. The panic is caught by the
    /// sweep harness's per-job isolation, so one corrupted simulation fails
    /// loudly without taking down the rest of a sweep.
    fn enforce_invariants(&self) {
        let Err(violation) = self.check_invariants() else { return };
        eprintln!("=== simulator invariant violation at cycle {} ===", self.cycle);
        eprintln!("  violation: {violation}");
        eprintln!(
            "  llc: occupancy {}/{} | llc mshr: {} in flight | dram reads {} writes {}",
            self.llc.occupancy(),
            self.llc.sets() * self.llc.ways(),
            self.llc_mshr.len(),
            self.dram.stats.reads,
            self.dram.stats.writes,
        );
        for (i, c) in self.cores.iter().enumerate() {
            eprintln!(
                "  core {i} ({}): retired {} | l2 mshr {} in flight | pq {} (set {}) \
                 | demand outstanding {}",
                c.workload,
                c.retired,
                c.l2_mshr.len(),
                c.pq.len(),
                c.pq_set.len(),
                c.demand_outstanding,
            );
        }
        if self.telemetry_active() {
            eprint!("{}", self.events.render());
            for (i, c) in self.cores.iter().enumerate() {
                let dump = c.prefetcher.telemetry_dump();
                if !dump.is_empty() {
                    eprintln!("  core {i} prefetcher introspection:");
                    eprint!("{dump}");
                }
            }
        }
        panic!("simulator invariant violated at cycle {}: {violation}", self.cycle);
    }

    /// Completes ready L2 misses for core `i`: fills L2 (and L1 for
    /// demand-visible data), trains the prefetcher on evictions, wakes ROB
    /// waiters.
    fn drain_core_fills(&mut self, i: usize, cycle: u64) {
        let telem = self.telemetry_active();
        let ready = self.cores[i].l2_mshr.drain_ready(cycle);
        for (block, entry) in ready {
            let core = &mut self.cores[i];
            let kind = if entry.origin == MissOrigin::Prefetch && !entry.demand_merged {
                FillKind::Prefetch
            } else {
                FillKind::Demand
            };
            if telem && kind == FillKind::Prefetch {
                self.events.record(TraceEvent {
                    cycle,
                    core: i as u32,
                    kind: EventKind::Fill,
                    block,
                    payload: 0,
                });
            }
            if let Some(ev) = core.l2.fill(block, kind, entry.write) {
                if telem && ev.was_prefetch && !ev.was_used {
                    self.events.record(TraceEvent {
                        cycle,
                        core: i as u32,
                        kind: EventKind::EvictionTraining,
                        block: ev.block,
                        payload: 0,
                    });
                }
                core.prefetcher.on_eviction(&EvictionInfo {
                    addr: ev.block << addr::BLOCK_BITS,
                    was_prefetch: ev.was_prefetch,
                    was_used: ev.was_used,
                });
                if ev.dirty {
                    if let Some(ev2) = self.llc.fill(ev.block, FillKind::Demand, true) {
                        if ev2.dirty {
                            self.dram.schedule_write(ev2.block, cycle);
                        }
                        self.note_llc_eviction(&ev2);
                    }
                }
            }
            let core = &mut self.cores[i];
            if kind == FillKind::Demand {
                if let Some(ev1) = core.l1d.fill(block, FillKind::Demand, entry.write) {
                    if ev1.dirty {
                        if let Some(ev) = core.l2.fill(ev1.block, FillKind::Demand, true) {
                            core.prefetcher.on_eviction(&EvictionInfo {
                                addr: ev.block << addr::BLOCK_BITS,
                                was_prefetch: ev.was_prefetch,
                                was_used: ev.was_used,
                            });
                            if ev.dirty {
                                if let Some(ev2) =
                                    self.llc.fill(ev.block, FillKind::Demand, true)
                                {
                                    if ev2.dirty {
                                        self.dram.schedule_write(ev2.block, cycle);
                                    }
                                    self.note_llc_eviction(&ev2);
                                }
                            }
                        }
                    }
                }
            }
            let core = &mut self.cores[i];
            if entry.origin == MissOrigin::Prefetch {
                core.prefetcher.on_prefetch_fill(block << addr::BLOCK_BITS, FillLevel::L2);
            }
            if entry.counted_demand {
                core.demand_outstanding = core.demand_outstanding.saturating_sub(1);
            }
            for (seq, since) in entry.waiters {
                core.rob.complete(seq, cycle);
                core.load_miss_waits += 1;
                core.load_miss_wait_cycles += cycle - since;
            }
        }
    }

    /// Retires completed work, then dispatches new instructions.
    fn retire_and_dispatch(&mut self, i: usize, cycle: u64, warmup: u64, measure: u64) {
        let retire_width = self.cfg.core.retire_width;
        let fetch_width = self.cfg.core.fetch_width;
        // With the `telemetry` feature off this folds to 0 and the snapshot
        // blocks below are dead code.
        let telemetry_interval =
            if self.telemetry_active() { self.telemetry.interval } else { 0 };
        let llc_demand_misses =
            if telemetry_interval != 0 { self.llc.stats.demand_misses() } else { 0 };

        let retired_now = self.cores[i].rob.retire(cycle, retire_width);
        {
            let core = &mut self.cores[i];
            core.retired += u64::from(retired_now);
            if core.measure_start.is_none() && core.retired >= warmup {
                core.measure_start = Some((cycle, core.retired));
                core.last_sample = (core.retired, cycle);
            }
            if let Some((start_cycle, start_retired)) = core.measure_start {
                if core.measure_end_cycle.is_none()
                    && core.retired >= core.last_sample.0 + IPC_SAMPLE_WINDOW
                {
                    let instr = core.retired - core.last_sample.0;
                    let cyc = cycle.saturating_sub(core.last_sample.1).max(1);
                    core.ipc_samples.push(instr as f64 / cyc as f64);
                    core.last_sample = (core.retired, cycle);
                }
                if telemetry_interval != 0 && core.measure_end_cycle.is_none() {
                    // Retirement is multi-wide, so a single retire call can
                    // cross a boundary by a few instructions (or, for
                    // pathological tiny intervals, several boundaries): one
                    // snapshot is taken at the highest boundary crossed.
                    let crossed = (core.retired - start_retired) / telemetry_interval;
                    if crossed > core.interval_seq {
                        core.intervals.push(IntervalSnapshot {
                            core: i as u32,
                            seq: crossed - 1,
                            instructions: core.retired - start_retired,
                            cycles: cycle - start_cycle,
                            l2: core.l2.stats,
                            llc_demand_misses,
                            prefetch: core.pf_stats,
                            filter: core.prefetcher.filter_counters(),
                        });
                        core.interval_seq = crossed;
                    }
                }
                if core.measure_end_cycle.is_none()
                    && core.retired >= start_retired + measure
                {
                    core.measure_end_cycle = Some(cycle);
                    core.snapshot = Some(CoreReport {
                        workload: core.workload.clone(),
                        instructions: core.retired - start_retired,
                        cycles: cycle - start_cycle,
                        l1d: core.l1d.stats,
                        l2: core.l2.stats,
                        prefetch: core.pf_stats,
                        load_miss_waits: core.load_miss_waits,
                        load_miss_wait_cycles: core.load_miss_wait_cycles,
                        ipc_samples: std::mem::take(&mut core.ipc_samples),
                    });
                    if telemetry_interval != 0 {
                        // Region-boundary snapshot, taken from the same
                        // values as the CoreReport above so the final
                        // interval's cumulative stats equal the end-of-run
                        // report exactly.
                        core.intervals.push(IntervalSnapshot {
                            core: i as u32,
                            seq: core.interval_seq,
                            instructions: core.retired - start_retired,
                            cycles: cycle - start_cycle,
                            l2: core.l2.stats,
                            llc_demand_misses,
                            prefetch: core.pf_stats,
                            filter: core.prefetcher.filter_counters(),
                        });
                        core.interval_seq += 1;
                    }
                }
            }
        }

        for _ in 0..fetch_width {
            if !self.cores[i].rob.has_space() {
                break;
            }
            // Compute instructions between memory records.
            if self.cores[i].work_left > 0 {
                self.cores[i].work_left -= 1;
                self.cores[i].rob.push(cycle + 1);
                continue;
            }
            // Get the next memory record.
            if self.cores[i].pending_rec.is_none() {
                let rec = self.cores[i].trace.next_record();
                self.cores[i].work_left = rec.work;
                self.cores[i].pending_rec = Some(rec);
                if rec.work > 0 {
                    // Dispatch compute first; memory record stays pending.
                    self.cores[i].work_left -= 1;
                    self.cores[i].rob.push(cycle + 1);
                    continue;
                }
            }
            let rec = self.cores[i].pending_rec.expect("pending record");
            if self.cores[i].work_left > 0 {
                // Still draining this record's compute prefix.
                self.cores[i].work_left -= 1;
                self.cores[i].rob.push(cycle + 1);
                continue;
            }
            // Dependent loads wait for their producer.
            if rec.dependent {
                if let Some(dep) = self.cores[i].last_dep_seq {
                    match self.cores[i].rob.completion_of(dep) {
                        Some(c) if c <= cycle => {}
                        None => {}          // already retired
                        _ => break,         // producer outstanding: stall
                    }
                }
            }
            match self.start_demand(i, &rec, cycle) {
                Demand::Done(t) => {
                    let core = &mut self.cores[i];
                    let seq = core.rob.push(t);
                    if rec.dependent {
                        core.last_dep_seq = Some(seq);
                    }
                    core.pending_rec = None;
                }
                Demand::Pending(block) => {
                    let core = &mut self.cores[i];
                    let seq = core.rob.push(PENDING);
                    core.l2_mshr.add_waiter(block, seq, cycle);
                    if rec.dependent {
                        core.last_dep_seq = Some(seq);
                    }
                    core.pending_rec = None;
                }
                Demand::Stall => break,
            }
        }
    }

    /// Attempts to start the demand access of `rec` for core `i`.
    ///
    /// Uses a check-then-commit discipline so a [`Demand::Stall`] leaves no
    /// counter or state disturbed (the dispatch retries next cycle).
    fn start_demand(&mut self, i: usize, rec: &TraceRecord, cycle: u64) -> Demand {
        let telem = self.telemetry_active();
        let cfg = &self.cfg;
        let block = addr::block_number(rec.addr);
        let is_store = rec.kind == AccessKind::Store;
        let core = &mut self.cores[i];

        // L1 hit: fast path (one set scan checks and commits the access).
        if core.l1d.demand_hit(block, is_store).is_some() {
            return Demand::Done(cycle + cfg.l1d.latency);
        }

        // Check-and-commit the L2 in one scan too. A hit commits here, which
        // is safe under the Stall discipline: the hit path below can never
        // stall. A miss touches nothing until the resource checks pass.
        let l2_out = core.l2.demand_hit(block, is_store);
        let l2_latency = cfg.l1d.latency + cfg.l2.latency;

        if l2_out.is_none() {
            // Check resources before committing any counter updates.
            // Only loads occupy the L1 miss window; store misses drain
            // through the store buffer (they are bounded by L2 MSHRs only).
            let needs_demand_slot = !is_store
                && match core.l2_mshr.get(block) {
                    None => true,
                    Some(e) => e.origin == MissOrigin::Prefetch && !e.demand_merged,
                };
            if needs_demand_slot && core.demand_outstanding >= cfg.l1d.mshrs {
                return Demand::Stall;
            }
            if core.l2_mshr.get(block).is_none() {
                if core.l2_mshr.is_full() {
                    return Demand::Stall;
                }
                let llc_hit = self.llc.probe(block);
                let merged_llc = self.llc_mshr.get(block).is_some();
                if !llc_hit && !merged_llc && self.llc_mshr.is_full() {
                    return Demand::Stall;
                }
            }
        }

        // Commit: account the L1 miss and, on an L2 miss, the L2 access (the
        // hit already committed above), then trigger the prefetcher (every
        // L2 demand access, hit or miss — paper Fig. 4).
        let core = &mut self.cores[i];
        core.l1d.demand_access(block, is_store);
        let out = l2_out.unwrap_or_else(|| core.l2.demand_access(block, is_store));
        if telem && !out.hit {
            self.events.record(TraceEvent {
                cycle,
                core: i as u32,
                kind: EventKind::DemandMiss,
                block,
                payload: 0,
            });
        }
        if out.first_use_of_prefetch {
            core.pf_stats.useful += 1;
            core.prefetcher.on_useful_prefetch(block << addr::BLOCK_BITS);
        }
        let ctx = AccessContext {
            pc: rec.pc,
            addr: rec.addr,
            is_store,
            l2_hit: out.hit,
            cycle,
            core: i,
        };
        let counters_before = if telem {
            core.prefetcher.filter_counters()
        } else {
            FilterCounters::default()
        };
        let mut scratch = std::mem::take(&mut core.scratch);
        scratch.clear();
        core.prefetcher.on_demand_access(&ctx, &mut scratch);
        if telem {
            let d = core.prefetcher.filter_counters().delta(&counters_before);
            if d.inferences > 0 {
                self.events.record(TraceEvent {
                    cycle,
                    core: i as u32,
                    kind: EventKind::PpfVerdict,
                    block,
                    payload: ((d.accepted_l2 + d.accepted_llc) << 32)
                        | (d.rejected & 0xffff_ffff),
                });
            }
        }
        core.pf_stats.emitted += scratch.len() as u64;
        for req in scratch.drain(..) {
            // Dedup at enqueue: resident or in-flight targets never reach
            // the queue, so bursts of lookahead re-suggestions cannot crowd
            // out fresh (deep) candidates.
            let req_block = req.block();
            let redundant = match req.fill {
                FillLevel::L2 => {
                    core.l2.probe(req_block)
                        || core.l2_mshr.get(req_block).is_some()
                        || core.pq_set.contains(&req)
                }
                FillLevel::Llc => {
                    self.llc.probe(req_block)
                        || self.llc_mshr.get(req_block).is_some()
                        || core.pq_set.contains(&req)
                }
            };
            if redundant {
                core.pf_stats.dropped_redundant += 1;
            } else if core.pq.len() < cfg.prefetch.queue_size {
                core.pq.push_back(req);
                core.pq_set.insert(req);
            } else {
                core.pf_stats.dropped_queue += 1;
            }
        }
        core.scratch = scratch;

        if out.hit {
            let done = cycle + l2_latency;
            // Bring the line into L1 (write-allocate).
            if let Some(ev1) = core.l1d.fill(block, FillKind::Demand, is_store) {
                if ev1.dirty {
                    self.writeback_l1_victim(i, ev1.block, cycle);
                }
            }
            return Demand::Done(done);
        }

        // L2 miss: merge or allocate.
        let core = &mut self.cores[i];
        if let Some(entry) = core.l2_mshr.get(block) {
            let was_unclaimed_prefetch =
                entry.origin == MissOrigin::Prefetch && !entry.demand_merged;
            core.l2_mshr.allocate(block, 0, MissOrigin::Demand, is_store, i);
            if was_unclaimed_prefetch {
                if !is_store {
                    core.demand_outstanding += 1;
                    if let Some(e) = core.l2_mshr.get_mut(block) {
                        e.counted_demand = true;
                    }
                }
                core.pf_stats.late += 1;
                let remaining = core
                    .l2_mshr
                    .get(block)
                    .map_or(0, |e| e.ready_at.saturating_sub(cycle));
                core.pf_stats.late_wait_cycles += remaining;
                core.prefetcher.on_useful_prefetch(block << addr::BLOCK_BITS);
            }
            return if is_store {
                Demand::Done(cycle + 1) // store completes; fill proceeds
            } else {
                Demand::Pending(block)
            };
        }

        // New L2 miss: consult LLC.
        let llc_out = self.llc.demand_access(block, is_store);
        let ready = if llc_out.hit {
            if llc_out.first_use_of_prefetch {
                // LLC-level prefetch proved useful; credit this core.
                let core = &mut self.cores[i];
                core.pf_stats.useful += 1;
                core.prefetcher.on_useful_prefetch(block << addr::BLOCK_BITS);
            }
            cycle + l2_latency + self.cfg.llc.latency
        } else {
            match self.llc_mshr.get(block) {
                Some(entry) => {
                    let was_unclaimed =
                        entry.origin == MissOrigin::Prefetch && !entry.demand_merged;
                    let owner = entry.owner;
                    let MshrAlloc::Merged(t) =
                        self.llc_mshr.allocate(block, 0, MissOrigin::Demand, is_store, i)
                    else {
                        unreachable!("entry exists")
                    };
                    if was_unclaimed {
                        // Credit the prefetch's owner (possibly another core).
                        self.credits.push((owner, block << addr::BLOCK_BITS));
                    }
                    t
                }
                None => {
                    let at = cycle + l2_latency + self.cfg.llc.latency;
                    let done = self.dram.schedule_read(block, at);
                    let alloc =
                        self.llc_mshr.allocate(block, done, MissOrigin::Demand, is_store, i);
                    debug_assert_eq!(alloc, MshrAlloc::Allocated);
                    done
                }
            }
        };
        let core = &mut self.cores[i];
        let alloc = core.l2_mshr.allocate(block, ready, MissOrigin::Demand, is_store, i);
        debug_assert_eq!(alloc, MshrAlloc::Allocated);
        if !is_store {
            core.demand_outstanding += 1;
            if let Some(e) = core.l2_mshr.get_mut(block) {
                e.counted_demand = true;
            }
        }
        if is_store {
            Demand::Done(cycle + 1)
        } else {
            Demand::Pending(block)
        }
    }

    /// Handles a dirty L1 victim: write it into the L2 (refresh or insert),
    /// cascading evictions down the hierarchy.
    fn writeback_l1_victim(&mut self, i: usize, victim_block: u64, cycle: u64) {
        let core = &mut self.cores[i];
        if let Some(ev) = core.l2.fill(victim_block, FillKind::Demand, true) {
            core.prefetcher.on_eviction(&EvictionInfo {
                addr: ev.block << addr::BLOCK_BITS,
                was_prefetch: ev.was_prefetch,
                was_used: ev.was_used,
            });
            if ev.dirty {
                if let Some(ev2) = self.llc.fill(ev.block, FillKind::Demand, true) {
                    if ev2.dirty {
                        self.dram.schedule_write(ev2.block, cycle);
                    }
                    self.note_llc_eviction(&ev2);
                }
            }
        }
    }

    /// Queues an LLC-eviction notification if the victim was an unused
    /// prefetch (delivered to every core's prefetcher next cycle).
    fn note_llc_eviction(&mut self, ev: &crate::cache::Evicted) {
        if ev.was_prefetch && !ev.was_used {
            self.llc_evictions.push(EvictionInfo {
                addr: ev.block << addr::BLOCK_BITS,
                was_prefetch: true,
                was_used: false,
            });
        }
    }

    /// Issues up to the configured number of prefetches from core `i`'s
    /// queue.
    fn issue_prefetches(&mut self, i: usize, cycle: u64) {
        let telem = self.telemetry_active();
        let mut budget = self.cfg.prefetch.issue_per_cycle;
        while budget > 0 {
            let Some(&req) = self.cores[i].pq.front() else { break };
            let block = req.block();
            match req.fill {
                FillLevel::L2 => {
                    let core = &mut self.cores[i];
                    if core.l2.probe(block) || core.l2_mshr.get(block).is_some() {
                        core.pf_stats.dropped_redundant += 1;
                        core.pq.pop_front();
                        core.pq_set.remove(&req);
                        continue;
                    }
                    // Prefetches may not occupy the demand headroom: keep as
                    // many L2 MSHRs free as demands can have outstanding.
                    if core.l2_mshr.len() + self.cfg.l1d.mshrs >= self.cfg.l2.mshrs {
                        // Hold the request; MSHRs free up in later cycles.
                        break;
                    }
                    let base = cycle + self.cfg.l2.latency;
                    let ready = if self.llc.touch(block) {
                        base + self.cfg.llc.latency
                    } else if let Some(e) = self.llc_mshr.get(block) {
                        e.ready_at
                    } else if self.llc_mshr.len() + self.cfg.l1d.mshrs * self.cfg.cores
                        >= self.cfg.llc.mshrs
                    {
                        break;
                    } else {
                        let done = self
                            .dram
                            .schedule_prefetch_read(block, base + self.cfg.llc.latency);
                        self.llc_mshr.allocate(block, done, MissOrigin::Prefetch, false, i);
                        done
                    };
                    let core = &mut self.cores[i];
                    core.l2_mshr.allocate(block, ready, MissOrigin::Prefetch, false, i);
                    core.pf_stats.issued += 1;
                    if telem {
                        self.events.record(TraceEvent {
                            cycle,
                            core: i as u32,
                            kind: EventKind::PrefetchIssue,
                            block,
                            payload: 0,
                        });
                    }
                    core.pq.pop_front();
                    core.pq_set.remove(&req);
                    budget -= 1;
                }
                FillLevel::Llc => {
                    if self.llc.probe(block) || self.llc_mshr.get(block).is_some() {
                        let core = &mut self.cores[i];
                        core.pf_stats.dropped_redundant += 1;
                        core.pq.pop_front();
                        core.pq_set.remove(&req);
                        continue;
                    }
                    if self.llc_mshr.len() + self.cfg.l1d.mshrs * self.cfg.cores
                        >= self.cfg.llc.mshrs
                    {
                        break;
                    }
                    let at = cycle + self.cfg.l2.latency + self.cfg.llc.latency;
                    let done = self.dram.schedule_prefetch_read(block, at);
                    self.llc_mshr.allocate(block, done, MissOrigin::Prefetch, false, i);
                    self.cores[i].pf_stats.issued += 1;
                    if telem {
                        self.events.record(TraceEvent {
                            cycle,
                            core: i as u32,
                            kind: EventKind::PrefetchIssue,
                            block,
                            payload: 1,
                        });
                    }
                    self.cores[i].pq.pop_front();
                    self.cores[i].pq_set.remove(&req);
                    budget -= 1;
                }
            }
        }
    }
}

/// Convenience: runs a single-core simulation of `workload` + `prefetcher`.
///
/// `warmup` and `measure` are instruction counts.
pub fn run_single_core(
    cfg: SystemConfig,
    workload_name: &str,
    trace: Box<dyn AccessPattern>,
    prefetcher: Box<dyn Prefetcher>,
    warmup: u64,
    measure: u64,
) -> SimReport {
    assert_eq!(cfg.cores, 1, "run_single_core needs a 1-core config");
    let mut sim = Simulation::new(cfg);
    sim.add_core(workload_name, trace, prefetcher);
    sim.run(warmup, measure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetcher::NoPrefetcher;
    use ppf_trace::{SequentialStream, TraceBuilder, Workload};

    fn small_cfg() -> SystemConfig {
        SystemConfig::single_core()
    }

    #[test]
    fn sequential_stream_runs_and_reports() {
        let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 14, 0x400000, 2));
        let report = run_single_core(
            small_cfg(),
            "seq",
            trace,
            Box::new(NoPrefetcher),
            10_000,
            50_000,
        );
        assert_eq!(report.cores.len(), 1);
        let c = &report.cores[0];
        assert!(c.instructions >= 50_000);
        assert!(c.ipc() > 0.0 && c.ipc() <= 4.0, "ipc {}", c.ipc());
        // A 1 MB footprint stream misses in L1/L2 constantly.
        assert!(c.l2.demand_misses() > 0);
    }

    #[test]
    fn compute_bound_core_hits_retire_width() {
        // All work, minimal memory: tiny footprint, huge work per record.
        let trace = Box::new(SequentialStream::new(0x100_0000, 4, 0x400000, 60));
        let report =
            run_single_core(small_cfg(), "comp", trace, Box::new(NoPrefetcher), 5_000, 50_000);
        let ipc = report.ipc();
        assert!(ipc > 3.0, "compute-bound IPC should approach 4, got {ipc}");
    }

    #[test]
    fn memory_bound_core_is_slow() {
        // Dependent pointer chase over 32 MB: every load is a serialized DRAM miss.
        let w = Workload::by_name("605.mcf_s").unwrap();
        let trace = Box::new(TraceBuilder::new(w).seed(1).build());
        let report =
            run_single_core(small_cfg(), "mcf", trace, Box::new(NoPrefetcher), 5_000, 30_000);
        assert!(report.ipc() < 0.5, "latency-bound IPC should be low, got {}", report.ipc());
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let w = Workload::by_name("602.gcc_s").unwrap();
            let trace = Box::new(TraceBuilder::new(w).seed(3).shrink(3).build());
            run_single_core(small_cfg(), "gcc", trace, Box::new(NoPrefetcher), 5_000, 20_000)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.cores[0].cycles, b.cores[0].cycles);
        assert_eq!(a.llc.demand_accesses, b.llc.demand_accesses);
        assert_eq!(a.dram.reads, b.dram.reads);
    }

    /// A stream prefetcher running 40 blocks ahead — far enough to beat the
    /// demand window (L1 MSHR bound) — used to validate the prefetch path.
    struct StreamAhead;
    impl Prefetcher for StreamAhead {
        fn on_demand_access(&mut self, ctx: &AccessContext, out: &mut Vec<PrefetchRequest>) {
            for d in 40..48 {
                out.push(PrefetchRequest::new(ctx.addr + d * addr::BLOCK_SIZE, FillLevel::L2));
            }
        }
        fn name(&self) -> &'static str {
            "stream-ahead-test"
        }
    }

    #[test]
    fn next_line_prefetcher_improves_sequential() {
        // 1 MB footprint: fits the LLC, misses the 512 KB L2 — the prefetch
        // moves lines LLC->L2 ahead of use without DRAM bandwidth cost.
        let mk = |pf: Box<dyn Prefetcher>| {
            let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 14, 0x400000, 2));
            run_single_core(small_cfg(), "seq", trace, pf, 10_000, 80_000)
        };
        let base = mk(Box::new(NoPrefetcher));
        let pf = mk(Box::new(StreamAhead));
        assert!(
            pf.ipc() > base.ipc() * 1.1,
            "stream prefetching should speed up a stream: {} vs {}",
            pf.ipc(),
            base.ipc()
        );
        assert!(pf.cores[0].prefetch.issued > 0);
        assert!(pf.cores[0].prefetch.useful > 0, "40-ahead stream must be timely");
        // Coverage: fewer L2 demand misses than baseline.
        assert!(pf.cores[0].l2.demand_misses() < base.cores[0].l2.demand_misses());
    }

    #[test]
    fn prefetch_stats_consistent() {
        let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 15, 0x400000, 2));
        let r = run_single_core(small_cfg(), "seq", trace, Box::new(StreamAhead), 5_000, 40_000);
        let p = &r.cores[0].prefetch;
        assert!(p.emitted >= p.issued);
        // `useful_total` may slightly exceed `issued` because prefetches
        // issued during warmup (whose issue count was reset) turn useful
        // afterwards.
        assert!(
            p.useful_total() <= p.issued + p.issued / 4 + 200,
            "useful_total {} wildly exceeds issued {}",
            p.useful_total(),
            p.issued
        );
        // Timely and late are disjoint: each is at most the total.
        assert!(p.useful <= p.useful_total() && p.late <= p.useful_total());
    }

    /// A stream prefetcher running only 2 blocks ahead — the demand stream
    /// catches its fills while still in flight, so its useful prefetches are
    /// overwhelmingly late merges.
    struct StreamNear;
    impl Prefetcher for StreamNear {
        fn on_demand_access(&mut self, ctx: &AccessContext, out: &mut Vec<PrefetchRequest>) {
            out.push(PrefetchRequest::new(ctx.addr + 2 * addr::BLOCK_SIZE, FillLevel::L2));
        }
        fn name(&self) -> &'static str {
            "stream-near-test"
        }
    }

    #[test]
    fn late_merges_count_once_not_twice() {
        let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 15, 0x400000, 2));
        let r = run_single_core(small_cfg(), "seq", trace, Box::new(StreamNear), 5_000, 40_000);
        let p = &r.cores[0].prefetch;
        assert!(p.late > 0, "2-ahead stream must produce late merges");
        // A late merge lands in `late` only; `useful` holds timely fills,
        // which a 2-block lookahead against memory latency rarely manages.
        // Before the fix the merge sites bumped both counters, so `useful`
        // was always >= `late` here.
        assert!(
            p.useful < p.late,
            "timely useful {} should be rare next to late {}",
            p.useful,
            p.late
        );
        assert_eq!(p.useful_total(), p.useful + p.late);
    }

    #[test]
    fn multicore_shares_llc_and_dram() {
        let mut sim = Simulation::new(SystemConfig::multi_core(2));
        for seed in 0..2 {
            let w = Workload::by_name("619.lbm_s").unwrap();
            let trace = Box::new(TraceBuilder::new(w).seed(seed).build());
            sim.add_core(format!("lbm{seed}"), trace, Box::new(NoPrefetcher));
        }
        let r = sim.run(5_000, 30_000);
        assert_eq!(r.cores.len(), 2);
        assert!(r.cores.iter().all(|c| c.instructions >= 30_000));
        assert!(r.dram.reads > 0);
    }

    #[test]
    fn bandwidth_contention_slows_cores() {
        // One lbm core alone vs. four sharing the channel.
        let solo = {
            let w = Workload::by_name("619.lbm_s").unwrap();
            let trace = Box::new(TraceBuilder::new(w).seed(0).build());
            run_single_core(small_cfg(), "lbm", trace, Box::new(NoPrefetcher), 5_000, 30_000)
                .ipc()
        };
        let mut sim = Simulation::new(SystemConfig::multi_core(4));
        for seed in 0..4 {
            let w = Workload::by_name("619.lbm_s").unwrap();
            let trace = Box::new(TraceBuilder::new(w).seed(seed).build());
            sim.add_core(format!("lbm{seed}"), trace, Box::new(NoPrefetcher));
        }
        let shared = sim.run(5_000, 30_000);
        let worst = shared.cores.iter().map(|c| c.ipc()).fold(f64::INFINITY, f64::min);
        assert!(
            worst < solo,
            "sharing one DRAM channel must hurt a bandwidth-bound core: {worst} vs {solo}"
        );
    }

    /// A prefetcher that targets the LLC only.
    struct LlcOnly;
    impl Prefetcher for LlcOnly {
        fn on_demand_access(&mut self, ctx: &AccessContext, out: &mut Vec<PrefetchRequest>) {
            for d in 40..44 {
                out.push(PrefetchRequest::new(
                    ctx.addr + d * addr::BLOCK_SIZE,
                    FillLevel::Llc,
                ));
            }
        }
        fn name(&self) -> &'static str {
            "llc-only-test"
        }
    }

    #[test]
    fn llc_fill_prefetches_do_not_enter_l2() {
        let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 15, 0x400000, 8));
        let r = run_single_core(small_cfg(), "seq", trace, Box::new(LlcOnly), 10_000, 60_000);
        let c = &r.cores[0];
        assert!(c.prefetch.issued > 0, "LLC prefetches must issue");
        // The L2 never receives prefetch fills from an LLC-targeted stream.
        assert_eq!(c.l2.prefetch_fills, 0);
        // The LLC-side prefetches still deliver data (either as timely
        // prefetch fills or as late merges that demands wait on).
        assert!(c.prefetch.useful_total() > 0);
    }

    #[test]
    fn store_misses_outpace_load_misses() {
        // Stores complete at dispatch + 1 and are bounded by L2 MSHRs (32),
        // not the 8-deep L1 load-miss window — an all-store miss stream must
        // clearly outpace the equivalent all-load stream.
        // LLC-resident footprint: misses resolve from the LLC, so DRAM
        // bandwidth cannot mask the load-window difference.
        let mk = |stores: bool| {
            let mut t = SequentialStream::new(0x100_0000, 1 << 14, 0x400000, 2);
            if stores {
                t = t.with_stores_every(1);
            }
            run_single_core(small_cfg(), "s", Box::new(t), Box::new(NoPrefetcher), 200_000, 40_000)
        };
        let stores = mk(true);
        let loads = mk(false);
        assert!(
            stores.ipc() > loads.ipc() * 1.3,
            "store stream {} should outpace load stream {}",
            stores.ipc(),
            loads.ipc()
        );
    }

    #[test]
    fn warmup_resets_measurement_counters() {
        let mk = |warmup| {
            let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 14, 0x400000, 2));
            run_single_core(small_cfg(), "seq", trace, Box::new(NoPrefetcher), warmup, 30_000)
        };
        let cold = mk(1_000);
        let warm = mk(200_000);
        // After a long warmup the stream wraps inside the LLC, so the
        // measured region sees far fewer LLC misses than a cold run.
        assert!(
            warm.llc.demand_misses() < cold.llc.demand_misses() / 2,
            "warmup did not carry cache state: {} vs {}",
            warm.llc.demand_misses(),
            cold.llc.demand_misses()
        );
    }

    #[test]
    fn demand_outstanding_bounded_by_l1_mshrs() {
        // A workload of independent misses cannot have more demand misses in
        // flight than L1 MSHRs; with 8 MSHRs and ~150-cycle misses the
        // *average* miss wait cannot drop below latency/8 per miss.
        let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 16, 0x400000, 0));
        let r = run_single_core(small_cfg(), "seq", trace, Box::new(NoPrefetcher), 5_000, 30_000);
        let c = &r.cores[0];
        assert!(c.load_miss_waits > 0);
        assert!(c.avg_load_miss_wait() > 20.0, "MLP cannot exceed the MSHR bound");
    }

    #[test]
    fn invariants_hold_after_prefetching_run() {
        let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 14, 0x400000, 2));
        let mut sim = Simulation::new(small_cfg());
        sim.add_core("seq", trace, Box::new(StreamAhead));
        sim.run(5_000, 30_000);
        sim.check_invariants().expect("a clean run ends with consistent structures");
    }

    #[test]
    fn invariants_catch_prefetch_queue_desync() {
        let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 14, 0x400000, 2));
        let mut sim = Simulation::new(small_cfg());
        sim.add_core("seq", trace, Box::new(NoPrefetcher));
        // Corrupt: queue an entry without mirroring it into the dedup set.
        sim.cores[0]
            .pq
            .push_back(PrefetchRequest::new(0x100_0000, FillLevel::L2));
        let err = sim.check_invariants().unwrap_err();
        assert!(err.contains("diverged"), "{err}");
    }

    #[test]
    #[should_panic(expected = "simulator invariant violated")]
    fn periodic_enforcement_panics_on_corruption() {
        let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 14, 0x400000, 2));
        let mut sim = Simulation::new(small_cfg());
        sim.add_core("seq", trace, Box::new(NoPrefetcher));
        sim.invariant_period = 1_000; // force checking regardless of env/profile
        // Corrupt: an orphaned dedup-set entry persists (unlike a queued
        // request, which issue_prefetches would pop before the first check).
        sim.cores[0]
            .pq_set
            .insert(PrefetchRequest::new(0x100_0000, FillLevel::L2));
        sim.run(5_000, 30_000);
    }

    #[test]
    #[should_panic(expected = "attach one core per configured core")]
    fn run_requires_all_cores() {
        let mut sim = Simulation::new(SystemConfig::multi_core(2));
        let trace = Box::new(SequentialStream::new(0, 16, 0, 0));
        sim.add_core("only-one", trace, Box::new(NoPrefetcher));
        sim.run(10, 10);
    }

    /// The run always snapshots at the measurement boundary, so the last
    /// snapshot is cumulative over the whole measured region and must agree
    /// with the end-of-run report field for field.
    #[cfg(feature = "telemetry")]
    #[test]
    fn final_interval_snapshot_matches_core_report() {
        let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 14, 0x400000, 2));
        let mut sim = Simulation::new(small_cfg());
        sim.add_core("seq", trace, Box::new(StreamAhead));
        sim.set_telemetry(TelemetryConfig { interval: 7_000 });
        let report = sim.run(5_000, 40_000);

        let ring = sim.interval_snapshots(0);
        // 40_000 / 7_000 interval boundaries plus the region boundary.
        assert!(ring.len() >= 2, "expected several snapshots, got {}", ring.len());
        let last = ring.last().expect("telemetry on, snapshots recorded");
        let core = &report.cores[0];
        assert_eq!(last.instructions, core.instructions);
        assert_eq!(last.cycles, core.cycles);
        assert_eq!(last.l2, core.l2);
        assert_eq!(last.prefetch, core.prefetch);
        // Sequence numbers count up from zero without gaps.
        for (i, s) in sim.all_interval_snapshots().iter().enumerate() {
            assert_eq!(s.seq, i as u64);
            assert_eq!(s.core, 0);
        }
    }

    #[test]
    fn telemetry_off_records_nothing() {
        let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 14, 0x400000, 2));
        let mut sim = Simulation::new(small_cfg());
        sim.add_core("seq", trace, Box::new(StreamAhead));
        // Explicitly disabled (not from_env) so the test cannot race with a
        // PPF_TELEMETRY set in the environment.
        sim.set_telemetry(TelemetryConfig::disabled());
        sim.run(5_000, 40_000);
        assert!(sim.all_interval_snapshots().is_empty());
        assert!(sim.event_trace().is_empty());
    }
}
