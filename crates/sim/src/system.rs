//! The simulated system: per-core pipeline + private caches, a shared LLC,
//! shared DRAM, and the prefetch path between them.
//!
//! The model is trace-driven and cycle-approximate. Each cycle, every core:
//!
//! 1. drains ready MSHR fills (waking dependent loads),
//! 2. retires completed instructions in order,
//! 3. dispatches new instructions from its trace (stalling on full MSHRs and
//!    on dependent loads whose producer is outstanding),
//! 4. issues queued prefetches.
//!
//! Demand misses are *latency-forwarded*: the full hierarchy latency and the
//! DRAM bank/bus schedule are computed when the request is accepted, and the
//! fill is delivered by the MSHR at that cycle. MSHR occupancy bounds the
//! memory-level parallelism, the DRAM bus bounds bandwidth — the two
//! first-order effects the PPF paper's results depend on.
//!
//! The run loop does not execute every cycle. Each tick computes the *event
//! horizon* — the earliest future cycle at which any state can change: the
//! min over every core's wake cycle (L2 MSHR completions, ROB head
//! completion, dispatch/issue eligibility), the LLC MSHR's `next_ready`, and
//! pending credit/eviction queues — and the loop jumps straight there,
//! bounded by the invariant checker's cadence. Skipped cycles are provably
//! no-ops, so results are bit-identical to naive per-cycle ticking (the
//! `PPF_NO_SKIP` escape hatch and the differential property tests pin this;
//! `DESIGN.md` §5d has the cycle-exactness argument).

use crate::addr;
use crate::cache::{Cache, FillKind};
use crate::config::SystemConfig;
use crate::dram::Dram;
use crate::fxhash::FxHashSet;
use crate::horizon::CycleStats;
use crate::mshr::{MissOrigin, MshrAlloc, MshrEntry, MshrFile};
use crate::prefetcher::{AccessContext, EvictionInfo, FillLevel, Prefetcher, PrefetchRequest};
use crate::prof::{ProfConfig, Profiler, Span};
use crate::rob::{Rob, PENDING};
use crate::stats::{CoreReport, PrefetchStats, SimReport, IPC_SAMPLE_WINDOW};
use crate::telemetry::{
    EventKind, EventRing, FilterCounters, IntervalRing, IntervalSnapshot, TelemetryConfig,
    TraceEvent, DEFAULT_RING_CAPACITY, EVENT_RING_CAPACITY,
};
use ppf_trace::{AccessKind, AccessPattern, TraceRecord};
use std::collections::VecDeque;

/// Outcome of attempting to start a demand access.
enum Demand {
    /// Completes at the given cycle (hit somewhere, or non-blocking store).
    Done(u64),
    /// Outstanding; the ROB entry must wait on this block's L2 MSHR.
    Pending(u64),
    /// Resources exhausted; retry next cycle.
    Stall,
}

/// Shifts every record of an inner pattern into a per-core address space,
/// modelling the distinct physical pages of multi-programmed workloads.
struct AddressSpace<P> {
    inner: P,
    offset: u64,
}

impl<P: AccessPattern> AccessPattern for AddressSpace<P> {
    fn next_record(&mut self) -> TraceRecord {
        let mut rec = self.inner.next_record();
        rec.addr += self.offset;
        rec
    }
}

struct CoreUnit {
    workload: String,
    trace: Box<dyn AccessPattern>,
    rob: Rob,
    l1d: Cache,
    l2: Cache,
    l2_mshr: MshrFile,
    prefetcher: Box<dyn Prefetcher>,
    pq: VecDeque<PrefetchRequest>,
    /// Mirror of `pq` for O(1) dedup-at-enqueue membership checks (queue
    /// entries are unique, so a set mirrors the queue exactly).
    pq_set: FxHashSet<PrefetchRequest>,
    pf_stats: PrefetchStats,
    /// Outstanding demand misses (bounded by the L1 MSHR count); prefetches
    /// do not count, so they can use the L2 MSHR headroom.
    demand_outstanding: usize,
    // Dispatch state.
    work_left: u8,
    pending_rec: Option<TraceRecord>,
    last_dep_seq: Option<u64>,
    // Accounting.
    retired: u64,
    load_miss_waits: u64,
    load_miss_wait_cycles: u64,
    ipc_samples: Vec<f64>,
    last_sample: (u64, u64), // (retired, cycle) at the last window boundary
    measure_start: Option<(u64, u64)>, // (cycle, retired)
    measure_end_cycle: Option<u64>,
    snapshot: Option<CoreReport>,
    // Scratch buffer reused across triggers.
    scratch: Vec<PrefetchRequest>,
    /// Earliest cycle at which this core's state can change again: min of
    /// its L2 MSHR `next_ready`, its ROB head completion, and the
    /// dispatch/issue wake cycles returned by the phase functions. A core
    /// whose wake cycle has not arrived is skipped entirely by
    /// [`Simulation::tick`] (unless a shared LLC fill landed, which can
    /// unblock any core). Always `> cycle` after the core runs a tick.
    next_wake: u64,
    // Telemetry (inert single-slot ring unless telemetry is enabled).
    intervals: IntervalRing,
    interval_seq: u64,
}

/// A configured, runnable system.
///
/// Build with [`Simulation::new`], attach one `(trace, prefetcher)` pair per
/// configured core with [`Simulation::add_core`], then call
/// [`Simulation::run`].
pub struct Simulation {
    cfg: SystemConfig,
    cores: Vec<CoreUnit>,
    llc: Cache,
    llc_mshr: MshrFile,
    dram: Dram,
    cycle: u64,
    /// Deferred "useful prefetch" credits: (owner core, block byte addr).
    credits: Vec<(usize, u64)>,
    /// Deferred LLC-eviction notifications (unused prefetched victims).
    llc_evictions: Vec<EvictionInfo>,
    /// Cycles between invariant checks; `0` disables them (see
    /// [`crate::invariants`]). Sampled once at construction.
    invariant_period: u64,
    /// Whether the run loop may jump dead cycles (see [`crate::horizon`]).
    /// Sampled once at construction from `PPF_NO_SKIP`; override with
    /// [`Simulation::set_cycle_skip`].
    skip_cycles: bool,
    /// Ticks actually executed (lifetime of this simulation).
    ticks_executed: u64,
    /// Cycles jumped over without executing a tick.
    skipped_cycles: u64,
    /// Scratch buffer for MSHR drains (LLC and per-core, reused serially).
    drain_scratch: Vec<(u64, MshrEntry)>,
    /// Telemetry settings (see [`crate::telemetry`]). Sampled once at
    /// construction from `PPF_TELEMETRY`; override with
    /// [`Simulation::set_telemetry`] before attaching cores.
    telemetry: TelemetryConfig,
    /// Bounded trace of recent events (inert single-slot ring unless
    /// telemetry is enabled).
    events: EventRing,
    /// Span profiler (see [`crate::prof`]). Sampled once at construction
    /// from `PPF_PROFILE`; override with [`Simulation::set_profiling`].
    prof: Profiler,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("cores", &self.cores.len())
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl Simulation {
    /// Creates an empty system for `cfg`.
    pub fn new(cfg: SystemConfig) -> Self {
        let llc = Cache::new(&cfg.llc);
        let llc_mshr = MshrFile::new(cfg.llc.mshrs);
        let dram = Dram::new(&cfg.dram);
        let mut sim = Self {
            cfg,
            cores: Vec::new(),
            llc,
            llc_mshr,
            dram,
            cycle: 0,
            credits: Vec::new(),
            llc_evictions: Vec::new(),
            invariant_period: crate::invariants::period(),
            skip_cycles: crate::horizon::skip_cycles_from_env(),
            ticks_executed: 0,
            skipped_cycles: 0,
            drain_scratch: Vec::new(),
            telemetry: TelemetryConfig::from_env(),
            events: EventRing::new(1),
            prof: Profiler::new(ProfConfig::from_env()),
        };
        sim.events = EventRing::new(sim.event_ring_capacity());
        sim
    }

    /// Ring capacity for the current telemetry setting: full-size when
    /// telemetry is live, a single inert slot otherwise (so disabled runs
    /// pay no memory either).
    fn event_ring_capacity(&self) -> usize {
        if self.telemetry_active() {
            EVENT_RING_CAPACITY
        } else {
            1
        }
    }

    /// True when telemetry hooks should record. With the `telemetry` feature
    /// off, `cfg!` folds this to `false` and every hook body is eliminated.
    #[inline(always)]
    fn telemetry_active(&self) -> bool {
        cfg!(feature = "telemetry") && self.telemetry.interval != 0
    }

    /// Overrides the `PPF_TELEMETRY`-derived settings (tests and harnesses
    /// that must not race on process-global environment). Resizes the
    /// snapshot/event rings, discarding anything already recorded, so call
    /// it before [`Simulation::run`]. Ignored (forced off) when the
    /// `telemetry` feature is not compiled in.
    pub fn set_telemetry(&mut self, cfg: TelemetryConfig) {
        self.telemetry =
            if cfg!(feature = "telemetry") { cfg } else { TelemetryConfig::disabled() };
        self.events = EventRing::new(self.event_ring_capacity());
        let cap = self.interval_ring_capacity();
        for core in &mut self.cores {
            core.intervals = IntervalRing::new(cap);
            core.interval_seq = 0;
        }
    }

    /// Snapshot-ring capacity matching the current telemetry setting.
    fn interval_ring_capacity(&self) -> usize {
        if self.telemetry_active() {
            DEFAULT_RING_CAPACITY
        } else {
            1
        }
    }

    /// The telemetry settings this simulation runs with.
    pub fn telemetry(&self) -> TelemetryConfig {
        self.telemetry
    }

    /// True when profiling hooks should record. With the `profiling` feature
    /// off, `cfg!` folds this to `false` and every hook body is eliminated.
    #[inline(always)]
    fn prof_active(&self) -> bool {
        cfg!(feature = "profiling") && self.prof.enabled()
    }

    /// Overrides the `PPF_PROFILE`-derived profiling settings (tests and
    /// harnesses that must not race on process-global environment). Resets
    /// anything already recorded, so call it before [`Simulation::run`].
    /// Ignored (forced off) when the `profiling` feature is not compiled in.
    pub fn set_profiling(&mut self, cfg: ProfConfig) {
        self.prof = Profiler::new(if cfg!(feature = "profiling") {
            cfg
        } else {
            ProfConfig::disabled()
        });
    }

    /// The span profiler (empty unless profiling was enabled during
    /// [`Simulation::run`]).
    pub fn profiler(&self) -> &Profiler {
        &self.prof
    }

    /// The accumulated profile as flat numeric JSONL (empty string when
    /// profiling was off or nothing ran).
    pub fn profile_jsonl(&self) -> String {
        self.prof.to_jsonl()
    }

    /// Overrides the `PPF_NO_SKIP`-derived cycle-skip setting (tests and
    /// differential harnesses that must not race on process-global
    /// environment). `false` forces the naive per-cycle loop; results are
    /// bit-identical either way, only wall-clock time differs.
    pub fn set_cycle_skip(&mut self, enabled: bool) {
        self.skip_cycles = enabled;
    }

    /// Whether the run loop may jump dead cycles.
    pub fn cycle_skip(&self) -> bool {
        self.skip_cycles
    }

    /// Cycle accounting over this simulation's lifetime: executed ticks,
    /// skipped cycles, and total cycles advanced.
    pub fn cycle_stats(&self) -> CycleStats {
        CycleStats {
            ticks: self.ticks_executed,
            skipped_cycles: self.skipped_cycles,
            total_cycles: self.cycle,
        }
    }

    /// The interval-snapshot ring of core `i` (empty unless telemetry was
    /// enabled during [`Simulation::run`]).
    pub fn interval_snapshots(&self, i: usize) -> &IntervalRing {
        &self.cores[i].intervals
    }

    /// All retained interval snapshots, ordered by `(core, seq)` — the
    /// layout the JSONL exporter writes.
    pub fn all_interval_snapshots(&self) -> Vec<IntervalSnapshot> {
        self.cores.iter().flat_map(|c| c.intervals.iter().copied()).collect()
    }

    /// The event-trace ring (empty unless telemetry was enabled).
    pub fn event_trace(&self) -> &EventRing {
        &self.events
    }

    /// Core `i`'s prefetcher introspection dump (empty for schemes that
    /// track nothing).
    pub fn prefetcher_dump(&self, i: usize) -> String {
        self.cores[i].prefetcher.telemetry_dump()
    }

    /// Attaches a core running `trace` with `prefetcher` on its L2.
    ///
    /// # Panics
    ///
    /// Panics if all configured cores are already attached.
    pub fn add_core(
        &mut self,
        workload: impl Into<String>,
        trace: Box<dyn AccessPattern>,
        prefetcher: Box<dyn Prefetcher>,
    ) {
        assert!(self.cores.len() < self.cfg.cores, "all configured cores already attached");
        // Each core gets its own 1 TB address-space slot so multi-programmed
        // workloads never alias (the paper's mixes are separate processes).
        let offset = (self.cores.len() as u64) << 40;
        let trace: Box<dyn AccessPattern> = Box::new(AddressSpace { inner: trace, offset });
        self.cores.push(CoreUnit {
            workload: workload.into(),
            trace,
            rob: Rob::new(self.cfg.core.rob_size),
            l1d: Cache::new(&self.cfg.l1d),
            l2: Cache::new(&self.cfg.l2),
            l2_mshr: MshrFile::new(self.cfg.l2.mshrs),
            prefetcher,
            pq: VecDeque::new(),
            pq_set: FxHashSet::default(),
            pf_stats: PrefetchStats::default(),
            demand_outstanding: 0,
            work_left: 0,
            pending_rec: None,
            last_dep_seq: None,
            retired: 0,
            load_miss_waits: 0,
            load_miss_wait_cycles: 0,
            ipc_samples: Vec::new(),
            last_sample: (0, 0),
            measure_start: None,
            measure_end_cycle: None,
            snapshot: None,
            scratch: Vec::new(),
            next_wake: 0,
            intervals: IntervalRing::new(self.interval_ring_capacity()),
            interval_seq: 0,
        });
    }

    /// Runs `warmup` instructions per core (structures warm, stats then
    /// reset) followed by `measure` instructions per core, and reports the
    /// measurement region. Cores that finish early keep executing until the
    /// last core completes, preserving contention (paper Sec 5.3).
    ///
    /// # Panics
    ///
    /// Panics if the number of attached cores differs from the configuration,
    /// if `measure == 0`, or if the simulation fails to make forward progress.
    pub fn run(&mut self, warmup: u64, measure: u64) -> SimReport {
        assert_eq!(self.cores.len(), self.cfg.cores, "attach one core per configured core");
        assert!(measure > 0, "measurement region must be non-empty");
        let mut stats_reset = false;
        // Generous forward-progress bound, counted in *executed ticks*
        // (horizon iterations), not raw cycles: no workload sustains a CPI
        // over 2000, and an event-horizon jump crosses any number of dead
        // cycles in a single iteration, so a legitimate long skip cannot
        // trip the limit. A machine that stops retiring keeps burning
        // iterations (every executed tick sits on an event or an invariant
        // boundary) and still hits the assert; the naive per-cycle loop
        // burns one iteration per cycle, matching the old raw-cycle bound.
        let iteration_limit = (warmup + measure) * 2000 + 1_000_000;
        let mut iterations: u64 = 0;
        let run_start = self.cycle_stats();
        // Root profiling span: stamped once (stride 1), so the exported
        // profile always covers the run's whole wall time regardless of the
        // sampling stride the fine-grained spans use.
        let prof_run =
            if self.prof_active() { Some((std::time::Instant::now(), self.cycle)) } else { None };

        while self.cores.iter().any(|c| c.measure_end_cycle.is_none()) {
            self.cycle += 1;
            let horizon = self.tick(warmup, measure);
            if !stats_reset && self.cores.iter().all(|c| c.retired >= warmup) {
                stats_reset = true;
                for c in &mut self.cores {
                    c.l1d.stats.reset();
                    c.l2.stats.reset();
                    c.pf_stats.reset();
                    c.load_miss_waits = 0;
                    c.load_miss_wait_cycles = 0;
                }
                self.llc.stats.reset();
                self.dram.stats.reset();
            }
            iterations += 1;
            assert!(iterations < iteration_limit, "simulation failed to make forward progress");
            if self.skip_cycles && self.cores.iter().any(|c| c.measure_end_cycle.is_none()) {
                // No fill in flight, no deferred queue pending, and every
                // unfinished core blocked with nothing to wait on: a genuine
                // deadlock the horizon makes immediately diagnosable (the
                // naive loop burns iterations until the limit above).
                assert!(
                    horizon != u64::MAX,
                    "simulation failed to make forward progress \
                     (no pending events, all cores stalled at cycle {})",
                    self.cycle
                );
                debug_assert!(horizon > self.cycle, "horizon must move forward");
                // Land exactly on the horizon (the loop head's increment
                // supplies the final +1), never jumping an invariant-check
                // boundary.
                let target = horizon
                    .min(crate::invariants::next_check(self.cycle, self.invariant_period))
                    .max(self.cycle + 1);
                self.skipped_cycles += target - 1 - self.cycle;
                self.cycle = target - 1;
            }
        }

        if let Some((t0, c0)) = prof_run {
            self.prof.record_ns(Span::RunLoop, t0.elapsed().as_nanos() as u64);
            self.prof.add_cycles(Span::RunLoop, self.cycle - c0);
        }

        let end = self.cycle_stats();
        crate::horizon::record_global(CycleStats {
            ticks: end.ticks - run_start.ticks,
            skipped_cycles: end.skipped_cycles - run_start.skipped_cycles,
            total_cycles: end.total_cycles - run_start.total_cycles,
        });

        let total_cycles = self
            .cores
            .iter()
            .map(|c| {
                let (start, _) = c.measure_start.expect("measured");
                c.measure_end_cycle.expect("finished") - start
            })
            .max()
            .unwrap_or(0);
        SimReport {
            cores: self.cores.iter().map(|c| c.snapshot.clone().expect("snapshot")).collect(),
            llc: self.llc.stats,
            dram: self.dram.stats,
            total_cycles,
        }
    }

    /// Runs one tick at the current cycle (the caller advances
    /// `self.cycle`) and returns the *event horizon*: the earliest future
    /// cycle at which any simulated state can change. Every cycle strictly
    /// between the current one and the horizon is provably a complete no-op
    /// — no MSHR fill completes, no core can retire, dispatch, or issue,
    /// and no deferred credit/eviction is pending — so the run loop may
    /// jump straight to the horizon without altering any observable result.
    fn tick(&mut self, warmup: u64, measure: u64) -> u64 {
        self.ticks_executed += 1;
        let cycle = self.cycle;
        let telem = self.telemetry_active();
        // Sampled tick anatomy: one tick in every `stride` gets stamped.
        // Consecutive laps share stamps, so the phase spans partition the
        // tick exactly; nested spans (inside `drain_core_fills` and
        // `start_demand`) keep their own stamps and are *included* in their
        // parent's lap — renderers subtract children for self time.
        let sampled = self.prof_active() && self.prof.begin_tick();
        let tick_t0 = if sampled { self.prof.stamp() } else { None };
        let mut ps = tick_t0;

        // Shared LLC fills. A drain frees LLC MSHR capacity and installs
        // lines that any core's dispatch or issue may be blocked on, so it
        // wakes every core this tick regardless of their private wake
        // estimates.
        let mut ready = std::mem::take(&mut self.drain_scratch);
        self.llc_mshr.drain_ready_into(cycle, &mut ready);
        let llc_event = !ready.is_empty();
        for (block, entry) in ready.drain(..) {
            let kind = if entry.origin == MissOrigin::Prefetch && !entry.demand_merged {
                FillKind::Prefetch
            } else {
                FillKind::Demand
            };
            if telem && kind == FillKind::Prefetch {
                self.events.record(TraceEvent {
                    cycle,
                    core: entry.owner as u32,
                    kind: EventKind::Fill,
                    block,
                    payload: 1,
                });
            }
            if let Some(ev) = self.llc.fill(block, kind, entry.write) {
                if ev.dirty {
                    self.dram.schedule_write(ev.block, cycle);
                }
                self.note_llc_eviction(&ev);
            }
            if entry.origin == MissOrigin::Prefetch {
                // L2-bound prefetches have a twin entry in the owner's L2
                // MSHR whose drain will deliver the fill notification; only
                // pure LLC-targeted prefetches notify from here (otherwise
                // every prefetch would be counted twice).
                let l2_bound = self.cores[entry.owner].l2_mshr.get(block).is_some();
                if !l2_bound {
                    self.cores[entry.owner]
                        .prefetcher
                        .on_prefetch_fill(block << addr::BLOCK_BITS, FillLevel::Llc);
                }
            }
        }
        self.drain_scratch = ready;
        self.prof.lap(Span::LlcMshrDrain, &mut ps);

        // Apply deferred useful-prefetch credits. These are late merges, so
        // they count in `late` only (`useful` holds timely prefetches; the
        // two are disjoint and summed by `useful_total`).
        let credits = std::mem::take(&mut self.credits);
        for (owner, byte_addr) in credits {
            let core = &mut self.cores[owner];
            core.pf_stats.late += 1;
            core.prefetcher.on_useful_prefetch(byte_addr);
        }

        // Deliver LLC evictions of unused prefetched lines to every
        // prefetcher (filters match against their own tables).
        let evs = std::mem::take(&mut self.llc_evictions);
        for ev in evs {
            if telem {
                // The LLC does not track which core prefetched the victim,
                // so the event is unattributed (core = u32::MAX).
                self.events.record(TraceEvent {
                    cycle,
                    core: u32::MAX,
                    kind: EventKind::EvictionTraining,
                    block: addr::block_number(ev.addr),
                    payload: 1,
                });
            }
            for core in &mut self.cores {
                core.prefetcher.on_llc_eviction(&ev);
            }
        }
        self.prof.lap(Span::DeferredDrain, &mut ps);

        // Per-core phases, gated on each core's wake cycle. A sleeping
        // core's tick is a complete no-op — its L2 MSHR has nothing ready,
        // its ROB head is not complete, and its dispatch/issue are blocked
        // on conditions only its own activity or an LLC drain can change —
        // so skipping it is exact, not an approximation. With skipping
        // disabled every core runs every tick (the naive loop).
        let run_all = !self.skip_cycles || llc_event;
        for i in 0..self.cores.len() {
            if !run_all && self.cores[i].next_wake > cycle {
                continue;
            }
            self.drain_core_fills(i, cycle);
            self.prof.lap(Span::CoreFillDrain, &mut ps);
            let dispatch_wake = self.retire_and_dispatch(i, cycle, warmup, measure);
            self.prof.lap(Span::RetireDispatch, &mut ps);
            let issue_wake = self.issue_prefetches(i, cycle);
            self.prof.lap(Span::IssuePrefetch, &mut ps);
            let core = &mut self.cores[i];
            // Retirement is bounded by the ROB head; a width-limited retire
            // burst is replayed cycle by cycle via the `cycle + 1` clamp.
            let retire_wake = match core.rob.head_completion() {
                Some(c) if c != PENDING => c.max(cycle + 1),
                // Empty, or head pending on memory: the L2 MSHR term below
                // covers the completing fill.
                _ => u64::MAX,
            };
            core.next_wake = core
                .l2_mshr
                .next_ready()
                .min(retire_wake)
                .min(dispatch_wake)
                .min(issue_wake);
            debug_assert!(core.next_wake > cycle, "a ticked core must wake in the future");
        }

        if self.invariant_period != 0 && cycle.is_multiple_of(self.invariant_period) {
            self.enforce_invariants();
        }
        self.prof.lap(Span::InvariantCheck, &mut ps);

        // The event horizon: min over every way the system can next change
        // state. DRAM contributes no term because it is fully passive —
        // completions are registered as MSHR `ready_at`s at schedule time
        // (see `Dram::bus_busy_until`). Telemetry contributes none because
        // snapshots and events trigger on retirement and on actions, never
        // on bare cycles; the invariant-check cadence is applied as a bound
        // by the run loop via `invariants::next_check`.
        let mut horizon = self.llc_mshr.next_ready();
        if !self.credits.is_empty() || !self.llc_evictions.is_empty() {
            // Deferred queues filled this tick are processed next tick.
            horizon = horizon.min(cycle + 1);
        }
        for core in &self.cores {
            horizon = horizon.min(core.next_wake);
        }
        self.prof.lap(Span::HorizonCompute, &mut ps);
        if tick_t0.is_some() {
            self.prof.lap_total(Span::Tick, tick_t0);
            self.prof.add_cycles(Span::Tick, 1);
            self.prof.end_tick();
        }
        horizon
    }

    /// Validates every simulated structure's invariants, returning a
    /// description of the first violation: the shared LLC and its MSHR file,
    /// and per core the L1D, L2, L2 MSHR file, and prefetch queue (bounded
    /// by the configured size, exactly mirrored by its dedup set).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.llc.check_invariants().map_err(|e| format!("llc: {e}"))?;
        self.llc_mshr.check_invariants().map_err(|e| format!("llc mshr: {e}"))?;
        for (i, core) in self.cores.iter().enumerate() {
            core.l1d.check_invariants().map_err(|e| format!("core {i} l1d: {e}"))?;
            core.l2.check_invariants().map_err(|e| format!("core {i} l2: {e}"))?;
            core.l2_mshr.check_invariants().map_err(|e| format!("core {i} l2 mshr: {e}"))?;
            if core.pq.len() > self.cfg.prefetch.queue_size {
                return Err(format!(
                    "core {i} prefetch queue holds {} entries, limit {}",
                    core.pq.len(),
                    self.cfg.prefetch.queue_size
                ));
            }
            if core.pq.len() != core.pq_set.len() {
                return Err(format!(
                    "core {i} prefetch queue ({}) and dedup set ({}) diverged",
                    core.pq.len(),
                    core.pq_set.len()
                ));
            }
            if let Some(req) = core.pq.iter().find(|r| !core.pq_set.contains(r)) {
                return Err(format!(
                    "core {i} queued prefetch of block {:#x} missing from dedup set",
                    req.block()
                ));
            }
        }
        Ok(())
    }

    /// Runs [`Simulation::check_invariants`] and, on a violation, dumps a
    /// diagnostic snapshot to stderr and panics. The panic is caught by the
    /// sweep harness's per-job isolation, so one corrupted simulation fails
    /// loudly without taking down the rest of a sweep.
    fn enforce_invariants(&self) {
        let Err(violation) = self.check_invariants() else { return };
        eprintln!("=== simulator invariant violation at cycle {} ===", self.cycle);
        eprintln!("  violation: {violation}");
        eprintln!(
            "  llc: occupancy {}/{} | llc mshr: {} in flight | dram reads {} writes {}",
            self.llc.occupancy(),
            self.llc.sets() * self.llc.ways(),
            self.llc_mshr.len(),
            self.dram.stats.reads,
            self.dram.stats.writes,
        );
        for (i, c) in self.cores.iter().enumerate() {
            eprintln!(
                "  core {i} ({}): retired {} | l2 mshr {} in flight | pq {} (set {}) \
                 | demand outstanding {}",
                c.workload,
                c.retired,
                c.l2_mshr.len(),
                c.pq.len(),
                c.pq_set.len(),
                c.demand_outstanding,
            );
        }
        if self.telemetry_active() {
            eprint!("{}", self.events.render());
            for (i, c) in self.cores.iter().enumerate() {
                let dump = c.prefetcher.telemetry_dump();
                if !dump.is_empty() {
                    eprintln!("  core {i} prefetcher introspection:");
                    eprint!("{dump}");
                }
            }
        }
        panic!("simulator invariant violated at cycle {}: {violation}", self.cycle);
    }

    /// Completes ready L2 misses for core `i`: fills L2 (and L1 for
    /// demand-visible data), trains the prefetcher on evictions, wakes ROB
    /// waiters.
    fn drain_core_fills(&mut self, i: usize, cycle: u64) {
        let telem = self.telemetry_active();
        let mut ready = std::mem::take(&mut self.drain_scratch);
        self.cores[i].l2_mshr.drain_ready_into(cycle, &mut ready);
        for (block, entry) in ready.drain(..) {
            let core = &mut self.cores[i];
            let kind = if entry.origin == MissOrigin::Prefetch && !entry.demand_merged {
                FillKind::Prefetch
            } else {
                FillKind::Demand
            };
            if telem && kind == FillKind::Prefetch {
                self.events.record(TraceEvent {
                    cycle,
                    core: i as u32,
                    kind: EventKind::Fill,
                    block,
                    payload: 0,
                });
            }
            if let Some(ev) = core.l2.fill(block, kind, entry.write) {
                if telem && ev.was_prefetch && !ev.was_used {
                    self.events.record(TraceEvent {
                        cycle,
                        core: i as u32,
                        kind: EventKind::EvictionTraining,
                        block: ev.block,
                        payload: 0,
                    });
                }
                let mut pf = self.prof.stamp();
                core.prefetcher.on_eviction(&EvictionInfo {
                    addr: ev.block << addr::BLOCK_BITS,
                    was_prefetch: ev.was_prefetch,
                    was_used: ev.was_used,
                });
                self.prof.lap(Span::PfFeedback, &mut pf);
                if ev.dirty {
                    if let Some(ev2) = self.llc.fill(ev.block, FillKind::Demand, true) {
                        if ev2.dirty {
                            self.dram.schedule_write(ev2.block, cycle);
                        }
                        self.note_llc_eviction(&ev2);
                    }
                }
            }
            let core = &mut self.cores[i];
            if kind == FillKind::Demand {
                if let Some(ev1) = core.l1d.fill(block, FillKind::Demand, entry.write) {
                    if ev1.dirty {
                        if let Some(ev) = core.l2.fill(ev1.block, FillKind::Demand, true) {
                            core.prefetcher.on_eviction(&EvictionInfo {
                                addr: ev.block << addr::BLOCK_BITS,
                                was_prefetch: ev.was_prefetch,
                                was_used: ev.was_used,
                            });
                            if ev.dirty {
                                if let Some(ev2) =
                                    self.llc.fill(ev.block, FillKind::Demand, true)
                                {
                                    if ev2.dirty {
                                        self.dram.schedule_write(ev2.block, cycle);
                                    }
                                    self.note_llc_eviction(&ev2);
                                }
                            }
                        }
                    }
                }
            }
            let core = &mut self.cores[i];
            if entry.origin == MissOrigin::Prefetch {
                let mut pf = self.prof.stamp();
                core.prefetcher.on_prefetch_fill(block << addr::BLOCK_BITS, FillLevel::L2);
                self.prof.lap(Span::PfFeedback, &mut pf);
            }
            if entry.counted_demand {
                core.demand_outstanding = core.demand_outstanding.saturating_sub(1);
            }
            for (seq, since) in entry.waiters {
                core.rob.complete(seq, cycle);
                core.load_miss_waits += 1;
                core.load_miss_wait_cycles += cycle - since;
            }
        }
        self.drain_scratch = ready;
    }

    /// Retires completed work, then dispatches new instructions.
    ///
    /// Returns the earliest cycle at which dispatch could make progress it
    /// cannot make now — `cycle + 1` when the full fetch width dispatched
    /// (more work is immediately available), the producer's completion
    /// cycle for a dependent load waiting on a known-finite completion, and
    /// `u64::MAX` for stalls that only an MSHR drain can clear (ROB full on
    /// a pending head, resources exhausted, producer pending): those are
    /// covered by the L2/LLC `next_ready` horizon terms.
    fn retire_and_dispatch(&mut self, i: usize, cycle: u64, warmup: u64, measure: u64) -> u64 {
        let retire_width = self.cfg.core.retire_width;
        let fetch_width = self.cfg.core.fetch_width;
        // With the `telemetry` feature off this folds to 0 and the snapshot
        // blocks below are dead code.
        let telemetry_interval =
            if self.telemetry_active() { self.telemetry.interval } else { 0 };
        let llc_demand_misses =
            if telemetry_interval != 0 { self.llc.stats.demand_misses() } else { 0 };

        let retired_now = self.cores[i].rob.retire(cycle, retire_width);
        {
            let core = &mut self.cores[i];
            core.retired += u64::from(retired_now);
            if core.measure_start.is_none() && core.retired >= warmup {
                core.measure_start = Some((cycle, core.retired));
                core.last_sample = (core.retired, cycle);
            }
            if let Some((start_cycle, start_retired)) = core.measure_start {
                if core.measure_end_cycle.is_none()
                    && core.retired >= core.last_sample.0 + IPC_SAMPLE_WINDOW
                {
                    let instr = core.retired - core.last_sample.0;
                    let cyc = cycle.saturating_sub(core.last_sample.1).max(1);
                    core.ipc_samples.push(instr as f64 / cyc as f64);
                    core.last_sample = (core.retired, cycle);
                }
                if telemetry_interval != 0 && core.measure_end_cycle.is_none() {
                    // Retirement is multi-wide, so a single retire call can
                    // cross a boundary by a few instructions (or, for
                    // pathological tiny intervals, several boundaries): one
                    // snapshot is taken at the highest boundary crossed.
                    let crossed = (core.retired - start_retired) / telemetry_interval;
                    if crossed > core.interval_seq {
                        core.intervals.push(IntervalSnapshot {
                            core: i as u32,
                            seq: crossed - 1,
                            instructions: core.retired - start_retired,
                            cycles: cycle - start_cycle,
                            l2: core.l2.stats,
                            llc_demand_misses,
                            prefetch: core.pf_stats,
                            filter: core.prefetcher.filter_counters(),
                        });
                        core.interval_seq = crossed;
                    }
                }
                if core.measure_end_cycle.is_none()
                    && core.retired >= start_retired + measure
                {
                    core.measure_end_cycle = Some(cycle);
                    core.snapshot = Some(CoreReport {
                        workload: core.workload.clone(),
                        instructions: core.retired - start_retired,
                        cycles: cycle - start_cycle,
                        l1d: core.l1d.stats,
                        l2: core.l2.stats,
                        prefetch: core.pf_stats,
                        load_miss_waits: core.load_miss_waits,
                        load_miss_wait_cycles: core.load_miss_wait_cycles,
                        ipc_samples: std::mem::take(&mut core.ipc_samples),
                    });
                    if telemetry_interval != 0 {
                        // Region-boundary snapshot, taken from the same
                        // values as the CoreReport above so the final
                        // interval's cumulative stats equal the end-of-run
                        // report exactly.
                        core.intervals.push(IntervalSnapshot {
                            core: i as u32,
                            seq: core.interval_seq,
                            instructions: core.retired - start_retired,
                            cycles: cycle - start_cycle,
                            l2: core.l2.stats,
                            llc_demand_misses,
                            prefetch: core.pf_stats,
                            filter: core.prefetcher.filter_counters(),
                        });
                        core.interval_seq += 1;
                    }
                }
            }
        }

        let mut dispatch_wake = cycle + 1;
        for _ in 0..fetch_width {
            if !self.cores[i].rob.has_space() {
                // Blocked on retirement: the retire-wake term (or, for a
                // pending head, the L2 MSHR drain) covers resumption.
                dispatch_wake = u64::MAX;
                break;
            }
            // Compute instructions between memory records.
            if self.cores[i].work_left > 0 {
                self.cores[i].work_left -= 1;
                self.cores[i].rob.push(cycle + 1);
                continue;
            }
            // Get the next memory record.
            if self.cores[i].pending_rec.is_none() {
                let rec = self.cores[i].trace.next_record();
                self.cores[i].work_left = rec.work;
                self.cores[i].pending_rec = Some(rec);
                if rec.work > 0 {
                    // Dispatch compute first; memory record stays pending.
                    self.cores[i].work_left -= 1;
                    self.cores[i].rob.push(cycle + 1);
                    continue;
                }
            }
            let rec = self.cores[i].pending_rec.expect("pending record");
            if self.cores[i].work_left > 0 {
                // Still draining this record's compute prefix.
                self.cores[i].work_left -= 1;
                self.cores[i].rob.push(cycle + 1);
                continue;
            }
            // Dependent loads wait for their producer.
            if rec.dependent {
                if let Some(dep) = self.cores[i].last_dep_seq {
                    match self.cores[i].rob.completion_of(dep) {
                        Some(c) if c <= cycle => {}
                        None => {} // already retired
                        Some(c) => {
                            // Producer outstanding: stall. A finite
                            // completion is a known wake cycle; a pending
                            // one resolves via the L2 MSHR drain term.
                            dispatch_wake = if c == PENDING { u64::MAX } else { c };
                            break;
                        }
                    }
                }
            }
            match self.start_demand(i, &rec, cycle) {
                Demand::Done(t) => {
                    let core = &mut self.cores[i];
                    let seq = core.rob.push(t);
                    if rec.dependent {
                        core.last_dep_seq = Some(seq);
                    }
                    core.pending_rec = None;
                }
                Demand::Pending(block) => {
                    let core = &mut self.cores[i];
                    let seq = core.rob.push(PENDING);
                    core.l2_mshr.add_waiter(block, seq, cycle);
                    if rec.dependent {
                        core.last_dep_seq = Some(seq);
                    }
                    core.pending_rec = None;
                }
                Demand::Stall => {
                    // Resources exhausted: freed only by an L2 drain (demand
                    // window, L2 MSHRs) or an LLC drain (LLC MSHRs), both
                    // horizon terms already.
                    dispatch_wake = u64::MAX;
                    break;
                }
            }
        }
        dispatch_wake
    }

    /// Attempts to start the demand access of `rec` for core `i`.
    ///
    /// Uses a check-then-commit discipline so a [`Demand::Stall`] leaves no
    /// counter or state disturbed (the dispatch retries next cycle).
    fn start_demand(&mut self, i: usize, rec: &TraceRecord, cycle: u64) -> Demand {
        let telem = self.telemetry_active();
        // `None` except during a sampled tick; stall paths leave the stamp
        // unlapped (their time lands in retire_dispatch self time).
        let mut ps = self.prof.stamp();
        let cfg = &self.cfg;
        let block = addr::block_number(rec.addr);
        let is_store = rec.kind == AccessKind::Store;
        let core = &mut self.cores[i];

        // L1 hit: fast path (one set scan checks and commits the access).
        if core.l1d.demand_hit(block, is_store).is_some() {
            self.prof.lap(Span::DemandLookup, &mut ps);
            return Demand::Done(cycle + cfg.l1d.latency);
        }

        // Check-and-commit the L2 in one scan too. A hit commits here, which
        // is safe under the Stall discipline: the hit path below can never
        // stall. A miss touches nothing until the resource checks pass.
        let l2_out = core.l2.demand_hit(block, is_store);
        let l2_latency = cfg.l1d.latency + cfg.l2.latency;

        if l2_out.is_none() {
            // Check resources before committing any counter updates.
            // Only loads occupy the L1 miss window; store misses drain
            // through the store buffer (they are bounded by L2 MSHRs only).
            let needs_demand_slot = !is_store
                && match core.l2_mshr.get(block) {
                    None => true,
                    Some(e) => e.origin == MissOrigin::Prefetch && !e.demand_merged,
                };
            if needs_demand_slot && core.demand_outstanding >= cfg.l1d.mshrs {
                return Demand::Stall;
            }
            if core.l2_mshr.get(block).is_none() {
                if core.l2_mshr.is_full() {
                    return Demand::Stall;
                }
                let llc_hit = self.llc.probe(block);
                let merged_llc = self.llc_mshr.get(block).is_some();
                if !llc_hit && !merged_llc && self.llc_mshr.is_full() {
                    return Demand::Stall;
                }
            }
        }

        // Commit: account the L1 miss and, on an L2 miss, the L2 access (the
        // hit already committed above), then trigger the prefetcher (every
        // L2 demand access, hit or miss — paper Fig. 4).
        let core = &mut self.cores[i];
        core.l1d.demand_access(block, is_store);
        let out = l2_out.unwrap_or_else(|| core.l2.demand_access(block, is_store));
        if telem && !out.hit {
            self.events.record(TraceEvent {
                cycle,
                core: i as u32,
                kind: EventKind::DemandMiss,
                block,
                payload: 0,
            });
        }
        if out.first_use_of_prefetch {
            core.pf_stats.useful += 1;
            core.prefetcher.on_useful_prefetch(block << addr::BLOCK_BITS);
        }
        self.prof.lap(Span::DemandLookup, &mut ps);
        let ctx = AccessContext {
            pc: rec.pc,
            addr: rec.addr,
            is_store,
            l2_hit: out.hit,
            cycle,
            core: i,
        };
        let counters_before = if telem {
            core.prefetcher.filter_counters()
        } else {
            FilterCounters::default()
        };
        let mut scratch = std::mem::take(&mut core.scratch);
        scratch.clear();
        core.prefetcher.on_demand_access(&ctx, &mut scratch);
        if telem {
            let d = core.prefetcher.filter_counters().delta(&counters_before);
            if d.inferences > 0 {
                self.events.record(TraceEvent {
                    cycle,
                    core: i as u32,
                    kind: EventKind::PpfVerdict,
                    block,
                    payload: ((d.accepted_l2 + d.accepted_llc) << 32)
                        | (d.rejected & 0xffff_ffff),
                });
            }
        }
        self.prof.lap(Span::CandidateGen, &mut ps);
        core.pf_stats.emitted += scratch.len() as u64;
        for req in scratch.drain(..) {
            // Dedup at enqueue: resident or in-flight targets never reach
            // the queue, so bursts of lookahead re-suggestions cannot crowd
            // out fresh (deep) candidates.
            let req_block = req.block();
            let redundant = match req.fill {
                FillLevel::L2 => {
                    core.l2.probe(req_block)
                        || core.l2_mshr.get(req_block).is_some()
                        || core.pq_set.contains(&req)
                }
                FillLevel::Llc => {
                    self.llc.probe(req_block)
                        || self.llc_mshr.get(req_block).is_some()
                        || core.pq_set.contains(&req)
                }
            };
            if redundant {
                core.pf_stats.dropped_redundant += 1;
            } else if core.pq.len() < cfg.prefetch.queue_size {
                core.pq.push_back(req);
                core.pq_set.insert(req);
            } else {
                core.pf_stats.dropped_queue += 1;
            }
        }
        core.scratch = scratch;
        self.prof.lap(Span::PfEnqueue, &mut ps);

        if out.hit {
            let done = cycle + l2_latency;
            // Bring the line into L1 (write-allocate).
            if let Some(ev1) = core.l1d.fill(block, FillKind::Demand, is_store) {
                if ev1.dirty {
                    self.writeback_l1_victim(i, ev1.block, cycle);
                }
            }
            self.prof.lap(Span::DemandLookup, &mut ps);
            return Demand::Done(done);
        }

        // L2 miss: merge or allocate.
        let core = &mut self.cores[i];
        if let Some(entry) = core.l2_mshr.get(block) {
            let was_unclaimed_prefetch =
                entry.origin == MissOrigin::Prefetch && !entry.demand_merged;
            core.l2_mshr.allocate(block, 0, MissOrigin::Demand, is_store, i);
            if was_unclaimed_prefetch {
                if !is_store {
                    core.demand_outstanding += 1;
                    if let Some(e) = core.l2_mshr.get_mut(block) {
                        e.counted_demand = true;
                    }
                }
                core.pf_stats.late += 1;
                let remaining = core
                    .l2_mshr
                    .get(block)
                    .map_or(0, |e| e.ready_at.saturating_sub(cycle));
                core.pf_stats.late_wait_cycles += remaining;
                core.prefetcher.on_useful_prefetch(block << addr::BLOCK_BITS);
            }
            self.prof.lap(Span::DemandLookup, &mut ps);
            return if is_store {
                Demand::Done(cycle + 1) // store completes; fill proceeds
            } else {
                Demand::Pending(block)
            };
        }

        // New L2 miss: consult LLC.
        let llc_out = self.llc.demand_access(block, is_store);
        let ready = if llc_out.hit {
            if llc_out.first_use_of_prefetch {
                // LLC-level prefetch proved useful; credit this core.
                let core = &mut self.cores[i];
                core.pf_stats.useful += 1;
                core.prefetcher.on_useful_prefetch(block << addr::BLOCK_BITS);
            }
            cycle + l2_latency + self.cfg.llc.latency
        } else {
            match self.llc_mshr.get(block) {
                Some(entry) => {
                    let was_unclaimed =
                        entry.origin == MissOrigin::Prefetch && !entry.demand_merged;
                    let owner = entry.owner;
                    let MshrAlloc::Merged(t) =
                        self.llc_mshr.allocate(block, 0, MissOrigin::Demand, is_store, i)
                    else {
                        unreachable!("entry exists")
                    };
                    if was_unclaimed {
                        // Credit the prefetch's owner (possibly another core).
                        self.credits.push((owner, block << addr::BLOCK_BITS));
                    }
                    t
                }
                None => {
                    let at = cycle + l2_latency + self.cfg.llc.latency;
                    let done = self.dram.schedule_read(block, at);
                    let alloc =
                        self.llc_mshr.allocate(block, done, MissOrigin::Demand, is_store, i);
                    debug_assert_eq!(alloc, MshrAlloc::Allocated);
                    done
                }
            }
        };
        let core = &mut self.cores[i];
        let alloc = core.l2_mshr.allocate(block, ready, MissOrigin::Demand, is_store, i);
        debug_assert_eq!(alloc, MshrAlloc::Allocated);
        if !is_store {
            core.demand_outstanding += 1;
            if let Some(e) = core.l2_mshr.get_mut(block) {
                e.counted_demand = true;
            }
        }
        self.prof.lap(Span::DemandLookup, &mut ps);
        if is_store {
            Demand::Done(cycle + 1)
        } else {
            Demand::Pending(block)
        }
    }

    /// Handles a dirty L1 victim: write it into the L2 (refresh or insert),
    /// cascading evictions down the hierarchy.
    fn writeback_l1_victim(&mut self, i: usize, victim_block: u64, cycle: u64) {
        let core = &mut self.cores[i];
        if let Some(ev) = core.l2.fill(victim_block, FillKind::Demand, true) {
            core.prefetcher.on_eviction(&EvictionInfo {
                addr: ev.block << addr::BLOCK_BITS,
                was_prefetch: ev.was_prefetch,
                was_used: ev.was_used,
            });
            if ev.dirty {
                if let Some(ev2) = self.llc.fill(ev.block, FillKind::Demand, true) {
                    if ev2.dirty {
                        self.dram.schedule_write(ev2.block, cycle);
                    }
                    self.note_llc_eviction(&ev2);
                }
            }
        }
    }

    /// Queues an LLC-eviction notification if the victim was an unused
    /// prefetch (delivered to every core's prefetcher next cycle).
    fn note_llc_eviction(&mut self, ev: &crate::cache::Evicted) {
        if ev.was_prefetch && !ev.was_used {
            self.llc_evictions.push(EvictionInfo {
                addr: ev.block << addr::BLOCK_BITS,
                was_prefetch: true,
                was_used: false,
            });
        }
    }

    /// Issues up to the configured number of prefetches from core `i`'s
    /// queue.
    ///
    /// Returns the earliest cycle at which issue could make progress it
    /// cannot make now — `cycle + 1` when the per-cycle budget ran out with
    /// work still queued, `u64::MAX` when the queue is empty (dispatch
    /// refills it, covered by the dispatch wake) or when the head is held
    /// on MSHR headroom (freed only by an L2 or LLC drain, both horizon
    /// terms already). The queue head's redundancy status cannot change
    /// while this core sleeps: its blocks are private (per-core address
    /// spaces), so only its own activity or an LLC drain — which wakes
    /// every core — can install or retire them.
    fn issue_prefetches(&mut self, i: usize, cycle: u64) -> u64 {
        let telem = self.telemetry_active();
        let mut budget = self.cfg.prefetch.issue_per_cycle;
        while budget > 0 {
            let Some(&req) = self.cores[i].pq.front() else { break };
            let block = req.block();
            match req.fill {
                FillLevel::L2 => {
                    let core = &mut self.cores[i];
                    if core.l2.probe(block) || core.l2_mshr.get(block).is_some() {
                        core.pf_stats.dropped_redundant += 1;
                        core.pq.pop_front();
                        core.pq_set.remove(&req);
                        continue;
                    }
                    // Prefetches may not occupy the demand headroom: keep as
                    // many L2 MSHRs free as demands can have outstanding.
                    if core.l2_mshr.len() + self.cfg.l1d.mshrs >= self.cfg.l2.mshrs {
                        // Hold the request; MSHRs free up in later cycles.
                        break;
                    }
                    let base = cycle + self.cfg.l2.latency;
                    let ready = if self.llc.touch(block) {
                        base + self.cfg.llc.latency
                    } else if let Some(e) = self.llc_mshr.get(block) {
                        e.ready_at
                    } else if self.llc_mshr.len() + self.cfg.l1d.mshrs * self.cfg.cores
                        >= self.cfg.llc.mshrs
                    {
                        break;
                    } else {
                        let done = self
                            .dram
                            .schedule_prefetch_read(block, base + self.cfg.llc.latency);
                        self.llc_mshr.allocate(block, done, MissOrigin::Prefetch, false, i);
                        done
                    };
                    let core = &mut self.cores[i];
                    core.l2_mshr.allocate(block, ready, MissOrigin::Prefetch, false, i);
                    core.pf_stats.issued += 1;
                    if telem {
                        self.events.record(TraceEvent {
                            cycle,
                            core: i as u32,
                            kind: EventKind::PrefetchIssue,
                            block,
                            payload: 0,
                        });
                    }
                    core.pq.pop_front();
                    core.pq_set.remove(&req);
                    budget -= 1;
                }
                FillLevel::Llc => {
                    if self.llc.probe(block) || self.llc_mshr.get(block).is_some() {
                        let core = &mut self.cores[i];
                        core.pf_stats.dropped_redundant += 1;
                        core.pq.pop_front();
                        core.pq_set.remove(&req);
                        continue;
                    }
                    if self.llc_mshr.len() + self.cfg.l1d.mshrs * self.cfg.cores
                        >= self.cfg.llc.mshrs
                    {
                        break;
                    }
                    let at = cycle + self.cfg.l2.latency + self.cfg.llc.latency;
                    let done = self.dram.schedule_prefetch_read(block, at);
                    self.llc_mshr.allocate(block, done, MissOrigin::Prefetch, false, i);
                    self.cores[i].pf_stats.issued += 1;
                    if telem {
                        self.events.record(TraceEvent {
                            cycle,
                            core: i as u32,
                            kind: EventKind::PrefetchIssue,
                            block,
                            payload: 1,
                        });
                    }
                    self.cores[i].pq.pop_front();
                    self.cores[i].pq_set.remove(&req);
                    budget -= 1;
                }
            }
        }
        if self.cores[i].pq.is_empty() {
            u64::MAX
        } else if budget == 0 {
            cycle + 1
        } else {
            // Held on MSHR headroom: only a drain frees capacity.
            u64::MAX
        }
    }
}

/// Convenience: runs a single-core simulation of `workload` + `prefetcher`.
///
/// `warmup` and `measure` are instruction counts.
pub fn run_single_core(
    cfg: SystemConfig,
    workload_name: &str,
    trace: Box<dyn AccessPattern>,
    prefetcher: Box<dyn Prefetcher>,
    warmup: u64,
    measure: u64,
) -> SimReport {
    assert_eq!(cfg.cores, 1, "run_single_core needs a 1-core config");
    let mut sim = Simulation::new(cfg);
    sim.add_core(workload_name, trace, prefetcher);
    sim.run(warmup, measure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetcher::NoPrefetcher;
    use ppf_trace::{SequentialStream, TraceBuilder, Workload};

    fn small_cfg() -> SystemConfig {
        SystemConfig::single_core()
    }

    #[test]
    fn sequential_stream_runs_and_reports() {
        let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 14, 0x400000, 2));
        let report = run_single_core(
            small_cfg(),
            "seq",
            trace,
            Box::new(NoPrefetcher),
            10_000,
            50_000,
        );
        assert_eq!(report.cores.len(), 1);
        let c = &report.cores[0];
        assert!(c.instructions >= 50_000);
        assert!(c.ipc() > 0.0 && c.ipc() <= 4.0, "ipc {}", c.ipc());
        // A 1 MB footprint stream misses in L1/L2 constantly.
        assert!(c.l2.demand_misses() > 0);
    }

    #[test]
    fn compute_bound_core_hits_retire_width() {
        // All work, minimal memory: tiny footprint, huge work per record.
        let trace = Box::new(SequentialStream::new(0x100_0000, 4, 0x400000, 60));
        let report =
            run_single_core(small_cfg(), "comp", trace, Box::new(NoPrefetcher), 5_000, 50_000);
        let ipc = report.ipc();
        assert!(ipc > 3.0, "compute-bound IPC should approach 4, got {ipc}");
    }

    #[test]
    fn memory_bound_core_is_slow() {
        // Dependent pointer chase over 32 MB: every load is a serialized DRAM miss.
        let w = Workload::by_name("605.mcf_s").unwrap();
        let trace = Box::new(TraceBuilder::new(w).seed(1).build());
        let report =
            run_single_core(small_cfg(), "mcf", trace, Box::new(NoPrefetcher), 5_000, 30_000);
        assert!(report.ipc() < 0.5, "latency-bound IPC should be low, got {}", report.ipc());
    }

    #[test]
    fn horizon_skipping_matches_naive_ticking() {
        let mk = |skip: bool| {
            let w = Workload::by_name("605.mcf_s").unwrap();
            let trace = Box::new(TraceBuilder::new(w).seed(7).build());
            let mut sim = Simulation::new(small_cfg());
            sim.set_cycle_skip(skip);
            sim.add_core("mcf", trace, Box::new(StreamAhead));
            let report = sim.run(5_000, 20_000);
            (report, sim.cycle_stats())
        };
        let (naive, naive_cycles) = mk(false);
        let (skip, skip_cycles) = mk(true);
        assert_eq!(naive, skip, "event horizon must be bit-identical to per-cycle ticking");
        assert_eq!(naive_cycles.total_cycles, skip_cycles.total_cycles);
        assert_eq!(naive_cycles.skipped_cycles, 0);
        assert!(
            skip_cycles.skipped_cycles > 0,
            "a latency-bound pointer chase must have skippable dead time"
        );
        assert_eq!(
            skip_cycles.ticks + skip_cycles.skipped_cycles,
            skip_cycles.total_cycles,
            "every cycle is either executed or skipped"
        );
    }

    #[test]
    fn cycle_skip_env_override_is_programmatic() {
        let mut sim = Simulation::new(small_cfg());
        let from_env = sim.cycle_skip();
        sim.set_cycle_skip(!from_env);
        assert_eq!(sim.cycle_skip(), !from_env);
        sim.set_cycle_skip(from_env);
        assert_eq!(sim.cycle_skip(), from_env);
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let w = Workload::by_name("602.gcc_s").unwrap();
            let trace = Box::new(TraceBuilder::new(w).seed(3).shrink(3).build());
            run_single_core(small_cfg(), "gcc", trace, Box::new(NoPrefetcher), 5_000, 20_000)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.cores[0].cycles, b.cores[0].cycles);
        assert_eq!(a.llc.demand_accesses, b.llc.demand_accesses);
        assert_eq!(a.dram.reads, b.dram.reads);
    }

    /// A stream prefetcher running 40 blocks ahead — far enough to beat the
    /// demand window (L1 MSHR bound) — used to validate the prefetch path.
    struct StreamAhead;
    impl Prefetcher for StreamAhead {
        fn on_demand_access(&mut self, ctx: &AccessContext, out: &mut Vec<PrefetchRequest>) {
            for d in 40..48 {
                out.push(PrefetchRequest::new(ctx.addr + d * addr::BLOCK_SIZE, FillLevel::L2));
            }
        }
        fn name(&self) -> &'static str {
            "stream-ahead-test"
        }
    }

    #[test]
    fn next_line_prefetcher_improves_sequential() {
        // 1 MB footprint: fits the LLC, misses the 512 KB L2 — the prefetch
        // moves lines LLC->L2 ahead of use without DRAM bandwidth cost.
        let mk = |pf: Box<dyn Prefetcher>| {
            let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 14, 0x400000, 2));
            run_single_core(small_cfg(), "seq", trace, pf, 10_000, 80_000)
        };
        let base = mk(Box::new(NoPrefetcher));
        let pf = mk(Box::new(StreamAhead));
        assert!(
            pf.ipc() > base.ipc() * 1.1,
            "stream prefetching should speed up a stream: {} vs {}",
            pf.ipc(),
            base.ipc()
        );
        assert!(pf.cores[0].prefetch.issued > 0);
        assert!(pf.cores[0].prefetch.useful > 0, "40-ahead stream must be timely");
        // Coverage: fewer L2 demand misses than baseline.
        assert!(pf.cores[0].l2.demand_misses() < base.cores[0].l2.demand_misses());
    }

    #[test]
    fn prefetch_stats_consistent() {
        let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 15, 0x400000, 2));
        let r = run_single_core(small_cfg(), "seq", trace, Box::new(StreamAhead), 5_000, 40_000);
        let p = &r.cores[0].prefetch;
        assert!(p.emitted >= p.issued);
        // `useful_total` may slightly exceed `issued` because prefetches
        // issued during warmup (whose issue count was reset) turn useful
        // afterwards.
        assert!(
            p.useful_total() <= p.issued + p.issued / 4 + 200,
            "useful_total {} wildly exceeds issued {}",
            p.useful_total(),
            p.issued
        );
        // Timely and late are disjoint: each is at most the total.
        assert!(p.useful <= p.useful_total() && p.late <= p.useful_total());
    }

    /// A stream prefetcher running only 2 blocks ahead — the demand stream
    /// catches its fills while still in flight, so its useful prefetches are
    /// overwhelmingly late merges.
    struct StreamNear;
    impl Prefetcher for StreamNear {
        fn on_demand_access(&mut self, ctx: &AccessContext, out: &mut Vec<PrefetchRequest>) {
            out.push(PrefetchRequest::new(ctx.addr + 2 * addr::BLOCK_SIZE, FillLevel::L2));
        }
        fn name(&self) -> &'static str {
            "stream-near-test"
        }
    }

    #[test]
    fn late_merges_count_once_not_twice() {
        let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 15, 0x400000, 2));
        let r = run_single_core(small_cfg(), "seq", trace, Box::new(StreamNear), 5_000, 40_000);
        let p = &r.cores[0].prefetch;
        assert!(p.late > 0, "2-ahead stream must produce late merges");
        // A late merge lands in `late` only; `useful` holds timely fills,
        // which a 2-block lookahead against memory latency rarely manages.
        // Before the fix the merge sites bumped both counters, so `useful`
        // was always >= `late` here.
        assert!(
            p.useful < p.late,
            "timely useful {} should be rare next to late {}",
            p.useful,
            p.late
        );
        assert_eq!(p.useful_total(), p.useful + p.late);
    }

    #[test]
    fn multicore_shares_llc_and_dram() {
        let mut sim = Simulation::new(SystemConfig::multi_core(2));
        for seed in 0..2 {
            let w = Workload::by_name("619.lbm_s").unwrap();
            let trace = Box::new(TraceBuilder::new(w).seed(seed).build());
            sim.add_core(format!("lbm{seed}"), trace, Box::new(NoPrefetcher));
        }
        let r = sim.run(5_000, 30_000);
        assert_eq!(r.cores.len(), 2);
        assert!(r.cores.iter().all(|c| c.instructions >= 30_000));
        assert!(r.dram.reads > 0);
    }

    #[test]
    fn bandwidth_contention_slows_cores() {
        // One lbm core alone vs. four sharing the channel.
        let solo = {
            let w = Workload::by_name("619.lbm_s").unwrap();
            let trace = Box::new(TraceBuilder::new(w).seed(0).build());
            run_single_core(small_cfg(), "lbm", trace, Box::new(NoPrefetcher), 5_000, 30_000)
                .ipc()
        };
        let mut sim = Simulation::new(SystemConfig::multi_core(4));
        for seed in 0..4 {
            let w = Workload::by_name("619.lbm_s").unwrap();
            let trace = Box::new(TraceBuilder::new(w).seed(seed).build());
            sim.add_core(format!("lbm{seed}"), trace, Box::new(NoPrefetcher));
        }
        let shared = sim.run(5_000, 30_000);
        let worst = shared.cores.iter().map(|c| c.ipc()).fold(f64::INFINITY, f64::min);
        assert!(
            worst < solo,
            "sharing one DRAM channel must hurt a bandwidth-bound core: {worst} vs {solo}"
        );
    }

    /// A prefetcher that targets the LLC only.
    struct LlcOnly;
    impl Prefetcher for LlcOnly {
        fn on_demand_access(&mut self, ctx: &AccessContext, out: &mut Vec<PrefetchRequest>) {
            for d in 40..44 {
                out.push(PrefetchRequest::new(
                    ctx.addr + d * addr::BLOCK_SIZE,
                    FillLevel::Llc,
                ));
            }
        }
        fn name(&self) -> &'static str {
            "llc-only-test"
        }
    }

    #[test]
    fn llc_fill_prefetches_do_not_enter_l2() {
        let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 15, 0x400000, 8));
        let r = run_single_core(small_cfg(), "seq", trace, Box::new(LlcOnly), 10_000, 60_000);
        let c = &r.cores[0];
        assert!(c.prefetch.issued > 0, "LLC prefetches must issue");
        // The L2 never receives prefetch fills from an LLC-targeted stream.
        assert_eq!(c.l2.prefetch_fills, 0);
        // The LLC-side prefetches still deliver data (either as timely
        // prefetch fills or as late merges that demands wait on).
        assert!(c.prefetch.useful_total() > 0);
    }

    #[test]
    fn store_misses_outpace_load_misses() {
        // Stores complete at dispatch + 1 and are bounded by L2 MSHRs (32),
        // not the 8-deep L1 load-miss window — an all-store miss stream must
        // clearly outpace the equivalent all-load stream.
        // LLC-resident footprint: misses resolve from the LLC, so DRAM
        // bandwidth cannot mask the load-window difference.
        let mk = |stores: bool| {
            let mut t = SequentialStream::new(0x100_0000, 1 << 14, 0x400000, 2);
            if stores {
                t = t.with_stores_every(1);
            }
            run_single_core(small_cfg(), "s", Box::new(t), Box::new(NoPrefetcher), 200_000, 40_000)
        };
        let stores = mk(true);
        let loads = mk(false);
        assert!(
            stores.ipc() > loads.ipc() * 1.3,
            "store stream {} should outpace load stream {}",
            stores.ipc(),
            loads.ipc()
        );
    }

    #[test]
    fn warmup_resets_measurement_counters() {
        let mk = |warmup| {
            let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 14, 0x400000, 2));
            run_single_core(small_cfg(), "seq", trace, Box::new(NoPrefetcher), warmup, 30_000)
        };
        let cold = mk(1_000);
        let warm = mk(200_000);
        // After a long warmup the stream wraps inside the LLC, so the
        // measured region sees far fewer LLC misses than a cold run.
        assert!(
            warm.llc.demand_misses() < cold.llc.demand_misses() / 2,
            "warmup did not carry cache state: {} vs {}",
            warm.llc.demand_misses(),
            cold.llc.demand_misses()
        );
    }

    #[test]
    fn demand_outstanding_bounded_by_l1_mshrs() {
        // A workload of independent misses cannot have more demand misses in
        // flight than L1 MSHRs; with 8 MSHRs and ~150-cycle misses the
        // *average* miss wait cannot drop below latency/8 per miss.
        let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 16, 0x400000, 0));
        let r = run_single_core(small_cfg(), "seq", trace, Box::new(NoPrefetcher), 5_000, 30_000);
        let c = &r.cores[0];
        assert!(c.load_miss_waits > 0);
        assert!(c.avg_load_miss_wait() > 20.0, "MLP cannot exceed the MSHR bound");
    }

    #[test]
    fn invariants_hold_after_prefetching_run() {
        let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 14, 0x400000, 2));
        let mut sim = Simulation::new(small_cfg());
        sim.add_core("seq", trace, Box::new(StreamAhead));
        sim.run(5_000, 30_000);
        sim.check_invariants().expect("a clean run ends with consistent structures");
    }

    #[test]
    fn invariants_catch_prefetch_queue_desync() {
        let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 14, 0x400000, 2));
        let mut sim = Simulation::new(small_cfg());
        sim.add_core("seq", trace, Box::new(NoPrefetcher));
        // Corrupt: queue an entry without mirroring it into the dedup set.
        sim.cores[0]
            .pq
            .push_back(PrefetchRequest::new(0x100_0000, FillLevel::L2));
        let err = sim.check_invariants().unwrap_err();
        assert!(err.contains("diverged"), "{err}");
    }

    #[test]
    #[should_panic(expected = "simulator invariant violated")]
    fn periodic_enforcement_panics_on_corruption() {
        let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 14, 0x400000, 2));
        let mut sim = Simulation::new(small_cfg());
        sim.add_core("seq", trace, Box::new(NoPrefetcher));
        sim.invariant_period = 1_000; // force checking regardless of env/profile
        // Corrupt: an orphaned dedup-set entry persists (unlike a queued
        // request, which issue_prefetches would pop before the first check).
        sim.cores[0]
            .pq_set
            .insert(PrefetchRequest::new(0x100_0000, FillLevel::L2));
        sim.run(5_000, 30_000);
    }

    #[test]
    #[should_panic(expected = "attach one core per configured core")]
    fn run_requires_all_cores() {
        let mut sim = Simulation::new(SystemConfig::multi_core(2));
        let trace = Box::new(SequentialStream::new(0, 16, 0, 0));
        sim.add_core("only-one", trace, Box::new(NoPrefetcher));
        sim.run(10, 10);
    }

    /// The run always snapshots at the measurement boundary, so the last
    /// snapshot is cumulative over the whole measured region and must agree
    /// with the end-of-run report field for field.
    #[cfg(feature = "telemetry")]
    #[test]
    fn final_interval_snapshot_matches_core_report() {
        let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 14, 0x400000, 2));
        let mut sim = Simulation::new(small_cfg());
        sim.add_core("seq", trace, Box::new(StreamAhead));
        sim.set_telemetry(TelemetryConfig { interval: 7_000 });
        let report = sim.run(5_000, 40_000);

        let ring = sim.interval_snapshots(0);
        // 40_000 / 7_000 interval boundaries plus the region boundary.
        assert!(ring.len() >= 2, "expected several snapshots, got {}", ring.len());
        let last = ring.last().expect("telemetry on, snapshots recorded");
        let core = &report.cores[0];
        assert_eq!(last.instructions, core.instructions);
        assert_eq!(last.cycles, core.cycles);
        assert_eq!(last.l2, core.l2);
        assert_eq!(last.prefetch, core.prefetch);
        // Sequence numbers count up from zero without gaps.
        for (i, s) in sim.all_interval_snapshots().iter().enumerate() {
            assert_eq!(s.seq, i as u64);
            assert_eq!(s.core, 0);
        }
    }

    #[test]
    fn telemetry_off_records_nothing() {
        let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 14, 0x400000, 2));
        let mut sim = Simulation::new(small_cfg());
        sim.add_core("seq", trace, Box::new(StreamAhead));
        // Explicitly disabled (not from_env) so the test cannot race with a
        // PPF_TELEMETRY set in the environment.
        sim.set_telemetry(TelemetryConfig::disabled());
        sim.run(5_000, 40_000);
        assert!(sim.all_interval_snapshots().is_empty());
        assert!(sim.event_trace().is_empty());
    }

    #[test]
    fn profiling_off_records_nothing() {
        use crate::prof::ProfConfig;
        let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 14, 0x400000, 2));
        let mut sim = Simulation::new(small_cfg());
        sim.add_core("seq", trace, Box::new(StreamAhead));
        // Explicitly disabled (not from_env) so the test cannot race with a
        // PPF_PROFILE set in the environment.
        sim.set_profiling(ProfConfig::disabled());
        sim.run(5_000, 40_000);
        assert!(sim.profile_jsonl().is_empty());
    }

    /// With the feature compiled in and the runtime switch on, a run records
    /// the root span (stride 1, covering the whole run) plus sampled tick
    /// anatomy spans, and the root span accounts for the run's cycles.
    #[cfg(feature = "profiling")]
    #[test]
    fn profiled_run_records_root_and_tick_spans() {
        use crate::prof::{ProfConfig, Span};
        let trace = Box::new(SequentialStream::new(0x100_0000, 1 << 14, 0x400000, 2));
        let mut sim = Simulation::new(small_cfg());
        sim.add_core("seq", trace, Box::new(StreamAhead));
        sim.set_profiling(ProfConfig::enabled());
        let report = sim.run(5_000, 40_000);

        let prof = sim.profiler();
        let root = prof.stat(Span::RunLoop);
        assert_eq!(root.calls, 1, "run() records the root span exactly once");
        assert!(root.wall_ns > 0);
        assert!(root.cycles > 0);

        let tick = prof.stat(Span::Tick);
        assert!(tick.calls > 0, "sampled tick spans recorded");
        // Each sampled tick accounts exactly one simulated cycle; the run
        // executed far more cycles than the sample stride covers.
        assert_eq!(tick.calls, tick.cycles);
        assert!(report.cores[0].cycles >= tick.cycles);

        // Sampled nested spans fire on every sampled tick.
        assert!(prof.stat(Span::RetireDispatch).calls > 0);
        assert!(prof.stat(Span::HorizonCompute).calls > 0);

        // The export names every recorded span and carries the version tag.
        let jsonl = sim.profile_jsonl();
        assert!(jsonl.contains("\"span\":0"), "root span exported: {jsonl}");
        assert!(jsonl.lines().all(|l| l.starts_with("{\"v\":1,")));
    }
}
