//! Address arithmetic helpers.
//!
//! The simulator operates on byte addresses (`u64`), like ChampSim. All
//! structural units (blocks, pages) are fixed: 64-byte cache blocks and
//! 4 KB pages, matching the paper's Table 1.

/// Cache block (line) size in bytes.
pub const BLOCK_SIZE: u64 = 64;
/// log2 of the block size.
pub const BLOCK_BITS: u32 = 6;
/// Page size in bytes.
pub const PAGE_SIZE: u64 = 4096;
/// log2 of the page size.
pub const PAGE_BITS: u32 = 12;
/// Number of cache blocks per page (64).
pub const BLOCKS_PER_PAGE: u64 = PAGE_SIZE / BLOCK_SIZE;

/// Returns the block-aligned byte address containing `addr`.
pub fn block_align(addr: u64) -> u64 {
    addr & !(BLOCK_SIZE - 1)
}

/// Returns the block number (address >> 6).
pub fn block_number(addr: u64) -> u64 {
    addr >> BLOCK_BITS
}

/// Returns the page number (address >> 12).
pub fn page_number(addr: u64) -> u64 {
    addr >> PAGE_BITS
}

/// Returns the block offset within its page (0..64).
pub fn page_offset_blocks(addr: u64) -> u64 {
    (addr >> BLOCK_BITS) & (BLOCKS_PER_PAGE - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment() {
        assert_eq!(block_align(0x1234), 0x1200);
        assert_eq!(block_align(0x1240), 0x1240);
    }

    #[test]
    fn numbering() {
        assert_eq!(block_number(0x1000), 0x40);
        assert_eq!(page_number(0x3000), 3);
    }

    #[test]
    fn page_offsets() {
        assert_eq!(page_offset_blocks(0x0000), 0);
        assert_eq!(page_offset_blocks(0x0FC0), 63);
        assert_eq!(page_offset_blocks(0x1000), 0);
    }

    #[test]
    fn consistency() {
        for addr in [0u64, 63, 64, 4095, 4096, 0xDEAD_BEEF] {
            assert_eq!(block_number(block_align(addr)), block_number(addr));
            assert!(page_offset_blocks(addr) < BLOCKS_PER_PAGE);
        }
    }
}
