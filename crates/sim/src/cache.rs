//! Set-associative cache with LRU replacement and prefetch metadata.
//!
//! Each line carries the two bits the paper's training loop depends on:
//! whether the line was brought in by a prefetch, and whether a demand has
//! used it since. Evictions report both so the prefetch filter can learn
//! from useless prefetches (negative training) and the stats can attribute
//! useful ones.

use crate::config::{CacheConfig, ReplacementPolicy};

/// How a line got into the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FillKind {
    /// Demand miss fill.
    Demand,
    /// Prefetch fill.
    Prefetch,
}

/// Result of a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The block was present.
    pub hit: bool,
    /// This was the *first* demand touch of a prefetched line — the event
    /// that makes a prefetch "useful" (paper Sec 3.1 training).
    pub first_use_of_prefetch: bool,
}

/// A victim evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Block number of the victim.
    pub block: u64,
    /// Victim was dirty (needs writeback).
    pub dirty: bool,
    /// Victim was brought in by a prefetch.
    pub was_prefetch: bool,
    /// Victim was demanded at least once while resident.
    pub was_used: bool,
}

/// Sentinel tag marking an invalid way in the SoA tag array. Real block
/// numbers are byte addresses shifted right by the 6-bit block offset, so
/// they can never reach `u64::MAX`.
const INVALID_TAG: u64 = u64::MAX;

/// Per-line metadata bits, packed so the non-tag state of a line is one
/// byte (plus the LRU stamp and SRRIP RRPV kept in their own arrays).
const FLAG_DIRTY: u8 = 1 << 0;
const FLAG_PREFETCHED: u8 = 1 << 1;
const FLAG_USED: u8 = 1 << 2;

/// Per-cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand lookups.
    pub demand_accesses: u64,
    /// Demand lookups that hit.
    pub demand_hits: u64,
    /// Lines filled by demand misses.
    pub demand_fills: u64,
    /// Lines filled by prefetches.
    pub prefetch_fills: u64,
    /// Prefetched lines that saw at least one demand hit.
    pub useful_prefetches: u64,
    /// Prefetched lines evicted without any demand hit.
    pub useless_prefetches: u64,
}

impl CacheStats {
    /// Demand misses.
    pub fn demand_misses(&self) -> u64 {
        self.demand_accesses - self.demand_hits
    }

    /// Fraction of filled prefetches that were used (accuracy at this level).
    pub fn prefetch_accuracy(&self) -> f64 {
        let judged = self.useful_prefetches + self.useless_prefetches;
        if judged == 0 {
            return 0.0;
        }
        self.useful_prefetches as f64 / judged as f64
    }

    /// Resets all counters (used at the warmup/measurement boundary).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// A set-associative, write-back, LRU cache.
///
/// Line state is stored struct-of-arrays: the tags of a set are contiguous
/// `u64`s (with [`INVALID_TAG`] marking empty ways), so the hit scans in
/// [`Cache::probe`] / [`Cache::demand_hit`] / [`Cache::fill`] walk a packed
/// tag slice instead of striding over full line structs. Stamps, flag bits
/// and RRPVs live in parallel arrays touched only after a way is chosen.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    /// Tag per way, [`INVALID_TAG`] when the way is empty.
    tags: Vec<u64>,
    /// LRU stamp per way.
    stamps: Vec<u64>,
    /// `FLAG_*` bits per way.
    flags: Vec<u8>,
    /// 2-bit re-reference prediction value per way (SRRIP only).
    rrpvs: Vec<u8>,
    clock: u64,
    policy: ReplacementPolicy,
    /// Counter block (see [`CacheStats`]).
    pub stats: CacheStats,
}

impl Cache {
    /// Builds a cache from a configuration.
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.sets();
        let ways = sets * cfg.ways;
        Self {
            sets,
            ways: cfg.ways,
            tags: vec![INVALID_TAG; ways],
            stamps: vec![0; ways],
            flags: vec![0; ways],
            rrpvs: vec![0; ways],
            clock: 0,
            policy: cfg.policy,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    fn set_range(&self, block: u64) -> std::ops::Range<usize> {
        let set = (block as usize) & (self.sets - 1);
        set * self.ways..(set + 1) * self.ways
    }

    /// Scans one set's packed tag slice for `block`, returning the absolute
    /// way index. Validity is implicit: empty ways hold [`INVALID_TAG`],
    /// which no real block number equals.
    #[inline]
    fn find_way(&self, block: u64) -> Option<usize> {
        debug_assert_ne!(block, INVALID_TAG, "block number collides with the invalid sentinel");
        let range = self.set_range(block);
        let start = range.start;
        crate::simd::find_u64(&self.tags[range], block).map(|i| start + i)
    }

    /// Marks a hit on way `i`: LRU stamp, RRPV reset, dirty/used bits.
    /// Returns whether this was the first demand use of a prefetched line.
    #[inline]
    fn touch_hit(&mut self, i: usize, clock: u64, is_write: bool) -> bool {
        self.stamps[i] = clock;
        self.rrpvs[i] = 0;
        if is_write {
            self.flags[i] |= FLAG_DIRTY;
        }
        let first_use = self.flags[i] & (FLAG_PREFETCHED | FLAG_USED) == FLAG_PREFETCHED;
        self.flags[i] |= FLAG_USED;
        first_use
    }

    /// Non-updating presence check.
    pub fn probe(&self, block: u64) -> bool {
        self.find_way(block).is_some()
    }

    /// Demand access (load or store). Updates LRU, prefetch-use metadata and
    /// demand counters. Does **not** fill on miss — the caller drives fills
    /// when the data arrives.
    pub fn demand_access(&mut self, block: u64, is_write: bool) -> AccessOutcome {
        self.clock += 1;
        self.stats.demand_accesses += 1;
        let clock = self.clock;
        if let Some(i) = self.find_way(block) {
            let first_use = self.touch_hit(i, clock, is_write);
            if first_use {
                self.stats.useful_prefetches += 1;
            }
            self.stats.demand_hits += 1;
            return AccessOutcome { hit: true, first_use_of_prefetch: first_use };
        }
        AccessOutcome { hit: false, first_use_of_prefetch: false }
    }

    /// Demand access that only commits when the block is resident: on a hit
    /// it behaves exactly like [`Cache::demand_access`] (clock, LRU stamp,
    /// prefetch-use metadata, counters) and returns the outcome; on a miss it
    /// mutates nothing and returns `None`, letting callers run resource
    /// checks before accounting the miss. Replaces a `probe` +
    /// `demand_access` pair, scanning the set once instead of twice.
    pub fn demand_hit(&mut self, block: u64, is_write: bool) -> Option<AccessOutcome> {
        let clock = self.clock + 1;
        let i = self.find_way(block)?;
        let first_use = self.touch_hit(i, clock, is_write);
        self.clock = clock;
        self.stats.demand_accesses += 1;
        self.stats.demand_hits += 1;
        if first_use {
            self.stats.useful_prefetches += 1;
        }
        Some(AccessOutcome { hit: true, first_use_of_prefetch: first_use })
    }

    /// Inserts `block`, evicting the LRU victim if the set is full.
    ///
    /// If the block is already resident (e.g. a prefetch raced a demand
    /// fill), the existing line is refreshed instead and no victim results.
    pub fn fill(&mut self, block: u64, kind: FillKind, dirty: bool) -> Option<Evicted> {
        self.clock += 1;
        let clock = self.clock;
        match kind {
            FillKind::Demand => self.stats.demand_fills += 1,
            FillKind::Prefetch => self.stats.prefetch_fills += 1,
        }
        // Already present: refresh.
        if let Some(i) = self.find_way(block) {
            self.stamps[i] = clock;
            if dirty {
                self.flags[i] |= FLAG_DIRTY;
            }
            if kind == FillKind::Demand {
                // A demand fill over a prefetched line counts as a use.
                if self.flags[i] & (FLAG_PREFETCHED | FLAG_USED) == FLAG_PREFETCHED {
                    self.stats.useful_prefetches += 1;
                }
                self.flags[i] |= FLAG_USED;
            }
            return None;
        }

        // Pick a victim: invalid way first, else per the policy. The scans
        // walk the packed per-set tag / stamp / RRPV slices.
        let range = self.set_range(block);
        let start = range.start;
        let victim_idx = match crate::simd::find_u64(&self.tags[range.clone()], INVALID_TAG) {
            Some(i) => start + i,
            None => match self.policy {
                ReplacementPolicy::Lru => {
                    start
                        + self.stamps[range]
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, &s)| s)
                            .map(|(i, _)| i)
                            .expect("set has ways")
                }
                ReplacementPolicy::Srrip => loop {
                    // Evict the first line predicted for a distant
                    // re-reference; age everyone until one appears.
                    if let Some(i) = self.rrpvs[range.clone()].iter().position(|&r| r >= 3) {
                        break start + i;
                    }
                    for r in &mut self.rrpvs[range.clone()] {
                        *r = (*r + 1).min(3);
                    }
                },
            },
        };
        let victim_tag = self.tags[victim_idx];
        let victim_flags = self.flags[victim_idx];
        let evicted = (victim_tag != INVALID_TAG).then_some(Evicted {
            block: victim_tag,
            dirty: victim_flags & FLAG_DIRTY != 0,
            was_prefetch: victim_flags & FLAG_PREFETCHED != 0,
            was_used: victim_flags & FLAG_USED != 0,
        });
        if let Some(e) = &evicted {
            if e.was_prefetch && !e.was_used {
                self.stats.useless_prefetches += 1;
            }
        }
        self.tags[victim_idx] = block;
        self.stamps[victim_idx] = clock;
        // A demand fill starts life "used"; a prefetch fill must earn it.
        let mut flags = if kind == FillKind::Prefetch { FLAG_PREFETCHED } else { FLAG_USED };
        if dirty {
            flags |= FLAG_DIRTY;
        }
        self.flags[victim_idx] = flags;
        self.rrpvs[victim_idx] = 2; // SRRIP: insert with a long re-reference prediction
        evicted
    }

    /// Refreshes a block's LRU position without touching demand counters or
    /// prefetch-use metadata (used when a prefetch reads a lower level).
    /// Returns whether the block was present.
    pub fn touch(&mut self, block: u64) -> bool {
        self.clock += 1;
        let clock = self.clock;
        if let Some(i) = self.find_way(block) {
            self.stamps[i] = clock;
            return true;
        }
        false
    }

    /// Invalidates a block if present, returning whether it was dirty.
    pub fn invalidate(&mut self, block: u64) -> Option<bool> {
        if let Some(i) = self.find_way(block) {
            self.tags[i] = INVALID_TAG;
            return Some(self.flags[i] & FLAG_DIRTY != 0);
        }
        None
    }

    /// Number of valid lines (for tests / occupancy metrics).
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID_TAG).count()
    }

    /// Validates the cache's structural invariants, returning a description
    /// of the first violation found:
    ///
    /// - a valid tag appears at most once per set (duplicates would make hit
    ///   results depend on scan order),
    /// - every valid tag indexes to the set that holds it,
    /// - RRPV values stay within SRRIP's 2-bit range (≤ 3),
    /// - per-way flags only use defined bits,
    /// - no recency stamp runs ahead of the cache clock.
    pub fn check_invariants(&self) -> Result<(), String> {
        const KNOWN_FLAGS: u8 = FLAG_DIRTY | FLAG_PREFETCHED | FLAG_USED;
        for set in 0..self.sets {
            let base = set * self.ways;
            for way in 0..self.ways {
                let i = base + way;
                let tag = self.tags[i];
                if tag == INVALID_TAG {
                    continue;
                }
                let home = (tag as usize) & (self.sets - 1);
                if home != set {
                    return Err(format!(
                        "block {tag:#x} stored in set {set} but indexes to set {home}"
                    ));
                }
                if crate::simd::find_u64(&self.tags[base + way + 1..base + self.ways], tag)
                    .is_some()
                {
                    return Err(format!("block {tag:#x} duplicated within set {set}"));
                }
                if self.rrpvs[i] > 3 {
                    return Err(format!(
                        "rrpv {} out of 2-bit range at set {set} way {way}",
                        self.rrpvs[i]
                    ));
                }
                if self.flags[i] & !KNOWN_FLAGS != 0 {
                    return Err(format!(
                        "undefined flag bits {:#04x} at set {set} way {way}",
                        self.flags[i]
                    ));
                }
                if self.stamps[i] > self.clock {
                    return Err(format!(
                        "stamp {} ahead of cache clock {} at set {set} way {way}",
                        self.stamps[i], self.clock
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B.
        Cache::new(&CacheConfig {
            size_bytes: 512,
            ways: 2,
            latency: 1,
            mshrs: 4,
            policy: ReplacementPolicy::Lru,
        })
    }

    fn tiny_srrip() -> Cache {
        Cache::new(&CacheConfig {
            size_bytes: 1024,
            ways: 4,
            latency: 1,
            mshrs: 4,
            policy: ReplacementPolicy::Srrip,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert!(!c.demand_access(100, false).hit);
        c.fill(100, FillKind::Demand, false);
        assert!(c.demand_access(100, false).hit);
        assert_eq!(c.stats.demand_hits, 1);
        assert_eq!(c.stats.demand_misses(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Blocks 0, 4, 8 map to set 0 (4 sets).
        c.fill(0, FillKind::Demand, false);
        c.fill(4, FillKind::Demand, false);
        // Touch 0 so 4 becomes LRU.
        c.demand_access(0, false);
        let ev = c.fill(8, FillKind::Demand, false).expect("eviction");
        assert_eq!(ev.block, 4);
        assert!(c.probe(0) && c.probe(8) && !c.probe(4));
    }

    #[test]
    fn prefetch_use_tracking() {
        let mut c = tiny();
        c.fill(7, FillKind::Prefetch, false);
        let out = c.demand_access(7, false);
        assert!(out.hit && out.first_use_of_prefetch);
        // Second touch is not a "first use".
        assert!(!c.demand_access(7, false).first_use_of_prefetch);
        assert_eq!(c.stats.useful_prefetches, 1);
    }

    #[test]
    fn useless_prefetch_detected_on_eviction() {
        let mut c = tiny();
        c.fill(0, FillKind::Prefetch, false);
        c.fill(4, FillKind::Demand, false);
        let ev = c.fill(8, FillKind::Demand, false).expect("eviction");
        assert!(ev.was_prefetch && !ev.was_used);
        assert_eq!(c.stats.useless_prefetches, 1);
    }

    #[test]
    fn refill_of_resident_block_evicts_nothing() {
        let mut c = tiny();
        c.fill(3, FillKind::Demand, false);
        assert!(c.fill(3, FillKind::Prefetch, false).is_none());
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn demand_fill_over_prefetched_line_counts_use() {
        let mut c = tiny();
        c.fill(3, FillKind::Prefetch, false);
        c.fill(3, FillKind::Demand, false);
        assert_eq!(c.stats.useful_prefetches, 1);
    }

    #[test]
    fn demand_hit_matches_demand_access_on_hit_and_is_inert_on_miss() {
        let mut a = tiny();
        let mut b = tiny();
        for c in [&mut a, &mut b] {
            c.fill(7, FillKind::Prefetch, false);
        }
        // Hit path: identical outcome, stats, and LRU state.
        let via_hit = a.demand_hit(7, true).expect("resident");
        let via_access = b.demand_access(7, true);
        assert_eq!(via_hit, via_access);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.clock, b.clock);
        // Miss path: no mutation at all.
        let stats_before = a.stats;
        let clock_before = a.clock;
        assert!(a.demand_hit(99, false).is_none());
        assert_eq!(a.stats, stats_before);
        assert_eq!(a.clock, clock_before);
    }

    #[test]
    fn write_sets_dirty_and_eviction_reports_it() {
        let mut c = tiny();
        c.fill(0, FillKind::Demand, false);
        c.demand_access(0, true);
        c.fill(4, FillKind::Demand, false);
        let ev = c.fill(8, FillKind::Demand, false).expect("eviction");
        // LRU is block 0 (4 was filled later). It was written.
        assert_eq!(ev.block, 0);
        assert!(ev.dirty);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.fill(9, FillKind::Demand, true);
        assert_eq!(c.invalidate(9), Some(true));
        assert!(!c.probe(9));
        assert_eq!(c.invalidate(9), None);
    }

    #[test]
    fn stats_reset() {
        let mut c = tiny();
        c.demand_access(1, false);
        c.fill(1, FillKind::Demand, false);
        c.stats.reset();
        assert_eq!(c.stats, CacheStats::default());
    }

    #[test]
    fn occupancy_bounded_by_capacity() {
        let mut c = tiny();
        for b in 0..100 {
            c.fill(b, FillKind::Demand, false);
        }
        assert_eq!(c.occupancy(), 8);
    }

    #[test]
    fn srrip_protects_reused_lines_from_scans() {
        // 4 sets x 4 ways; blocks congruent mod 4 share a set.
        let mut c = tiny_srrip();
        // A hot line, touched repeatedly.
        c.fill(0, FillKind::Demand, false);
        for _ in 0..4 {
            c.demand_access(0, false);
        }
        // A scan of single-use blocks through the same set.
        for i in 1..=8u64 {
            c.fill(i * 4, FillKind::Demand, false);
        }
        assert!(c.probe(0), "SRRIP must keep the reused line through a scan");

        // LRU, by contrast, evicts the hot line.
        let mut lru = Cache::new(&CacheConfig {
            size_bytes: 1024,
            ways: 4,
            latency: 1,
            mshrs: 4,
            policy: ReplacementPolicy::Lru,
        });
        lru.fill(0, FillKind::Demand, false);
        for _ in 0..4 {
            lru.demand_access(0, false);
        }
        for i in 1..=8u64 {
            lru.fill(i * 4, FillKind::Demand, false);
        }
        // The hot line was MRU, so under LRU it survives one scan lap of 4
        // ways only if fewer than 4 scan blocks arrived — with 8 it is gone.
        assert!(!lru.probe(0), "LRU cannot resist the scan");
    }

    #[test]
    fn srrip_still_evicts_something() {
        let mut c = tiny_srrip();
        for i in 0..100u64 {
            c.fill(i * 4, FillKind::Demand, false);
        }
        assert!(c.occupancy() <= 16);
    }

    #[test]
    fn invariants_hold_after_heavy_traffic() {
        let mut c = tiny_srrip();
        for i in 0..500u64 {
            c.demand_access(i % 37, i % 3 == 0);
            c.fill(i % 61, if i % 2 == 0 { FillKind::Demand } else { FillKind::Prefetch }, false);
            if i % 7 == 0 {
                c.invalidate(i % 61);
            }
        }
        c.check_invariants().expect("normal traffic preserves invariants");
    }

    #[test]
    fn invariants_catch_duplicate_tag() {
        let mut c = tiny();
        c.fill(0, FillKind::Demand, false);
        // Corrupt: copy the tag into the set's other way.
        c.tags[1] = c.tags[0];
        let err = c.check_invariants().unwrap_err();
        assert!(err.contains("duplicated"), "{err}");
    }

    #[test]
    fn invariants_catch_misplaced_tag() {
        let mut c = tiny();
        c.fill(0, FillKind::Demand, false);
        // Corrupt: block 1 indexes to set 1 but sits in set 0.
        c.tags[0] = 1;
        let err = c.check_invariants().unwrap_err();
        assert!(err.contains("indexes to set"), "{err}");
    }

    #[test]
    fn invariants_catch_rrpv_overflow() {
        let mut c = tiny_srrip();
        c.fill(0, FillKind::Demand, false);
        c.rrpvs[0] = 4;
        let err = c.check_invariants().unwrap_err();
        assert!(err.contains("rrpv"), "{err}");
    }

    #[test]
    fn invariants_catch_future_stamp() {
        let mut c = tiny();
        c.fill(0, FillKind::Demand, false);
        c.stamps[0] = c.clock + 10;
        let err = c.check_invariants().unwrap_err();
        assert!(err.contains("ahead of cache clock"), "{err}");
    }

    #[test]
    fn reset_zeroes_every_cache_counter() {
        // Full struct literal on purpose — a new field fails to compile here
        // until this test (and the warmup reset path) are revisited.
        let mut s = CacheStats {
            demand_accesses: 1,
            demand_hits: 2,
            demand_fills: 3,
            prefetch_fills: 4,
            useful_prefetches: 5,
            useless_prefetches: 6,
        };
        s.reset();
        assert_eq!(s, CacheStats::default());
    }

    #[test]
    fn accuracy_metric() {
        let mut s = CacheStats { useful_prefetches: 3, useless_prefetches: 1, ..Default::default() };
        assert!((s.prefetch_accuracy() - 0.75).abs() < 1e-12);
        s.useful_prefetches = 0;
        s.useless_prefetches = 0;
        assert_eq!(s.prefetch_accuracy(), 0.0);
    }
}
