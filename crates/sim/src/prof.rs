//! Span-based self-profiling: *where* the wall time goes.
//!
//! Interval telemetry ([`crate::telemetry`]) counts what happened; this
//! module attributes wall time, call counts, and simulated cycles to named
//! [`Span`]s covering the simulator's tick anatomy and the serving stack's
//! per-request anatomy. Two collectors share the span taxonomy:
//!
//! * [`Profiler`] — single-threaded, owned by a [`crate::Simulation`].
//!   Because a tick costs a few hundred nanoseconds while a clock stamp
//!   costs tens, fine-grained spans are **sampled**: one tick in every
//!   `stride` gets stamped, and renderers scale the sampled totals back up.
//!   The [`Span::RunLoop`] root is stamped once per run (stride 1), so span
//!   coverage of total wall time holds by construction. The per-lap stamp
//!   cost is calibrated at construction and subtracted from every recorded
//!   lap, keeping sampled estimates close to the uninstrumented truth.
//! * [`SharedSpanTable`] — relaxed atomics, for the serving stack where
//!   several threads record microsecond-scale operations (decode, queue
//!   wait, score, checkpoint append) and sampling is unnecessary.
//!
//! # Gating
//!
//! Double-gated like telemetry so the default build pays nothing:
//!
//! 1. the `profiling` cargo feature — without it `cfg!` folds every guard
//!    to `false` and the hook bodies are dead-code-eliminated;
//! 2. the `PPF_PROFILE` environment variable at runtime:
//!
//! | value                      | behaviour                              |
//! |----------------------------|-----------------------------------------|
//! | unset                      | disabled                                |
//! | `0`, `off`, `false`, `no`  | disabled                                |
//! | `1`, `on`, `true`, `yes`   | sample every [`DEFAULT_STRIDE`] ticks   |
//! | `<N>` (positive integer)   | sample every `N` ticks                  |
//!
//! The value is sampled once per `Simulation` at construction;
//! [`crate::Simulation::set_profiling`] overrides it programmatically.
//!
//! # Export
//!
//! [`Profiler::to_jsonl`] and [`SharedSpanTable::to_jsonl`] emit one flat
//! numeric JSON object per active span (`ppf_analysis::interval::parse_line`
//! compatible — span identity is numeric; names resolve via [`Span::name`]
//! on the analysis side).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Ticks between fine-grained samples when `PPF_PROFILE` enables profiling
/// without an explicit stride. At ~6 stamps per sampled tick this keeps the
/// overhead well under the 5% budget `scripts/verify.sh --profile` enforces.
pub const DEFAULT_STRIDE: u64 = 64;

/// Version stamped into every exported profile JSONL record.
pub const SCHEMA_VERSION: u32 = 1;

/// Every named cost center. Each span has a static parent ([`Span::parent`])
/// so renderers can roll the flat table up into a top-down tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Span {
    /// The whole [`crate::Simulation::run`] loop (stride 1: stamped once).
    RunLoop = 0,
    /// One executed tick (sampled; children below share its stamps).
    Tick = 1,
    /// Shared-LLC MSHR drain + fill delivery.
    LlcMshrDrain = 2,
    /// Deferred credit and LLC-eviction queue delivery.
    DeferredDrain = 3,
    /// Per-core L2 MSHR drain + fill cascade.
    CoreFillDrain = 4,
    /// Prefetcher feedback callbacks (eviction / fill training) during a
    /// core drain.
    PfFeedback = 5,
    /// Retire + dispatch, including the demand path below.
    RetireDispatch = 6,
    /// Demand lookup: L1/L2 probes, victim scans, MSHR allocate/merge.
    DemandLookup = 7,
    /// Prefetcher candidate generation + PPF inference
    /// (`on_demand_access`).
    CandidateGen = 8,
    /// Dedup-at-enqueue scan of generated candidates.
    PfEnqueue = 9,
    /// Prefetch issue from the per-core queue.
    IssuePrefetch = 10,
    /// Periodic invariant checking.
    InvariantCheck = 11,
    /// Event-horizon computation at the end of a tick.
    HorizonCompute = 12,
    /// Serve: wire-frame decode on the connection thread.
    Decode = 13,
    /// Serve: job wait in the shard queue (submit → dequeue).
    QueueWait = 14,
    /// Serve: tenant scoring (batched PPF inference + training).
    Score = 15,
    /// Serve: checkpoint record append.
    CheckpointAppend = 16,
}

/// Number of distinct spans.
pub const SPAN_COUNT: usize = 17;

impl Span {
    /// Every span, in id order.
    pub const ALL: [Span; SPAN_COUNT] = [
        Span::RunLoop,
        Span::Tick,
        Span::LlcMshrDrain,
        Span::DeferredDrain,
        Span::CoreFillDrain,
        Span::PfFeedback,
        Span::RetireDispatch,
        Span::DemandLookup,
        Span::CandidateGen,
        Span::PfEnqueue,
        Span::IssuePrefetch,
        Span::InvariantCheck,
        Span::HorizonCompute,
        Span::Decode,
        Span::QueueWait,
        Span::Score,
        Span::CheckpointAppend,
    ];

    /// Stable numeric id used in the JSONL export.
    #[inline]
    pub fn id(self) -> u64 {
        self as u64
    }

    /// The span with numeric id `id`, if any.
    pub fn from_id(id: u64) -> Option<Span> {
        Span::ALL.get(id as usize).copied()
    }

    /// Human-readable name (resolved analysis-side from the numeric id).
    pub fn name(self) -> &'static str {
        match self {
            Span::RunLoop => "run_loop",
            Span::Tick => "tick",
            Span::LlcMshrDrain => "llc_mshr_drain",
            Span::DeferredDrain => "deferred_drain",
            Span::CoreFillDrain => "core_fill_drain",
            Span::PfFeedback => "pf_feedback",
            Span::RetireDispatch => "retire_dispatch",
            Span::DemandLookup => "demand_lookup",
            Span::CandidateGen => "candidate_gen",
            Span::PfEnqueue => "pf_enqueue",
            Span::IssuePrefetch => "issue_prefetch",
            Span::InvariantCheck => "invariant_check",
            Span::HorizonCompute => "horizon_compute",
            Span::Decode => "decode",
            Span::QueueWait => "queue_wait",
            Span::Score => "score",
            Span::CheckpointAppend => "checkpoint_append",
        }
    }

    /// Static parent for top-down rollup; `None` for roots. A span's wall
    /// time *includes* its children's (shared-stamp laps), so renderers
    /// compute self time as parent minus children.
    pub fn parent(self) -> Option<Span> {
        match self {
            Span::RunLoop => None,
            Span::Tick => Some(Span::RunLoop),
            Span::LlcMshrDrain
            | Span::DeferredDrain
            | Span::CoreFillDrain
            | Span::RetireDispatch
            | Span::IssuePrefetch
            | Span::InvariantCheck
            | Span::HorizonCompute => Some(Span::Tick),
            Span::PfFeedback => Some(Span::CoreFillDrain),
            Span::DemandLookup | Span::CandidateGen | Span::PfEnqueue => {
                Some(Span::RetireDispatch)
            }
            Span::Decode | Span::QueueWait | Span::Score | Span::CheckpointAppend => None,
        }
    }
}

/// Accumulated totals for one span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Times the span was recorded (laps or whole-span records).
    pub calls: u64,
    /// Wall time accumulated, nanoseconds (sampled spans hold the *sampled*
    /// total; multiply by the stride for an estimate of the true total).
    pub wall_ns: u64,
    /// Simulated cycles attributed (only the run-loop and tick spans carry
    /// cycle attribution).
    pub cycles: u64,
}

/// A clock stamp handed out by [`Profiler::stamp`]: the instant plus the
/// profiler's stamp sequence number at that point. The sequence lets a lap
/// subtract the calibrated cost of every stamp taken *inside* its window
/// (nested spans share the instrumented stretch), so recorded durations
/// track the uninstrumented truth instead of compounding clock-read costs.
#[derive(Debug, Clone, Copy)]
pub struct Stamp {
    at: Instant,
    seq: u64,
}

/// Runtime profiling settings, resolved once per [`crate::Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfConfig {
    /// Executed ticks between fine-grained samples; `0` disables profiling.
    pub stride: u64,
}

impl ProfConfig {
    /// Profiling off (the default without `PPF_PROFILE`).
    pub fn disabled() -> Self {
        Self { stride: 0 }
    }

    /// Profiling on at the default sampling stride.
    pub fn enabled() -> Self {
        Self { stride: DEFAULT_STRIDE }
    }

    /// Resolves the configuration from `PPF_PROFILE`. Always disabled when
    /// the `profiling` feature is not compiled in.
    pub fn from_env() -> Self {
        if !cfg!(feature = "profiling") {
            return Self::disabled();
        }
        let raw = std::env::var("PPF_PROFILE").ok();
        Self { stride: parse(raw.as_deref()) }
    }
}

/// Pure parser behind [`ProfConfig::from_env`]; `raw` is the variable's
/// value, `None` when unset. Malformed values fall back to the default
/// stride after a warning (over-sampling is recoverable; silently dropping
/// a requested profile is not).
fn parse(raw: Option<&str>) -> u64 {
    let Some(raw) = raw else { return 0 };
    match raw.trim().to_ascii_lowercase().as_str() {
        "" | "0" | "off" | "false" | "no" => 0,
        "1" | "on" | "true" | "yes" => DEFAULT_STRIDE,
        s => match s.parse::<u64>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!(
                    "warning: PPF_PROFILE={raw:?} is not a sampling stride; \
                     sampling every {DEFAULT_STRIDE} ticks"
                );
                DEFAULT_STRIDE
            }
        },
    }
}

/// Single-threaded span collector for the simulator (see module docs for
/// the sampling and calibration model).
#[derive(Debug, Clone)]
pub struct Profiler {
    stride: u64,
    /// Calibrated cost of one lap (one `Instant::now` + bookkeeping),
    /// subtracted from every recorded duration.
    lap_cost_ns: u64,
    /// Executed ticks since the last sample.
    countdown: u64,
    /// True while the current tick is being sampled (hot-path hooks check
    /// this one bool and fold away entirely without the feature).
    sampling: bool,
    /// Clock stamps taken so far; [`Stamp`]s carry it so laps can subtract
    /// the cost of stamps nested inside their window.
    stamp_seq: u64,
    stats: [SpanStat; SPAN_COUNT],
}

impl Profiler {
    /// Creates a collector for `cfg`, calibrating the per-lap stamp cost
    /// when enabled.
    pub fn new(cfg: ProfConfig) -> Self {
        let lap_cost_ns = if cfg.stride != 0 { calibrate_lap_cost() } else { 0 };
        Self {
            stride: cfg.stride,
            lap_cost_ns,
            countdown: 1, // sample the first executed tick
            sampling: false,
            stamp_seq: 0,
            stats: [SpanStat::default(); SPAN_COUNT],
        }
    }

    /// True when profiling is runtime-enabled (callers must additionally
    /// gate on the `profiling` feature via `cfg!` for zero default cost).
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.stride != 0
    }

    /// The sampling stride (0 = disabled).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// The calibrated per-lap stamp cost, nanoseconds.
    pub fn lap_cost_ns(&self) -> u64 {
        self.lap_cost_ns
    }

    /// Advances the tick counter; returns true if this tick is sampled.
    /// Pair with [`Profiler::end_tick`].
    #[inline(always)]
    pub fn begin_tick(&mut self) -> bool {
        if self.stride == 0 {
            return false;
        }
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.stride;
            self.sampling = true;
        }
        self.sampling
    }

    /// Ends a sampled tick.
    #[inline(always)]
    pub fn end_tick(&mut self) {
        self.sampling = false;
    }

    /// A stamp to lap against, or `None` when this tick is not sampled.
    /// With the `profiling` feature off this folds to a constant `None`
    /// and every downstream lap is eliminated.
    #[inline(always)]
    pub fn stamp(&mut self) -> Option<Stamp> {
        if cfg!(feature = "profiling") && self.sampling {
            self.stamp_seq += 1;
            Some(Stamp { at: Instant::now(), seq: self.stamp_seq })
        } else {
            None
        }
    }

    /// Attributes the time since `*s` to `span` and advances the stamp, so
    /// consecutive laps partition a stretch of code without double
    /// stamping. The calibrated cost of every stamp taken inside the window
    /// (nested spans plus this lap's own clock read) is subtracted. No-op
    /// when `s` is `None` (unsampled tick / disabled).
    #[inline(always)]
    pub fn lap(&mut self, span: Span, s: &mut Option<Stamp>) {
        if let Some(prev) = s {
            let now = Instant::now();
            self.stamp_seq += 1;
            let ns = now.duration_since(prev.at).as_nanos() as u64;
            let inner = self.stamp_seq - prev.seq;
            let stat = &mut self.stats[span as usize];
            stat.calls += 1;
            stat.wall_ns += ns.saturating_sub(inner * self.lap_cost_ns);
            *prev = Stamp { at: now, seq: self.stamp_seq };
        }
    }

    /// Records the whole stretch since `s` against `span` without advancing
    /// it (the tick total, whose children lapped inside the same window).
    /// Subtracts the cost of every nested stamp, like [`Profiler::lap`].
    #[inline(always)]
    pub fn lap_total(&mut self, span: Span, s: Option<Stamp>) {
        if let Some(prev) = s {
            self.stamp_seq += 1;
            let ns = prev.at.elapsed().as_nanos() as u64;
            let inner = self.stamp_seq - prev.seq;
            let stat = &mut self.stats[span as usize];
            stat.calls += 1;
            stat.wall_ns += ns.saturating_sub(inner * self.lap_cost_ns);
        }
    }

    /// Records a whole measured duration against `span` (used for the
    /// run-loop root, which keeps its own uncorrected stamp).
    pub fn record_ns(&mut self, span: Span, ns: u64) {
        let stat = &mut self.stats[span as usize];
        stat.calls += 1;
        stat.wall_ns += ns;
    }

    /// Attributes simulated cycles to `span`.
    #[inline(always)]
    pub fn add_cycles(&mut self, span: Span, n: u64) {
        self.stats[span as usize].cycles += n;
    }

    /// The accumulated stats of `span`.
    pub fn stat(&self, span: Span) -> SpanStat {
        self.stats[span as usize]
    }

    /// All accumulated stats, indexed by [`Span::id`].
    pub fn stats(&self) -> &[SpanStat; SPAN_COUNT] {
        &self.stats
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.stats.iter().all(|s| s.calls == 0)
    }

    /// One flat numeric JSON line per active span (newline-terminated;
    /// empty string when nothing was recorded). `stride` is 1 for the
    /// unsampled run-loop root and the configured stride otherwise, so
    /// consumers can scale sampled totals without out-of-band knowledge.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for span in Span::ALL {
            let stat = self.stats[span as usize];
            if stat.calls == 0 {
                continue;
            }
            let stride = if span == Span::RunLoop { 1 } else { self.stride.max(1) };
            out.push_str(&span_jsonl(span, stat, stride, None));
            out.push('\n');
        }
        out
    }
}

/// Formats one span record as a flat numeric JSON object (no newline).
/// `parent` is omitted for roots; `shard` tags serve-side per-shard tables.
pub fn span_jsonl(span: Span, stat: SpanStat, stride: u64, shard: Option<u64>) -> String {
    let mut line = format!(
        "{{\"v\":{SCHEMA_VERSION},\"span\":{},\"calls\":{},\"wall_ns\":{},\
         \"cycles\":{},\"stride\":{stride}",
        span.id(),
        stat.calls,
        stat.wall_ns,
        stat.cycles,
    );
    if let Some(p) = span.parent() {
        line.push_str(&format!(",\"parent\":{}", p.id()));
    }
    if let Some(s) = shard {
        line.push_str(&format!(",\"shard\":{s}"));
    }
    line.push('}');
    line
}

/// Measures the marginal cost of one lap so [`Profiler::lap`] can subtract
/// it from every recorded duration. Differential: times a work loop with
/// and without an interleaved *emulated lap* (clock read, `duration_since`
/// through `as_nanos`' 128-bit math, stat-table writes, stamp update), so
/// the estimate covers the whole instrumentation body, not just
/// `Instant::now` latency in a tight loop.
fn calibrate_lap_cost() -> u64 {
    const ROUNDS: u64 = 4096;
    #[inline(never)]
    fn work(mut acc: u64, lap: bool) -> (u64, Duration) {
        let mut stats = [SpanStat::default(); SPAN_COUNT];
        let mut prev = Stamp { at: Instant::now(), seq: 0 };
        let mut seq = 0u64;
        let t0 = Instant::now();
        for i in 0..ROUNDS {
            acc = std::hint::black_box(
                acc.wrapping_add(i).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17),
            );
            if lap {
                let now = Instant::now();
                seq += 1;
                let ns = now.duration_since(prev.at).as_nanos() as u64;
                let stat = &mut stats[(i % SPAN_COUNT as u64) as usize];
                stat.calls += 1;
                stat.wall_ns += ns.saturating_sub(seq - prev.seq);
                prev = Stamp { at: now, seq };
            }
        }
        std::hint::black_box((&stats, prev));
        (acc, t0.elapsed())
    }
    // Warm the clock path, then best-of-three each way to shed one-off
    // scheduler noise from either side of the subtraction.
    let (mut acc, _) = work(1, true);
    let mut bare = Duration::MAX;
    let mut stamped = Duration::MAX;
    for _ in 0..3 {
        let (a, d) = work(acc, false);
        acc = a;
        bare = bare.min(d);
        let (a, d) = work(acc, true);
        acc = a;
        stamped = stamped.min(d);
    }
    (stamped.saturating_sub(bare).as_nanos() as u64) / ROUNDS
}

/// Thread-safe span totals for the serving stack: every record is one
/// relaxed `fetch_add` pair, negligible against microsecond-scale serve
/// operations, so no sampling is needed. Cycle attribution stays zero
/// (serving has no simulated clock).
#[derive(Debug, Default)]
pub struct SharedSpanTable {
    calls: [AtomicU64; SPAN_COUNT],
    wall_ns: [AtomicU64; SPAN_COUNT],
}

impl SharedSpanTable {
    /// Fresh, all-zero table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attributes `ns` nanoseconds to `span`.
    #[inline]
    pub fn record_ns(&self, span: Span, ns: u64) {
        self.calls[span as usize].fetch_add(1, Ordering::Relaxed);
        self.wall_ns[span as usize].fetch_add(ns, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot of every span's totals.
    pub fn snapshot(&self) -> [SpanStat; SPAN_COUNT] {
        std::array::from_fn(|i| SpanStat {
            calls: self.calls[i].load(Ordering::Relaxed),
            wall_ns: self.wall_ns[i].load(Ordering::Relaxed),
            cycles: 0,
        })
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.calls.iter().all(|c| c.load(Ordering::Relaxed) == 0)
    }

    /// One flat numeric JSON line per active span, tagged with `shard`
    /// when given (newline-terminated; empty when nothing was recorded).
    pub fn to_jsonl(&self, shard: Option<u64>) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        for span in Span::ALL {
            let stat = snap[span as usize];
            if stat.calls == 0 {
                continue;
            }
            out.push_str(&span_jsonl(span, stat, 1, shard));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_matches_telemetry_conventions() {
        assert_eq!(parse(None), 0);
        assert_eq!(parse(Some("")), 0);
        assert_eq!(parse(Some("0")), 0);
        assert_eq!(parse(Some("off")), 0);
        assert_eq!(parse(Some("FALSE")), 0);
        assert_eq!(parse(Some("no")), 0);
        assert_eq!(parse(Some("1")), DEFAULT_STRIDE);
        assert_eq!(parse(Some("on")), DEFAULT_STRIDE);
        assert_eq!(parse(Some("True")), DEFAULT_STRIDE);
        assert_eq!(parse(Some("16")), 16);
        assert_eq!(parse(Some(" 128 ")), 128);
        assert_eq!(parse(Some("lots")), DEFAULT_STRIDE);
    }

    #[test]
    fn span_ids_round_trip_and_parents_terminate() {
        for (i, span) in Span::ALL.iter().enumerate() {
            assert_eq!(span.id(), i as u64);
            assert_eq!(Span::from_id(i as u64), Some(*span));
            // Parent chains must reach a root without cycling.
            let mut cur = *span;
            let mut hops = 0;
            while let Some(p) = cur.parent() {
                cur = p;
                hops += 1;
                assert!(hops <= SPAN_COUNT, "parent cycle at {}", span.name());
            }
        }
        assert_eq!(Span::from_id(SPAN_COUNT as u64), None);
    }

    #[test]
    fn sampling_stride_selects_every_nth_tick() {
        let mut p = Profiler::new(ProfConfig { stride: 4 });
        let mut sampled = Vec::new();
        for tick in 0..12 {
            if p.begin_tick() {
                sampled.push(tick);
            }
            p.end_tick();
        }
        // The first executed tick is always sampled, then every 4th.
        assert_eq!(sampled, vec![0, 4, 8]);
    }

    #[cfg(feature = "profiling")]
    #[test]
    fn laps_partition_a_sampled_stretch() {
        let mut p = Profiler::new(ProfConfig { stride: 1 });
        assert!(p.begin_tick());
        let mut s = p.stamp();
        assert!(s.is_some());
        std::hint::black_box(vec![0u8; 1024]);
        p.lap(Span::LlcMshrDrain, &mut s);
        p.lap(Span::HorizonCompute, &mut s);
        p.end_tick();
        assert_eq!(p.stat(Span::LlcMshrDrain).calls, 1);
        assert_eq!(p.stat(Span::HorizonCompute).calls, 1);
        assert!(!p.is_empty());
        // Unsampled stamps lap nothing.
        let mut none = None;
        p.lap(Span::DeferredDrain, &mut none);
        assert_eq!(p.stat(Span::DeferredDrain).calls, 0);
    }

    #[test]
    fn disabled_profiler_stamps_nothing() {
        let mut p = Profiler::new(ProfConfig::disabled());
        assert!(!p.enabled());
        assert!(p.stamp().is_none());
        assert!(p.is_empty());
        assert_eq!(p.to_jsonl(), "");
    }

    #[cfg(feature = "profiling")]
    #[test]
    fn jsonl_is_flat_numeric_and_carries_parent() {
        let mut p = Profiler::new(ProfConfig { stride: 8 });
        p.record_ns(Span::RunLoop, 1_000_000);
        p.add_cycles(Span::RunLoop, 500);
        assert!(p.begin_tick());
        let mut s = p.stamp();
        p.lap(Span::RetireDispatch, &mut s);
        p.end_tick();
        let text = p.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        let root = text.lines().next().unwrap();
        assert!(root.contains("\"span\":0"), "{root}");
        assert!(root.contains("\"stride\":1"), "{root}");
        assert!(root.contains("\"cycles\":500"), "{root}");
        assert!(!root.contains("\"parent\""), "root has no parent: {root}");
        let child = text.lines().nth(1).unwrap();
        assert!(child.contains("\"stride\":8"), "{child}");
        assert!(
            child.contains(&format!("\"parent\":{}", Span::Tick.id())),
            "{child}"
        );
    }

    #[test]
    fn shared_table_accumulates_across_threads() {
        let table = std::sync::Arc::new(SharedSpanTable::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let t = std::sync::Arc::clone(&table);
                scope.spawn(move || {
                    for _ in 0..100 {
                        t.record_ns(Span::Score, 250);
                    }
                });
            }
        });
        let snap = table.snapshot();
        assert_eq!(snap[Span::Score as usize].calls, 400);
        assert_eq!(snap[Span::Score as usize].wall_ns, 100_000);
        let jsonl = table.to_jsonl(Some(3));
        assert!(jsonl.contains("\"shard\":3"), "{jsonl}");
        assert_eq!(jsonl.lines().count(), 1);
    }

    #[cfg(feature = "profiling")]
    #[test]
    fn lap_cost_is_subtracted() {
        let mut p = Profiler::new(ProfConfig { stride: 1 });
        // Force a known calibration larger than any real lap.
        p.lap_cost_ns = u64::MAX;
        assert!(p.begin_tick());
        let mut s = p.stamp();
        p.lap(Span::Tick, &mut s);
        assert_eq!(p.stat(Span::Tick).wall_ns, 0, "saturating subtraction");
        assert_eq!(p.stat(Span::Tick).calls, 1);
    }
}
