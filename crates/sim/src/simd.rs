//! Lane-width SIMD machinery shared by the perceptron's weight gathers and
//! the simulator's packed tag scans.
//!
//! Two primitive shapes cover every vectorized hot path in the workspace:
//!
//! * **Gather-and-sum** ([`sum_gather_i32`], [`sum_batch_transposed`]) —
//!   read `i32` weights at `u32` indices from one flat slice and add them
//!   up. This is exactly perceptron inference over the PR-2 arena; the
//!   batched form scores many candidates against a feature-major
//!   (transposed) index buffer so one pass over a feature's weight table
//!   serves the whole batch.
//! * **Equality scan** ([`find_u64`]) — first position of a `u64` needle in
//!   a packed slice. This is the SoA cache's tag probe, its invalid-way
//!   victim scan, and the duplicate-tag invariant check.
//!
//! Every primitive has two implementations with **bit-identical** results:
//!
//! * a portable, manually-unrolled 8-lane (gathers) / 4-lane (tag scans)
//!   fallback that compiles on every target and contains no `std::arch`
//!   code at all, and
//! * an x86-64 AVX2 path (`_mm256_i32gather_epi32` gathers,
//!   `_mm256_cmpeq_epi64` compares) compiled only on x86-64 and selected
//!   at runtime via `is_x86_feature_detected!`.
//!
//! Identity holds because the summed values are `i32` weights whose totals
//! stay far inside `i32` range (no overflow, and integer addition is
//! associative), and because scans report the *first* matching lane.
//!
//! # Dispatch
//!
//! The level is resolved once per process and cached. `PPF_NO_SIMD`
//! (any value other than empty/`0`/`off`/`false`/`no`) forces the portable
//! path. Otherwise, on CPUs that report AVX2, the dispatcher **calibrates**:
//! it times both implementations of the batched gather on a synthetic
//! workload (~a hundred microseconds, once per process) and keeps the
//! winner. Hardware gathers are microcoded on several x86
//! microarchitectures (pre-Zen 4 AMD, and most VMs that mask the uarch),
//! where `vpgatherdd` costs more than eight scalar loads — blind
//! "AVX2-if-present" dispatch would *lose* throughput there. Both
//! implementations are bit-identical, so the calibration outcome can only
//! affect speed, never results. `PPF_FORCE_SIMD` (same truthy convention)
//! skips calibration and trusts the feature bit.
//!
//! Tests compare the implementations directly (they are all `pub`) instead
//! of racing on the process-global level; [`force_level`] exists for the
//! few that need to pin the dispatcher itself.

use std::sync::atomic::{AtomicU8, Ordering};

/// Accumulator lanes in the portable unrolled gather loops (and `i32`
/// lanes per AVX2 vector).
pub const LANES: usize = 8;

/// Which implementation the dispatcher selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Manually-unrolled scalar code; compiles everywhere.
    Portable,
    /// x86-64 AVX2 gathers and packed compares.
    Avx2,
}

/// Cached dispatch level: 0 = unresolved, 1 = portable, 2 = AVX2.
static LEVEL: AtomicU8 = AtomicU8::new(0);

/// True when `raw` (the value of `PPF_NO_SIMD`, `None` when unset) disables
/// the SIMD paths. Follows the workspace's env-flag conventions
/// (`PPF_CHECK_INVARIANTS`, `PPF_TELEMETRY`): empty and the usual negative
/// words mean "not disabled", anything else disables.
pub fn no_simd(raw: Option<&str>) -> bool {
    match raw {
        None => false,
        Some(s) => !matches!(
            s.trim().to_ascii_lowercase().as_str(),
            "" | "0" | "off" | "false" | "no"
        ),
    }
}

/// True when `raw` (the value of `PPF_FORCE_SIMD`, `None` when unset) skips
/// the calibration shoot-out and trusts CPU feature detection alone. Same
/// truthy convention as [`no_simd`].
pub fn force_simd(raw: Option<&str>) -> bool {
    no_simd(raw)
}

#[cfg(target_arch = "x86_64")]
fn detect() -> SimdLevel {
    if std::arch::is_x86_feature_detected!("avx2") {
        SimdLevel::Avx2
    } else {
        SimdLevel::Portable
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> SimdLevel {
    SimdLevel::Portable
}

/// Times both implementations on a synthetic workload shaped like the
/// *real* inference profile and reports whether the AVX2 path wins.
///
/// Shape matters here: a dense 64-wide batch over an L1-resident arena
/// flatters hardware gathers, but the simulator mostly scores **small
/// depth windows** (1–8 candidates, so the masked-tail gather path runs
/// constantly) against the **paper-sized ~88 KB arena** (L2-resident),
/// plus single-candidate rescores. The calibration loop reproduces that
/// mix — window widths {1, 1, 1, 3, 3, 8} plus a lone nine-index gather —
/// so the winner it picks is the winner the sweep will see. Best-of-three
/// trials absorb scheduler noise; the whole shoot-out costs well under a
/// millisecond, once per process. On cores with microcoded gathers the
/// AVX2 path loses this mix by 2× or more, far wider than timer noise.
#[cfg(target_arch = "x86_64")]
pub fn avx2_wins_calibration() -> bool {
    use std::hint::black_box;

    if detect() != SimdLevel::Avx2 {
        return false;
    }

    // The paper's Table 3 arena: 22,656 i32 weights (~88 KB).
    const ARENA: usize = 22_656;
    const FEATURES: usize = 9;
    const STRIDE: usize = 64;
    const WINDOWS: [usize; 6] = [1, 1, 1, 3, 3, 8];
    const REPS: usize = 48;

    let mut arena = vec![0i32; ARENA];
    for (i, w) in arena.iter_mut().enumerate() {
        *w = (i as i32 * 7 % 31) - 16;
    }
    let mut idx = [0u32; FEATURES * STRIDE];
    let mut s = 0x9e37_79b9_7f4a_7c15u64;
    for slot in idx.iter_mut() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *slot = ((s >> 33) % ARENA as u64) as u32;
    }
    let single: [u32; FEATURES] = std::array::from_fn(|f| idx[f * STRIDE]);

    let time = |level: SimdLevel| {
        let mut best = std::time::Duration::MAX;
        let mut out = [0i32; STRIDE];
        for _ in 0..3 {
            let t = std::time::Instant::now();
            for _ in 0..REPS {
                for &n in &WINDOWS {
                    match level {
                        SimdLevel::Avx2 => {
                            sum_batch_transposed_avx2(
                                black_box(&arena),
                                black_box(&idx),
                                FEATURES,
                                STRIDE,
                                n,
                                &mut out,
                            );
                            black_box(sum_gather_i32_avx2(black_box(&arena), &single));
                        }
                        SimdLevel::Portable => {
                            sum_batch_transposed_portable(
                                black_box(&arena),
                                black_box(&idx),
                                FEATURES,
                                STRIDE,
                                n,
                                &mut out,
                            );
                            black_box(sum_gather_i32_portable(black_box(&arena), &single));
                        }
                    }
                    black_box(&out);
                }
            }
            best = best.min(t.elapsed());
        }
        best
    };

    // Interleave a warmup of each before timing so neither pays the
    // first-touch cost of the arena or the AVX2 frequency transition.
    let _ = time(SimdLevel::Portable);
    let _ = time(SimdLevel::Avx2);
    time(SimdLevel::Avx2) < time(SimdLevel::Portable)
}

fn resolve_level() -> SimdLevel {
    if no_simd(std::env::var("PPF_NO_SIMD").ok().as_deref()) {
        return SimdLevel::Portable;
    }
    match detect() {
        SimdLevel::Portable => SimdLevel::Portable,
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            if force_simd(std::env::var("PPF_FORCE_SIMD").ok().as_deref())
                || avx2_wins_calibration()
            {
                SimdLevel::Avx2
            } else {
                SimdLevel::Portable
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        SimdLevel::Avx2 => unreachable!("AVX2 cannot be detected off x86-64"),
    }
}

/// The implementation the dispatching entry points use, resolved once per
/// process from `PPF_NO_SIMD`, CPU feature detection, and the calibration
/// shoot-out (see the module docs).
pub fn active_level() -> SimdLevel {
    match LEVEL.load(Ordering::Relaxed) {
        1 => SimdLevel::Portable,
        2 => SimdLevel::Avx2,
        _ => {
            let level = resolve_level();
            LEVEL.store(if level == SimdLevel::Avx2 { 2 } else { 1 }, Ordering::Relaxed);
            level
        }
    }
}

/// Pins the dispatch level (`Some`) or clears the cache so the next call to
/// [`active_level`] re-resolves from the environment (`None`). Process
/// global — only for single-threaded tests of the dispatcher.
pub fn force_level(level: Option<SimdLevel>) {
    let v = match level {
        None => 0,
        Some(SimdLevel::Portable) => 1,
        Some(SimdLevel::Avx2) => 2,
    };
    LEVEL.store(v, Ordering::Relaxed);
}

/// Panics (like the scalar slice-index path would) if any index in `idx` is
/// out of bounds for `weights`; the AVX2 gathers need the check up front
/// because a hardware gather has no bounds checking of its own.
#[inline]
fn check_indices(weights: &[i32], idx: &[u32]) {
    // Offsets ride in i32 gather lanes; the arenas here are a few tens of
    // thousands of entries, nowhere near the limit.
    assert!(weights.len() <= i32::MAX as usize, "weight slice too large for i32 gather offsets");
    for &i in idx {
        assert!((i as usize) < weights.len(), "index {i} out of bounds for {}", weights.len());
    }
}

/// Sums `weights[i]` over the indices in `idx` — perceptron inference over
/// the flat arena. Dispatches to AVX2 when available, else the portable
/// unrolled loop; both match a plain scalar gather bit-for-bit.
#[inline]
pub fn sum_gather_i32(weights: &[i32], idx: &[u32]) -> i32 {
    #[cfg(target_arch = "x86_64")]
    if active_level() == SimdLevel::Avx2 {
        return sum_gather_i32_avx2(weights, idx);
    }
    sum_gather_i32_portable(weights, idx)
}

/// Portable [`sum_gather_i32`]: eight independent accumulator lanes,
/// manually unrolled, with a scalar tail.
pub fn sum_gather_i32_portable(weights: &[i32], idx: &[u32]) -> i32 {
    let mut chunks = idx.chunks_exact(LANES);
    let mut acc = [0i32; LANES];
    for c in chunks.by_ref() {
        acc[0] += weights[c[0] as usize];
        acc[1] += weights[c[1] as usize];
        acc[2] += weights[c[2] as usize];
        acc[3] += weights[c[3] as usize];
        acc[4] += weights[c[4] as usize];
        acc[5] += weights[c[5] as usize];
        acc[6] += weights[c[6] as usize];
        acc[7] += weights[c[7] as usize];
    }
    let mut sum = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for &i in chunks.remainder() {
        sum += weights[i as usize];
    }
    sum
}

/// AVX2 [`sum_gather_i32`]: 8-lane hardware gathers, with the tail handled
/// by one masked gather (inactive lanes contribute zero) instead of a
/// scalar loop.
#[cfg(target_arch = "x86_64")]
pub fn sum_gather_i32_avx2(weights: &[i32], idx: &[u32]) -> i32 {
    check_indices(weights, idx);
    // SAFETY: AVX2 is verified by the caller reaching this path only via
    // runtime detection (or a test that checked the feature); all gather
    // offsets were bounds-checked above.
    unsafe { sum_gather_i32_avx2_impl(weights, idx) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sum_gather_i32_avx2_impl(weights: &[i32], idx: &[u32]) -> i32 {
    use std::arch::x86_64::*;
    let base = weights.as_ptr();
    // SAFETY (whole body): loads read `LANES` u32s from within `idx` or
    // from local buffers; gathers read in-bounds offsets (checked by the
    // caller) scaled by 4 from `base`.
    unsafe {
        let mut accv = _mm256_setzero_si256();
        let mut chunks = idx.chunks_exact(LANES);
        for c in chunks.by_ref() {
            let iv = _mm256_loadu_si256(c.as_ptr().cast());
            accv = _mm256_add_epi32(accv, _mm256_i32gather_epi32::<4>(base, iv));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            // Masked tail gather: live lanes carry real offsets and an
            // all-ones mask; dead lanes keep offset 0 with a zero mask, so
            // the hardware never touches memory for them and they add 0.
            let mut ibuf = [0u32; LANES];
            ibuf[..rem.len()].copy_from_slice(rem);
            let mut mbuf = [0i32; LANES];
            for m in &mut mbuf[..rem.len()] {
                *m = -1;
            }
            let iv = _mm256_loadu_si256(ibuf.as_ptr().cast());
            let mv = _mm256_loadu_si256(mbuf.as_ptr().cast());
            let g = _mm256_mask_i32gather_epi32::<4>(_mm256_setzero_si256(), base, iv, mv);
            accv = _mm256_add_epi32(accv, g);
        }
        // Horizontal sum of the eight i32 lanes.
        let lo = _mm256_castsi256_si128(accv);
        let hi = _mm256_extracti128_si256::<1>(accv);
        let s = _mm_add_epi32(lo, hi);
        let s = _mm_hadd_epi32(s, s);
        let s = _mm_hadd_epi32(s, s);
        _mm_cvtsi128_si32(s)
    }
}

/// Batched gather-and-sum over a feature-major (transposed) index buffer:
/// candidate `c` of `n` sums `weights[idx[f * stride + c]]` over
/// `f < features` into `out[c]`. The transposition means each feature's
/// weight table is swept once per batch — across the batch the gathers for
/// one feature land in the same few cache lines.
///
/// # Panics
///
/// Panics if `n > stride`, the index buffer is too short, `out` is shorter
/// than `n`, or any used index is out of bounds.
#[inline]
pub fn sum_batch_transposed(
    weights: &[i32],
    idx: &[u32],
    features: usize,
    stride: usize,
    n: usize,
    out: &mut [i32],
) {
    assert!(n <= stride, "batch of {n} exceeds transposed stride {stride}");
    assert!(features * stride <= idx.len() || features == 0, "transposed index buffer too short");
    assert!(out.len() >= n, "output slice shorter than batch");
    #[cfg(target_arch = "x86_64")]
    if active_level() == SimdLevel::Avx2 {
        sum_batch_transposed_avx2(weights, idx, features, stride, n, out);
        return;
    }
    sum_batch_transposed_portable(weights, idx, features, stride, n, out);
}

/// Portable [`sum_batch_transposed`]: blocks of eight candidates with eight
/// independent accumulators, scalar tail per candidate.
pub fn sum_batch_transposed_portable(
    weights: &[i32],
    idx: &[u32],
    features: usize,
    stride: usize,
    n: usize,
    out: &mut [i32],
) {
    let mut c0 = 0usize;
    while c0 + LANES <= n {
        let mut acc = [0i32; LANES];
        for f in 0..features {
            let row = &idx[f * stride + c0..f * stride + c0 + LANES];
            for (a, &i) in acc.iter_mut().zip(row) {
                *a += weights[i as usize];
            }
        }
        out[c0..c0 + LANES].copy_from_slice(&acc);
        c0 += LANES;
    }
    for c in c0..n {
        let mut sum = 0i32;
        for f in 0..features {
            sum += weights[idx[f * stride + c] as usize];
        }
        out[c] = sum;
    }
}

/// AVX2 [`sum_batch_transposed`]: one 8-lane gather per feature per block
/// of eight candidates; the final partial block uses masked gathers.
#[cfg(target_arch = "x86_64")]
pub fn sum_batch_transposed_avx2(
    weights: &[i32],
    idx: &[u32],
    features: usize,
    stride: usize,
    n: usize,
    out: &mut [i32],
) {
    for f in 0..features {
        check_indices(weights, &idx[f * stride..f * stride + n]);
    }
    // SAFETY: AVX2 presence guaranteed by the dispatching caller; all used
    // offsets bounds-checked above.
    unsafe { sum_batch_transposed_avx2_impl(weights, idx, features, stride, n, out) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sum_batch_transposed_avx2_impl(
    weights: &[i32],
    idx: &[u32],
    features: usize,
    stride: usize,
    n: usize,
    out: &mut [i32],
) {
    use std::arch::x86_64::*;
    let base = weights.as_ptr();
    // SAFETY (whole body): index loads stay inside `idx` (callers checked
    // `features * stride <= idx.len()` and `n <= stride`); gather offsets
    // were bounds-checked; stores stay inside `out[..n]`.
    unsafe {
        let mut c0 = 0usize;
        while c0 + LANES <= n {
            let mut accv = _mm256_setzero_si256();
            for f in 0..features {
                let iv = _mm256_loadu_si256(idx.as_ptr().add(f * stride + c0).cast());
                accv = _mm256_add_epi32(accv, _mm256_i32gather_epi32::<4>(base, iv));
            }
            _mm256_storeu_si256(out.as_mut_ptr().add(c0).cast(), accv);
            c0 += LANES;
        }
        let rem = n - c0;
        if rem > 0 {
            let mut mbuf = [0i32; LANES];
            for m in &mut mbuf[..rem] {
                *m = -1;
            }
            let mv = _mm256_loadu_si256(mbuf.as_ptr().cast());
            let mut accv = _mm256_setzero_si256();
            for f in 0..features {
                let mut ibuf = [0u32; LANES];
                ibuf[..rem].copy_from_slice(&idx[f * stride + c0..f * stride + c0 + rem]);
                let iv = _mm256_loadu_si256(ibuf.as_ptr().cast());
                let g = _mm256_mask_i32gather_epi32::<4>(_mm256_setzero_si256(), base, iv, mv);
                accv = _mm256_add_epi32(accv, g);
            }
            let mut obuf = [0i32; LANES];
            _mm256_storeu_si256(obuf.as_mut_ptr().cast(), accv);
            out[c0..n].copy_from_slice(&obuf[..rem]);
        }
    }
}

/// First position of `needle` in `haystack` — the packed tag scan behind
/// the SoA cache's probes, victim selection, and duplicate-tag invariant.
#[inline]
pub fn find_u64(haystack: &[u64], needle: u64) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    if active_level() == SimdLevel::Avx2 {
        return find_u64_avx2(haystack, needle);
    }
    find_u64_portable(haystack, needle)
}

/// Portable [`find_u64`]: four-way unrolled scan with early exit per block.
pub fn find_u64_portable(haystack: &[u64], needle: u64) -> Option<usize> {
    let mut chunks = haystack.chunks_exact(4);
    let mut base = 0usize;
    for c in chunks.by_ref() {
        if c[0] == needle {
            return Some(base);
        }
        if c[1] == needle {
            return Some(base + 1);
        }
        if c[2] == needle {
            return Some(base + 2);
        }
        if c[3] == needle {
            return Some(base + 3);
        }
        base += 4;
    }
    for (i, &t) in chunks.remainder().iter().enumerate() {
        if t == needle {
            return Some(base + i);
        }
    }
    None
}

/// AVX2 [`find_u64`]: 4×64-bit packed compares; the lane mask's lowest set
/// bit preserves first-match semantics.
#[cfg(target_arch = "x86_64")]
pub fn find_u64_avx2(haystack: &[u64], needle: u64) -> Option<usize> {
    // SAFETY: AVX2 presence guaranteed by the dispatching caller (or a
    // test that detected it); loads stay inside `haystack`.
    unsafe { find_u64_avx2_impl(haystack, needle) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn find_u64_avx2_impl(haystack: &[u64], needle: u64) -> Option<usize> {
    use std::arch::x86_64::*;
    // SAFETY (whole body): each load reads four u64s from inside a
    // `chunks_exact(4)` chunk of `haystack`.
    unsafe {
        let nv = _mm256_set1_epi64x(needle as i64);
        let mut chunks = haystack.chunks_exact(4);
        let mut base = 0usize;
        for c in chunks.by_ref() {
            let v = _mm256_loadu_si256(c.as_ptr().cast());
            let m = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v, nv))) as u32;
            if m != 0 {
                return Some(base + m.trailing_zeros() as usize);
            }
            base += 4;
        }
        for (i, &t) in chunks.remainder().iter().enumerate() {
            if t == needle {
                return Some(base + i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Plain scalar reference the fancy paths must match bit-for-bit.
    fn scalar_sum(weights: &[i32], idx: &[u32]) -> i32 {
        idx.iter().map(|&i| weights[i as usize]).sum()
    }

    #[test]
    fn no_simd_follows_env_conventions() {
        assert!(!no_simd(None));
        for v in ["", "0", "off", "FALSE", "no", "  0  "] {
            assert!(!no_simd(Some(v)), "{v:?}");
        }
        for v in ["1", "on", "true", "yes", "anything"] {
            assert!(no_simd(Some(v)), "{v:?}");
        }
    }

    #[test]
    fn active_level_respects_no_simd_env() {
        // verify.sh runs the suite once normally and once under
        // PPF_NO_SIMD=1; this test pins the dispatcher to whichever the
        // environment demands. (Read-only: never mutates process env.)
        let disabled = no_simd(std::env::var("PPF_NO_SIMD").ok().as_deref());
        if disabled {
            assert_eq!(active_level(), SimdLevel::Portable, "PPF_NO_SIMD must force portable");
        }
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn calibration_runs_on_avx2_hosts() {
        // The winner is host-dependent (microcoded gathers lose); only the
        // mechanics are pinned here — it must complete and be callable
        // repeatedly without touching the process-global level.
        if detect() == SimdLevel::Avx2 {
            eprintln!("calibration: avx2_wins = {}", avx2_wins_calibration());
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let w = [5i32, -3, 7];
        assert_eq!(sum_gather_i32_portable(&w, &[]), 0);
        assert_eq!(sum_gather_i32(&w, &[]), 0);
        assert_eq!(sum_gather_i32(&w, &[2]), 7);
        assert_eq!(find_u64(&[], 9), None);
        assert_eq!(find_u64_portable(&[9], 9), Some(0));
        let mut out = [0i32; 4];
        sum_batch_transposed(&w, &[], 0, 4, 0, &mut out);
        sum_batch_transposed_portable(&w, &[], 0, 4, 0, &mut out);
    }

    #[test]
    fn remainder_lane_widths_match_scalar() {
        // Lengths straddling the 8-lane chunking: 0..=19 covers empty,
        // sub-lane, exact, and >lane-width remainders.
        let weights: Vec<i32> = (0..97).map(|i| (i * 7 % 31) - 16).collect();
        for len in 0..20usize {
            let idx: Vec<u32> = (0..len).map(|i| ((i * 13 + 5) % weights.len()) as u32).collect();
            let want = scalar_sum(&weights, &idx);
            assert_eq!(sum_gather_i32_portable(&weights, &idx), want, "portable len {len}");
            assert_eq!(sum_gather_i32(&weights, &idx), want, "dispatch len {len}");
            #[cfg(target_arch = "x86_64")]
            if detect() == SimdLevel::Avx2 {
                assert_eq!(sum_gather_i32_avx2(&weights, &idx), want, "avx2 len {len}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_bounds_checked() {
        sum_gather_i32_portable(&[1, 2, 3], &[0, 7]);
    }

    proptest! {
        #[test]
        fn sum_gather_matches_scalar(
            weights in proptest::collection::vec(-16i32..16, 1..200),
            raw_idx in proptest::collection::vec(0usize..10_000, 0..40),
        ) {
            let idx: Vec<u32> = raw_idx.iter().map(|&i| (i % weights.len()) as u32).collect();
            let want = scalar_sum(&weights, &idx);
            prop_assert_eq!(sum_gather_i32_portable(&weights, &idx), want);
            prop_assert_eq!(sum_gather_i32(&weights, &idx), want);
            #[cfg(target_arch = "x86_64")]
            if detect() == SimdLevel::Avx2 {
                prop_assert_eq!(sum_gather_i32_avx2(&weights, &idx), want);
            }
        }

        #[test]
        fn batch_matches_per_candidate(
            weights in proptest::collection::vec(-16i32..16, 1..200),
            features in 1usize..12,
            n in 0usize..24,
            seed in 0u64..1_000_000,
        ) {
            let stride = 24usize;
            let mut idx = vec![0u32; features * stride];
            let mut s = seed;
            for slot in idx.iter_mut() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *slot = ((s >> 33) % weights.len() as u64) as u32;
            }
            // Per-candidate scalar reference over the same transposed buffer.
            let want: Vec<i32> = (0..n)
                .map(|c| (0..features).map(|f| weights[idx[f * stride + c] as usize]).sum())
                .collect();
            let mut got = vec![0i32; n];
            sum_batch_transposed_portable(&weights, &idx, features, stride, n, &mut got);
            prop_assert_eq!(&got, &want);
            let mut got2 = vec![0i32; n];
            sum_batch_transposed(&weights, &idx, features, stride, n, &mut got2);
            prop_assert_eq!(&got2, &want);
            #[cfg(target_arch = "x86_64")]
            if detect() == SimdLevel::Avx2 {
                let mut got3 = vec![0i32; n];
                sum_batch_transposed_avx2(&weights, &idx, features, stride, n, &mut got3);
                prop_assert_eq!(&got3, &want);
            }
        }

        #[test]
        fn find_matches_position(
            haystack in proptest::collection::vec(0u64..32, 0..40),
            needle in 0u64..32,
        ) {
            let want = haystack.iter().position(|&t| t == needle);
            prop_assert_eq!(find_u64_portable(&haystack, needle), want);
            prop_assert_eq!(find_u64(&haystack, needle), want);
            #[cfg(target_arch = "x86_64")]
            if detect() == SimdLevel::Avx2 {
                prop_assert_eq!(find_u64_avx2(&haystack, needle), want);
            }
        }
    }

    #[test]
    fn find_reports_first_of_duplicates() {
        let h = [7u64, 3, 7, 7, 1, 7, 7, 7, 7];
        assert_eq!(find_u64_portable(&h, 7), Some(0));
        assert_eq!(find_u64(&h, 7), Some(0));
        assert_eq!(find_u64(&h[1..], 7), Some(1));
        #[cfg(target_arch = "x86_64")]
        if detect() == SimdLevel::Avx2 {
            assert_eq!(find_u64_avx2(&h, 7), Some(0));
            assert_eq!(find_u64_avx2(&h[1..], 7), Some(1));
        }
    }
}
