//! System configuration (paper Table 1) and the DPC-2 constraint variants.

/// Core pipeline parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions dispatched into the ROB per cycle.
    pub fetch_width: u32,
    /// Instructions retired from the ROB head per cycle.
    pub retire_width: u32,
    /// Reorder-buffer entries.
    pub rob_size: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self { fetch_width: 6, retire_width: 4, rob_size: 256 }
    }
}

/// Cache replacement policy.
///
/// The paper evaluates with LRU everywhere (Table 1); SRRIP is provided as
/// an extension for scan-resistance studies (cf. the prefetch-aware cache
/// management work the paper cites in Sec 7.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used (the paper's configuration).
    #[default]
    Lru,
    /// Static re-reference interval prediction (2-bit RRPV).
    Srrip,
}

/// One cache level's geometry and timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Access latency in core cycles (added on a hit at this level).
    pub latency: u64,
    /// Miss-status-holding registers (outstanding misses).
    pub mshrs: usize,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
}

impl CacheConfig {
    /// Number of sets implied by size/ways (each line is 64 B).
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not an exact power-of-two set count.
    pub fn sets(&self) -> usize {
        let lines = (self.size_bytes / crate::addr::BLOCK_SIZE) as usize;
        assert!(lines.is_multiple_of(self.ways), "capacity not divisible by ways");
        let sets = lines / self.ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

/// DRAM channel timing, expressed in core cycles (4 GHz core).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Independent channels (each with its own data bus).
    pub channels: usize,
    /// Banks per channel.
    pub banks: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Column access latency when the row is open (core cycles).
    pub row_hit_latency: u64,
    /// Precharge + activate + column access when the row must change.
    pub row_miss_latency: u64,
    /// Data-bus occupancy per 64-byte transfer (core cycles). 20 cycles at
    /// 4 GHz ≈ 12.8 GB/s; 80 cycles ≈ 3.2 GB/s (the DPC-2 low-BW variant).
    pub transfer_cycles: u64,
    /// Bank occupancy of a column command to an open row (tCCD; core
    /// cycles). Same-row accesses pipeline at this rate even though each
    /// still takes `row_hit_latency` to return data.
    pub column_cycles: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            channels: 1,
            banks: 8,
            row_bytes: 4096,
            row_hit_latency: 50,
            row_miss_latency: 130,
            transfer_cycles: 20,
            column_cycles: 6,
        }
    }
}

impl DramConfig {
    /// Effective peak bandwidth in GB/s assuming a 4 GHz core clock.
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        let bytes_per_cycle =
            self.channels as f64 * crate::addr::BLOCK_SIZE as f64 / self.transfer_cycles as f64;
        bytes_per_cycle * 4.0 // 4e9 cycles/s * bytes/cycle = bytes/s; /1e9 => GB/s
    }
}

/// Prefetch-path parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Maximum prefetches accepted from the prefetcher per trigger.
    pub queue_size: usize,
    /// Maximum prefetches issued to the memory system per cycle.
    pub issue_per_cycle: usize,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self { queue_size: 32, issue_per_cycle: 2 }
    }
}

/// Full system configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemConfig {
    /// Number of cores.
    pub cores: usize,
    /// Core pipeline.
    pub core: CoreConfig,
    /// Private per-core L1 data cache.
    pub l1d: CacheConfig,
    /// Private per-core L2.
    pub l2: CacheConfig,
    /// Shared last-level cache (total, across all cores).
    pub llc: CacheConfig,
    /// Shared DRAM.
    pub dram: DramConfig,
    /// Prefetch path.
    pub prefetch: PrefetchConfig,
}

impl SystemConfig {
    /// The paper's default single-core configuration: 2 MB LLC, single
    /// 12.8 GB/s DRAM channel.
    pub fn single_core() -> Self {
        Self::multi_core(1)
    }

    /// N-core configuration with 2 MB LLC per core (8 MB for 4 cores,
    /// 16 MB for 8 cores), one shared DRAM channel.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn multi_core(cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        Self {
            cores,
            core: CoreConfig::default(),
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                latency: 4,
                mshrs: 8,
                policy: ReplacementPolicy::Lru,
            },
            l2: CacheConfig {
                size_bytes: 512 * 1024,
                ways: 8,
                latency: 10,
                mshrs: 32,
                policy: ReplacementPolicy::Lru,
            },
            llc: CacheConfig {
                size_bytes: 2 * 1024 * 1024 * cores as u64,
                ways: 16,
                latency: 20,
                mshrs: 64 * cores,
                policy: ReplacementPolicy::Lru,
            },
            dram: DramConfig::default(),
            prefetch: PrefetchConfig::default(),
        }
    }

    /// DPC-2 "low bandwidth" variant: DRAM limited to 3.2 GB/s.
    pub fn low_bandwidth() -> Self {
        let mut c = Self::single_core();
        c.dram.transfer_cycles = 80;
        c
    }

    /// DPC-2 "small LLC" variant: LLC reduced to 512 KB.
    pub fn small_llc() -> Self {
        let mut c = Self::single_core();
        c.llc.size_bytes = 512 * 1024;
        c
    }

    /// Renders the configuration as the paper's Table 1.
    pub fn table1(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("{:<22} {}\n", "Cores", self.cores));
        s.push_str(&format!(
            "{:<22} {}-wide fetch, {}-wide retire, {}-entry ROB\n",
            "Core", self.core.fetch_width, self.core.retire_width, self.core.rob_size
        ));
        for (name, c) in [("L1D", &self.l1d), ("L2", &self.l2), ("LLC (shared)", &self.llc)] {
            s.push_str(&format!(
                "{:<22} {} KB, {}-way, {}-cycle, {} MSHRs\n",
                name,
                c.size_bytes / 1024,
                c.ways,
                c.latency,
                c.mshrs
            ));
        }
        s.push_str(&format!(
            "{:<22} {} channel(s), {} banks, {:.1} GB/s, row hit/miss {}/{} cycles\n",
            "DRAM",
            self.dram.channels,
            self.dram.banks,
            self.dram.peak_bandwidth_gbps(),
            self.dram.row_hit_latency,
            self.dram.row_miss_latency
        ));
        s.push_str(&format!("{:<22} 64 B blocks, 4 KB pages, LRU replacement\n", "Memory"));
        s.push_str(&format!(
            "{:<22} triggered on L2 demand access, fills L2 or LLC, no L1 prefetch\n",
            "Prefetching"
        ));
        s
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::single_core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_sane() {
        let c = SystemConfig::single_core();
        assert_eq!(c.l1d.sets(), 64);
        assert_eq!(c.l2.sets(), 1024);
        assert_eq!(c.llc.sets(), 2048);
    }

    #[test]
    fn multicore_scales_llc() {
        let c4 = SystemConfig::multi_core(4);
        assert_eq!(c4.llc.size_bytes, 8 * 1024 * 1024);
        let c8 = SystemConfig::multi_core(8);
        assert_eq!(c8.llc.size_bytes, 16 * 1024 * 1024);
    }

    #[test]
    fn bandwidth_math() {
        let d = DramConfig::default();
        assert!((d.peak_bandwidth_gbps() - 12.8).abs() < 1e-9);
        let low = SystemConfig::low_bandwidth();
        assert!((low.dram.peak_bandwidth_gbps() - 3.2).abs() < 1e-9);
    }

    #[test]
    fn small_llc_variant() {
        assert_eq!(SystemConfig::small_llc().llc.size_bytes, 512 * 1024);
        // Geometry must still be valid.
        assert_eq!(SystemConfig::small_llc().llc.sets(), 512);
    }

    #[test]
    fn table1_mentions_key_parameters() {
        let t = SystemConfig::multi_core(4).table1();
        assert!(t.contains("8192 KB"));
        assert!(t.contains("12.8 GB/s"));
        assert!(t.contains("LRU"));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        SystemConfig::multi_core(0);
    }
}
