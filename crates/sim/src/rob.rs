//! A minimal reorder buffer: in-order dispatch, out-of-order completion,
//! in-order retirement.
//!
//! Entries are identified by a monotonically increasing sequence number so
//! MSHR waiter lists can wake them when fills arrive.

use std::collections::VecDeque;

/// Completion marker for an entry still waiting on memory.
pub const PENDING: u64 = u64::MAX;

/// The reorder buffer of one core.
#[derive(Debug, Clone)]
pub struct Rob {
    entries: VecDeque<u64>,
    head_seq: u64,
    capacity: usize,
}

impl Rob {
    /// Creates a ROB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB needs capacity");
        Self { entries: VecDeque::with_capacity(capacity), head_seq: 0, capacity }
    }

    /// Whether another instruction can be dispatched.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Number of in-flight entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ROB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Dispatches an instruction completing at `complete_cycle` (use
    /// [`PENDING`] for memory ops waiting on a fill). Returns its sequence
    /// number.
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full.
    pub fn push(&mut self, complete_cycle: u64) -> u64 {
        assert!(self.has_space(), "ROB overflow");
        let seq = self.head_seq + self.entries.len() as u64;
        self.entries.push_back(complete_cycle);
        seq
    }

    /// Marks a pending entry complete at `cycle`. Ignores already-retired
    /// sequence numbers (a fill can arrive after a flushed/retired entry in
    /// degenerate cases).
    pub fn complete(&mut self, seq: u64, cycle: u64) {
        if seq < self.head_seq {
            return;
        }
        let idx = (seq - self.head_seq) as usize;
        if let Some(e) = self.entries.get_mut(idx) {
            *e = cycle;
        }
    }

    /// Returns the completion cycle recorded for `seq`, if it is still in
    /// flight (`None` once retired).
    pub fn completion_of(&self, seq: u64) -> Option<u64> {
        if seq < self.head_seq {
            return None;
        }
        self.entries.get((seq - self.head_seq) as usize).copied()
    }

    /// The completion cycle recorded at the head entry ([`PENDING`] while it
    /// waits on memory), or `None` when the ROB is empty. The head bounds
    /// in-order retirement, so this is the retire term of the simulator's
    /// event horizon: nothing can retire before the head's completion cycle.
    pub fn head_completion(&self) -> Option<u64> {
        self.entries.front().copied()
    }

    /// Retires up to `width` completed instructions from the head at `cycle`;
    /// returns how many retired.
    pub fn retire(&mut self, cycle: u64, width: u32) -> u32 {
        let mut n = 0;
        while n < width {
            match self.entries.front() {
                Some(&c) if c <= cycle => {
                    self.entries.pop_front();
                    self.head_seq += 1;
                    n += 1;
                }
                _ => break,
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inorder_retire_blocks_on_pending() {
        let mut rob = Rob::new(4);
        rob.push(5);
        let seq = rob.push(PENDING);
        rob.push(5);
        // At cycle 10: first retires, second blocks the third.
        assert_eq!(rob.retire(10, 4), 1);
        rob.complete(seq, 9);
        assert_eq!(rob.retire(10, 4), 2);
        assert!(rob.is_empty());
    }

    #[test]
    fn retire_width_respected() {
        let mut rob = Rob::new(8);
        for _ in 0..8 {
            rob.push(0);
        }
        assert_eq!(rob.retire(1, 4), 4);
        assert_eq!(rob.retire(1, 4), 4);
    }

    #[test]
    fn head_completion_tracks_the_front_entry() {
        let mut rob = Rob::new(4);
        assert_eq!(rob.head_completion(), None);
        rob.push(7);
        rob.push(PENDING);
        assert_eq!(rob.head_completion(), Some(7));
        rob.retire(7, 1);
        assert_eq!(rob.head_completion(), Some(PENDING));
    }

    #[test]
    fn seq_numbers_are_stable_across_retirement() {
        let mut rob = Rob::new(4);
        rob.push(0);
        rob.push(0);
        rob.retire(1, 2);
        let seq = rob.push(PENDING);
        assert_eq!(seq, 2);
        rob.complete(seq, 7);
        assert_eq!(rob.completion_of(seq), Some(7));
    }

    #[test]
    fn complete_on_retired_seq_is_ignored() {
        let mut rob = Rob::new(4);
        let seq = rob.push(0);
        rob.retire(1, 1);
        rob.complete(seq, 100); // must not panic or corrupt
        assert!(rob.is_empty());
    }

    #[test]
    fn completion_of_future_retired() {
        let mut rob = Rob::new(2);
        let s = rob.push(3);
        assert_eq!(rob.completion_of(s), Some(3));
        rob.retire(3, 1);
        assert_eq!(rob.completion_of(s), None);
    }

    #[test]
    #[should_panic(expected = "ROB overflow")]
    fn overflow_panics() {
        let mut rob = Rob::new(1);
        rob.push(0);
        rob.push(0);
    }

    #[test]
    fn space_accounting() {
        let mut rob = Rob::new(2);
        assert!(rob.has_space());
        rob.push(0);
        rob.push(0);
        assert!(!rob.has_space());
        rob.retire(0, 1);
        assert!(rob.has_space());
        assert_eq!(rob.len(), 1);
    }
}
