//! Miss-status holding registers.
//!
//! An MSHR file tracks blocks with an outstanding fill. Demands merging into
//! an in-flight *prefetch* MSHR are how "late but useful" prefetches are
//! detected — the paper counts these toward prefetch usefulness because the
//! demand still waits less than a full memory round trip.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::fxhash::FxHashMap;

/// Who initiated the outstanding miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissOrigin {
    /// A demand load/store.
    Demand,
    /// A prefetch.
    Prefetch,
}

/// An outstanding miss.
#[derive(Debug, Clone)]
pub struct MshrEntry {
    /// Cycle the fill will complete.
    pub ready_at: u64,
    /// Demand or prefetch.
    pub origin: MissOrigin,
    /// ROB slots waiting on this fill, with the cycle each started waiting.
    pub waiters: Vec<(u64, u64)>,
    /// A demand merged into this entry while it was a prefetch.
    pub demand_merged: bool,
    /// Some merged request was a store (fill must be dirty).
    pub write: bool,
    /// This entry was counted against the owner's demand-load window.
    pub counted_demand: bool,
    /// Core that created the entry (for prefetch attribution at shared levels).
    pub owner: usize,
}

/// A bounded file of outstanding misses, keyed by block number.
///
/// Readiness is tracked with a lazily-invalidated min-heap of
/// `(ready_at, block)` plus a cached lower bound on the earliest completion,
/// so the common per-cycle `drain_ready` call with nothing ready is a single
/// integer comparison instead of a scan over every entry. A heap node is
/// stale (ignored when popped) once its block is gone or has been promoted
/// to an earlier `ready_at`; every live entry always has a node carrying its
/// exact completion time.
#[derive(Debug)]
pub struct MshrFile {
    capacity: usize,
    entries: FxHashMap<u64, MshrEntry>,
    ready_heap: BinaryHeap<Reverse<(u64, u64)>>,
    /// Lower bound on the earliest `ready_at` (`u64::MAX` when the heap is
    /// empty); may be early after a promote-then-drain, never late.
    next_ready: u64,
}

/// Outcome of trying to allocate an MSHR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrAlloc {
    /// New entry created.
    Allocated,
    /// Merged into an existing entry for the same block; the payload is the
    /// cycle the earlier request will complete.
    Merged(u64),
    /// File full; the request must retry (demand) or drop (prefetch).
    Full,
}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs capacity");
        Self {
            capacity,
            entries: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
            ready_heap: BinaryHeap::with_capacity(capacity),
            next_ready: u64::MAX,
        }
    }

    /// Number of in-flight entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no miss is outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the file is at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Looks up an in-flight entry.
    pub fn get(&self, block: u64) -> Option<&MshrEntry> {
        self.entries.get(&block)
    }

    /// Mutable lookup of an in-flight entry.
    ///
    /// Callers may edit any field except `ready_at` — completion times must
    /// change through [`MshrFile::promote`] so the readiness index stays
    /// consistent.
    pub fn get_mut(&mut self, block: u64) -> Option<&mut MshrEntry> {
        self.entries.get_mut(&block)
    }

    /// Tries to allocate (or merge) an entry for `block` completing at
    /// `ready_at`. On a merge the existing completion time wins and, if the
    /// newcomer is a demand merging into a prefetch, the entry is flagged.
    pub fn allocate(
        &mut self,
        block: u64,
        ready_at: u64,
        origin: MissOrigin,
        write: bool,
        owner: usize,
    ) -> MshrAlloc {
        if let Some(e) = self.entries.get_mut(&block) {
            if origin == MissOrigin::Demand && e.origin == MissOrigin::Prefetch {
                e.demand_merged = true;
            }
            e.write |= write;
            return MshrAlloc::Merged(e.ready_at);
        }
        if self.is_full() {
            return MshrAlloc::Full;
        }
        self.entries.insert(
            block,
            MshrEntry {
                ready_at,
                origin,
                waiters: Vec::new(),
                demand_merged: false,
                write,
                owner,
                counted_demand: false,
            },
        );
        self.ready_heap.push(Reverse((ready_at, block)));
        self.next_ready = self.next_ready.min(ready_at);
        MshrAlloc::Allocated
    }

    /// Pulls an in-flight entry's completion earlier (demand merged into a
    /// prefetch: the controller promotes the request to demand priority).
    /// The new time never moves later and never before `floor`.
    pub fn promote(&mut self, block: u64, credit: u64, floor: u64) {
        if let Some(e) = self.entries.get_mut(&block) {
            let new_ready = e.ready_at.saturating_sub(credit).max(floor).min(e.ready_at);
            if new_ready != e.ready_at {
                e.ready_at = new_ready;
                // The old heap node goes stale; this one carries the live time.
                self.ready_heap.push(Reverse((new_ready, block)));
                self.next_ready = self.next_ready.min(new_ready);
            }
        }
    }

    /// Registers a ROB waiter on an in-flight block, noting when the wait
    /// began (for latency accounting).
    ///
    /// # Panics
    ///
    /// Panics if the block has no entry (callers allocate first).
    pub fn add_waiter(&mut self, block: u64, seq: u64, since: u64) {
        self.entries.get_mut(&block).expect("waiter on missing MSHR").waiters.push((seq, since));
    }

    /// Lower bound on the earliest cycle any in-flight fill completes
    /// (`u64::MAX` when the file is empty). May run early after a
    /// promote-then-drain, never late — so it is a safe contribution to the
    /// simulator's event horizon: no fill from this file can be missed by
    /// skipping straight to this cycle.
    pub fn next_ready(&self) -> u64 {
        self.next_ready
    }

    /// Removes every entry whose fill completes at or before `cycle` into
    /// `out` (cleared first), in deterministic (block-number) order.
    ///
    /// The common nothing-ready call is a single comparison against the
    /// cached lower bound. A ready batch is collected by peeking the heap
    /// before each pop and removing the live entry directly — one hash
    /// removal per drained block; stale nodes (the block was promoted to an
    /// earlier time, or a duplicate node survived a reallocation) find the
    /// entry gone or timestamped differently and are discarded.
    pub fn drain_ready_into(&mut self, cycle: u64, out: &mut Vec<(u64, MshrEntry)>) {
        out.clear();
        if self.next_ready > cycle {
            return;
        }
        while let Some(&Reverse((t, b))) = self.ready_heap.peek() {
            if t > cycle {
                break;
            }
            self.ready_heap.pop();
            // Stale node unless the live entry still completes exactly at `t`
            // (a second node for the same block finds the entry already gone).
            if self.entries.get(&b).is_some_and(|e| e.ready_at == t) {
                let e = self.entries.remove(&b).expect("just found");
                out.push((b, e));
            }
        }
        self.next_ready =
            self.ready_heap.peek().map_or(u64::MAX, |&Reverse((t, _))| t);
        out.sort_unstable_by_key(|&(b, _)| b);
    }

    /// Allocating wrapper around [`MshrFile::drain_ready_into`] (tests and
    /// callers without a scratch buffer).
    pub fn drain_ready(&mut self, cycle: u64) -> Vec<(u64, MshrEntry)> {
        let mut out = Vec::new();
        self.drain_ready_into(cycle, &mut out);
        out
    }

    /// Validates the file's structural invariants, returning a description
    /// of the first violation found:
    ///
    /// - the number of live entries never exceeds the configured capacity,
    /// - `next_ready` is a lower bound on every live completion time (it may
    ///   run early after a promote-then-drain, never late — late would make
    ///   [`MshrFile::drain_ready`] skip due fills),
    /// - every live entry has a heap node carrying its exact `ready_at`
    ///   (otherwise its fill would never be delivered).
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.entries.len() > self.capacity {
            return Err(format!(
                "{} entries exceed capacity {}",
                self.entries.len(),
                self.capacity
            ));
        }
        for (&block, e) in &self.entries {
            if e.ready_at < self.next_ready {
                return Err(format!(
                    "block {block:#x} ready at {} but next_ready {} is later \
                     (drain would skip it)",
                    e.ready_at, self.next_ready
                ));
            }
            if !self.ready_heap.iter().any(|&Reverse((t, b))| b == block && t == e.ready_at) {
                return Err(format!(
                    "block {block:#x} (ready at {}) has no matching heap node",
                    e.ready_at
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_full() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.allocate(1, 10, MissOrigin::Demand, false, 0), MshrAlloc::Allocated);
        assert_eq!(m.allocate(2, 11, MissOrigin::Demand, false, 0), MshrAlloc::Allocated);
        assert_eq!(m.allocate(3, 12, MissOrigin::Demand, false, 0), MshrAlloc::Full);
        assert!(m.is_full());
    }

    #[test]
    fn merge_keeps_original_time() {
        let mut m = MshrFile::new(2);
        m.allocate(5, 100, MissOrigin::Prefetch, false, 0);
        assert_eq!(m.allocate(5, 200, MissOrigin::Demand, true, 0), MshrAlloc::Merged(100));
        assert!(m.get(5).unwrap().demand_merged);
        assert!(m.get(5).unwrap().write);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn prefetch_merging_into_demand_not_flagged() {
        let mut m = MshrFile::new(2);
        m.allocate(5, 100, MissOrigin::Demand, false, 0);
        m.allocate(5, 120, MissOrigin::Prefetch, false, 0);
        assert!(!m.get(5).unwrap().demand_merged);
    }

    #[test]
    fn drain_ready_in_order() {
        let mut m = MshrFile::new(8);
        m.allocate(9, 50, MissOrigin::Demand, false, 0);
        m.allocate(3, 40, MissOrigin::Demand, false, 0);
        m.allocate(7, 60, MissOrigin::Demand, false, 0);
        let done = m.drain_ready(55);
        let blocks: Vec<u64> = done.iter().map(|(b, _)| *b).collect();
        assert_eq!(blocks, vec![3, 9]);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn next_ready_tracks_allocate_promote_drain() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.next_ready(), u64::MAX);
        m.allocate(1, 50, MissOrigin::Demand, false, 0);
        m.allocate(2, 30, MissOrigin::Demand, false, 0);
        assert_eq!(m.next_ready(), 30);
        m.promote(1, 40, 0); // 50 -> 10
        assert_eq!(m.next_ready(), 10);
        m.drain_ready(10);
        // A lower *bound*: the stale (50, 1) node may hold it below the live
        // minimum, but it must never exceed any live completion time.
        assert!(m.next_ready() <= m.get(2).unwrap().ready_at);
        m.drain_ready(u64::MAX);
        assert_eq!(m.next_ready(), u64::MAX);
    }

    #[test]
    fn drain_ready_into_reuses_the_buffer() {
        let mut m = MshrFile::new(4);
        m.allocate(9, 5, MissOrigin::Demand, false, 0);
        m.allocate(3, 5, MissOrigin::Demand, false, 0);
        let mut out = vec![(999, MshrEntry {
            ready_at: 0,
            origin: MissOrigin::Demand,
            waiters: Vec::new(),
            demand_merged: false,
            write: false,
            counted_demand: false,
            owner: 0,
        })];
        m.drain_ready_into(5, &mut out);
        let blocks: Vec<u64> = out.iter().map(|(b, _)| *b).collect();
        assert_eq!(blocks, vec![3, 9], "stale buffer contents must be cleared");
        m.drain_ready_into(5, &mut out);
        assert!(out.is_empty(), "nothing-ready drain must clear the buffer too");
    }

    #[test]
    fn waiters_accumulate() {
        let mut m = MshrFile::new(2);
        m.allocate(4, 30, MissOrigin::Demand, false, 0);
        m.add_waiter(4, 11, 5);
        m.add_waiter(4, 12, 6);
        let done = m.drain_ready(30);
        assert_eq!(done[0].1.waiters, vec![(11, 5), (12, 6)]);
    }

    #[test]
    #[should_panic(expected = "waiter on missing MSHR")]
    fn waiter_requires_entry() {
        MshrFile::new(1).add_waiter(9, 0, 0);
    }

    #[test]
    fn promote_moves_completion_earlier_bounded() {
        let mut m = MshrFile::new(2);
        m.allocate(5, 500, MissOrigin::Prefetch, false, 0);
        m.promote(5, 80, 100);
        assert_eq!(m.get(5).unwrap().ready_at, 420);
        // Floor binds.
        m.promote(5, 1000, 100);
        assert_eq!(m.get(5).unwrap().ready_at, 100);
        // Never moves later.
        m.promote(5, 0, 999);
        assert_eq!(m.get(5).unwrap().ready_at, 100);
        // Missing block is a no-op.
        m.promote(42, 80, 0);
    }

    #[test]
    fn invariants_hold_through_allocate_promote_drain() {
        let mut m = MshrFile::new(4);
        m.allocate(1, 50, MissOrigin::Demand, false, 0);
        m.allocate(2, 500, MissOrigin::Prefetch, false, 0);
        m.allocate(3, 80, MissOrigin::Demand, true, 1);
        m.check_invariants().expect("after allocation");
        m.promote(2, 300, 60);
        m.check_invariants().expect("after promote (stale node in heap)");
        m.drain_ready(100);
        m.check_invariants().expect("after drain");
        m.drain_ready(10_000);
        assert!(m.is_empty());
        m.check_invariants().expect("when empty");
    }

    #[test]
    fn invariants_catch_overfull_file() {
        let mut m = MshrFile::new(1);
        m.allocate(1, 10, MissOrigin::Demand, false, 0);
        // Corrupt: bypass allocate's capacity check.
        m.capacity = 0;
        let err = m.check_invariants().unwrap_err();
        assert!(err.contains("exceed capacity"), "{err}");
    }

    #[test]
    fn invariants_catch_late_next_ready() {
        let mut m = MshrFile::new(2);
        m.allocate(1, 10, MissOrigin::Demand, false, 0);
        // Corrupt: a late lower bound would make drain_ready skip the fill.
        m.next_ready = 20;
        let err = m.check_invariants().unwrap_err();
        assert!(err.contains("next_ready"), "{err}");
    }

    #[test]
    fn invariants_catch_missing_heap_node() {
        let mut m = MshrFile::new(2);
        m.allocate(1, 10, MissOrigin::Demand, false, 0);
        // Corrupt: drop the readiness index; the entry can never drain.
        // (next_ready keeps its valid lower bound so only this check trips.)
        m.ready_heap.clear();
        let err = m.check_invariants().unwrap_err();
        assert!(err.contains("no matching heap node"), "{err}");
    }
}
