//! Opt-in runtime invariant checking for the simulator.
//!
//! Long sweeps can silently corrupt results if an internal structure drifts
//! out of its documented invariants (a duplicated cache tag, an MSHR heap
//! node lost, a prefetch-queue mirror desynchronised). The checker validates
//! the cache / MSHR / prefetch-queue invariants every N cycles and, on a
//! violation, dumps a diagnostic snapshot and panics — turning silent
//! corruption into a loud, attributable failure that the sweep harness
//! isolates to one job.
//!
//! Control via `PPF_CHECK_INVARIANTS`:
//!
//! | value                      | behaviour                                |
//! |----------------------------|------------------------------------------|
//! | unset                      | every 50 000 cycles in debug builds, off in release |
//! | `0`, `off`, `false`, `no`  | disabled                                 |
//! | `1`, `on`, `true`, `yes`   | enabled at the default period            |
//! | `<N>` (positive integer)   | enabled, checked every `N` cycles        |
//!
//! The period is sampled once per [`crate::Simulation`] at construction, so
//! mid-run environment changes do not perturb a simulation.

/// Default check period (cycles) when the checker is enabled without an
/// explicit period. Coarse enough to be invisible in release sweeps, fine
/// enough to localise a corruption to a ~50k-cycle window.
pub const DEFAULT_PERIOD: u64 = 50_000;

/// Resolves the invariant-check period from `PPF_CHECK_INVARIANTS`.
///
/// Returns the cycle period between checks, or `0` for disabled.
pub fn period() -> u64 {
    let raw = std::env::var("PPF_CHECK_INVARIANTS").ok();
    parse(raw.as_deref())
}

/// Pure parser behind [`period`]; `raw` is the variable's value, `None` when
/// unset. Malformed values fall back to the default period (checking too
/// often is recoverable; silently disabling a requested check is not) after
/// a warning on stderr.
fn parse(raw: Option<&str>) -> u64 {
    let Some(raw) = raw else {
        return if cfg!(debug_assertions) { DEFAULT_PERIOD } else { 0 };
    };
    match raw.trim().to_ascii_lowercase().as_str() {
        "0" | "off" | "false" | "no" => 0,
        "" | "1" | "on" | "true" | "yes" => DEFAULT_PERIOD,
        s => match s.parse::<u64>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!(
                    "warning: PPF_CHECK_INVARIANTS={raw:?} is not a period; \
                     checking every {DEFAULT_PERIOD} cycles"
                );
                DEFAULT_PERIOD
            }
        },
    }
}

/// The first cycle strictly after `cycle` on the checker's grid, or
/// `u64::MAX` when checking is disabled (`period == 0`).
///
/// The event-horizon scheduler bounds every cycle skip by this value, so an
/// enabled checker keeps its exact per-`period` cadence even when the
/// simulator jumps dead time — a corruption is still localised to the same
/// window it would be under naive per-cycle ticking.
pub fn next_check(cycle: u64, period: u64) -> u64 {
    if period == 0 {
        return u64::MAX;
    }
    (cycle / period + 1).saturating_mul(period)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_check_lands_on_every_multiple() {
        assert_eq!(next_check(0, 1_000), 1_000);
        assert_eq!(next_check(999, 1_000), 1_000);
        assert_eq!(next_check(1_000, 1_000), 2_000, "a boundary advances to the next one");
        assert_eq!(next_check(1_001, 1_000), 2_000);
    }

    #[test]
    fn next_check_disabled_never_bounds_a_skip() {
        assert_eq!(next_check(123, 0), u64::MAX);
        // Near-overflow periods saturate instead of wrapping behind `cycle`.
        assert_eq!(next_check(u64::MAX - 1, u64::MAX / 2 + 1), u64::MAX);
    }

    #[test]
    fn unset_follows_build_profile() {
        let expect = if cfg!(debug_assertions) { DEFAULT_PERIOD } else { 0 };
        assert_eq!(parse(None), expect);
    }

    #[test]
    fn explicit_off_values_disable() {
        for v in ["0", "off", "false", "no", " OFF ", "False"] {
            assert_eq!(parse(Some(v)), 0, "{v:?}");
        }
    }

    #[test]
    fn explicit_on_values_use_default_period() {
        for v in ["1", "on", "true", "yes", "", "ON"] {
            assert_eq!(parse(Some(v)), DEFAULT_PERIOD, "{v:?}");
        }
    }

    #[test]
    fn numeric_values_set_the_period() {
        assert_eq!(parse(Some("10000")), 10_000);
        assert_eq!(parse(Some(" 7 ")), 7);
    }

    #[test]
    fn malformed_values_fall_back_to_default() {
        for v in ["every-so-often", "-3", "1e6", "10k"] {
            assert_eq!(parse(Some(v)), DEFAULT_PERIOD, "{v:?}");
        }
    }
}
