//! Banked DRAM channel model with row buffers and a shared data bus.
//!
//! The model captures the two effects the paper's results hinge on:
//!
//! 1. **Bandwidth contention** — every 64-byte transfer occupies the channel
//!    data bus for a fixed number of cycles, so useless prefetches delay
//!    demands (Figure 1's IPC loss, and the multicore results).
//! 2. **Row-buffer locality** — accesses to an open row are much cheaper, so
//!    spatially clustered traffic (and DA-AMPM-style batching) pays off.

use crate::config::DramConfig;
use std::collections::VecDeque;

/// How many distinct rows a bank's scheduler window tracks, and for how many
/// cycles a row counts as "open" for reordering purposes. Together these
/// approximate FR-FCFS: a real controller reorders its request queue to
/// batch same-row accesses, so several interleaved streams each enjoy row
/// hits even though their requests alternate in arrival order.
const ROW_WINDOW_ROWS: usize = 6;
const ROW_WINDOW_CYCLES: u64 = 1000;

/// How many pending lower-priority transfers a demand read may jump
/// (demand-first scheduling, expressed as a bus-time credit in multiples of
/// the transfer time).
const DEMAND_PREEMPT_TRANSFERS: u64 = 4;

#[derive(Debug, Clone, Default)]
struct Bank {
    recent_rows: VecDeque<(u64, u64)>, // (row, last access cycle)
    busy_until: u64,
}

impl Bank {
    /// Registers an access to `row` at `cycle`; returns whether the
    /// scheduler window treats it as a row hit.
    fn access_row(&mut self, row: u64, cycle: u64) -> bool {
        self.recent_rows.retain(|&(_, at)| at + ROW_WINDOW_CYCLES >= cycle);
        let hit = if let Some(e) = self.recent_rows.iter_mut().find(|(r, _)| *r == row) {
            e.1 = cycle;
            true
        } else {
            self.recent_rows.push_back((row, cycle));
            if self.recent_rows.len() > ROW_WINDOW_ROWS {
                self.recent_rows.pop_front();
            }
            false
        };
        hit
    }
}

#[derive(Debug, Clone)]
struct Channel {
    banks: Vec<Bank>,
    bus_free_at: u64,
}

/// Running DRAM traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read transfers serviced.
    pub reads: u64,
    /// Write transfers serviced.
    pub writes: u64,
    /// Reads that hit an open row.
    pub row_hits: u64,
    /// Reads that required opening a row.
    pub row_misses: u64,
    /// Total cycles the data bus was occupied.
    pub bus_busy_cycles: u64,
}

impl DramStats {
    /// Row-buffer hit rate over reads.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            return 0.0;
        }
        self.row_hits as f64 / total as f64
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// The DRAM subsystem: one or more channels of banked memory.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    channels: Vec<Channel>,
    /// Counter block.
    pub stats: DramStats,
}

impl Dram {
    /// Builds the DRAM from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero channels or banks.
    pub fn new(cfg: &DramConfig) -> Self {
        assert!(cfg.channels > 0 && cfg.banks > 0, "degenerate DRAM config");
        Self {
            cfg: cfg.clone(),
            channels: vec![
                Channel { banks: vec![Bank::default(); cfg.banks], bus_free_at: 0 };
                cfg.channels
            ],
            stats: DramStats::default(),
        }
    }

    fn route(&self, block: u64) -> (usize, usize, u64) {
        let channel = (block as usize) % self.cfg.channels;
        let blocks_per_row = self.cfg.row_bytes / crate::addr::BLOCK_SIZE;
        let row = block / blocks_per_row;
        // XOR-hash the bank index (as real controllers do) so large
        // power-of-two-aligned regions do not all collapse onto one bank.
        let h = row ^ (row >> 3) ^ (row >> 7) ^ (row >> 13);
        let bank = (h as usize) % self.cfg.banks;
        (channel, bank, row)
    }

    /// Schedules a *demand* read of `block` arriving at the controller at
    /// `cycle`; returns the cycle the data transfer completes. Demand reads
    /// may jump a bounded amount of queued prefetch/write bus time
    /// (demand-first scheduling).
    pub fn schedule_read(&mut self, block: u64, cycle: u64) -> u64 {
        self.stats.reads += 1;
        self.schedule_inner(block, cycle, true, DEMAND_PREEMPT_TRANSFERS)
    }

    /// Schedules a *prefetch* read: same resources, no priority.
    pub fn schedule_prefetch_read(&mut self, block: u64, cycle: u64) -> u64 {
        self.stats.reads += 1;
        self.schedule_inner(block, cycle, true, 0)
    }

    /// Schedules a writeback (fire-and-forget: consumes bank + bus time).
    pub fn schedule_write(&mut self, block: u64, cycle: u64) -> u64 {
        self.stats.writes += 1;
        // A write occupies the same resources as a read; row-hit accounting
        // only tracks reads to keep the metric interpretable.
        self.schedule_inner(block, cycle, false, 0)
    }

    /// The latest cycle at which any channel's data bus is still occupied
    /// (`0` before any traffic).
    ///
    /// Exposed to make the event-horizon analysis auditable: the DRAM model
    /// contributes **no** term to the simulator's horizon because it is
    /// fully passive. Every transfer's completion cycle is computed here,
    /// synchronously, at schedule time and registered as the requesting
    /// MSHR entry's `ready_at` — nothing in the DRAM evolves on its own.
    /// Bank `busy_until` and bus free times only matter when a *new* request
    /// arrives, and a new request requires a prior core or MSHR event that
    /// is itself on the horizon. Skipping a cycle therefore never skips a
    /// DRAM state change that anything could observe.
    pub fn bus_busy_until(&self) -> u64 {
        self.channels.iter().map(|c| c.bus_free_at).max().unwrap_or(0)
    }

    fn schedule_inner(
        &mut self,
        block: u64,
        cycle: u64,
        count_row_stats: bool,
        preempt_transfers: u64,
    ) -> u64 {
        let (ch, bank_idx, row) = self.route(block);
        let channel = &mut self.channels[ch];
        let bank = &mut channel.banks[bank_idx];
        let start = cycle.max(bank.busy_until);
        let hit = bank.access_row(row, start);
        if count_row_stats {
            if hit {
                self.stats.row_hits += 1;
            } else {
                self.stats.row_misses += 1;
            }
        }
        // Occupancy vs. latency: an open-row column command holds the bank
        // only for tCCD, so same-row accesses pipeline; a row miss holds it
        // for the full activate/precharge window. Data returns after the
        // access *latency* either way, then takes the shared bus.
        let (occupancy, latency) = if hit {
            (self.cfg.column_cycles, self.cfg.row_hit_latency)
        } else {
            (self.cfg.row_miss_latency, self.cfg.row_miss_latency)
        };
        bank.busy_until = start + occupancy;
        // Demand-first scheduling: a demand read may start its transfer up
        // to `preempt` cycles before the queued tail (the jumped transfers
        // slip behind it; total bus occupancy is conserved because
        // `bus_free_at` still advances past the tail).
        let preempt = preempt_transfers * self.cfg.transfer_cycles;
        let xfer_start = (start + latency).max(channel.bus_free_at.saturating_sub(preempt));
        channel.bus_free_at =
            channel.bus_free_at.max(xfer_start) + self.cfg.transfer_cycles;
        self.stats.bus_busy_cycles += self.cfg.transfer_cycles;
        xfer_start + self.cfg.transfer_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(&DramConfig::default())
    }

    #[test]
    fn bus_busy_until_tracks_the_latest_transfer() {
        let mut d = dram();
        assert_eq!(d.bus_busy_until(), 0);
        let done = d.schedule_read(0, 100);
        // The transfer's bus occupancy is fixed at schedule time and never
        // moves afterwards — the passivity the event horizon relies on.
        assert_eq!(d.bus_busy_until(), done);
        assert_eq!(d.bus_busy_until(), done);
    }

    #[test]
    fn reset_zeroes_every_dram_counter() {
        // Full struct literal on purpose — a new field fails to compile here
        // until this test (and the warmup reset path) are revisited.
        let mut s = DramStats {
            reads: 1,
            writes: 2,
            row_hits: 3,
            row_misses: 4,
            bus_busy_cycles: 5,
        };
        s.reset();
        assert_eq!(s, DramStats::default());
    }

    #[test]
    fn first_access_is_row_miss() {
        let mut d = dram();
        let done = d.schedule_read(0, 0);
        // row miss (130) + transfer (20)
        assert_eq!(done, 150);
        assert_eq!(d.stats.row_misses, 1);
    }

    #[test]
    fn second_access_same_row_is_hit() {
        let mut d = dram();
        d.schedule_read(0, 0);
        let done = d.schedule_read(1, 0); // same 4 KB row
        assert_eq!(d.stats.row_hits, 1);
        // First access: row miss occupies the bank until 130. The second
        // starts at 130, returns data 50 cycles later (180); the bus is free
        // at 150, so the transfer runs 180..200.
        assert_eq!(done, 200);
    }

    #[test]
    fn open_row_stream_pipelines_at_bus_rate() {
        let mut d = dram();
        d.schedule_read(0, 0); // opens the row (miss, done at 150)
        let mut last = 0;
        for i in 1..=10 {
            last = d.schedule_read(i, 0);
        }
        // Ten row hits must be bus-limited (20 cycles each), not serialized
        // at the 50-cycle CAS latency.
        assert!(last <= 150 + 10 * 20 + 50, "stream too slow: {last}");
        assert_eq!(d.stats.row_hits, 10);
    }

    #[test]
    fn bus_serializes_bandwidth() {
        let mut d = dram();
        // Saturate: many reads to different banks at cycle 0. Transfers must
        // serialize on the single channel at 20 cycles each.
        let mut last = 0;
        for i in 0..16 {
            let blocks_per_row = 4096 / 64;
            last = d.schedule_read(i * blocks_per_row, 0);
        }
        // 16 transfers * 20 cycles = 320 cycles of bus time minimum.
        assert!(last >= 320, "last completion {last}");
        assert_eq!(d.stats.bus_busy_cycles, 16 * 20);
    }

    #[test]
    fn low_bandwidth_slows_transfers() {
        let cfg = DramConfig { transfer_cycles: 80, ..DramConfig::default() };
        let mut d = Dram::new(&cfg);
        let mut last = 0;
        for i in 0..16 {
            // Prefetch reads have no preemption credit: pure serialization.
            last = d.schedule_prefetch_read(i * 64, 0);
        }
        assert!(last >= 16 * 80, "last {last}");
        assert_eq!(d.stats.bus_busy_cycles, 16 * 80);
    }

    #[test]
    fn banks_overlap_access_latency() {
        let mut d = dram();
        let blocks_per_row = 4096 / 64;
        // Prefetch reads (no preemption credit) to two different banks:
        // activations overlap, transfers serialize on the bus.
        let a = d.schedule_prefetch_read(0, 0);
        assert_eq!(a, 150);
        let b = d.schedule_prefetch_read(blocks_per_row, 0);
        assert_eq!(b, 170);
    }

    #[test]
    fn demand_reads_preempt_queued_prefetches() {
        let mut d = dram();
        // Queue a burst of prefetch transfers, then a demand read: the
        // demand must complete earlier than one more FCFS slot would allow.
        let mut last_pf = 0;
        for i in 0..8 {
            last_pf = d.schedule_prefetch_read(i * 64, 0);
        }
        let demand = d.schedule_read(9000, 0);
        assert!(demand < last_pf + 20, "demand {demand} vs prefetch tail {last_pf}");
    }

    #[test]
    fn writes_consume_bus() {
        let mut d = dram();
        d.schedule_write(0, 0);
        assert_eq!(d.stats.writes, 1);
        assert_eq!(d.stats.bus_busy_cycles, 20);
    }

    #[test]
    fn row_hit_rate_metric() {
        let mut d = dram();
        d.schedule_read(0, 0);
        d.schedule_read(1, 0);
        d.schedule_read(2, 0);
        assert!((d.stats.row_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn requests_never_complete_in_the_past() {
        let mut d = dram();
        let done = d.schedule_read(5, 1000);
        assert!(done > 1000);
    }
}
