//! Terminal rendering for the experiment harness: aligned tables and
//! sorted-series "figures" matching the paper's plots.

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (RFC 4180 quoting for cells that need it).
    pub fn to_csv(&self) -> String {
        fn cell(c: &str) -> String {
            if c.contains([',', '"', '\n']) {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        }
        let mut s = String::new();
        for row in std::iter::once(&self.headers).chain(&self.rows) {
            let line: Vec<String> = row.iter().map(|c| cell(c)).collect();
            s.push_str(&line.join(","));
            s.push('\n');
        }
        s
    }

    /// Renders with per-column alignment (first column left, rest right).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
                } else {
                    line.push_str(&format!("  {:>width$}", cells[i], width = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        let mut s = fmt_row(&self.headers);
        s.push_str(&format!("{}\n", "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))));
        for row in &self.rows {
            s.push_str(&fmt_row(row));
        }
        s
    }
}

/// Renders a labelled horizontal bar chart (for speedup "figures").
///
/// Bars are scaled to `width` characters at `max` (values above clip).
pub fn bar_chart(title: &str, items: &[(String, f64)], max: f64, width: usize) -> String {
    let mut s = format!("{title}\n");
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, v) in items {
        let frac = (v / max).clamp(0.0, 1.0);
        let bar = (frac * width as f64).round() as usize;
        s.push_str(&format!(
            "{label:<label_w$} | {:<width$} {v:.3}\n",
            "█".repeat(bar)
        ));
    }
    s
}

/// Renders a sorted-series plot (paper Figs. 11/12: per-mix speedups sorted
/// ascending, one row per bucket of mixes).
pub fn sorted_series(title: &str, mut values: Vec<f64>, width: usize) -> String {
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let mut s = format!("{title} ({} points, sorted ascending)\n", values.len());
    let max = values.iter().cloned().fold(f64::MIN, f64::max).max(1e-9);
    for (i, v) in values.iter().enumerate() {
        let bar = ((v / max) * width as f64).round() as usize;
        s.push_str(&format!("#{:>3} | {:<width$} {v:.3}\n", i, "▪".repeat(bar)));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(vec!["app", "ipc"]);
        t.row(vec!["bwaves", "1.50"]);
        t.row(vec!["x", "10.00"]);
        let out = t.render();
        assert!(out.contains("app"));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_quotes_when_needed() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["plain", "1"]);
        t.row(vec!["with,comma", "with\"quote"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",\"with\"\"quote\"");
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn table_rejects_ragged_rows() {
        TextTable::new(vec!["a", "b"]).row(vec!["only one"]);
    }

    #[test]
    fn bar_chart_scales() {
        let items = vec![("a".to_string(), 1.0), ("bb".to_string(), 2.0)];
        let out = bar_chart("t", &items, 2.0, 10);
        assert!(out.contains("t\n"));
        assert!(out.contains("██████████ 2.000"));
    }

    #[test]
    fn sorted_series_sorts() {
        let out = sorted_series("s", vec![3.0, 1.0, 2.0], 10);
        let pos1 = out.find("1.000").unwrap();
        let pos3 = out.find("3.000").unwrap();
        assert!(pos1 < pos3);
    }
}
