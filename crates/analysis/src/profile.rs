//! Profile-JSONL ingestion and cost-center rendering.
//!
//! The self-profiler ([`ppf_sim::prof`]) exports one flat JSON object per
//! span — numeric values only, same restricted shape as the interval
//! telemetry — so this module reuses [`crate::interval::parse_line`] and
//! stays dependency-free. Records carry *sampled* wall time: fine-grained
//! tick spans are stamped once every `stride` executed ticks, so rendered
//! figures scale `calls`/`wall_ns` by the record's stride to estimate
//! full-run cost. The root `run_loop` span is always recorded at stride 1
//! and anchors the percentage column and the coverage check.

use crate::interval::parse_line;
use crate::render::TextTable;
use ppf_sim::Span;

/// Schema version this parser understands (matches
/// [`ppf_sim::prof::SCHEMA_VERSION`]).
pub const SCHEMA_VERSION: u32 = 1;

/// Keys every profile record must carry.
pub const REQUIRED_KEYS: [&str; 6] = ["v", "span", "calls", "wall_ns", "cycles", "stride"];

/// One parsed profile record: a span's accumulated counters, plus the
/// sampling stride they were collected under and (for serve-side tables)
/// the shard that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The instrumented span.
    pub span: Span,
    /// Sampled call count.
    pub calls: u64,
    /// Sampled wall time, stamp-cost-corrected, in nanoseconds.
    pub wall_ns: u64,
    /// Simulated cycles attributed to the span (0 for serve-side spans).
    pub cycles: u64,
    /// Sampling stride the counters were collected under (1 = every call).
    pub stride: u64,
    /// Originating shard for serve-side tables, if tagged.
    pub shard: Option<u64>,
}

impl SpanRecord {
    /// Full-run wall-time estimate: sampled wall scaled by the stride.
    pub fn est_wall_ns(&self) -> u64 {
        self.wall_ns.saturating_mul(self.stride.max(1))
    }

    /// Full-run call-count estimate: sampled calls scaled by the stride.
    pub fn est_calls(&self) -> u64 {
        self.calls.saturating_mul(self.stride.max(1))
    }
}

/// Parses and validates one profile JSONL line.
///
/// # Errors
///
/// Returns a description of the first problem: malformed JSON, wrong
/// schema version, a missing required key, or an unknown span id.
pub fn parse_record(line: &str) -> Result<SpanRecord, String> {
    let rec = parse_line(line)?;
    let v = rec.get("v").ok_or_else(|| "missing schema version \"v\"".to_string())?;
    if v != f64::from(SCHEMA_VERSION) {
        return Err(format!("schema version {v} (parser understands {SCHEMA_VERSION})"));
    }
    for key in REQUIRED_KEYS {
        if rec.get(key).is_none() {
            return Err(format!("missing required key {key:?}"));
        }
    }
    let id = rec.req("span");
    if id < 0.0 || id.fract() != 0.0 || id > f64::from(u8::MAX) {
        return Err(format!("span id {id} is not a u8"));
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let span = Span::from_id(id as u64).ok_or_else(|| format!("unknown span id {id}"))?;
    let stride = rec.req("stride");
    if stride < 1.0 {
        return Err(format!("stride {stride} must be >= 1"));
    }
    // Declared parent (if any) must agree with the span taxonomy compiled
    // into this binary, or the top-down rollup would silently mis-nest.
    if let Some(p) = rec.get("parent") {
        #[allow(clippy::cast_precision_loss)]
        let expect = span.parent().map(|p| p.id() as f64);
        if Some(p) != expect {
            return Err(format!("span {:?} declares parent {p}, taxonomy says {expect:?}", span.name()));
        }
    } else if span.parent().is_some() {
        return Err(format!("span {:?} is missing its parent tag", span.name()));
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    Ok(SpanRecord {
        span,
        calls: rec.req("calls") as u64,
        wall_ns: rec.req("wall_ns") as u64,
        cycles: rec.req("cycles") as u64,
        stride: stride as u64,
        shard: rec.get("shard").map(|s| s as u64),
    })
}

/// Parses a whole profile JSONL document (blank lines skipped).
///
/// # Errors
///
/// Returns `line N: <why>` for the first bad line.
pub fn parse_document(text: &str) -> Result<Vec<SpanRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_record(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// Sums records per span across shards/threads into one row each,
/// preserving taxonomy order.
fn aggregate(records: &[SpanRecord]) -> Vec<SpanRecord> {
    let mut out: Vec<SpanRecord> = Vec::new();
    for span in Span::ALL {
        let mut agg: Option<SpanRecord> = None;
        for r in records.iter().filter(|r| r.span == span) {
            let a = agg.get_or_insert(SpanRecord {
                span,
                calls: 0,
                wall_ns: 0,
                cycles: 0,
                stride: r.stride,
                shard: None,
            });
            // Mixed strides per span never happen in one export; guard by
            // folding everything to full-run estimates if they do.
            if a.stride == r.stride {
                a.calls += r.calls;
                a.wall_ns += r.wall_ns;
            } else {
                a.calls = a.est_calls() + r.est_calls();
                a.wall_ns = a.est_wall_ns() + r.est_wall_ns();
                a.stride = 1;
            }
            a.cycles += r.cycles;
        }
        if let Some(a) = agg {
            out.push(a);
        }
    }
    out
}

/// Rescales the sampled tick subtree so it never exceeds the measured
/// stride-1 `run_loop` root. Stride-scaled estimates of sampled ticks carry
/// a small upward bias (the rarely-taken instrumentation path pays branch
/// misses no calibration loop reproduces), so when the `tick` estimate
/// overshoots the exactly-measured root, every span under `tick` is scaled
/// by `run_loop / tick` — relative shares within the subtree are unchanged.
fn normalized(mut agg: Vec<SpanRecord>) -> Vec<SpanRecord> {
    let est = |agg: &[SpanRecord], span: Span| {
        agg.iter().find(|r| r.span == span).map_or(0, SpanRecord::est_wall_ns)
    };
    let root = est(&agg, Span::RunLoop);
    let tick = est(&agg, Span::Tick);
    if root > 0 && tick > root {
        #[allow(clippy::cast_precision_loss)]
        let factor = root as f64 / tick as f64;
        for r in &mut agg {
            let mut cur = r.span;
            let in_tick_subtree = loop {
                if cur == Span::Tick {
                    break true;
                }
                match cur.parent() {
                    Some(p) => cur = p,
                    None => break false,
                }
            };
            if in_tick_subtree {
                #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                {
                    r.wall_ns = (r.wall_ns as f64 * factor) as u64;
                }
            }
        }
    }
    agg
}

/// Total estimated wall across root spans (spans with no parent), the
/// denominator for every percentage column.
fn total_wall_ns(agg: &[SpanRecord]) -> u64 {
    agg.iter().filter(|r| r.span.parent().is_none()).map(SpanRecord::est_wall_ns).sum()
}

fn fmt_ms(ns: u64) -> String {
    #[allow(clippy::cast_precision_loss)]
    let ms = ns as f64 / 1e6;
    format!("{ms:.2}")
}

fn fmt_pct(part: u64, total: u64) -> String {
    if total == 0 {
        return "-".to_string();
    }
    #[allow(clippy::cast_precision_loss)]
    let pct = part as f64 / total as f64 * 100.0;
    format!("{pct:.1}%")
}

/// Renders the flat cost-center table: one row per span, ranked by
/// estimated wall time, with the share of root-span wall time.
pub fn render_flat(records: &[SpanRecord]) -> String {
    let mut agg = normalized(aggregate(records));
    let total = total_wall_ns(&agg);
    agg.sort_by_key(|r| std::cmp::Reverse(r.est_wall_ns()));
    let mut t = TextTable::new(vec!["span", "est calls", "est wall ms", "ns/call", "cycles", "% total"]);
    for r in &agg {
        let per_call = r.wall_ns.checked_div(r.calls).unwrap_or(0);
        t.row(vec![
            r.span.name().to_string(),
            r.est_calls().to_string(),
            fmt_ms(r.est_wall_ns()),
            per_call.to_string(),
            r.cycles.to_string(),
            fmt_pct(r.est_wall_ns(), total),
        ]);
    }
    format!("flat cost centers (stride-scaled estimates)\n{}", t.render())
}

/// Renders the hierarchical rollup: each span nested under its parent,
/// with inclusive and self time (inclusive minus measured children).
pub fn render_topdown(records: &[SpanRecord]) -> String {
    let agg = normalized(aggregate(records));
    let total = total_wall_ns(&agg);
    let mut t = TextTable::new(vec!["span", "incl ms", "self ms", "% total"]);
    fn visit(t: &mut TextTable, agg: &[SpanRecord], span: Span, depth: usize, total: u64) {
        let Some(r) = agg.iter().find(|r| r.span == span) else { return };
        let kids: u64 = agg
            .iter()
            .filter(|c| c.span.parent() == Some(span))
            .map(SpanRecord::est_wall_ns)
            .sum();
        let incl = r.est_wall_ns();
        t.row(vec![
            format!("{}{}", "  ".repeat(depth), span.name()),
            fmt_ms(incl),
            fmt_ms(incl.saturating_sub(kids)),
            fmt_pct(incl, total),
        ]);
        for child in Span::ALL {
            if child.parent() == Some(span) {
                visit(t, agg, child, depth + 1, total);
            }
        }
    }
    for root in Span::ALL {
        if root.parent().is_none() {
            visit(&mut t, &agg, root, 0, total);
        }
    }
    format!("top-down rollup\n{}", t.render())
}

/// Fraction of the root `run_loop` wall time that its direct children
/// account for (stride-scaled, clamped to 1.0). `None` without a root
/// record. This is the "spans cover >= 90% of measured wall time" figure
/// the profile gate checks.
pub fn coverage(records: &[SpanRecord]) -> Option<f64> {
    let agg = aggregate(records);
    let root = agg.iter().find(|r| r.span == Span::RunLoop)?;
    if root.wall_ns == 0 {
        return None;
    }
    let kids: u64 = agg
        .iter()
        .filter(|c| c.span.parent() == Some(Span::RunLoop))
        .map(SpanRecord::est_wall_ns)
        .sum();
    #[allow(clippy::cast_precision_loss)]
    Some((kids as f64 / root.est_wall_ns() as f64).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(span: Span, calls: u64, wall: u64, stride: u64) -> String {
        let mut s = format!(
            "{{\"v\":1,\"span\":{},\"calls\":{calls},\"wall_ns\":{wall},\"cycles\":{calls},\"stride\":{stride}",
            span.id()
        );
        if let Some(p) = span.parent() {
            s.push_str(&format!(",\"parent\":{}", p.id()));
        }
        s.push('}');
        s
    }

    #[test]
    fn parses_and_scales_by_stride() {
        let r = parse_record(&line(Span::Tick, 10, 5_000, 64)).unwrap();
        assert_eq!(r.span, Span::Tick);
        assert_eq!(r.est_calls(), 640);
        assert_eq!(r.est_wall_ns(), 320_000);
        assert_eq!(r.shard, None);
    }

    #[test]
    fn rejects_bad_records() {
        assert!(parse_record("not json").is_err());
        assert!(parse_record("{\"v\":2,\"span\":0,\"calls\":1,\"wall_ns\":1,\"cycles\":1,\"stride\":1}")
            .is_err());
        assert!(parse_record("{\"v\":1,\"span\":250,\"calls\":1,\"wall_ns\":1,\"cycles\":1,\"stride\":1}")
            .is_err());
        // Missing a required key.
        assert!(parse_record("{\"v\":1,\"span\":0,\"calls\":1,\"wall_ns\":1,\"stride\":1}").is_err());
        // Child span without its parent tag.
        assert!(parse_record("{\"v\":1,\"span\":1,\"calls\":1,\"wall_ns\":1,\"cycles\":1,\"stride\":1}")
            .is_err());
        // Parent tag contradicting the taxonomy.
        assert!(parse_record(
            "{\"v\":1,\"span\":1,\"calls\":1,\"wall_ns\":1,\"cycles\":1,\"stride\":1,\"parent\":5}"
        )
        .is_err());
    }

    #[test]
    fn coverage_is_children_over_root() {
        let doc = [
            line(Span::RunLoop, 1, 1_000_000, 1),
            line(Span::Tick, 1_000, 15_000, 64), // est 960_000
        ]
        .join("\n");
        let recs = parse_document(&doc).unwrap();
        let c = coverage(&recs).unwrap();
        assert!((c - 0.96).abs() < 1e-9, "coverage {c}");
        // Overshoot from stride scaling clamps to 1.0.
        let doc = [line(Span::RunLoop, 1, 1_000_000, 1), line(Span::Tick, 1_000, 20_000, 64)].join("\n");
        assert_eq!(coverage(&parse_document(&doc).unwrap()), Some(1.0));
        // No root span -> no coverage figure.
        assert_eq!(coverage(&parse_document(&line(Span::Decode, 5, 100, 1)).unwrap()), None);
    }

    #[test]
    fn renders_rank_and_rollup() {
        let doc = [
            line(Span::RunLoop, 1, 1_000_000, 1),
            line(Span::Tick, 1_000, 14_000, 64),
            line(Span::RetireDispatch, 1_000, 8_000, 64),
        ]
        .join("\n");
        let recs = parse_document(&doc).unwrap();
        let flat = render_flat(&recs);
        // Ranked by estimated wall: run_loop (1.0 ms) first.
        // Line 0 title, 1 headers, 2 separator, 3 first (top-ranked) row.
        let lines: Vec<&str> = flat.lines().collect();
        assert!(lines[3].starts_with("run_loop"), "{flat}");
        assert!(flat.contains("100.0%"), "{flat}");
        let top = render_topdown(&recs);
        assert!(top.contains("  tick"), "{top}");
        assert!(top.contains("    retire_dispatch"), "{top}");
    }

    #[test]
    fn tick_subtree_normalizes_to_measured_root() {
        // Tick estimate overshoots the measured root by 2x; the renderer
        // scales the subtree back so tick reads 100.0%, not 200.0%.
        let doc = [
            line(Span::RunLoop, 1, 1_000_000, 1),
            line(Span::Tick, 1_000, 31_250, 64), // est 2_000_000
            line(Span::RetireDispatch, 1_000, 15_625, 64), // est 1_000_000 -> 500_000
        ]
        .join("\n");
        let recs = parse_document(&doc).unwrap();
        let flat = render_flat(&recs);
        assert!(!flat.contains("200.0%"), "{flat}");
        assert!(flat.contains("50.0%"), "{flat}");
        let top = render_topdown(&recs);
        assert!(top.contains("100.0%"), "{top}");
    }

    #[test]
    fn aggregates_across_shards() {
        let a = "{\"v\":1,\"span\":15,\"calls\":10,\"wall_ns\":100,\"cycles\":0,\"stride\":1,\"shard\":0}";
        let b = "{\"v\":1,\"span\":15,\"calls\":30,\"wall_ns\":300,\"cycles\":0,\"stride\":1,\"shard\":1}";
        let recs = parse_document(&format!("{a}\n{b}")).unwrap();
        assert_eq!(recs[0].shard, Some(0));
        let flat = render_flat(&recs);
        assert!(flat.contains("score"), "{flat}");
        assert!(flat.contains("40"), "aggregated calls: {flat}");
    }
}
