//! Trained-weight distribution histograms (paper Figure 6).
//!
//! A feature whose weights pile up at the saturation points carries strong
//! (positive or negative) signal; one whose weights stay near zero learned
//! nothing and was rejected from the design.

use ppf::{WEIGHT_MAX, WEIGHT_MIN};

/// Histogram of one weight table's values, one bucket per weight value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightHistogram {
    counts: Vec<u64>,
}

impl WeightHistogram {
    /// Builds the histogram of one feature's weights (a slice of the
    /// perceptron's flat arena, see [`ppf::Perceptron::feature_weights`]).
    ///
    /// # Panics
    ///
    /// Panics if any weight is outside the 5-bit range (the perceptron's
    /// saturating updates guarantee it never is).
    pub fn of(weights: &[i32]) -> Self {
        let span = (i32::from(WEIGHT_MAX) - i32::from(WEIGHT_MIN) + 1) as usize;
        let mut counts = vec![0u64; span];
        for &w in weights {
            counts[usize::try_from(w - i32::from(WEIGHT_MIN)).expect("5-bit weight")] += 1;
        }
        Self { counts }
    }

    /// Accumulates another histogram into this one (the paper concatenates
    /// weights across all trace executions before plotting Fig. 6).
    ///
    /// # Panics
    ///
    /// Panics if the bucket counts differ (they cannot, for 5-bit weights).
    pub fn merge(&mut self, other: &WeightHistogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "bucket mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Count of weights equal to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the 5-bit weight range.
    pub fn count(&self, value: i8) -> u64 {
        assert!((WEIGHT_MIN..=WEIGHT_MAX).contains(&value), "weight out of range");
        self.counts[(i32::from(value) - i32::from(WEIGHT_MIN)) as usize]
    }

    /// Total weights counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of weights with |w| ≤ `band` — the "settled near zero" mass
    /// the paper uses to reject uninformative features.
    pub fn near_zero_fraction(&self, band: i8) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let near: u64 = (-band..=band).map(|v| self.count(v)).sum();
        near as f64 / total as f64
    }

    /// Fraction of weights at either saturation point.
    pub fn saturated_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.count(WEIGHT_MIN) + self.count(WEIGHT_MAX)) as f64 / total as f64
    }

    /// Renders the histogram as a horizontal ASCII bar chart (the Fig. 6
    /// panels), skipping the zero bucket's dominance by scaling to the
    /// largest non-zero-value bucket.
    pub fn render(&self, title: &str, width: usize) -> String {
        let mut s = format!("{title}\n");
        let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
        for v in WEIGHT_MIN..=WEIGHT_MAX {
            let c = self.count(v);
            let bar = (c as usize * width).div_ceil(max as usize);
            s.push_str(&format!("{v:>4} | {:<width$} {c}\n", "#".repeat(bar)));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = WeightHistogram::of(&[5]);
        let b = WeightHistogram::of(&[5, -2]);
        a.merge(&b);
        assert_eq!(a.count(5), 2);
        assert_eq!(a.count(-2), 1);
    }

    #[test]
    fn counts_values() {
        let h = WeightHistogram::of(&[5, 5, -3, 0]);
        assert_eq!(h.count(5), 2);
        assert_eq!(h.count(-3), 1);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn near_zero_fraction_detects_flat_tables() {
        let h = WeightHistogram::of(&[0; 64]);
        assert_eq!(h.near_zero_fraction(1), 1.0);
    }

    #[test]
    fn saturation_detected() {
        let h = WeightHistogram::of(&[i32::from(WEIGHT_MAX), i32::from(WEIGHT_MIN), 0, 0]);
        assert_eq!(h.saturated_fraction(), 0.5);
    }

    #[test]
    fn render_contains_all_buckets() {
        let h = WeightHistogram::of(&[1, -1]);
        let out = h.render("demo", 20);
        assert!(out.contains("demo"));
        assert!(out.contains(" -16 |"));
        assert!(out.contains("  15 |"));
    }

    #[test]
    #[should_panic(expected = "weight out of range")]
    fn out_of_range_count_panics() {
        WeightHistogram::of(&[0; 4]).count(16);
    }
}
