//! Trained-weight distribution histograms (paper Figure 6).
//!
//! A feature whose weights pile up at the saturation points carries strong
//! (positive or negative) signal; one whose weights stay near zero learned
//! nothing and was rejected from the design.

use ppf::{WeightTable, WEIGHT_MAX, WEIGHT_MIN};

/// Histogram of one weight table's values, one bucket per weight value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightHistogram {
    counts: Vec<u64>,
}

impl WeightHistogram {
    /// Builds the histogram of a weight table.
    pub fn of(table: &WeightTable) -> Self {
        let span = (i32::from(WEIGHT_MAX) - i32::from(WEIGHT_MIN) + 1) as usize;
        let mut counts = vec![0u64; span];
        for &w in table.weights() {
            counts[(i32::from(w) - i32::from(WEIGHT_MIN)) as usize] += 1;
        }
        Self { counts }
    }

    /// Accumulates another histogram into this one (the paper concatenates
    /// weights across all trace executions before plotting Fig. 6).
    ///
    /// # Panics
    ///
    /// Panics if the bucket counts differ (they cannot, for 5-bit weights).
    pub fn merge(&mut self, other: &WeightHistogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "bucket mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Count of weights equal to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the 5-bit weight range.
    pub fn count(&self, value: i8) -> u64 {
        assert!((WEIGHT_MIN..=WEIGHT_MAX).contains(&value), "weight out of range");
        self.counts[(i32::from(value) - i32::from(WEIGHT_MIN)) as usize]
    }

    /// Total weights counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of weights with |w| ≤ `band` — the "settled near zero" mass
    /// the paper uses to reject uninformative features.
    pub fn near_zero_fraction(&self, band: i8) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let near: u64 = (-band..=band).map(|v| self.count(v)).sum();
        near as f64 / total as f64
    }

    /// Fraction of weights at either saturation point.
    pub fn saturated_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.count(WEIGHT_MIN) + self.count(WEIGHT_MAX)) as f64 / total as f64
    }

    /// Renders the histogram as a horizontal ASCII bar chart (the Fig. 6
    /// panels), skipping the zero bucket's dominance by scaling to the
    /// largest non-zero-value bucket.
    pub fn render(&self, title: &str, width: usize) -> String {
        let mut s = format!("{title}\n");
        let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
        for v in WEIGHT_MIN..=WEIGHT_MAX {
            let c = self.count(v);
            let bar = (c as usize * width).div_ceil(max as usize);
            s.push_str(&format!("{v:>4} | {:<width$} {c}\n", "#".repeat(bar)));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppf::WeightTable;

    fn table_with(values: &[i8]) -> WeightTable {
        let mut t = WeightTable::new(values.len().next_power_of_two());
        for (i, &v) in values.iter().enumerate() {
            let steps = v.unsigned_abs();
            for _ in 0..steps {
                t.bump(i, v > 0);
            }
        }
        t
    }

    #[test]
    fn merge_accumulates() {
        let mut a = WeightHistogram::of(&table_with(&[5]));
        let b = WeightHistogram::of(&table_with(&[5, -2]));
        a.merge(&b);
        assert_eq!(a.count(5), 2);
        assert_eq!(a.count(-2), 1);
    }

    #[test]
    fn counts_values() {
        let t = table_with(&[5, 5, -3, 0]);
        let h = WeightHistogram::of(&t);
        assert_eq!(h.count(5), 2);
        assert_eq!(h.count(-3), 1);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn near_zero_fraction_detects_flat_tables() {
        let flat = WeightTable::new(64);
        let h = WeightHistogram::of(&flat);
        assert_eq!(h.near_zero_fraction(1), 1.0);
    }

    #[test]
    fn saturation_detected() {
        let mut t = WeightTable::new(4);
        for _ in 0..40 {
            t.bump(0, true);
            t.bump(1, false);
        }
        let h = WeightHistogram::of(&t);
        assert_eq!(h.saturated_fraction(), 0.5);
    }

    #[test]
    fn render_contains_all_buckets() {
        let h = WeightHistogram::of(&table_with(&[1, -1]));
        let out = h.render("demo", 20);
        assert!(out.contains("demo"));
        assert!(out.contains(" -16 |"));
        assert!(out.contains("  15 |"));
    }

    #[test]
    #[should_panic(expected = "weight out of range")]
    fn out_of_range_count_panics() {
        WeightHistogram::of(&WeightTable::new(4)).count(16);
    }
}
