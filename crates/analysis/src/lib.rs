//! Analysis toolkit for the PPF reproduction.
//!
//! Implements the statistical machinery of the paper's evaluation:
//!
//! * [`stats`] — geometric means and the Sec 5.3 weighted-IPC speedup,
//! * [`pearson`] — the Sec 5.5 feature-selection methodology: per-feature
//!   Pearson correlation against prefetch outcomes, plus the cross-
//!   correlation pruning of redundant features,
//! * [`histogram`] — trained-weight distributions (Figure 6),
//! * [`interval`] — interval-telemetry JSONL ingestion: parse, schema
//!   validation, per-interval differencing, and phase tables,
//! * [`profile`] — self-profiler JSONL ingestion and flat/top-down
//!   cost-center tables (span taxonomy from [`ppf_sim::prof`]),
//! * [`serve`] — serving-telemetry ingestion: daemon counter snapshots,
//!   chaos-drill reports, and latency reconstruction from log2 buckets,
//! * [`render`] — aligned tables, bar charts and sorted-series plots used by
//!   the experiment binaries to print paper-style figures in a terminal.
//!
//! ```
//! use ppf_analysis::stats::geometric_mean;
//! assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod histogram;
pub mod interval;
pub mod pearson;
pub mod profile;
pub mod render;
pub mod serve;
pub mod stats;

pub use histogram::WeightHistogram;
pub use interval::{
    interval_deltas, parse_jsonl, render_intervals, IntervalDelta, IntervalRecord,
};
pub use pearson::{
    cross_correlation_matrix, feature_correlations, pearson as pearson_r, redundant_pairs,
    FeatureCorrelation,
};
pub use profile::{parse_document as parse_profile, render_flat, render_topdown, SpanRecord};
pub use render::{bar_chart, sorted_series, TextTable};
pub use stats::{geomean_bootstrap_ci, geometric_mean, mean, percent_gain, weighted_speedup, ConfidenceInterval};
