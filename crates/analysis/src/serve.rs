//! Serving-telemetry ingestion: daemon counter snapshots and chaos-drill
//! reports.
//!
//! The `ppf-serve` daemon and `ppf_loadgen --drill` both emit the same
//! restricted JSONL shape as the interval telemetry (flat object, numeric
//! values), so this module rides on [`crate::interval::parse_line`] — no
//! new parsing machinery. What is serving-specific lives here: the schema
//! (which keys a daemon snapshot must carry), latency reconstruction from
//! the exporter's log2 histogram buckets (`lat_b<i>` = samples in
//! `[2^i, 2^{i+1})` µs), and a terminal report of fleet health.

use crate::interval::{parse_line, IntervalRecord};
use crate::render::TextTable;

/// Schema version this parser understands (matches
/// `ppf_serve::counters` and the drill report).
pub const SCHEMA_VERSION: u32 = 1;

/// Keys every daemon counter snapshot carries.
pub const SNAPSHOT_KEYS: [&str; 9] = [
    "v",
    "requests",
    "degraded_replies",
    "shed_overflow",
    "shed_quota",
    "deadline_misses",
    "tenant_restarts",
    "shard_replacements",
    "checkpoint_records",
];

/// Parses and validates one daemon snapshot line.
///
/// # Errors
///
/// Returns the first schema violation.
pub fn parse_snapshot(line: &str) -> Result<IntervalRecord, String> {
    let rec = parse_line(line)?;
    let v = rec.get("v").ok_or_else(|| "missing schema version \"v\"".to_string())?;
    if v != f64::from(SCHEMA_VERSION) {
        return Err(format!("schema version {v} (parser understands {SCHEMA_VERSION})"));
    }
    for key in SNAPSHOT_KEYS {
        if rec.get(key).is_none() {
            return Err(format!("missing required key {key:?}"));
        }
    }
    Ok(rec)
}

/// Reconstructs the latency quantile `q` (0.0–1.0) from a record's
/// `lat_b<i>` histogram fields, returning the bucket's upper bound in µs.
/// Returns `None` when the record carries no latency buckets.
pub fn latency_quantile_us(rec: &IntervalRecord, q: f64) -> Option<u64> {
    let mut buckets: Vec<(usize, u64)> = rec
        .fields()
        .iter()
        .filter_map(|(k, v)| {
            k.strip_prefix("lat_b").and_then(|i| i.parse().ok()).map(|i| (i, *v as u64))
        })
        .collect();
    buckets.sort_unstable();
    let total: u64 = buckets.iter().map(|&(_, n)| n).sum();
    if total == 0 {
        return None;
    }
    let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
    let mut seen = 0;
    for (i, n) in buckets {
        seen += n;
        if seen >= rank {
            return Some(1u64 << (i + 1));
        }
    }
    None
}

/// Per-mille helper for rate columns (integer-friendly, avoids "0.00%"
/// rounding for rare events).
fn per_mille(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den * 1000.0
    }
}

/// Renders a fleet-health report from one or more snapshot lines (e.g. a
/// daemon's telemetry JSONL, or the drill's report line). One table row
/// per record.
///
/// # Errors
///
/// Propagates the first parse/schema failure as `line N: <why>`.
pub fn render_report(text: &str) -> Result<String, String> {
    let mut records = Vec::new();
    for (n, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        records.push(parse_snapshot(line).map_err(|e| format!("line {}: {e}", n + 1))?);
    }
    if records.is_empty() {
        return Err("no snapshot records".into());
    }
    let mut table = TextTable::new(vec![
        "requests", "p50 us", "p99 us", "degraded/1k", "shed/1k", "restarts", "shard repl",
        "ckpt drops",
    ]);
    for rec in &records {
        let requests = rec.req("requests");
        let degraded = rec.req("degraded_replies");
        let shed = rec.req("shed_overflow") + rec.req("shed_quota");
        let p50 = rec
            .get("p50_us")
            .map(|v| v as u64)
            .or_else(|| latency_quantile_us(rec, 0.50))
            .unwrap_or(0);
        let p99 = rec
            .get("p99_us")
            .map(|v| v as u64)
            .or_else(|| latency_quantile_us(rec, 0.99))
            .unwrap_or(0);
        table.row(vec![
            format!("{requests:.0}"),
            format!("{p50}"),
            format!("{p99}"),
            format!("{:.2}", per_mille(degraded, requests)),
            format!("{:.2}", per_mille(shed, requests)),
            format!("{:.0}", rec.req("tenant_restarts")),
            format!("{:.0}", rec.req("shard_replacements")),
            format!("{:.0}", rec.get("checkpoint_drops").unwrap_or(0.0)),
        ]);
    }
    Ok(table.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAPSHOT: &str = "{\"v\":1,\"elapsed_ms\":60,\"requests\":200,\
        \"candidates\":800,\"accepted\":790,\"rejected\":10,\"shed_overflow\":2,\
        \"shed_quota\":1,\"degraded_replies\":3,\"deadline_misses\":0,\
        \"tenant_restarts\":1,\"shard_replacements\":0,\"checkpoint_records\":4,\
        \"checkpoint_bitflips\":0,\"checkpoint_drops\":0,\
        \"warm_started_tenants\":0,\"p50_us\":8,\"p99_us\":1024,\
        \"lat_b1\":89,\"lat_b2\":92,\"lat_b3\":9,\"lat_b9\":10}";

    #[test]
    fn snapshot_parses_and_validates() {
        let rec = parse_snapshot(SNAPSHOT).expect("valid snapshot");
        assert_eq!(rec.req("requests"), 200.0);
        assert!(parse_snapshot("{\"v\":2,\"requests\":1}").is_err(), "wrong version");
        assert!(parse_snapshot("{\"v\":1,\"requests\":1}").is_err(), "missing keys");
    }

    #[test]
    fn latency_reconstructs_from_buckets() {
        let rec = parse_snapshot(SNAPSHOT).unwrap();
        // 200 samples; rank 100 falls in bucket 2 (89 + 92 ≥ 100) → 8 µs.
        assert_eq!(latency_quantile_us(&rec, 0.50), Some(8));
        // rank 198 falls in bucket 9 (89+92+9 = 190 < 198) → 1024 µs.
        assert_eq!(latency_quantile_us(&rec, 0.99), Some(1024));
        let empty = parse_line("{\"v\":1}").unwrap();
        assert_eq!(latency_quantile_us(&empty, 0.5), None);
    }

    #[test]
    fn quantile_edge_cases() {
        // Buckets present but all zero: indistinguishable from "no
        // samples", so no quantile, not a zero quantile.
        let zeroed = parse_line("{\"v\":1,\"lat_b0\":0,\"lat_b5\":0}").unwrap();
        assert_eq!(latency_quantile_us(&zeroed, 0.5), None);
        assert_eq!(latency_quantile_us(&zeroed, 0.99), None);

        // A single occupied bucket answers every quantile with its upper
        // bound: lat_b4 covers [16, 32) µs → 32.
        let single = parse_line("{\"v\":1,\"lat_b4\":10}").unwrap();
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(latency_quantile_us(&single, q), Some(32), "q={q}");
        }

        // All mass in the last exporter bucket (i = 31): the upper bound
        // 2^32 µs must not wrap or drop to a lower bucket.
        let last = parse_line("{\"v\":1,\"lat_b31\":5}").unwrap();
        assert_eq!(latency_quantile_us(&last, 0.5), Some(1u64 << 32));
        assert_eq!(latency_quantile_us(&last, 1.0), Some(4294967296));

        // One sample: every rank clamps to it.
        let one = parse_line("{\"v\":1,\"lat_b0\":1}").unwrap();
        assert_eq!(latency_quantile_us(&one, 0.0), Some(2));
        assert_eq!(latency_quantile_us(&one, 1.0), Some(2));
    }

    #[test]
    fn report_renders_rates() {
        let report = render_report(SNAPSHOT).expect("renders");
        assert!(report.contains("degraded/1k"));
        assert!(report.contains("200"), "request count shown");
        assert!(report.contains("15.00"), "3/200 degraded = 15 per mille");
        assert!(render_report("").is_err());
        assert!(render_report("not json").is_err());
    }

    #[test]
    fn drill_report_line_parses_too() {
        // The loadgen drill line carries its own key set; the snapshot
        // schema only demands the fleet-health keys, which it includes...
        let drill = "{\"v\":1,\"requests\":7200,\"p50_us\":30,\"p99_us\":6452,\
            \"max_us\":102169,\"stalled_callers\":0,\"degraded\":17,\"shed\":0,\
            \"deadline_misses\":16,\"tenant_restarts\":1,\"shard_replacements\":1,\
            \"checkpoint_records\":450,\"checkpoint_bitflips\":75,\
            \"checkpoint_drops\":75,\"warm_restored\":5,\"warm_matched\":5,\
            \"warm_expected_mismatch\":1,\"warm_unexplained_mismatch\":0}";
        // ...except the split degraded/shed counters, so it goes through
        // the lenient parse_line path instead.
        let rec = parse_line(drill).expect("parses");
        assert_eq!(rec.get("stalled_callers"), Some(0.0));
        assert_eq!(rec.get("warm_unexplained_mismatch"), Some(0.0));
    }
}
