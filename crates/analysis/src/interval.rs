//! Interval-telemetry ingestion: parse, validate, and aggregate the JSONL
//! the simulator's interval snapshots export.
//!
//! The exporter ([`ppf_sim::IntervalSnapshot::to_jsonl`]) writes one flat
//! JSON object per line — string keys, numeric values, no nesting. That
//! restricted shape lets this module parse it with a small hand-rolled
//! scanner instead of a JSON dependency, keeping the workspace's
//! no-external-deps rule intact while still validating the schema version
//! and the presence of every required column.
//!
//! Snapshots are *cumulative* from the start of the measurement region, so
//! phase behaviour comes from differencing consecutive records per core —
//! [`interval_deltas`] does that, and [`render_intervals`] turns the result
//! into the aligned per-interval table the `fig_telemetry` binary prints.

use crate::render::TextTable;

/// Schema version this parser understands (matches
/// [`ppf_sim::telemetry::SCHEMA_VERSION`]).
pub const SCHEMA_VERSION: u32 = 1;

/// Keys every record must carry (the identity and headline columns; the
/// full counter set rides along but only these are load-bearing for
/// aggregation).
pub const REQUIRED_KEYS: [&str; 10] = [
    "v", "core", "seq", "instr", "cycles", "ipc", "l2_mpki", "llc_mpki", "pf_issued", "pf_useful",
];

/// One parsed JSONL record: keys in file order with numeric values. Exact
/// integers survive to 2^53, far beyond any counter a simulated region
/// produces.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalRecord {
    fields: Vec<(String, f64)>,
}

impl IntervalRecord {
    /// Value of a key, if present.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.fields.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// Value of a key that [`validate`] guaranteed present.
    ///
    /// # Panics
    ///
    /// Panics if the key is absent (call [`validate`] first).
    pub fn req(&self, key: &str) -> f64 {
        self.get(key).unwrap_or_else(|| panic!("required key {key:?} missing"))
    }

    /// All fields in file order.
    pub fn fields(&self) -> &[(String, f64)] {
        &self.fields
    }
}

/// Parses one flat JSON object (`{"key":value,...}`, numeric values only).
///
/// # Errors
///
/// Returns a description of the first malformed construct.
pub fn parse_line(line: &str) -> Result<IntervalRecord, String> {
    let s = line.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "record is not a JSON object".to_string())?;
    let mut fields = Vec::new();
    if inner.trim().is_empty() {
        return Ok(IntervalRecord { fields });
    }
    // Values are plain numbers and keys contain no commas or escapes, so
    // splitting on top-level commas is exact for this schema.
    for pair in inner.split(',') {
        let (k, v) = pair
            .split_once(':')
            .ok_or_else(|| format!("field {pair:?} has no ':' separator"))?;
        let key = k
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("key {k:?} is not quoted"))?;
        if key.is_empty() {
            return Err("empty key".to_string());
        }
        let value: f64 =
            v.trim().parse().map_err(|_| format!("value {v:?} of {key:?} is not numeric"))?;
        if fields.iter().any(|(k, _)| k == key) {
            return Err(format!("duplicate key {key:?}"));
        }
        fields.push((key.to_string(), value));
    }
    Ok(IntervalRecord { fields })
}

/// Checks one record against the schema: version match and every
/// [`REQUIRED_KEYS`] entry present.
///
/// # Errors
///
/// Returns the first violation.
pub fn validate(rec: &IntervalRecord) -> Result<(), String> {
    let v = rec.get("v").ok_or_else(|| "missing schema version \"v\"".to_string())?;
    if v != f64::from(SCHEMA_VERSION) {
        return Err(format!("schema version {v} (parser understands {SCHEMA_VERSION})"));
    }
    for key in REQUIRED_KEYS {
        if rec.get(key).is_none() {
            return Err(format!("missing required key {key:?}"));
        }
    }
    Ok(())
}

/// Parses and validates a whole JSONL document (blank lines skipped).
///
/// # Errors
///
/// Returns `line N: <why>` for the first bad line.
pub fn parse_jsonl(text: &str) -> Result<Vec<IntervalRecord>, String> {
    let mut records = Vec::new();
    for (n, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = parse_line(line).map_err(|e| format!("line {}: {e}", n + 1))?;
        validate(&rec).map_err(|e| format!("line {}: {e}", n + 1))?;
        records.push(rec);
    }
    Ok(records)
}

/// One per-interval row derived by differencing consecutive cumulative
/// snapshots of the same core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalDelta {
    /// Core index.
    pub core: u32,
    /// Snapshot sequence number the interval *ends* at.
    pub seq: u64,
    /// Instructions retired in this interval.
    pub instructions: f64,
    /// Cycles elapsed in this interval.
    pub cycles: f64,
    /// IPC of this interval alone.
    pub ipc: f64,
    /// L2 demand misses per kilo-instruction in this interval.
    pub l2_mpki: f64,
    /// Prefetches issued in this interval.
    pub issued: f64,
    /// Timely useful prefetches in this interval.
    pub useful: f64,
    /// Filter accepts (either level) in this interval.
    pub ppf_accepts: f64,
    /// Filter rejects in this interval.
    pub ppf_rejects: f64,
}

/// Differences consecutive records per core into per-interval rows. Records
/// may interleave cores; within one core they must be in `seq` order (the
/// exporter guarantees it).
pub fn interval_deltas(records: &[IntervalRecord]) -> Vec<IntervalDelta> {
    let mut out = Vec::new();
    let mut cores: Vec<(u32, IntervalRecord)> = Vec::new();
    for rec in records {
        let core = rec.req("core") as u32;
        let prev = cores.iter().find(|(c, _)| *c == core).map(|(_, p)| p);
        let d = |key: &str| rec.req(key) - prev.map_or(0.0, |p| p.req(key));
        let instructions = d("instr");
        let cycles = d("cycles");
        let misses = {
            let acc = rec.get("l2_acc").map_or(0.0, |v| v)
                - prev.and_then(|p| p.get("l2_acc")).unwrap_or(0.0);
            let hits = rec.get("l2_hit").map_or(0.0, |v| v)
                - prev.and_then(|p| p.get("l2_hit")).unwrap_or(0.0);
            acc - hits
        };
        out.push(IntervalDelta {
            core,
            seq: rec.req("seq") as u64,
            instructions,
            cycles,
            ipc: if cycles > 0.0 { instructions / cycles } else { 0.0 },
            l2_mpki: if instructions > 0.0 { misses * 1000.0 / instructions } else { 0.0 },
            issued: d("pf_issued"),
            useful: d("pf_useful"),
            ppf_accepts: rec.get("ppf_accept_l2").map_or(0.0, |v| v)
                + rec.get("ppf_accept_llc").map_or(0.0, |v| v)
                - prev.map_or(0.0, |p| {
                    p.get("ppf_accept_l2").unwrap_or(0.0) + p.get("ppf_accept_llc").unwrap_or(0.0)
                }),
            ppf_rejects: rec.get("ppf_reject").map_or(0.0, |v| v)
                - prev.and_then(|p| p.get("ppf_reject")).unwrap_or(0.0),
        });
        match cores.iter_mut().find(|(c, _)| *c == core) {
            Some(slot) => slot.1 = rec.clone(),
            None => cores.push((core, rec.clone())),
        }
    }
    out
}

/// Renders per-interval rows as an aligned table (the phase-behaviour view
/// `fig_telemetry` prints).
pub fn render_intervals(records: &[IntervalRecord]) -> String {
    let mut t = TextTable::new(vec![
        "core", "seq", "instr", "ipc", "l2_mpki", "pf_issued", "pf_useful", "ppf_acc", "ppf_rej",
    ]);
    for d in interval_deltas(records) {
        t.row(vec![
            d.core.to_string(),
            d.seq.to_string(),
            format!("{:.0}", d.instructions),
            format!("{:.3}", d.ipc),
            format!("{:.3}", d.l2_mpki),
            format!("{:.0}", d.issued),
            format!("{:.0}", d.useful),
            format!("{:.0}", d.ppf_accepts),
            format!("{:.0}", d.ppf_rejects),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppf_sim::{CacheStats, FilterCounters, IntervalSnapshot, PrefetchStats};

    fn snapshot(core: u32, seq: u64) -> IntervalSnapshot {
        IntervalSnapshot {
            core,
            seq,
            instructions: (seq + 1) * 1_000,
            cycles: (seq + 1) * 2_000,
            l2: CacheStats {
                demand_accesses: (seq + 1) * 100,
                demand_hits: (seq + 1) * 60,
                ..Default::default()
            },
            llc_demand_misses: (seq + 1) * 5,
            prefetch: PrefetchStats {
                issued: (seq + 1) * 40,
                useful: (seq + 1) * 30,
                ..Default::default()
            },
            filter: FilterCounters {
                inferences: (seq + 1) * 50,
                accepted_l2: (seq + 1) * 25,
                accepted_llc: (seq + 1) * 10,
                rejected: (seq + 1) * 15,
                ..Default::default()
            },
        }
    }

    #[test]
    fn parses_exporter_output_roundtrip() {
        let s = snapshot(0, 3);
        let rec = parse_line(&s.to_jsonl()).expect("exporter output parses");
        validate(&rec).expect("exporter output validates");
        assert_eq!(rec.req("core"), 0.0);
        assert_eq!(rec.req("seq"), 3.0);
        assert_eq!(rec.req("instr"), 4_000.0);
        assert_eq!(rec.req("pf_issued"), 160.0);
        assert_eq!(rec.get("ppf_accept_l2"), Some(100.0));
        // Derived floats survive the round trip at 6-decimal precision.
        assert!((rec.req("ipc") - 0.5).abs() < 1e-6);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line("{\"a\" 1}").is_err());
        assert!(parse_line("{a:1}").is_err());
        assert!(parse_line("{\"a\":\"str\"}").is_err());
        assert!(parse_line("{\"a\":1,\"a\":2}").is_err());
    }

    #[test]
    fn validation_requires_version_and_keys() {
        let rec = parse_line("{\"v\":1,\"core\":0}").unwrap();
        let err = validate(&rec).unwrap_err();
        assert!(err.contains("seq"), "{err}");
        let rec = parse_line("{\"v\":99}").unwrap();
        let err = validate(&rec).unwrap_err();
        assert!(err.contains("version"), "{err}");
        let rec = parse_line("{\"core\":0}").unwrap();
        assert!(validate(&rec).is_err());
    }

    #[test]
    fn jsonl_reports_offending_line() {
        let good = snapshot(0, 0).to_jsonl();
        let doc = format!("{good}\n\n{{\"v\":1}}\n");
        let err = parse_jsonl(&doc).unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
        assert_eq!(parse_jsonl(&good).unwrap().len(), 1);
    }

    #[test]
    fn deltas_difference_cumulative_counters_per_core() {
        // Interleave two cores to prove differencing pairs by core.
        let doc: Vec<String> = vec![
            snapshot(0, 0).to_jsonl(),
            snapshot(1, 0).to_jsonl(),
            snapshot(0, 1).to_jsonl(),
            snapshot(1, 1).to_jsonl(),
        ];
        let records = parse_jsonl(&doc.join("\n")).unwrap();
        let deltas = interval_deltas(&records);
        assert_eq!(deltas.len(), 4);
        for d in &deltas {
            // snapshot() grows every counter linearly, so every interval
            // (including the first, differenced against zero) is identical.
            assert_eq!(d.instructions, 1_000.0);
            assert_eq!(d.cycles, 2_000.0);
            assert!((d.ipc - 0.5).abs() < 1e-12);
            assert_eq!(d.issued, 40.0);
            assert_eq!(d.useful, 30.0);
            assert_eq!(d.ppf_accepts, 35.0);
            assert_eq!(d.ppf_rejects, 15.0);
            assert!((d.l2_mpki - 40.0).abs() < 1e-9);
        }
        assert_eq!(deltas[2].core, 0);
        assert_eq!(deltas[2].seq, 1);
    }

    #[test]
    fn renders_one_row_per_interval() {
        let doc = [snapshot(0, 0).to_jsonl(), snapshot(0, 1).to_jsonl()].join("\n");
        let records = parse_jsonl(&doc).unwrap();
        let out = render_intervals(&records);
        assert!(out.contains("l2_mpki"), "{out}");
        // Header + separator + 2 rows.
        assert_eq!(out.lines().count(), 4, "{out}");
    }
}
