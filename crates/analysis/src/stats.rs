//! Speedup statistics used throughout the paper's evaluation (Sec 5.3).

/// Geometric mean of positive values.
///
/// # Panics
///
/// Panics if `xs` is empty or any value is not positive.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geometric mean of nothing");
    assert!(xs.iter().all(|&x| x > 0.0), "geometric mean needs positive values");
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of nothing");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// The paper's multi-core metric: weighted-IPC speedup of a mix.
///
/// For each core `i`, `ipc[i]` is its IPC in the mix and `ipc_isolated[i]`
/// its IPC running alone on an equal-LLC machine; the mix's weighted IPC is
/// `Σ ipc[i] / ipc_isolated[i]`. The returned value is that sum normalized
/// by the same sum for a baseline (no-prefetching) run of the mix.
///
/// # Panics
///
/// Panics if slice lengths differ or any isolated IPC is not positive.
pub fn weighted_speedup(
    ipc: &[f64],
    ipc_baseline: &[f64],
    ipc_isolated: &[f64],
) -> f64 {
    assert_eq!(ipc.len(), ipc_isolated.len(), "core count mismatch");
    assert_eq!(ipc.len(), ipc_baseline.len(), "core count mismatch");
    assert!(ipc_isolated.iter().all(|&x| x > 0.0), "isolated IPC must be positive");
    let w: f64 = ipc.iter().zip(ipc_isolated).map(|(&a, &b)| a / b).sum();
    let w0: f64 = ipc_baseline.iter().zip(ipc_isolated).map(|(&a, &b)| a / b).sum();
    assert!(w0 > 0.0, "baseline weighted IPC must be positive");
    w / w0
}

/// A bootstrap confidence interval for the geometric mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound (2.5th percentile).
    pub lo: f64,
    /// Point estimate (the geometric mean of the sample).
    pub point: f64,
    /// Upper bound (97.5th percentile).
    pub hi: f64,
}

/// Deterministic 95% bootstrap confidence interval for the geometric mean
/// of `xs` (resampling with replacement, `iters` replicates, SplitMix-style
/// deterministic indices from `seed`).
///
/// # Panics
///
/// Panics if `xs` is empty, non-positive, or `iters == 0`.
pub fn geomean_bootstrap_ci(xs: &[f64], iters: usize, seed: u64) -> ConfidenceInterval {
    assert!(iters > 0, "need bootstrap replicates");
    let point = geometric_mean(xs);
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut replicates: Vec<f64> = (0..iters)
        .map(|_| {
            let log_sum: f64 = (0..xs.len())
                .map(|_| xs[(next() % xs.len() as u64) as usize].ln())
                .sum();
            (log_sum / xs.len() as f64).exp()
        })
        .collect();
    replicates.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let q = |p: f64| replicates[((replicates.len() - 1) as f64 * p).round() as usize];
    ConfidenceInterval { lo: q(0.025), point, hi: q(0.975) }
}

/// Percent improvement of `new` over `old` (e.g. `1.0378` → `3.78`).
pub fn percent_gain(new: f64, old: f64) -> f64 {
    (new / old - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_less_than_mean_for_spread() {
        let xs = [1.0, 10.0];
        assert!(geometric_mean(&xs) < mean(&xs));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn weighted_speedup_identity() {
        let ipc = [1.0, 2.0];
        assert!((weighted_speedup(&ipc, &ipc, &[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_improvement() {
        // Each core 20% faster than baseline -> 1.2 overall.
        let base = [1.0, 1.0];
        let now = [1.2, 1.2];
        let iso = [2.0, 3.0];
        assert!((weighted_speedup(&now, &base, &iso) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_weights_by_isolation() {
        // Speeding up the core that is more degraded relative to isolation
        // counts more.
        let iso = [1.0, 1.0];
        let base = [0.5, 1.0];
        let a = weighted_speedup(&[0.75, 1.0], &base, &iso); // +0.25 on slow core
        let b = weighted_speedup(&[0.5, 1.25], &base, &iso); // +0.25 on fast core
        assert!((a - b).abs() < 1e-12, "equal absolute ratios count equally");
        assert!(a > 1.0);
    }

    #[test]
    #[should_panic(expected = "core count mismatch")]
    fn weighted_speedup_rejects_short_baseline() {
        // Without the explicit length assert, `zip` would silently truncate
        // the baseline sum and mis-normalize instead of panicking.
        weighted_speedup(&[1.0, 1.0], &[1.0], &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "core count mismatch")]
    fn weighted_speedup_rejects_long_baseline() {
        weighted_speedup(&[1.0, 1.0], &[1.0, 1.0, 1.0], &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "core count mismatch")]
    fn weighted_speedup_rejects_isolated_mismatch() {
        weighted_speedup(&[1.0, 1.0], &[1.0, 1.0], &[1.0]);
    }

    #[test]
    fn bootstrap_ci_brackets_point_and_is_deterministic() {
        let xs = [1.0, 1.1, 1.2, 0.9, 1.05, 1.3, 1.15, 0.95];
        let a = geomean_bootstrap_ci(&xs, 500, 7);
        let b = geomean_bootstrap_ci(&xs, 500, 7);
        assert_eq!(a, b, "same seed, same interval");
        assert!(a.lo <= a.point && a.point <= a.hi);
        assert!(a.lo >= 0.9 && a.hi <= 1.3);
        // A different seed shifts the interval slightly but not wildly.
        let c = geomean_bootstrap_ci(&xs, 500, 8);
        assert!((a.lo - c.lo).abs() < 0.1);
    }

    #[test]
    fn bootstrap_ci_tightens_for_constant_data() {
        let xs = [2.0; 16];
        let ci = geomean_bootstrap_ci(&xs, 200, 1);
        assert!((ci.lo - 2.0).abs() < 1e-12 && (ci.hi - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percent_gain_signs() {
        assert!((percent_gain(1.0378, 1.0) - 3.78).abs() < 1e-10);
        assert!(percent_gain(0.9, 1.0) < 0.0);
    }
}
