//! Pearson-correlation feature analysis (paper Sec 5.5).
//!
//! The paper judges each perceptron feature by how strongly the weights it
//! selects correlate with the prefetch outcome: per training event it has
//! a weight value (what the feature "said") and the ground truth (useful or
//! not). Features whose selected weights track the outcome get a high
//! Pearson coefficient; features that stay near zero or fire randomly get a
//! low one and were pruned from the design.

use ppf::{FeatureKind, TrainingEvent};

/// Pearson's linear correlation coefficient between two equal-length series.
///
/// Returns 0 when either series has no variance (a flat feature carries no
/// signal, which for feature selection is equivalent to no correlation).
///
/// # Panics
///
/// Panics if the series lengths differ or are empty.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series length mismatch");
    assert!(!xs.is_empty(), "correlation of nothing");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Per-feature correlation result.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureCorrelation {
    /// The feature.
    pub feature: FeatureKind,
    /// Pearson coefficient between the feature's selected weight and the
    /// outcome across the event log.
    pub r: f64,
    /// Number of events examined.
    pub events: usize,
}

/// Computes each feature's Pearson coefficient from a PPF training-event
/// log (the feature order must match the log's weight order).
///
/// # Panics
///
/// Panics if any event's weight count differs from the feature count.
pub fn feature_correlations(
    features: &[FeatureKind],
    events: &[TrainingEvent],
) -> Vec<FeatureCorrelation> {
    if events.is_empty() {
        return features
            .iter()
            .map(|&feature| FeatureCorrelation { feature, r: 0.0, events: 0 })
            .collect();
    }
    let outcomes: Vec<f64> =
        events.iter().map(|e| if e.useful { 1.0 } else { -1.0 }).collect();
    features
        .iter()
        .enumerate()
        .map(|(i, &feature)| {
            let weights: Vec<f64> = events
                .iter()
                .map(|e| {
                    assert_eq!(e.weights.len(), features.len(), "weight arity mismatch");
                    f64::from(e.weights[i])
                })
                .collect();
            FeatureCorrelation { feature, r: pearson(&weights, &outcomes), events: events.len() }
        })
        .collect()
}

/// Cross-correlation matrix between features over the event log (paper:
/// pairs with |r| > 0.9 are redundant; one of each pair was eliminated).
pub fn cross_correlation_matrix(
    features: &[FeatureKind],
    events: &[TrainingEvent],
) -> Vec<Vec<f64>> {
    let n = features.len();
    if events.is_empty() {
        return vec![vec![0.0; n]; n];
    }
    let series: Vec<Vec<f64>> = (0..n)
        .map(|i| events.iter().map(|e| f64::from(e.weights[i])).collect())
        .collect();
    (0..n)
        .map(|i| {
            (0..n)
                .map(|j| if i == j { 1.0 } else { pearson(&series[i], &series[j]) })
                .collect()
        })
        .collect()
}

/// Identifies redundant feature pairs (|r| above `threshold`).
pub fn redundant_pairs(
    features: &[FeatureKind],
    events: &[TrainingEvent],
    threshold: f64,
) -> Vec<(FeatureKind, FeatureKind, f64)> {
    let m = cross_correlation_matrix(features, events);
    let mut out = Vec::new();
    for i in 0..features.len() {
        for j in i + 1..features.len() {
            if m[i][j].abs() > threshold {
                out.push((features[i], features[j], m[i][j]));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_anticorrelation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_variance_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn independent_is_small() {
        // Deterministic pseudo-random pairing.
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let ys: Vec<f64> = (0..1000).map(|i| ((i * 53) % 97) as f64).collect();
        assert!(pearson(&xs, &ys).abs() < 0.15);
    }

    fn event(weights: Vec<i8>, useful: bool) -> TrainingEvent {
        TrainingEvent { weights: weights.into_iter().collect(), useful }
    }

    #[test]
    fn feature_correlation_separates_signal_from_noise() {
        let features = vec![FeatureKind::Confidence, FeatureKind::RawPc];
        // Feature 0's weight tracks the outcome; feature 1's is constant.
        let mut events = Vec::new();
        for i in 0..100 {
            let useful = i % 2 == 0;
            events.push(event(vec![if useful { 10 } else { -10 }, 3], useful));
        }
        let cs = feature_correlations(&features, &events);
        assert!(cs[0].r > 0.99, "signal feature r = {}", cs[0].r);
        assert_eq!(cs[1].r, 0.0);
        assert_eq!(cs[0].events, 100);
    }

    #[test]
    fn empty_log_yields_zeroes() {
        let features = FeatureKind::default_set();
        let cs = feature_correlations(&features, &[]);
        assert_eq!(cs.len(), 9);
        assert!(cs.iter().all(|c| c.r == 0.0 && c.events == 0));
    }

    #[test]
    fn cross_correlation_flags_redundant_pair() {
        let features =
            vec![FeatureKind::Confidence, FeatureKind::PageAddr, FeatureKind::RawPc];
        let mut events = Vec::new();
        for i in 0..200i16 {
            let v = (i % 21 - 10) as i8;
            // Features 0 and 1 identical; feature 2 independent-ish.
            events.push(event(vec![v, v, ((i * 7) % 13 - 6) as i8], i % 2 == 0));
        }
        let pairs = redundant_pairs(&features, &events, 0.9);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, FeatureKind::Confidence);
        assert_eq!(pairs[0].1, FeatureKind::PageAddr);
        assert!(pairs[0].2 > 0.99);
    }

    #[test]
    fn matrix_diagonal_is_one() {
        let features = vec![FeatureKind::Confidence, FeatureKind::RawPc];
        let events = vec![event(vec![1, 2], true), event(vec![3, 4], false)];
        let m = cross_correlation_matrix(&features, &events);
        assert_eq!(m[0][0], 1.0);
        assert_eq!(m[1][1], 1.0);
    }
}
