//! Property-based tests of the statistics utilities.

use ppf_analysis::{geometric_mean, mean, pearson_r, sorted_series, weighted_speedup};
use proptest::prelude::*;

fn positive_series() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..100.0, 1..50)
}

proptest! {
    /// Pearson's r is always within [-1, 1].
    #[test]
    fn pearson_bounded(pairs in proptest::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 2..200)) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let r = pearson_r(&xs, &ys);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
    }

    /// Pearson is symmetric and scale-invariant.
    #[test]
    fn pearson_symmetric_and_scale_invariant(
        pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..100),
        scale in 0.1f64..100.0,
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let r1 = pearson_r(&xs, &ys);
        let r2 = pearson_r(&ys, &xs);
        prop_assert!((r1 - r2).abs() < 1e-9);
        let scaled: Vec<f64> = xs.iter().map(|x| x * scale).collect();
        let r3 = pearson_r(&scaled, &ys);
        prop_assert!((r1 - r3).abs() < 1e-6, "{r1} vs {r3}");
    }

    /// The geometric mean lies between min and max and never exceeds the
    /// arithmetic mean (AM–GM).
    #[test]
    fn geomean_am_gm(xs in positive_series()) {
        let g = geometric_mean(&xs);
        let a = mean(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(g >= lo - 1e-9 && g <= hi + 1e-9);
        prop_assert!(g <= a + 1e-9, "GM {g} > AM {a}");
    }

    /// Weighted speedup of a run against itself is exactly 1, and scaling
    /// every core's IPC by `k` scales the speedup by `k`.
    #[test]
    fn weighted_speedup_linear(
        ipc in proptest::collection::vec(0.01f64..4.0, 1..9),
        k in 0.1f64..3.0,
    ) {
        let iso: Vec<f64> = ipc.iter().map(|x| x + 0.5).collect();
        prop_assert!((weighted_speedup(&ipc, &ipc, &iso) - 1.0).abs() < 1e-9);
        let faster: Vec<f64> = ipc.iter().map(|x| x * k).collect();
        let ws = weighted_speedup(&faster, &ipc, &iso);
        prop_assert!((ws - k).abs() < 1e-9, "ws {ws} vs k {k}");
    }

    /// `sorted_series` renders one line per value plus a title, in
    /// non-decreasing order.
    #[test]
    fn sorted_series_shape(xs in proptest::collection::vec(0.0f64..10.0, 1..40)) {
        let out = sorted_series("t", xs.clone(), 10);
        prop_assert_eq!(out.lines().count(), xs.len() + 1);
        let values: Vec<f64> = out
            .lines()
            .skip(1)
            .map(|l| l.rsplit(' ').next().unwrap().parse::<f64>().unwrap())
            .collect();
        prop_assert!(values.windows(2).all(|w| w[0] <= w[1] + 1e-9));
    }
}
