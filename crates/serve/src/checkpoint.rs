//! Per-shard crash-safe weight checkpoints.
//!
//! Each shard owns one append-only JSONL file, `shard-<k>.jsonl`, of
//! CRC-sealed records (the same seal the sweep checkpoints use, see
//! `ppf_bench::ckpt`):
//!
//! ```text
//! {"crc":"xxxxxxxx","v":1,"tenant":"t003-619.lbm_s","gen":4,"weights":"<hex>"}
//! ```
//!
//! Appends go through the shard's single worker thread, so the file has one
//! writer in the steady state. The interesting failure is a *replaced*
//! shard: the supervisor abandons a stalled worker rather than joining it,
//! and the zombie may wake up mid-append and interleave bytes with its
//! replacement. The CRC seal turns that from silent corruption into a
//! dropped record; the torn-tail rule covers a crash mid-append. Recovery
//! is last-record-wins per tenant, mirroring the sweep's resume discipline.
//!
//! Compaction (rewriting the file to one record per tenant) uses the
//! sibling-tmp + rename pattern, so a crash mid-compaction leaves either
//! the old file or the new one, never a hybrid.

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

use ppf_bench::ckpt;

/// Schema version tag for serve checkpoint records.
pub const SCHEMA_VERSION: u32 = 1;

/// A tenant's restored state: checkpoint generation and weight snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoredTenant {
    /// Monotonic checkpoint generation (per tenant).
    pub gen: u64,
    /// Raw weight bytes for [`ppf::PpfFilter::warm_start`].
    pub weights: Vec<u8>,
}

/// What a checkpoint load recovered, plus what it had to drop.
#[derive(Debug, Default)]
pub struct Restored {
    /// Last-wins tenant snapshots.
    pub tenants: HashMap<String, RestoredTenant>,
    /// Records dropped: torn tail, failed CRC, or unparseable body.
    pub dropped: u64,
}

/// Handle to one shard's checkpoint file.
#[derive(Debug, Clone)]
pub struct ShardCheckpoint {
    path: PathBuf,
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[i * 2..i * 2 + 2], 16).ok())
        .collect()
}

fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

fn num_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let digits: String =
        line[start..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

impl ShardCheckpoint {
    /// Checkpoint file for shard `idx` under `dir`.
    pub fn new(dir: &Path, idx: usize) -> Self {
        Self { path: dir.join(format!("shard-{idx}.jsonl")) }
    }

    /// The file's path (for tests and diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Formats one record body (unsealed, no newline).
    fn record_body(tenant: &str, gen: u64, weights: &[u8]) -> String {
        debug_assert!(
            !tenant.contains(['"', '\\', '\n']),
            "tenant names are t<idx>-<workload>, no escaping needed"
        );
        format!(
            "{{\"v\":{SCHEMA_VERSION},\"tenant\":\"{tenant}\",\"gen\":{gen},\
             \"weights\":\"{}\"}}",
            hex_encode(weights)
        )
    }

    /// Appends one sealed record. With `bitflip`, a single bit of the
    /// written weights hex is flipped *after* sealing — the chaos drill's
    /// stand-in for storage corruption, guaranteed to fail the CRC check
    /// on the next load.
    pub fn append(
        &self,
        tenant: &str,
        gen: u64,
        weights: &[u8],
        bitflip: bool,
    ) -> std::io::Result<()> {
        if let Some(parent) = self.path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut line = ckpt::seal(&Self::record_body(tenant, gen, weights));
        if bitflip {
            // Flip one bit in the last weights nibble (safely inside the
            // sealed region, so `ckpt::check` must reject the record).
            let at = line.rfind('"').map(|q| q - 1).unwrap_or(line.len() - 1);
            // SAFETY-free byte edit: both old and new chars are ASCII.
            let mut bytes = line.into_bytes();
            bytes[at] ^= 0x02;
            line = String::from_utf8(bytes).expect("ASCII xor stays ASCII");
        }
        line.push('\n');
        let mut f = OpenOptions::new().create(true).append(true).open(&self.path)?;
        f.write_all(line.as_bytes())?;
        f.sync_all()
    }

    /// Loads the file tolerantly: a torn trailing line and CRC-failing
    /// records are dropped (and counted), complete records apply
    /// last-wins per tenant. A missing file is an empty fleet.
    pub fn load(&self) -> Restored {
        let loaded = match ckpt::load_tolerant(&self.path) {
            Ok(l) => l,
            Err(e) => {
                // Fail open: an unreadable file is an empty fleet, not a
                // crashed daemon.
                eprintln!("[serve] {}: checkpoint load failed: {e}", self.path.display());
                return Restored::default();
            }
        };
        let dropped = loaded.dropped_crc as u64 + u64::from(loaded.torn_tail);
        let mut out = Restored { tenants: HashMap::new(), dropped };
        for line in &loaded.lines {
            let parsed = (|| {
                let v = num_field(line, "v")?;
                if v != u64::from(SCHEMA_VERSION) {
                    return None;
                }
                let tenant = str_field(line, "tenant")?.to_string();
                let gen = num_field(line, "gen")?;
                let weights = hex_decode(str_field(line, "weights")?)?;
                Some((tenant, RestoredTenant { gen, weights }))
            })();
            match parsed {
                Some((tenant, restored)) => {
                    out.tenants.insert(tenant, restored);
                }
                None => out.dropped += 1,
            }
        }
        out
    }

    /// Rewrites the file to one sealed record per tenant, atomically
    /// (sibling tmp + rename). Bounds file growth across long runs.
    pub fn compact(
        &self,
        tenants: &HashMap<String, RestoredTenant>,
    ) -> std::io::Result<()> {
        let mut names: Vec<&String> = tenants.keys().collect();
        names.sort();
        let mut text = String::new();
        for name in names {
            let t = &tenants[name];
            text.push_str(&ckpt::seal(&Self::record_body(name, t.gen, &t.weights)));
            text.push('\n');
        }
        if let Some(parent) = self.path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        ckpt::atomic_write(&self.path, text.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("ppf-serve-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_then_load_round_trips_last_wins() {
        let dir = tmpdir("roundtrip");
        let ck = ShardCheckpoint::new(&dir, 0);
        ck.append("t000-a", 1, &[1, 2, 3], false).unwrap();
        ck.append("t001-b", 1, &[9, 8], false).unwrap();
        ck.append("t000-a", 2, &[4, 5, 6], false).unwrap();
        let r = ck.load();
        assert_eq!(r.dropped, 0);
        assert_eq!(r.tenants.len(), 2);
        assert_eq!(r.tenants["t000-a"], RestoredTenant { gen: 2, weights: vec![4, 5, 6] });
        assert_eq!(r.tenants["t001-b"].weights, vec![9, 8]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bitflipped_record_is_dropped_not_trusted() {
        let dir = tmpdir("bitflip");
        let ck = ShardCheckpoint::new(&dir, 1);
        ck.append("t000-a", 1, &[1, 2, 3], false).unwrap();
        ck.append("t000-a", 2, &[7, 7, 7], true).unwrap();
        let r = ck.load();
        assert_eq!(r.dropped, 1, "the corrupted generation fails its seal");
        assert_eq!(
            r.tenants["t000-a"].gen, 1,
            "recovery falls back to the last intact generation"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped() {
        let dir = tmpdir("torn");
        let ck = ShardCheckpoint::new(&dir, 2);
        ck.append("t000-a", 1, &[1], false).unwrap();
        ck.append("t000-a", 2, &[2], false).unwrap();
        let text = std::fs::read_to_string(ck.path()).unwrap();
        std::fs::write(ck.path(), &text[..text.len() - 5]).unwrap();
        let r = ck.load();
        assert_eq!(r.dropped, 1);
        assert_eq!(r.tenants["t000-a"].gen, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_keeps_state_and_shrinks_file() {
        let dir = tmpdir("compact");
        let ck = ShardCheckpoint::new(&dir, 3);
        for gen in 1..=10 {
            ck.append("t000-a", gen, &[gen as u8; 16], false).unwrap();
        }
        let before = std::fs::metadata(ck.path()).unwrap().len();
        let r = ck.load();
        ck.compact(&r.tenants).unwrap();
        let after = std::fs::metadata(ck.path()).unwrap().len();
        assert!(after < before);
        let r2 = ck.load();
        assert_eq!(r2.dropped, 0);
        assert_eq!(r2.tenants["t000-a"], r.tenants["t000-a"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_an_empty_fleet() {
        let dir = tmpdir("missing");
        let r = ShardCheckpoint::new(&dir, 9).load();
        assert!(r.tenants.is_empty());
        assert_eq!(r.dropped, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
