//! `ppf_serve` — the filter-fleet daemon binary.
//!
//! Boots a multi-tenant PPF fleet, warm-starting every tenant found in
//! the checkpoint directory, and serves the length-prefixed protocol on a
//! unix socket until a shutdown frame arrives (`ppf_loadgen --shutdown`).
//!
//! ```text
//! ppf_serve --listen /tmp/ppf.sock [--shards N] [--deadline-ms D]
//!           [--checkpoint-dir DIR] [--checkpoint-every K]
//! ```
//!
//! `PPF_FAULT_INJECT` (strict: malformed specs exit 2) injects chaos —
//! see `ppf_bench::fault` for the grammar. Counters export as JSONL via
//! the `telemetry` feature + `PPF_TELEMETRY`, like every other tool here.

use std::path::PathBuf;
use std::time::Duration;

use ppf_serve::daemon::{Daemon, ServeConfig};

fn usage_exit() -> ! {
    eprintln!(
        "usage: ppf_serve --listen <socket> [--shards N] [--deadline-ms D] \
         [--checkpoint-dir DIR] [--checkpoint-every K] [--queue-capacity Q] \
         [--tenant-quota T]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    let Some(v) = v else {
        eprintln!("error: {flag} needs a value");
        usage_exit();
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid value {v:?} for {flag}");
        usage_exit();
    })
}

fn main() {
    let mut listen: Option<PathBuf> = None;
    let mut cfg = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = Some(parse("--listen", args.next())),
            "--shards" => cfg.shards = parse("--shards", args.next()),
            "--deadline-ms" => {
                cfg.deadline = Duration::from_millis(parse("--deadline-ms", args.next()))
            }
            "--checkpoint-dir" => {
                cfg.checkpoint_dir = parse("--checkpoint-dir", args.next())
            }
            "--checkpoint-every" => {
                cfg.checkpoint_every = parse("--checkpoint-every", args.next())
            }
            "--queue-capacity" => {
                cfg.queue_capacity = parse("--queue-capacity", args.next())
            }
            "--tenant-quota" => cfg.tenant_quota = parse("--tenant-quota", args.next()),
            _ => {
                eprintln!("error: unknown argument {arg:?}");
                usage_exit();
            }
        }
    }
    // Strict at the binary boundary: a typo'd fault spec must not silently
    // run a drill with no faults.
    cfg.faults = ppf_bench::fault::specs_from_env_or_exit();

    #[cfg(not(unix))]
    {
        eprintln!("error: the socket front end requires unix domain sockets");
        std::process::exit(2);
    }
    #[cfg(unix)]
    {
        let Some(listen) = listen else {
            eprintln!("error: --listen is required");
            usage_exit();
        };
        let daemon = Daemon::start(cfg);
        println!("warm-start: {} tenants restored", daemon.warm_started());
        println!("listening on {}", listen.display());
        match ppf_serve::server::serve_unix(daemon, &listen) {
            Ok(daemon) => {
                #[cfg(feature = "telemetry")]
                daemon.export_telemetry("daemon");
                println!("final: {}", daemon.snapshot());
                daemon.shutdown();
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}
