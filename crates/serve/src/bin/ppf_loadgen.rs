//! `ppf_loadgen` — load generator and chaos-drill harness.
//!
//! Two modes:
//!
//! - `--drill`: boots an **in-process** fleet, injects the faults from
//!   `PPF_FAULT_INJECT` (strict parsing; malformed specs exit 2), drives
//!   a spike-paced multi-tenant replay through it, warm-restarts from the
//!   checkpoints, and prints a human summary plus one machine-readable
//!   JSONL line (`ppf_analysis::serve` renders it). Exits 1 if the drill
//!   misses the acceptance bar (a stalled caller or an unexplained
//!   warm-start mismatch).
//! - `--connect <socket>`: replays against a running `ppf_serve` over its
//!   unix socket and reports latency; `--stats` fetches the fleet's live
//!   counters and span tables (`OP_STATS`); `--shutdown` asks it to exit.
//!
//! ```text
//! PPF_FAULT_INJECT='tenant-panic:t001@5,checkpoint-bitflip:t002,slow-shard:1:1500,load-spike:10' \
//!     ppf_loadgen --drill --checkpoint-dir /tmp/drill-ckpt
//! ```

use std::path::PathBuf;
use std::time::Duration;

use ppf_serve::loadgen::{run_drill, silence_injected_panics, DrillConfig};

fn usage_exit() -> ! {
    eprintln!(
        "usage: ppf_loadgen --drill [--tenants N] [--duration-ms D] [--base-rate R] \
         [--checkpoint-dir DIR]\n       ppf_loadgen --connect <socket> [--requests N] \
         [--tenants N]\n       ppf_loadgen --stats <socket>\n       \
         ppf_loadgen --shutdown <socket>"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    let Some(v) = v else {
        eprintln!("error: {flag} needs a value");
        usage_exit();
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid value {v:?} for {flag}");
        usage_exit();
    })
}

fn drill(cfg: DrillConfig) -> ! {
    silence_injected_panics();
    let report = run_drill(&cfg);
    println!(
        "drill: {} requests, p50 {}us, p99 {}us, max {}us",
        report.requests, report.p50_us, report.p99_us, report.max_us
    );
    println!(
        "drill: degraded {} (shed {}, deadline misses {}), tenant restarts {}, \
         shard replacements {}",
        report.degraded,
        report.shed,
        report.deadline_misses,
        report.tenant_restarts,
        report.shard_replacements
    );
    println!(
        "drill: checkpoints {} written ({} bit-flipped, {} dropped on load), \
         warm-start {} restored / {} matched / {} expected mismatches",
        report.checkpoint_records,
        report.checkpoint_bitflips,
        report.checkpoint_drops,
        report.warm_restored,
        report.warm_matched,
        report.warm_expected_mismatch
    );
    println!("{}", report.to_jsonl());
    if report.passed() {
        println!("drill: PASS (no stalled callers, warm start clean)");
        std::process::exit(0);
    }
    eprintln!(
        "drill: FAIL ({} stalled callers, {} unexplained warm-start mismatches)",
        report.stalled_callers, report.warm_unexplained_mismatch
    );
    std::process::exit(1);
}

#[cfg(unix)]
fn connect_mode(sock: &std::path::Path, requests: u64, tenants: usize) -> ! {
    use ppf_serve::loadgen::FeatureTracker;
    use ppf_serve::protocol::ScoreRequest;
    use ppf_trace::{MultiTenantReplay, Suite};

    let mut client = ppf_serve::server::Client::connect(sock).unwrap_or_else(|e| {
        eprintln!("error: cannot connect to {}: {e}", sock.display());
        std::process::exit(1);
    });
    let mut replay = MultiTenantReplay::new(Suite::Spec2017, tenants, 4, 0xC0FFEE);
    let names = replay.tenant_names();
    let mut trackers: Vec<FeatureTracker> = vec![FeatureTracker::default(); tenants];
    let mut lat = Vec::with_capacity(requests as usize);
    let mut degraded = 0u64;
    for _ in 0..requests {
        let mut candidates = Vec::with_capacity(4);
        let mut demands = Vec::new();
        let mut tenant = 0;
        for _ in 0..4 {
            let (idx, rec) = replay.next_event();
            tenant = idx;
            candidates.push(trackers[idx].observe(&rec));
            demands.push(rec.addr);
        }
        let req = ScoreRequest {
            tenant: names[tenant].clone(),
            candidates,
            demands,
            evictions: Vec::new(),
        };
        let start = std::time::Instant::now();
        match client.score(&req) {
            Ok(reply) => {
                degraded += u64::from(reply.degraded);
                lat.push(start.elapsed().as_micros() as u64);
            }
            Err(e) => {
                eprintln!("error: score failed: {e}");
                std::process::exit(1);
            }
        }
    }
    lat.sort_unstable();
    let pct = |q: f64| {
        if lat.is_empty() {
            0
        } else {
            lat[(((lat.len() as f64 * q).ceil() as usize).clamp(1, lat.len())) - 1]
        }
    };
    println!(
        "connect: {} requests, p50 {}us, p99 {}us, degraded {}",
        lat.len(),
        pct(0.50),
        pct(0.99),
        degraded
    );
    std::process::exit(0);
}

fn main() {
    let mut mode: Option<String> = None;
    let mut sock: Option<PathBuf> = None;
    let mut cfg = DrillConfig::default();
    let mut requests = 500u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--drill" => mode = Some("drill".into()),
            "--connect" => {
                mode = Some("connect".into());
                sock = Some(parse("--connect", args.next()));
            }
            "--stats" => {
                mode = Some("stats".into());
                sock = Some(parse("--stats", args.next()));
            }
            "--shutdown" => {
                mode = Some("shutdown".into());
                sock = Some(parse("--shutdown", args.next()));
            }
            "--tenants" => cfg.tenants = parse("--tenants", args.next()),
            "--duration-ms" => cfg.duration_ms = parse("--duration-ms", args.next()),
            "--base-rate" => cfg.base_rate = parse("--base-rate", args.next()),
            "--requests" => requests = parse("--requests", args.next()),
            "--checkpoint-dir" => {
                cfg.serve.checkpoint_dir = parse("--checkpoint-dir", args.next())
            }
            "--deadline-ms" => {
                cfg.serve.deadline = Duration::from_millis(parse("--deadline-ms", args.next()))
            }
            _ => {
                eprintln!("error: unknown argument {arg:?}");
                usage_exit();
            }
        }
    }
    // Strict at the binary boundary, mirroring --threads: a malformed
    // PPF_FAULT_INJECT must fail loudly, not silently drill nothing.
    cfg.serve.faults = ppf_bench::fault::specs_from_env_or_exit();

    match mode.as_deref() {
        Some("drill") => drill(cfg),
        #[cfg(unix)]
        Some("connect") => connect_mode(&sock.expect("set with --connect"), requests, cfg.tenants),
        #[cfg(unix)]
        Some("stats") => {
            let sock = sock.expect("set with --stats");
            let mut client = ppf_serve::server::Client::connect(&sock).unwrap_or_else(|e| {
                eprintln!("error: cannot connect to {}: {e}", sock.display());
                std::process::exit(1);
            });
            let report = client.stats().unwrap_or_else(|e| {
                eprintln!("error: stats failed: {e}");
                std::process::exit(1);
            });
            // Raw JSONL: the counters snapshot line, then span-table
            // lines when the daemon runs with profiling live.
            print!("{report}");
        }
        #[cfg(unix)]
        Some("shutdown") => {
            let sock = sock.expect("set with --shutdown");
            let mut client = ppf_serve::server::Client::connect(&sock).unwrap_or_else(|e| {
                eprintln!("error: cannot connect to {}: {e}", sock.display());
                std::process::exit(1);
            });
            client.shutdown().unwrap_or_else(|e| {
                eprintln!("error: shutdown failed: {e}");
                std::process::exit(1);
            });
            println!("daemon asked to shut down");
        }
        _ => usage_exit(),
    }
}
