//! Per-tenant filter state.
//!
//! A tenant is one isolated PPF instance: its own weight arena, metadata
//! tables, and checkpoint generation. Tenants never share mutable state —
//! fault isolation falls out of ownership: a panic while scoring one
//! tenant (caught at the shard layer) can only have poisoned that
//! tenant's filter, which is then discarded and rebuilt from its last
//! checkpoint.

use ppf::{Decision, FeatureInputs, PpfConfig, PpfFilter, ScoredBatch, MAX_BATCH};

use crate::protocol::ScoreRequest;

/// One tenant: a filter plus serving bookkeeping.
#[derive(Debug)]
pub struct TenantState {
    /// Stable tenant name (`t<idx>-<workload>`), the checkpoint key.
    pub name: String,
    /// The tenant's private filter.
    pub filter: PpfFilter,
    /// Checkpoint generation last written (0 = never checkpointed).
    pub gen: u64,
    /// Score requests served since the last checkpoint barrier.
    pub since_checkpoint: u64,
    /// Total score requests ever seen (drives nth-request fault triggers).
    pub seen: u64,
}

impl TenantState {
    /// A fresh tenant with default PPF configuration.
    pub fn fresh(name: &str) -> Self {
        Self {
            name: name.to_string(),
            filter: PpfFilter::new(PpfConfig::default()),
            gen: 0,
            since_checkpoint: 0,
            seen: 0,
        }
    }

    /// A tenant warm-started from a checkpoint snapshot. Falls back to a
    /// fresh filter (fail-open) if the snapshot does not fit the filter's
    /// geometry, reporting the error.
    pub fn warm(name: &str, gen: u64, weights: &[u8]) -> Result<Self, String> {
        let mut t = Self::fresh(name);
        t.filter.warm_start(weights)?;
        t.gen = gen;
        Ok(t)
    }

    /// Scores one request: batch-infer the candidates through the SIMD
    /// summing path, commit each decision in candidate order, then apply
    /// the piggybacked feedback.
    ///
    /// Decisions are identical to scoring one candidate at a time:
    /// `judge_scored` re-sums any candidate whose batch epoch went stale
    /// when recording an earlier one displacement-trained the weights, so
    /// batching changes where the sums are computed, never their values
    /// (pinned by `batched_scoring_matches_sequential`).
    pub fn process(&mut self, req: &ScoreRequest) -> Vec<Decision> {
        self.seen += 1;
        self.since_checkpoint += 1;
        let mut decisions = Vec::with_capacity(req.candidates.len());
        let mut batch = ScoredBatch::default();
        let mut inputs = [FeatureInputs::default(); MAX_BATCH];
        for chunk in req.candidates.chunks(MAX_BATCH) {
            for (slot, c) in inputs.iter_mut().zip(chunk) {
                *slot = c.inputs;
            }
            self.filter.infer_batch(&inputs[..chunk.len()], &mut batch);
            for (i, c) in chunk.iter().enumerate() {
                let (d, sum, indices) = self.filter.judge_scored(&mut batch, i);
                self.filter.record_indexed(c.target, c.inputs, indices, sum, d);
                decisions.push(d);
            }
        }
        for &addr in &req.demands {
            self.filter.train_on_demand(addr);
        }
        for &addr in &req.evictions {
            self.filter.train_on_eviction(addr, false);
        }
        decisions
    }

    /// The pre-batching scoring loop, kept as the differential oracle for
    /// `batched_scoring_matches_sequential`.
    #[cfg(test)]
    fn process_sequential(&mut self, req: &ScoreRequest) -> Vec<Decision> {
        self.seen += 1;
        self.since_checkpoint += 1;
        let mut decisions = Vec::with_capacity(req.candidates.len());
        for c in &req.candidates {
            let (d, sum, indices) = self.filter.infer_indexed(&c.inputs);
            self.filter.record_indexed(c.target, c.inputs, indices, sum, d);
            decisions.push(d);
        }
        for &addr in &req.demands {
            self.filter.train_on_demand(addr);
        }
        for &addr in &req.evictions {
            self.filter.train_on_eviction(addr, false);
        }
        decisions
    }

    /// Takes a checkpoint barrier: snapshots the weights, clears the
    /// metadata tables (see `PpfFilter::checkpoint_barrier` for why this
    /// makes warm-start recovery bit-exact), and bumps the generation.
    pub fn barrier(&mut self) -> (u64, Vec<u8>) {
        let weights = self.filter.checkpoint_barrier();
        self.gen += 1;
        self.since_checkpoint = 0;
        (self.gen, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Candidate;
    use ppf::FeatureInputs;

    fn req(tag: u64, n: u64) -> ScoreRequest {
        let candidates = (0..n)
            .map(|i| {
                let addr = 0x1000_0000 + (tag * 97 + i) * 64;
                Candidate {
                    inputs: FeatureInputs {
                        trigger_addr: addr,
                        trigger_pc: 0x40_0000 + (tag % 13) * 4,
                        delta: 1 + (i % 3) as i16,
                        depth: (i % 4) as u8,
                        ..FeatureInputs::default()
                    },
                    target: addr + 64,
                }
            })
            .collect();
        ScoreRequest {
            tenant: "t000-x".into(),
            candidates,
            demands: vec![0x1000_0000 + tag * 97 * 64 + 64],
            evictions: vec![],
        }
    }

    #[test]
    fn processing_trains_and_counts() {
        let mut t = TenantState::fresh("t000-x");
        for i in 0..32 {
            let decisions = t.process(&req(i, 4));
            assert_eq!(decisions.len(), 4);
        }
        assert_eq!(t.seen, 32);
        assert!(t.filter.stats.inferences >= 128);
        assert!(t.filter.stats.positive_trains > 0, "demand feedback trains");
    }

    #[test]
    fn barrier_then_warm_resumes_identically() {
        let mut live = TenantState::fresh("t000-x");
        for i in 0..64 {
            live.process(&req(i, 4));
        }
        let (gen, weights) = live.barrier();
        let mut restored = TenantState::warm("t000-x", gen, &weights).unwrap();
        for i in 64..128 {
            assert_eq!(live.process(&req(i, 4)), restored.process(&req(i, 4)));
        }
        assert_eq!(live.filter.weights_digest(), restored.filter.weights_digest());
    }

    #[test]
    fn warm_start_rejects_wrong_geometry() {
        assert!(TenantState::warm("t", 1, &[0u8; 3]).is_err());
    }

    #[test]
    fn batched_scoring_matches_sequential() {
        let mut batched = TenantState::fresh("t000-x");
        let mut sequential = TenantState::fresh("t000-x");
        // Mixed batch sizes, including empty and > MAX_BATCH (forces the
        // chunked path), with feedback interleaved so the weights keep
        // moving between and within requests.
        let sizes = [0u64, 1, 3, 4, 7, MAX_BATCH as u64, MAX_BATCH as u64 + 17, 5, 64, 2];
        for (i, &n) in sizes.iter().cycle().take(60).enumerate() {
            let r = req(i as u64, n);
            assert_eq!(
                batched.process(&r),
                sequential.process_sequential(&r),
                "request {i} (batch of {n}) diverged"
            );
        }
        assert_eq!(
            batched.filter.weights_digest(),
            sequential.filter.weights_digest(),
            "training state diverged"
        );
        assert_eq!(batched.filter.stats.inferences, sequential.filter.stats.inferences);
    }
}
