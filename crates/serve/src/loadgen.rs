//! Load generation and the chaos drill.
//!
//! The load generator replays multi-tenant `ppf-trace` streams
//! ([`ppf_trace::MultiTenantReplay`]) against a daemon, paced by a
//! [`ppf_trace::RatePlan`] (so a "10x load spike" is part of the schedule,
//! not an accident of wall-clock jitter), and measures caller-observed
//! latency. The **chaos drill** ([`run_drill`]) is the acceptance harness:
//! it boots an in-process fleet with injected faults, drives it through a
//! spike, then restarts from checkpoints and checks the warm start —
//! reporting p50/p99 latency alongside shed/degraded/restart rates.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ppf::FeatureInputs;
use ppf_bench::fault::FaultSpec;
use ppf_bench::runner::lock_unpoisoned;
use ppf_trace::{MultiTenantReplay, RatePlan, Suite, TraceRecord};

use crate::daemon::{Daemon, ServeConfig};
use crate::protocol::{Candidate, ScoreRequest};

/// Per-tenant feature derivation from a raw trace stream.
///
/// The daemon scores [`FeatureInputs`], but a trace is just (pc, addr)
/// pairs — this mirrors the lightweight SPP-style front end: rolling
/// delta signature, last-3 PC history, and a confidence that decays with
/// signature churn. Deterministic, so replays are reproducible.
#[derive(Debug, Default, Clone)]
pub struct FeatureTracker {
    last_block: u64,
    pcs: [u64; 3],
    signature: u16,
    stable: u8,
}

impl FeatureTracker {
    /// Folds one record into the tracker and emits the candidate to score.
    pub fn observe(&mut self, rec: &TraceRecord) -> Candidate {
        let block = rec.addr >> 6;
        let raw = block as i64 - self.last_block as i64;
        let delta = raw.clamp(i64::from(i16::MIN), i64::from(i16::MAX)) as i16;
        let last_signature = self.signature;
        self.signature = ((self.signature << 3) ^ (delta as u16 & 0x3F)) & 0x3FF;
        self.stable = if self.signature == last_signature {
            self.stable.saturating_add(8)
        } else {
            self.stable / 2
        };
        let inputs = FeatureInputs {
            trigger_addr: rec.addr,
            trigger_pc: rec.pc,
            pc_1: self.pcs[0],
            pc_2: self.pcs[1],
            pc_3: self.pcs[2],
            signature: self.signature,
            last_signature,
            confidence: self.stable,
            delta,
            depth: (delta.unsigned_abs() % 4) as u8,
            source: 0,
        };
        self.pcs = [rec.pc, self.pcs[0], self.pcs[1]];
        self.last_block = block;
        // Next-line-ish target in the delta's direction: close enough to
        // real lookahead for serving purposes, and fully deterministic.
        let target = rec.addr.wrapping_add_signed(i64::from(delta.signum().max(0) * 2 - 1) * 64);
        Candidate { inputs, target }
    }
}

/// Chaos-drill configuration.
#[derive(Debug, Clone)]
pub struct DrillConfig {
    /// Tenants in the fleet.
    pub tenants: usize,
    /// Candidates per score request.
    pub batch: usize,
    /// Virtual drill length in milliseconds (1 virtual ms ≈ 1 real ms).
    pub duration_ms: u64,
    /// Steady-state requests per virtual millisecond.
    pub base_rate: u64,
    /// Caller threads draining the schedule.
    pub callers: usize,
    /// Daemon settings (shards, deadline, checkpoint dir, faults...).
    pub serve: ServeConfig,
}

impl Default for DrillConfig {
    fn default() -> Self {
        Self {
            tenants: 6,
            batch: 4,
            duration_ms: 600,
            base_rate: 3,
            callers: 4,
            serve: ServeConfig {
                shards: 3,
                deadline: Duration::from_millis(100),
                checkpoint_every: 16,
                watchdog_limit: Duration::from_millis(300),
                supervisor_poll: Duration::from_millis(50),
                ..ServeConfig::default()
            },
        }
    }
}

/// What the drill measured. `stalled_callers` is the headline invariant:
/// it must be zero — no caller may ever block past deadline + margin.
#[derive(Debug, Clone)]
pub struct DrillReport {
    /// Requests submitted.
    pub requests: u64,
    /// Caller-observed p50 latency (µs), exact over all samples.
    pub p50_us: u64,
    /// Caller-observed p99 latency (µs).
    pub p99_us: u64,
    /// Worst caller-observed latency (µs).
    pub max_us: u64,
    /// Calls that exceeded deadline + margin (must be 0).
    pub stalled_callers: u64,
    /// Replies flagged degraded.
    pub degraded: u64,
    /// Requests shed (overflow + quota).
    pub shed: u64,
    /// Deadline misses observed by the daemon.
    pub deadline_misses: u64,
    /// Tenants rebuilt after a panic.
    pub tenant_restarts: u64,
    /// Shards replaced by the supervisor.
    pub shard_replacements: u64,
    /// Checkpoint records written / corrupted / dropped on load.
    pub checkpoint_records: u64,
    /// Records corrupted by injected bit-flips.
    pub checkpoint_bitflips: u64,
    /// Records dropped at warm-start load (CRC / torn tail).
    pub checkpoint_drops: u64,
    /// Tenants restored at the warm restart.
    pub warm_restored: u64,
    /// Restored tenants whose weights digest matched the pre-shutdown
    /// fleet exactly.
    pub warm_matched: u64,
    /// Tenants expected to mismatch (every checkpoint bit-flipped).
    pub warm_expected_mismatch: u64,
    /// Restored-but-mismatched tenants *not* explained by injected
    /// corruption (must be 0).
    pub warm_unexplained_mismatch: u64,
}

impl DrillReport {
    /// Whether the drill met the acceptance bar.
    pub fn passed(&self) -> bool {
        self.stalled_callers == 0 && self.warm_unexplained_mismatch == 0
    }

    /// Flat numeric JSONL (parseable by `ppf_analysis::serve`).
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"v\":1,\"requests\":{},\"p50_us\":{},\"p99_us\":{},\"max_us\":{},\
             \"stalled_callers\":{},\"degraded\":{},\"shed\":{},\
             \"deadline_misses\":{},\"tenant_restarts\":{},\
             \"shard_replacements\":{},\"checkpoint_records\":{},\
             \"checkpoint_bitflips\":{},\"checkpoint_drops\":{},\
             \"warm_restored\":{},\"warm_matched\":{},\
             \"warm_expected_mismatch\":{},\"warm_unexplained_mismatch\":{}}}",
            self.requests,
            self.p50_us,
            self.p99_us,
            self.max_us,
            self.stalled_callers,
            self.degraded,
            self.shed,
            self.deadline_misses,
            self.tenant_restarts,
            self.shard_replacements,
            self.checkpoint_records,
            self.checkpoint_bitflips,
            self.checkpoint_drops,
            self.warm_restored,
            self.warm_matched,
            self.warm_expected_mismatch,
            self.warm_unexplained_mismatch,
        )
    }
}

/// Replaces the panic hook with one that swallows injected-fault panics
/// (the drill's own chaos) but forwards everything else. Idempotent.
pub fn silence_injected_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("injected tenant fault"));
        if !injected {
            default(info);
        }
    }));
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Runs the chaos drill: spike-paced multi-tenant replay against a fleet
/// with `cfg.serve.faults` injected, followed by a warm restart from the
/// checkpoints the run produced.
pub fn run_drill(cfg: &DrillConfig) -> DrillReport {
    let spike_factor = cfg
        .serve
        .faults
        .iter()
        .find_map(|f| match f {
            FaultSpec::LoadSpike { factor } => Some(*factor),
            _ => None,
        })
        .unwrap_or(1);
    // Spike occupies the middle third of the drill.
    let plan = RatePlan::steady(cfg.base_rate).with_spike(
        cfg.duration_ms / 3,
        2 * cfg.duration_ms / 3,
        spike_factor,
    );

    let mut replay = MultiTenantReplay::new(Suite::Spec2017, cfg.tenants, cfg.batch, 0xC0FFEE);
    let tenant_names = replay.tenant_names();
    let mut trackers: HashMap<usize, FeatureTracker> = HashMap::new();

    let daemon = Daemon::start(cfg.serve.clone());
    let latencies = Mutex::new(Vec::new());
    let stall_margin = cfg.serve.deadline + Duration::from_millis(200);
    let mut requests = 0u64;

    let (tx, rx) = mpsc::channel::<ScoreRequest>();
    let rx = Mutex::new(rx);
    std::thread::scope(|scope| {
        for _ in 0..cfg.callers.max(1) {
            let rx = &rx;
            let daemon = &daemon;
            let latencies = &latencies;
            scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let Ok(req) = lock_unpoisoned(rx).recv() else { break };
                    let start = Instant::now();
                    let _ = daemon.score(req);
                    local.push(start.elapsed().as_micros() as u64);
                }
                lock_unpoisoned(latencies).extend(local);
            });
        }

        // Pace the schedule: 1 virtual ms per real ms, submitting whatever
        // the plan says has come due.
        let mut sent = 0u64;
        for t in 0..cfg.duration_ms {
            while sent < plan.due(t + 1) {
                let mut candidates = Vec::with_capacity(cfg.batch);
                let mut tenant_idx = 0;
                let mut demands = Vec::new();
                for _ in 0..cfg.batch {
                    let (idx, rec) = replay.next_event();
                    tenant_idx = idx;
                    let c = trackers.entry(idx).or_default().observe(&rec);
                    candidates.push(c);
                    // Feed back demand on the previous target region: keeps
                    // the filters training without simulating a cache.
                    demands.push(rec.addr);
                }
                let req = ScoreRequest {
                    tenant: tenant_names[tenant_idx].clone(),
                    candidates,
                    demands,
                    evictions: Vec::new(),
                };
                if tx.send(req).is_err() {
                    break;
                }
                sent += 1;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        requests = sent;
        drop(tx);
    });

    daemon.flush();
    let pre_digests: HashMap<String, u64> = daemon
        .tenant_digests()
        .into_iter()
        .map(|(name, _gen, digest)| (name, digest))
        .collect();
    let c = daemon.counters();
    let g = |a: &std::sync::atomic::AtomicU64| a.load(Ordering::Relaxed);
    let (degraded, shed, misses) = (
        g(&c.degraded_replies),
        g(&c.shed_overflow) + g(&c.shed_quota),
        g(&c.deadline_misses),
    );
    let (restarts, replacements) = (g(&c.tenant_restarts), g(&c.shard_replacements));
    let (ck_records, ck_flips) = (g(&c.checkpoint_records), g(&c.checkpoint_bitflips));
    daemon.shutdown();

    // Warm restart: same checkpoint dir, no faults (the storage corruption
    // already happened — now we prove recovery).
    let restart_cfg = ServeConfig { faults: Vec::new(), ..cfg.serve.clone() };
    let daemon2 = Daemon::start(restart_cfg);
    let warm_restored = daemon2.warm_started();
    // Materialize every tenant without perturbing weights: an empty batch
    // trains nothing.
    for name in &tenant_names {
        let _ = daemon2.score(ScoreRequest {
            tenant: name.clone(),
            candidates: Vec::new(),
            demands: Vec::new(),
            evictions: Vec::new(),
        });
    }
    let bitflipped: Vec<&String> = tenant_names
        .iter()
        .filter(|n| {
            cfg.serve.faults.iter().any(|f| {
                matches!(f, FaultSpec::CheckpointBitflip { pat } if n.contains(pat.as_str()))
            })
        })
        .collect();
    let mut warm_matched = 0u64;
    let mut unexplained = 0u64;
    for (name, _gen, digest) in daemon2.tenant_digests() {
        match pre_digests.get(&name) {
            Some(&pre) if pre == digest => warm_matched += 1,
            _ if bitflipped.iter().any(|b| **b == name) => {}
            _ => unexplained += 1,
        }
    }
    let checkpoint_drops = daemon2.counters().checkpoint_drops.load(Ordering::Relaxed);
    daemon2.shutdown();

    let mut lat = lock_unpoisoned(&latencies).clone();
    lat.sort_unstable();
    let stalled = lat
        .iter()
        .filter(|&&us| Duration::from_micros(us) > stall_margin)
        .count() as u64;

    DrillReport {
        requests,
        p50_us: percentile(&lat, 0.50),
        p99_us: percentile(&lat, 0.99),
        max_us: lat.last().copied().unwrap_or(0),
        stalled_callers: stalled,
        degraded,
        shed,
        deadline_misses: misses,
        tenant_restarts: restarts,
        shard_replacements: replacements,
        checkpoint_records: ck_records,
        checkpoint_bitflips: ck_flips,
        checkpoint_drops,
        warm_restored,
        warm_matched,
        warm_expected_mismatch: bitflipped.len() as u64,
        warm_unexplained_mismatch: unexplained,
    }
}
