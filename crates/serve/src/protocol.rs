//! Length-prefixed wire protocol for the filter daemon.
//!
//! Framing is deliberately minimal: a `u32` little-endian payload length,
//! then the payload, whose first byte is an opcode. Everything is
//! fixed-width little-endian — no text parsing on the hot path, and a
//! truncated frame is detectable before any field is read.
//!
//! A score request carries the tenant name, a batch of candidates, and the
//! tenant's piggybacked feedback (demand addresses and unused evictions).
//! A candidate is exactly [`CANDIDATE_BYTES`] bytes:
//!
//! | field            | type  | bytes |
//! |------------------|-------|-------|
//! | `trigger_addr`   | `u64` | 8     |
//! | `trigger_pc`     | `u64` | 8     |
//! | `pc_1..pc_3`     | `u64` | 24    |
//! | `signature`      | `u16` | 2     |
//! | `last_signature` | `u16` | 2     |
//! | `delta`          | `i16` | 2     |
//! | `confidence`     | `u8`  | 1     |
//! | `depth`          | `u8`  | 1     |
//! | `target`         | `u64` | 8     |
//!
//! The reply is one status byte (`0` = scored, `1` = degraded accept-all)
//! followed by one decision byte per candidate.

use ppf::{Decision, FeatureInputs};

/// Score a batch of candidates for one tenant.
pub const OP_SCORE: u8 = 1;
/// Reply to [`OP_SCORE`].
pub const OP_REPLY: u8 = 2;
/// Liveness probe; replied to with an empty [`OP_REPLY`].
pub const OP_PING: u8 = 3;
/// Flush checkpoints and stop the daemon.
pub const OP_SHUTDOWN: u8 = 4;
/// Request a live stats report; replied to with an [`OP_STATS`] frame
/// carrying the report text (see [`encode_stats_reply`]).
pub const OP_STATS: u8 = 5;

/// Serialized size of one candidate.
pub const CANDIDATE_BYTES: usize = 56;

/// Frames larger than this are rejected before allocation (a corrupt
/// length prefix must not OOM the daemon).
pub const MAX_FRAME: usize = 1 << 22;

/// One prefetch candidate: the feature vector plus the prefetch target the
/// tables are keyed by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Feature inputs at the trigger access.
    pub inputs: FeatureInputs,
    /// Prefetch target address.
    pub target: u64,
}

/// A decoded score request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoreRequest {
    /// Tenant the batch belongs to.
    pub tenant: String,
    /// Candidates to score, in order.
    pub candidates: Vec<Candidate>,
    /// Demand accesses since the last batch (positive feedback).
    pub demands: Vec<u64>,
    /// Addresses evicted unused since the last batch (negative feedback).
    pub evictions: Vec<u64>,
}

/// A decoded score reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoreReply {
    /// `true` when the daemon could not score (shed, deadline, panic) and
    /// fails open: every decision is accept.
    pub degraded: bool,
    /// One decision per candidate.
    pub decisions: Vec<Decision>,
}

impl ScoreReply {
    /// The fail-open reply: accept everything at the L2.
    pub fn degraded(n: usize) -> Self {
        Self { degraded: true, decisions: vec![Decision::PrefetchL2; n] }
    }
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn read_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
}

fn read_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().unwrap())
}

fn read_u16(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes(buf[at..at + 2].try_into().unwrap())
}

/// Appends one candidate's fixed-width encoding.
pub fn encode_candidate(buf: &mut Vec<u8>, c: &Candidate) {
    let i = &c.inputs;
    put_u64(buf, i.trigger_addr);
    put_u64(buf, i.trigger_pc);
    put_u64(buf, i.pc_1);
    put_u64(buf, i.pc_2);
    put_u64(buf, i.pc_3);
    buf.extend_from_slice(&i.signature.to_le_bytes());
    buf.extend_from_slice(&i.last_signature.to_le_bytes());
    buf.extend_from_slice(&i.delta.to_le_bytes());
    buf.push(i.confidence);
    buf.push(i.depth);
    put_u64(buf, c.target);
}

/// Decodes one candidate from `buf[at..at + CANDIDATE_BYTES]`.
pub fn decode_candidate(buf: &[u8], at: usize) -> Candidate {
    let inputs = FeatureInputs {
        trigger_addr: read_u64(buf, at),
        trigger_pc: read_u64(buf, at + 8),
        pc_1: read_u64(buf, at + 16),
        pc_2: read_u64(buf, at + 24),
        pc_3: read_u64(buf, at + 32),
        signature: read_u16(buf, at + 40),
        last_signature: read_u16(buf, at + 42),
        delta: read_u16(buf, at + 44) as i16,
        confidence: buf[at + 46],
        depth: buf[at + 47],
        // The wire format predates source attribution; remote candidates
        // score as the primary (bare) source.
        source: 0,
    };
    Candidate { inputs, target: read_u64(buf, at + 48) }
}

/// Encodes a score request into a full frame (length prefix included).
pub fn encode_score(req: &ScoreRequest) -> Vec<u8> {
    let mut payload = Vec::with_capacity(
        16 + req.tenant.len()
            + req.candidates.len() * CANDIDATE_BYTES
            + (req.demands.len() + req.evictions.len()) * 8,
    );
    payload.push(OP_SCORE);
    let name = req.tenant.as_bytes();
    payload.extend_from_slice(&(name.len() as u16).to_le_bytes());
    payload.extend_from_slice(name);
    payload.extend_from_slice(&(req.candidates.len() as u32).to_le_bytes());
    for c in &req.candidates {
        encode_candidate(&mut payload, c);
    }
    payload.extend_from_slice(&(req.demands.len() as u32).to_le_bytes());
    for &d in &req.demands {
        put_u64(&mut payload, d);
    }
    payload.extend_from_slice(&(req.evictions.len() as u32).to_le_bytes());
    for &e in &req.evictions {
        put_u64(&mut payload, e);
    }
    frame(payload)
}

/// Encodes a reply into a full frame.
pub fn encode_reply(reply: &ScoreReply) -> Vec<u8> {
    let mut payload = Vec::with_capacity(6 + reply.decisions.len());
    payload.push(OP_REPLY);
    payload.push(u8::from(reply.degraded));
    payload.extend_from_slice(&(reply.decisions.len() as u32).to_le_bytes());
    for &d in &reply.decisions {
        payload.push(match d {
            Decision::Reject => 0,
            Decision::PrefetchLlc => 1,
            Decision::PrefetchL2 => 2,
        });
    }
    frame(payload)
}

/// Encodes a bare single-opcode frame ([`OP_PING`], [`OP_SHUTDOWN`],
/// [`OP_STATS`] as a request).
pub fn encode_op(op: u8) -> Vec<u8> {
    frame(vec![op])
}

/// Encodes a stats report into a full frame: `[OP_STATS][u32 len][utf8]`.
/// The report is JSONL text (counters snapshot, then span-table lines) —
/// stats are off the hot path, so a text payload costs nothing that
/// matters and keeps the report greppable.
pub fn encode_stats_reply(report: &str) -> Vec<u8> {
    let bytes = report.as_bytes();
    let mut payload = Vec::with_capacity(5 + bytes.len());
    payload.push(OP_STATS);
    payload.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    payload.extend_from_slice(bytes);
    frame(payload)
}

/// Decodes a stats-reply payload (opcode byte included).
pub fn decode_stats_reply(payload: &[u8]) -> Result<String, String> {
    if payload.len() < 5 {
        return Err("stats frame too short".into());
    }
    if payload[0] != OP_STATS {
        return Err(format!("expected OP_STATS, got opcode {}", payload[0]));
    }
    let n = read_u32(payload, 1) as usize;
    if payload.len() < 5 + n {
        return Err("stats frame shorter than its length field".into());
    }
    String::from_utf8(payload[5..5 + n].to_vec())
        .map_err(|_| "stats report is not UTF-8".to_string())
}

fn frame(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend(payload);
    out
}

/// Decodes a score-request payload (opcode byte included). Every length is
/// bounds-checked; a malformed frame is an error, never a panic.
pub fn decode_score(payload: &[u8]) -> Result<ScoreRequest, String> {
    let need = |at: usize, n: usize| {
        if at + n > payload.len() {
            Err(format!("truncated frame: need {n} bytes at {at}, have {}", payload.len()))
        } else {
            Ok(())
        }
    };
    need(0, 3)?;
    if payload[0] != OP_SCORE {
        return Err(format!("expected OP_SCORE, got opcode {}", payload[0]));
    }
    let name_len = read_u16(payload, 1) as usize;
    need(3, name_len)?;
    let tenant = String::from_utf8(payload[3..3 + name_len].to_vec())
        .map_err(|_| "tenant name is not UTF-8".to_string())?;
    let mut at = 3 + name_len;

    need(at, 4)?;
    let ncand = read_u32(payload, at) as usize;
    at += 4;
    if ncand > MAX_FRAME / CANDIDATE_BYTES {
        return Err(format!("candidate count {ncand} exceeds frame budget"));
    }
    need(at, ncand * CANDIDATE_BYTES)?;
    let mut candidates = Vec::with_capacity(ncand);
    for _ in 0..ncand {
        candidates.push(decode_candidate(payload, at));
        at += CANDIDATE_BYTES;
    }

    let addrs = |at: &mut usize| -> Result<Vec<u64>, String> {
        need(*at, 4)?;
        let n = read_u32(payload, *at) as usize;
        *at += 4;
        if n > MAX_FRAME / 8 {
            return Err(format!("address count {n} exceeds frame budget"));
        }
        need(*at, n * 8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(read_u64(payload, *at));
            *at += 8;
        }
        Ok(out)
    };
    let demands = addrs(&mut at)?;
    let evictions = addrs(&mut at)?;
    Ok(ScoreRequest { tenant, candidates, demands, evictions })
}

/// Decodes a reply payload (opcode byte included).
pub fn decode_reply(payload: &[u8]) -> Result<ScoreReply, String> {
    if payload.len() < 6 {
        return Err("reply frame too short".into());
    }
    if payload[0] != OP_REPLY {
        return Err(format!("expected OP_REPLY, got opcode {}", payload[0]));
    }
    let degraded = payload[1] != 0;
    let n = read_u32(payload, 2) as usize;
    if payload.len() < 6 + n {
        return Err("reply frame shorter than its decision count".into());
    }
    let mut decisions = Vec::with_capacity(n);
    for &b in &payload[6..6 + n] {
        decisions.push(match b {
            0 => Decision::Reject,
            1 => Decision::PrefetchLlc,
            2 => Decision::PrefetchL2,
            other => return Err(format!("unknown decision byte {other}")),
        });
    }
    Ok(ScoreReply { degraded, decisions })
}

/// Reads one frame's payload from a stream. `Ok(None)` on clean EOF at a
/// frame boundary.
pub fn read_frame(r: &mut impl std::io::Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF inside frame length",
                ))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> ScoreRequest {
        let inputs = FeatureInputs {
            trigger_addr: 0xDEAD_BEEF_0000,
            trigger_pc: 0x40_1234,
            pc_1: 1,
            pc_2: 2,
            pc_3: 3,
            signature: 0x3FF,
            last_signature: 0x155,
            delta: -42,
            confidence: 99,
            depth: 7,
            source: 0,
        };
        ScoreRequest {
            tenant: "t000-619.lbm_s".into(),
            candidates: vec![
                Candidate { inputs, target: 0xAAAA_0000 },
                Candidate { inputs: FeatureInputs::default(), target: 0xBBBB_0000 },
            ],
            demands: vec![0xAAAA_0000, 0xCCCC_0000],
            evictions: vec![0xBBBB_0000],
        }
    }

    #[test]
    fn score_request_round_trips() {
        let req = sample_request();
        let framed = encode_score(&req);
        let len = u32::from_le_bytes(framed[..4].try_into().unwrap()) as usize;
        assert_eq!(len, framed.len() - 4);
        let decoded = decode_score(&framed[4..]).expect("decodes");
        assert_eq!(decoded, req);
    }

    #[test]
    fn candidate_encoding_is_exactly_56_bytes() {
        let mut buf = Vec::new();
        encode_candidate(&mut buf, &sample_request().candidates[0]);
        assert_eq!(buf.len(), CANDIDATE_BYTES);
    }

    #[test]
    fn reply_round_trips() {
        let reply = ScoreReply {
            degraded: false,
            decisions: vec![Decision::PrefetchL2, Decision::Reject, Decision::PrefetchLlc],
        };
        let framed = encode_reply(&reply);
        assert_eq!(decode_reply(&framed[4..]).unwrap(), reply);
        let deg = ScoreReply::degraded(2);
        let framed = encode_reply(&deg);
        let back = decode_reply(&framed[4..]).unwrap();
        assert!(back.degraded);
        assert_eq!(back.decisions, vec![Decision::PrefetchL2; 2]);
    }

    #[test]
    fn truncated_frames_error_not_panic() {
        let req = sample_request();
        let framed = encode_score(&req);
        for cut in 1..framed.len() - 4 {
            // Every prefix of the payload must fail cleanly.
            let _ = decode_score(&framed[4..4 + cut]);
        }
        assert!(decode_score(&[]).is_err());
        assert!(decode_reply(&[OP_REPLY, 0, 9, 0, 0, 0]).is_err());
    }

    #[test]
    fn stats_reply_round_trips_and_rejects_truncation() {
        let report = "{\"v\":1,\"requests\":3}\n{\"v\":1,\"span\":15,\"shard\":0}\n";
        let framed = encode_stats_reply(report);
        assert_eq!(decode_stats_reply(&framed[4..]).unwrap(), report);
        for cut in 1..framed.len() - 4 {
            // Every prefix must fail cleanly, never panic.
            let _ = decode_stats_reply(&framed[4..4 + cut]);
        }
        assert!(decode_stats_reply(&[]).is_err());
        assert!(decode_stats_reply(&[OP_STATS, 9, 0, 0, 0]).is_err());
        assert_eq!(decode_stats_reply(&encode_stats_reply("")[4..]).unwrap(), "");
    }

    #[test]
    fn frames_read_back_from_a_stream() {
        let mut bytes = encode_score(&sample_request());
        bytes.extend(encode_op(OP_PING));
        let mut cursor = std::io::Cursor::new(bytes);
        let first = read_frame(&mut cursor).unwrap().expect("frame 1");
        assert_eq!(first[0], OP_SCORE);
        let second = read_frame(&mut cursor).unwrap().expect("frame 2");
        assert_eq!(second, vec![OP_PING]);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut bytes = (MAX_FRAME as u32 + 1).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 8]);
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(read_frame(&mut cursor).is_err());
    }
}
