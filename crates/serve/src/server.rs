//! Unix-socket front end for the daemon (length-prefixed frames).
//!
//! One accept loop, one thread per connection; each connection is a
//! sequential request/reply stream. All overload and fault policy lives
//! in the daemon — this layer only frames bytes, so a protocol error on
//! one connection closes that connection and nothing else.

#![cfg(unix)]

use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::daemon::Daemon;
use crate::protocol::{
    decode_reply, decode_score, decode_stats_reply, encode_op, encode_reply,
    encode_stats_reply, read_frame, ScoreReply, ScoreRequest, OP_PING, OP_REPLY, OP_SCORE,
    OP_SHUTDOWN, OP_STATS,
};

/// Serves `daemon` on a unix socket at `path` until an [`OP_SHUTDOWN`]
/// frame arrives. Returns the daemon so the caller can flush and stop it.
pub fn serve_unix(daemon: Daemon, path: &Path) -> std::io::Result<Daemon> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let daemon = Arc::new(daemon);
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut conns = Vec::new();
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let stream = stream?;
        let daemon = Arc::clone(&daemon);
        let shutdown = Arc::clone(&shutdown);
        let path = path.to_path_buf();
        conns.push(std::thread::spawn(move || {
            if let Err(e) = serve_conn(&daemon, stream, &shutdown) {
                eprintln!("[serve] connection error: {e}");
            }
            if shutdown.load(Ordering::Acquire) {
                // Poke the accept loop so it notices the flag.
                let _ = UnixStream::connect(&path);
            }
        }));
    }
    for c in conns {
        let _ = c.join();
    }
    let _ = std::fs::remove_file(path);
    Ok(Arc::into_inner(daemon).expect("all connection threads joined"))
}

fn serve_conn(
    daemon: &Daemon,
    mut stream: UnixStream,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    while let Some(payload) = read_frame(&mut stream)? {
        match payload.first() {
            Some(&OP_SCORE) => {
                // Decode is timed only when profiling is live; the check
                // is one bool, the timing two clock reads.
                let decoded = if daemon.profiling_active() {
                    let t0 = std::time::Instant::now();
                    let decoded = decode_score(&payload);
                    daemon.record_decode_ns(t0.elapsed().as_nanos() as u64);
                    decoded
                } else {
                    decode_score(&payload)
                };
                let reply = match decoded {
                    Ok(req) => daemon.score(req),
                    Err(e) => {
                        eprintln!("[serve] malformed score frame: {e}");
                        break;
                    }
                };
                stream.write_all(&encode_reply(&reply))?;
            }
            Some(&OP_STATS) => {
                stream.write_all(&encode_stats_reply(&daemon.stats_report()))?;
            }
            Some(&OP_PING) => {
                stream
                    .write_all(&encode_reply(&ScoreReply { degraded: false, decisions: vec![] }))?;
            }
            Some(&OP_SHUTDOWN) => {
                shutdown.store(true, Ordering::Release);
                stream.write_all(&encode_reply(&ScoreReply {
                    degraded: false,
                    decisions: vec![],
                }))?;
                break;
            }
            other => {
                eprintln!("[serve] unknown opcode {other:?}");
                break;
            }
        }
    }
    Ok(())
}

/// A blocking client for the unix-socket protocol.
#[derive(Debug)]
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to a daemon socket.
    pub fn connect(path: &Path) -> std::io::Result<Self> {
        Ok(Self { stream: UnixStream::connect(path)? })
    }

    fn round_trip(&mut self, frame: &[u8]) -> std::io::Result<ScoreReply> {
        self.stream.write_all(frame)?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "daemon closed connection")
        })?;
        if payload.first() != Some(&OP_REPLY) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "expected OP_REPLY",
            ));
        }
        decode_reply(&payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Scores a batch.
    pub fn score(&mut self, req: &ScoreRequest) -> std::io::Result<ScoreReply> {
        self.round_trip(&crate::protocol::encode_score(req))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> std::io::Result<()> {
        self.round_trip(&encode_op(OP_PING)).map(|_| ())
    }

    /// Fetches the daemon's live stats report (counters snapshot line,
    /// then span-table lines when profiling is active).
    pub fn stats(&mut self) -> std::io::Result<String> {
        self.stream.write_all(&encode_op(OP_STATS))?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "daemon closed connection")
        })?;
        decode_stats_reply(&payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Asks the daemon to flush checkpoints and exit.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        self.round_trip(&encode_op(OP_SHUTDOWN)).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::ServeConfig;
    use crate::protocol::Candidate;
    use ppf::FeatureInputs;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("ppf-serve-sock-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn socket_round_trip_and_shutdown() {
        let dir = tmpdir("rt");
        let sock = dir.join("ppf.sock");
        let cfg = ServeConfig { checkpoint_dir: dir.join("ckpt"), ..ServeConfig::default() };
        let server = {
            let sock = sock.clone();
            std::thread::spawn(move || {
                let daemon = Daemon::start(cfg);
                serve_unix(daemon, &sock).expect("serve").shutdown();
            })
        };
        // The listener needs a moment to bind.
        let mut client = loop {
            match Client::connect(&sock) {
                Ok(c) => break c,
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        };
        client.ping().expect("ping");
        let reply = client
            .score(&ScoreRequest {
                tenant: "t000-a".into(),
                candidates: vec![Candidate {
                    inputs: FeatureInputs::default(),
                    target: 0x1000,
                }],
                demands: vec![],
                evictions: vec![],
            })
            .expect("score");
        assert_eq!(reply.decisions.len(), 1);
        let stats = client.stats().expect("stats");
        let first = stats.lines().next().expect("counters line");
        let rec = ppf_analysis::interval::parse_line(first).expect("flat numeric");
        assert_eq!(rec.get("requests"), Some(1.0));
        client.shutdown().expect("shutdown");
        server.join().expect("server thread");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
