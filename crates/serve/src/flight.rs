//! Per-shard flight recorder: a bounded ring of recent serving events,
//! dumped to disk when the supervisor retires the shard.
//!
//! Unlike the span tables (feature-gated, aggregate), the flight recorder
//! is **always on**: each entry is one `Mutex` lock plus a few word writes
//! against microsecond-scale scoring, and its whole purpose is post-mortem
//! — when a shard hangs or panics its way into replacement, the dump is
//! the only record of what the worker was doing in its final moments.
//! Tenant names are recorded as their FNV route hashes: stable enough to
//! correlate events, and the dump never leaks tenant identifiers to disk.
//!
//! The export is flat numeric JSONL (`ppf_analysis::interval::parse_line`
//! compatible), one line per retained event, oldest first.

use std::sync::Mutex;
use std::time::Instant;

use ppf_bench::runner::lock_unpoisoned;

/// Events retained per shard; older entries are overwritten.
pub const FLIGHT_CAPACITY: usize = 256;

/// What a [`FlightEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A score job completed normally (`detail` = candidates scored).
    Score = 0,
    /// A degraded reply was produced (`detail` = candidates failed open).
    Degraded = 1,
    /// A tenant panicked and was quarantined (`detail` = rebuild count so
    /// far on this shard).
    Panic = 2,
    /// A checkpoint record was appended (`detail` = checkpoint generation).
    Checkpoint = 3,
    /// An injected slow-shard fault stalled the worker (`detail` = ms).
    SlowInject = 4,
}

impl FlightKind {
    fn name(self) -> &'static str {
        match self {
            FlightKind::Score => "score",
            FlightKind::Degraded => "degraded",
            FlightKind::Panic => "panic",
            FlightKind::Checkpoint => "checkpoint",
            FlightKind::SlowInject => "slow-inject",
        }
    }
}

/// One retained event.
#[derive(Debug, Clone, Copy)]
pub struct FlightEvent {
    /// Milliseconds since the recorder (= the shard) started.
    pub at_ms: u64,
    /// Event kind.
    pub kind: FlightKind,
    /// FNV route hash of the tenant involved (0 when not tenant-specific).
    pub tenant: u64,
    /// Kind-specific payload (see [`FlightKind`]).
    pub detail: u64,
    /// Duration of the operation, microseconds (0 when not timed).
    pub dur_us: u64,
}

struct Ring {
    buf: Vec<FlightEvent>,
    head: usize,
    total: u64,
}

/// The bounded event ring. Thread-safe: the worker records, the
/// supervisor dumps from outside the worker thread.
pub struct FlightRecorder {
    started: Instant,
    ring: Mutex<Ring>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder").field("total", &self.total()).finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    /// A fresh recorder; the clock starts now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            ring: Mutex::new(Ring { buf: Vec::with_capacity(FLIGHT_CAPACITY), head: 0, total: 0 }),
        }
    }

    /// Records one event, overwriting the oldest at capacity.
    pub fn record(&self, kind: FlightKind, tenant: u64, detail: u64, dur_us: u64) {
        let ev = FlightEvent {
            at_ms: self.started.elapsed().as_millis() as u64,
            kind,
            tenant,
            detail,
            dur_us,
        };
        let mut ring = lock_unpoisoned(&self.ring);
        if ring.buf.len() < FLIGHT_CAPACITY {
            ring.buf.push(ev);
        } else {
            let head = ring.head;
            ring.buf[head] = ev;
            ring.head = (head + 1) % FLIGHT_CAPACITY;
        }
        ring.total += 1;
    }

    /// Milliseconds since the recorder started — the timestamp base every
    /// event's `at_ms` is relative to.
    pub fn age_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Events recorded over the recorder's lifetime (retained or not).
    pub fn total(&self) -> u64 {
        lock_unpoisoned(&self.ring).total
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        let ring = lock_unpoisoned(&self.ring);
        let mut out = Vec::with_capacity(ring.buf.len());
        for i in 0..ring.buf.len() {
            out.push(ring.buf[(ring.head + i) % ring.buf.len()]);
        }
        out
    }

    /// One flat numeric JSON line per retained event, oldest first
    /// (newline-terminated; empty when nothing was recorded).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            out.push_str(&format!(
                "{{\"v\":1,\"at_ms\":{},\"kind\":{},\"tenant\":{},\"detail\":{},\"dur_us\":{}}}\n",
                ev.at_ms, ev.kind as u8, ev.tenant, ev.detail, ev.dur_us
            ));
        }
        out
    }

    /// Human-readable dump, oldest first.
    pub fn render(&self) -> String {
        let events = self.events();
        let mut out = format!("flight recorder: {} retained of {} recorded\n", events.len(), self.total());
        for ev in events {
            out.push_str(&format!(
                "  t+{:>8} ms  {:<11} tenant {:#018x} detail {} dur {} us\n",
                ev.at_ms,
                ev.kind.name(),
                ev.tenant,
                ev.detail,
                ev.dur_us
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_keeps_order() {
        let rec = FlightRecorder::new();
        for i in 0..(FLIGHT_CAPACITY as u64 + 10) {
            rec.record(FlightKind::Score, 7, i, 100);
        }
        let events = rec.events();
        assert_eq!(events.len(), FLIGHT_CAPACITY);
        assert_eq!(rec.total(), FLIGHT_CAPACITY as u64 + 10);
        assert_eq!(events[0].detail, 10, "oldest retained is the 11th");
        assert_eq!(events.last().unwrap().detail, FLIGHT_CAPACITY as u64 + 9);
    }

    #[test]
    fn jsonl_is_flat_numeric_and_parseable() {
        let rec = FlightRecorder::new();
        rec.record(FlightKind::Panic, 0xDEAD, 1, 0);
        rec.record(FlightKind::Checkpoint, 0xBEEF, 3, 42);
        let text = rec.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            let r = ppf_analysis::interval::parse_line(line).expect("flat numeric");
            assert_eq!(r.get("v"), Some(1.0));
            assert!(r.get("kind").is_some());
            assert!(r.get("dur_us").is_some());
        }
        assert!(rec.render().contains("panic"));
    }
}
