//! Always-on daemon counters plus a log2 latency histogram.
//!
//! Counters are plain relaxed atomics: the serving hot path pays one
//! uncontended `fetch_add` per event and nothing else, so they stay on
//! in every build. Exporting a JSONL snapshot for offline analysis is a
//! separate, telemetry-gated concern (see [`crate::daemon`]).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 latency buckets (bucket `i` covers `[2^i, 2^{i+1})` µs,
/// bucket 0 covers `[0, 2)`). 32 buckets reach ~71 minutes.
pub const LATENCY_BUCKETS: usize = 32;

/// Fleet-wide counters, shared by every shard and the caller-facing API.
#[derive(Debug, Default)]
pub struct Counters {
    /// Score requests accepted into a shard queue.
    pub requests: AtomicU64,
    /// Individual prefetch candidates scored.
    pub candidates: AtomicU64,
    /// Candidates accepted (either cache level).
    pub accepted: AtomicU64,
    /// Candidates rejected.
    pub rejected: AtomicU64,
    /// Requests shed because a shard queue overflowed (oldest dropped).
    pub shed_overflow: AtomicU64,
    /// Requests shed because one tenant exceeded its fair queue quota.
    pub shed_quota: AtomicU64,
    /// Replies downgraded to accept-all (shed, deadline miss, or panic).
    pub degraded_replies: AtomicU64,
    /// Caller deadlines that expired before the shard replied.
    pub deadline_misses: AtomicU64,
    /// Tenants rebuilt from their last checkpoint after a panic.
    pub tenant_restarts: AtomicU64,
    /// Shards replaced by the supervisor after a stalled heartbeat.
    pub shard_replacements: AtomicU64,
    /// Checkpoint records appended.
    pub checkpoint_records: AtomicU64,
    /// Checkpoint records corrupted by fault injection (chaos drills).
    pub checkpoint_bitflips: AtomicU64,
    /// Checkpoint records dropped at load time (torn tail or CRC failure).
    pub checkpoint_drops: AtomicU64,
    /// Tenants restored from checkpoints at daemon start.
    pub warm_started_tenants: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
}

impl Counters {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one caller-observed request latency.
    pub fn record_latency_us(&self, us: u64) {
        let bucket = (64 - us.leading_zeros() as usize)
            .saturating_sub(1)
            .min(LATENCY_BUCKETS - 1);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Latency bucket counts (bucket `i` = `[2^i, 2^{i+1})` µs).
    pub fn latency_buckets(&self) -> [u64; LATENCY_BUCKETS] {
        std::array::from_fn(|i| self.latency[i].load(Ordering::Relaxed))
    }

    /// Upper bound (µs) of the bucket containing quantile `q` (0.0–1.0),
    /// reconstructed from the histogram. Returns 0 with no samples.
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        let buckets = self.latency_buckets();
        let total: u64 = buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &n) in buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << LATENCY_BUCKETS
    }

    /// One flat JSONL record of every counter (plus latency buckets with
    /// samples), in the same numeric-only shape the interval telemetry
    /// uses, so `ppf-analysis` parses it with the existing machinery.
    pub fn snapshot_jsonl(&self, elapsed_ms: u64) -> String {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut line = format!(
            "{{\"v\":1,\"elapsed_ms\":{elapsed_ms},\
             \"requests\":{},\"candidates\":{},\"accepted\":{},\"rejected\":{},\
             \"shed_overflow\":{},\"shed_quota\":{},\"degraded_replies\":{},\
             \"deadline_misses\":{},\"tenant_restarts\":{},\
             \"shard_replacements\":{},\"checkpoint_records\":{},\
             \"checkpoint_bitflips\":{},\"checkpoint_drops\":{},\
             \"warm_started_tenants\":{},\"p50_us\":{},\"p99_us\":{}",
            g(&self.requests),
            g(&self.candidates),
            g(&self.accepted),
            g(&self.rejected),
            g(&self.shed_overflow),
            g(&self.shed_quota),
            g(&self.degraded_replies),
            g(&self.deadline_misses),
            g(&self.tenant_restarts),
            g(&self.shard_replacements),
            g(&self.checkpoint_records),
            g(&self.checkpoint_bitflips),
            g(&self.checkpoint_drops),
            g(&self.warm_started_tenants),
            self.latency_quantile_us(0.50),
            self.latency_quantile_us(0.99),
        );
        for (i, n) in self.latency_buckets().into_iter().enumerate() {
            if n > 0 {
                line.push_str(&format!(",\"lat_b{i}\":{n}"));
            }
        }
        line.push('}');
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_buckets_are_log2() {
        let c = Counters::new();
        c.record_latency_us(0);
        c.record_latency_us(1);
        c.record_latency_us(2);
        c.record_latency_us(3);
        c.record_latency_us(1024);
        let b = c.latency_buckets();
        assert_eq!(b[0], 2, "0 and 1 land in bucket 0");
        assert_eq!(b[1], 2, "2 and 3 land in bucket 1");
        assert_eq!(b[10], 1, "1024 lands in bucket 10");
    }

    #[test]
    fn quantiles_reconstruct_from_histogram() {
        let c = Counters::new();
        for _ in 0..99 {
            c.record_latency_us(10); // bucket 3, upper bound 16
        }
        c.record_latency_us(5000); // bucket 12, upper bound 8192
        assert_eq!(c.latency_quantile_us(0.50), 16);
        assert_eq!(c.latency_quantile_us(0.99), 16);
        assert_eq!(c.latency_quantile_us(1.0), 8192);
        assert_eq!(Counters::new().latency_quantile_us(0.5), 0);
    }

    #[test]
    fn snapshot_is_flat_numeric_json() {
        let c = Counters::new();
        c.requests.fetch_add(7, Ordering::Relaxed);
        c.record_latency_us(100);
        let line = c.snapshot_jsonl(1234);
        let rec = ppf_analysis::interval::parse_line(&line).expect("parseable");
        assert_eq!(rec.get("requests"), Some(7.0));
        assert_eq!(rec.get("elapsed_ms"), Some(1234.0));
        assert_eq!(rec.get("lat_b6"), Some(1.0));
    }
}
