//! Filter-fleet daemon: fault-isolated multi-tenant PPF serving.
//!
//! This crate turns the PPF filter into a long-running, multi-tenant
//! service with an explicit failure model (DESIGN.md §10):
//!
//! - **Sharding** ([`daemon`]): tenants hash across worker threads; each
//!   shard owns its tenants outright, so the hot path takes no cross-shard
//!   locks and a fault's blast radius is bounded by construction.
//! - **Overload shedding** ([`shard`]): bounded queues shed oldest-first
//!   with per-tenant fair quotas; shed work is answered immediately with a
//!   degraded accept-all reply — fail open, never stall the caller.
//! - **Fault isolation**: a panic while scoring quarantines only that
//!   tenant, which is rebuilt from its last checkpoint barrier; a stalled
//!   shard heartbeat gets the whole shard replaced by the supervisor.
//! - **Crash-safe warm start** ([`checkpoint`]): CRC-sealed JSONL weight
//!   checkpoints with torn-tail tolerance, reusing the sweep-resume
//!   discipline from `ppf_bench::ckpt`; recovery is bit-exact thanks to
//!   the filter's epoch-barrier semantics (`PpfFilter::checkpoint_barrier`).
//! - **Wire protocol** ([`protocol`], [`server`]): length-prefixed binary
//!   frames over a unix socket; the in-process [`daemon::Daemon`] API is
//!   the same path minus the framing.
//! - **Self-profiling** ([`flight`]): every shard keeps an always-on
//!   flight recorder (bounded event ring) that the supervisor dumps to
//!   disk on retirement, plus feature-gated span tables served live over
//!   the `OP_STATS` opcode (`ppf_loadgen --stats`).
//! - **Chaos drills**: `PPF_FAULT_INJECT` (parsed by `ppf_bench::fault`)
//!   injects tenant panics, checkpoint bit-flips, slow shards, and load
//!   spikes; `ppf_loadgen --drill` replays multi-tenant `ppf-trace`
//!   streams against the fleet and reports p50/p99 with shed, degraded,
//!   and restart rates.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod counters;
pub mod daemon;
pub mod flight;
pub mod loadgen;
pub mod protocol;
#[cfg(unix)]
pub mod server;
mod shard;
pub mod tenant;

pub use checkpoint::{Restored, RestoredTenant, ShardCheckpoint};
pub use counters::Counters;
pub use daemon::{Daemon, ServeConfig};
pub use flight::{FlightEvent, FlightKind, FlightRecorder};
pub use protocol::{Candidate, ScoreReply, ScoreRequest};
pub use tenant::TenantState;
