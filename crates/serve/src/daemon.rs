//! The filter-fleet daemon: routing, deadlines, supervision, warm start.
//!
//! The daemon is the caller-facing half of the serving stack. It routes
//! each tenant to a shard by name hash, enforces the caller deadline (a
//! late shard produces a degraded accept-all reply — the caller is never
//! stalled, whatever the fleet is doing), and runs a supervisor thread
//! that watches shard heartbeats and replaces a stalled shard wholesale:
//! the stuck worker is *abandoned*, not joined (joining a hung thread
//! would just move the hang into the supervisor), a fresh worker warm
//! starts the shard's tenants from its checkpoint file, and the zombie —
//! which may wake up later — sees its retired flag and exits. If it wakes
//! mid-checkpoint-append instead, the CRC seal on every record keeps the
//! interleaving from being trusted on the next load.
//!
//! Failure ladder, mildest first:
//!
//! 1. queue pressure → shed oldest / per-tenant quota (degraded replies)
//! 2. tenant panic → quarantine + rebuild from last checkpoint barrier
//! 3. missed deadline → caller-side degraded reply (fail open)
//! 4. stalled heartbeat → supervisor replaces the whole shard
//! 5. corrupt/torn checkpoint record → dropped by CRC, older gen wins

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ppf_bench::fault::FaultSpec;
use ppf_bench::runner::lock_unpoisoned;
use ppf_bench::watchdog::Watchdog;
use ppf_sim::{ProfConfig, SharedSpanTable, Span};

use crate::checkpoint::ShardCheckpoint;
use crate::counters::Counters;
use crate::protocol::{ScoreReply, ScoreRequest};
use crate::shard::{Job, ShardInner, ShardWorker};

/// Daemon configuration. Defaults are sized for tests and the chaos
/// drill; production callers tune per deployment.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards (tenants are hashed across them).
    pub shards: usize,
    /// Max queued score jobs per shard before shed-oldest kicks in.
    pub queue_capacity: usize,
    /// Max queued score jobs per tenant (fair-share quota).
    pub tenant_quota: usize,
    /// Caller deadline: a reply not produced in time degrades.
    pub deadline: Duration,
    /// Checkpoint barrier cadence, in score requests per tenant.
    pub checkpoint_every: u64,
    /// Directory holding `shard-<k>.jsonl` checkpoint files.
    pub checkpoint_dir: PathBuf,
    /// Heartbeat age at which the supervisor declares a shard stalled.
    pub watchdog_limit: Duration,
    /// Supervisor poll interval.
    pub supervisor_poll: Duration,
    /// Injected faults (chaos drills); empty in production.
    pub faults: Vec<FaultSpec>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 2,
            queue_capacity: 64,
            tenant_quota: 16,
            deadline: Duration::from_millis(100),
            checkpoint_every: 32,
            checkpoint_dir: PathBuf::from("results/serve-checkpoints"),
            watchdog_limit: Duration::from_millis(500),
            supervisor_poll: Duration::from_millis(50),
            faults: Vec::new(),
        }
    }
}

struct ShardSlot {
    inner: Arc<ShardInner>,
    worker: Option<std::thread::JoinHandle<()>>,
}

/// A running filter fleet.
pub struct Daemon {
    cfg: ServeConfig,
    counters: Arc<Counters>,
    watchdog: Arc<Watchdog>,
    slots: Arc<Vec<Mutex<ShardSlot>>>,
    supervisor: Option<std::thread::JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    started: Instant,
    /// Daemon-level span table: request decode happens on the socket
    /// threads, outside any shard, so it rolls up here.
    decode_prof: SharedSpanTable,
    prof_on: bool,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon").field("shards", &self.cfg.shards).finish()
    }
}

/// FNV-1a over the tenant name: the shard routing hash. Stable across
/// runs and processes, so a tenant always lands on the same shard — a
/// requirement for finding its checkpoints again after a restart. The
/// flight recorder reuses it as the on-disk tenant identifier.
pub(crate) fn route_hash(tenant: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in tenant.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl Daemon {
    /// Boots the fleet: loads each shard's checkpoint file (tolerantly),
    /// compacts it, spawns the workers, and starts the supervisor.
    pub fn start(cfg: ServeConfig) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        let counters = Arc::new(Counters::new());
        let watchdog = Arc::new(Watchdog::new(cfg.watchdog_limit));
        let mut slots = Vec::with_capacity(cfg.shards);
        for idx in 0..cfg.shards {
            slots.push(Mutex::new(Self::boot_shard(&cfg, idx, 0, &counters, &watchdog)));
        }
        let slots = Arc::new(slots);
        let stop = Arc::new(AtomicBool::new(false));
        let supervisor = {
            let cfg = cfg.clone();
            let slots = Arc::clone(&slots);
            let counters = Arc::clone(&counters);
            let watchdog = Arc::clone(&watchdog);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("serve-supervisor".into())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        std::thread::sleep(cfg.supervisor_poll);
                        for (name, _age) in watchdog.stalled() {
                            let Some(idx) = name
                                .strip_prefix("shard-")
                                .and_then(|s| s.parse::<usize>().ok())
                            else {
                                continue;
                            };
                            let Some(slot) = slots.get(idx) else { continue };
                            let mut slot = lock_unpoisoned(slot);
                            if slot.inner.name != name {
                                continue;
                            }
                            let incarnation = slot.inner.incarnation + 1;
                            eprintln!(
                                "[serve] supervisor: {name} heartbeat stalled; \
                                 replacing (incarnation {incarnation})"
                            );
                            slot.inner.retire();
                            // Post-mortem before the rings go away with
                            // the slot: the retiring shard's flight
                            // recorder and verdict trace hit disk next to
                            // its checkpoints.
                            Self::dump_black_box(&cfg.checkpoint_dir, &slot.inner);
                            // Abandon the stuck worker: its JoinHandle is
                            // dropped, the thread detaches, and the retired
                            // flag reaps it if it ever wakes.
                            slot.worker.take();
                            *slot = Self::boot_shard(
                                &cfg,
                                idx,
                                incarnation,
                                &counters,
                                &watchdog,
                            );
                            counters
                                .shard_replacements
                                .fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
                .expect("spawn supervisor")
        };
        Self {
            cfg,
            counters,
            watchdog,
            slots,
            supervisor: Some(supervisor),
            stop,
            started: Instant::now(),
            decode_prof: SharedSpanTable::new(),
            prof_on: cfg!(feature = "profiling") && ProfConfig::from_env().stride != 0,
        }
    }

    /// Writes the retiring shard's flight-recorder ring (JSONL) and its
    /// human-readable rendering plus verdict trace (`.trace`) into the
    /// checkpoint directory: `flight-shard<idx>-inc<inc>.{jsonl,trace}`.
    /// Failures are reported, never fatal — the replacement matters more
    /// than the post-mortem.
    fn dump_black_box(dir: &std::path::Path, inner: &ShardInner) {
        let tag = format!("shard{}-inc{}", inner.idx, inner.incarnation);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("[serve] flight dump dir {} unavailable: {e}", dir.display());
            return;
        }
        let jsonl = dir.join(format!("flight-{tag}.jsonl"));
        if let Err(e) = std::fs::write(&jsonl, inner.flight.to_jsonl()) {
            eprintln!("[serve] flight dump {} failed: {e}", jsonl.display());
        }
        let trace = dir.join(format!("flight-{tag}.trace"));
        let text = format!("{}{}", inner.flight.render(), lock_unpoisoned(&inner.events).render());
        if let Err(e) = std::fs::write(&trace, text) {
            eprintln!("[serve] flight trace {} failed: {e}", trace.display());
        }
    }

    fn boot_shard(
        cfg: &ServeConfig,
        idx: usize,
        incarnation: u64,
        counters: &Arc<Counters>,
        watchdog: &Arc<Watchdog>,
    ) -> ShardSlot {
        let store = ShardCheckpoint::new(&cfg.checkpoint_dir, idx);
        let restored = store.load();
        counters.checkpoint_drops.fetch_add(restored.dropped, Ordering::Relaxed);
        if incarnation == 0 {
            counters
                .warm_started_tenants
                .fetch_add(restored.tenants.len() as u64, Ordering::Relaxed);
        }
        if !restored.tenants.is_empty() {
            // Bound file growth; also proves the surviving records parse.
            if let Err(e) = store.compact(&restored.tenants) {
                eprintln!("[serve] shard-{idx}: compaction failed: {e}");
            }
        }
        let inner = Arc::new(ShardInner::new(
            idx,
            incarnation,
            cfg.queue_capacity,
            cfg.tenant_quota,
        ));
        let heartbeat = watchdog.register(&inner.name);
        let worker = ShardWorker {
            inner: Arc::clone(&inner),
            store,
            counters: Arc::clone(counters),
            heartbeat,
            faults: cfg.faults.clone(),
            checkpoint_every: cfg.checkpoint_every.max(1),
            restored: restored.tenants,
        }
        .spawn();
        ShardSlot { inner, worker: Some(worker) }
    }

    /// Tenants restored from checkpoints at boot (the warm-start banner).
    pub fn warm_started(&self) -> u64 {
        self.counters.warm_started_tenants.load(Ordering::Relaxed)
    }

    /// The fleet counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Shard index serving `tenant`.
    pub fn route(&self, tenant: &str) -> usize {
        (route_hash(tenant) % self.cfg.shards as u64) as usize
    }

    /// Scores a batch, observing the caller deadline. Never blocks longer
    /// than the deadline (plus scheduler noise); a missed deadline, shed,
    /// or tenant panic all yield a degraded accept-all reply.
    pub fn score(&self, req: ScoreRequest) -> ScoreReply {
        let n = req.candidates.len();
        let start = Instant::now();
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let inner = {
            let slot = lock_unpoisoned(&self.slots[self.route(&req.tenant)]);
            Arc::clone(&slot.inner)
        };
        let (tx, rx) = sync_channel(1);
        inner.submit_score(req, tx, &self.counters);
        let reply = match rx.recv_timeout(self.cfg.deadline) {
            Ok(reply) => reply,
            Err(_) => {
                self.counters.deadline_misses.fetch_add(1, Ordering::Relaxed);
                self.counters.degraded_replies.fetch_add(1, Ordering::Relaxed);
                ScoreReply::degraded(n)
            }
        };
        self.counters.record_latency_us(start.elapsed().as_micros() as u64);
        reply
    }

    fn each_shard<T>(&self, make: impl Fn() -> (Job, std::sync::mpsc::Receiver<T>)) -> Vec<T> {
        let mut receivers = Vec::new();
        for slot in self.slots.iter() {
            let inner = {
                let slot = lock_unpoisoned(slot);
                Arc::clone(&slot.inner)
            };
            let (job, rx) = make();
            inner.submit_control(job);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .filter_map(|rx| rx.recv_timeout(Duration::from_secs(10)).ok())
            .collect()
    }

    /// Checkpoints every dirty tenant now; returns records written.
    pub fn flush(&self) -> u64 {
        self.each_shard(|| {
            let (tx, rx) = sync_channel(1);
            (Job::Flush(tx), rx)
        })
        .into_iter()
        .sum()
    }

    /// `(tenant, checkpoint gen, weights digest)` for every live tenant,
    /// sorted by name. Drives the warm-start bit-exactness checks.
    pub fn tenant_digests(&self) -> Vec<(String, u64, u64)> {
        let mut all: Vec<(String, u64, u64)> = self
            .each_shard(|| {
                let (tx, rx) = sync_channel(1);
                (Job::Digests(tx), rx)
            })
            .into_iter()
            .flatten()
            .collect();
        all.sort();
        all
    }

    /// One flat JSONL counters snapshot (see `Counters::snapshot_jsonl`).
    pub fn snapshot(&self) -> String {
        self.counters.snapshot_jsonl(self.started.elapsed().as_millis() as u64)
    }

    /// Whether fine-grained span recording is active (the `profiling`
    /// feature is compiled in AND `PPF_PROFILE` enables it).
    pub fn profiling_active(&self) -> bool {
        self.prof_on
    }

    /// Attributes `ns` nanoseconds of request decoding to the daemon-level
    /// `decode` span. The socket server calls this; callers should gate on
    /// [`Daemon::profiling_active`] to keep the timing itself off the
    /// default path.
    pub fn record_decode_ns(&self, ns: u64) {
        self.decode_prof.record_ns(Span::Decode, ns);
    }

    /// The `OP_STATS` payload: the counters snapshot line first, then one
    /// span line per active span — daemon-level decode spans untagged,
    /// per-shard spans tagged `"shard":<idx>`. Span lines appear only when
    /// profiling is live; the counters line is always present, so the
    /// report is useful (and cheap) on a default build too.
    pub fn stats_report(&self) -> String {
        let mut out = self.snapshot();
        out.push('\n');
        if !self.decode_prof.is_empty() {
            out.push_str(&self.decode_prof.to_jsonl(None));
        }
        for slot in self.slots.iter() {
            let inner = {
                let slot = lock_unpoisoned(slot);
                Arc::clone(&slot.inner)
            };
            if !inner.prof.is_empty() {
                out.push_str(&inner.prof.to_jsonl(Some(inner.idx as u64)));
            }
        }
        out
    }

    /// Appends a counters snapshot under the telemetry export directory
    /// (`PPF_TELEMETRY_DIR`), iff `PPF_TELEMETRY` is set — the same
    /// double gate (compile feature + runtime env) the simulator
    /// telemetry uses. Returns the path written.
    #[cfg(feature = "telemetry")]
    pub fn export_telemetry(&self, label: &str) -> Option<PathBuf> {
        use std::io::Write;
        std::env::var_os("PPF_TELEMETRY")?;
        let sanitized: String = label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '-' })
            .collect();
        let dir = ppf_bench::telemetry::export_dir();
        std::fs::create_dir_all(&dir).ok()?;
        let path = dir.join(format!("serve-{sanitized}.jsonl"));
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .ok()?;
        writeln!(f, "{}", self.snapshot()).ok()?;
        Some(path)
    }

    /// Flushes checkpoints and stops every thread. Consumes the daemon.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(sup) = self.supervisor.take() {
            let _ = sup.join();
        }
        self.flush();
        for slot in self.slots.iter() {
            let (inner, worker) = {
                let mut slot = lock_unpoisoned(slot);
                (Arc::clone(&slot.inner), slot.worker.take())
            };
            inner.submit_control(Job::Stop);
            inner.retire();
            self.watchdog.deregister(&inner.name);
            if let Some(w) = worker {
                let _ = w.join();
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Belt and braces for the panic path: retire workers so no thread
        // outlives the daemon spinning on an orphaned queue.
        self.stop.store(true, Ordering::Release);
        for slot in self.slots.iter() {
            lock_unpoisoned(slot).inner.retire();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Candidate;
    use ppf::FeatureInputs;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("ppf-serve-daemon-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn req(tenant: &str, i: u64) -> ScoreRequest {
        let addr = 0x2000_0000 + i * 64;
        ScoreRequest {
            tenant: tenant.into(),
            candidates: vec![Candidate {
                inputs: FeatureInputs {
                    trigger_addr: addr,
                    trigger_pc: 0x40_0000,
                    delta: 1,
                    ..FeatureInputs::default()
                },
                target: addr + 64,
            }],
            demands: if i.is_multiple_of(3) { vec![addr] } else { vec![] },
            evictions: vec![],
        }
    }

    #[test]
    fn scores_and_checkpoints_round_trip() {
        let dir = tmpdir("basic");
        let cfg = ServeConfig {
            checkpoint_dir: dir.clone(),
            checkpoint_every: 8,
            ..ServeConfig::default()
        };
        let daemon = Daemon::start(cfg.clone());
        assert_eq!(daemon.warm_started(), 0);
        for i in 0..40 {
            let reply = daemon.score(req("t000-a", i));
            assert_eq!(reply.decisions.len(), 1);
            assert!(!reply.degraded, "quiet fleet must not degrade");
        }
        daemon.flush();
        let digests = daemon.tenant_digests();
        assert_eq!(digests.len(), 1);
        daemon.shutdown();

        let daemon2 = Daemon::start(cfg);
        assert_eq!(daemon2.warm_started(), 1, "tenant restored from checkpoint");
        // A control query instantiates nothing; warm tenants materialize on
        // first request.
        let reply = daemon2.score(req("t000-a", 1000));
        assert!(!reply.degraded);
        let digests2 = daemon2.tenant_digests();
        assert_eq!(digests2[0].0, digests[0].0);
        daemon2.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn routing_is_stable_and_spreads() {
        let dir = tmpdir("route");
        let daemon = Daemon::start(ServeConfig {
            shards: 4,
            checkpoint_dir: dir.clone(),
            ..ServeConfig::default()
        });
        let mut hit = [false; 4];
        for i in 0..32 {
            let name = format!("t{i:03}-x");
            let a = daemon.route(&name);
            assert_eq!(a, daemon.route(&name));
            hit[a] = true;
        }
        assert!(hit.iter().filter(|h| **h).count() >= 2, "hash spreads tenants");
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn supervisor_retirement_dumps_flight_recorder() {
        let dir = tmpdir("flight");
        let daemon = Daemon::start(ServeConfig {
            shards: 1,
            checkpoint_dir: dir.clone(),
            deadline: Duration::from_millis(50),
            watchdog_limit: Duration::from_millis(100),
            supervisor_poll: Duration::from_millis(20),
            faults: vec![FaultSpec::SlowShard { shard: 0, millis: 1500 }],
            ..ServeConfig::default()
        });
        // The injected stall (incarnation 0 only) swallows this request,
        // starves the heartbeat, and draws the supervisor's axe.
        let reply = daemon.score(req("t000-a", 0));
        assert!(reply.degraded, "stalled shard must fail open");
        let deadline = Instant::now() + Duration::from_secs(10);
        while daemon.counters().shard_replacements.load(Ordering::Relaxed) == 0 {
            assert!(Instant::now() < deadline, "supervisor never replaced the shard");
            std::thread::sleep(Duration::from_millis(20));
        }
        let jsonl = std::fs::read_to_string(dir.join("flight-shard0-inc0.jsonl"))
            .expect("flight dump written");
        assert!(!jsonl.is_empty(), "slow-inject event retained");
        for line in jsonl.lines() {
            let rec = ppf_analysis::interval::parse_line(line).expect("parseable dump");
            assert_eq!(rec.get("v"), Some(1.0));
        }
        let trace = std::fs::read_to_string(dir.join("flight-shard0-inc0.trace"))
            .expect("trace dump written");
        assert!(trace.contains("flight recorder:"));
        assert!(trace.contains("event trace:"));
        // The replacement (incarnation 1) is cured: faults apply to
        // incarnation 0 only.
        let reply = daemon.score(req("t000-a", 1));
        assert!(!reply.degraded);
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_parses_with_analysis_machinery() {
        let dir = tmpdir("snap");
        let daemon = Daemon::start(ServeConfig {
            checkpoint_dir: dir.clone(),
            ..ServeConfig::default()
        });
        daemon.score(req("t000-a", 0));
        let rec = ppf_analysis::interval::parse_line(&daemon.snapshot()).unwrap();
        assert_eq!(rec.get("requests"), Some(1.0));
        daemon.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
