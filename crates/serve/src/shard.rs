//! A shard: one worker thread owning a slice of the tenant fleet.
//!
//! Tenants are sharded by name hash; each shard's worker thread *owns* its
//! tenants outright (no cross-shard locking — the only shared state is the
//! bounded job queue and the fleet counters). The queue is where overload
//! policy lives:
//!
//! - **Shed-oldest**: a full queue drops its oldest queued score job and
//!   answers it degraded immediately — fresher requests carry fresher
//!   prefetch candidates, and the caller is never left waiting.
//! - **Per-tenant fair quota**: one tenant may occupy at most a fixed
//!   number of queue slots; beyond that its requests are answered degraded
//!   on arrival, so a runaway tenant cannot starve its neighbours.
//!
//! Fault isolation: `catch_unwind` wraps every score. A panic poisons at
//! most the one tenant being scored — that tenant is discarded and rebuilt
//! from its last checkpoint barrier (held in memory and on disk), the
//! caller gets a degraded accept-all reply, and the shard keeps serving
//! its other tenants without missing a beat.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ppf_bench::fault::FaultSpec;
use ppf_bench::runner::lock_unpoisoned;
use ppf_bench::watchdog::Heartbeat;
use ppf_sim::{EventKind, EventRing, ProfConfig, SharedSpanTable, Span, TraceEvent};

use crate::counters::Counters;
use crate::checkpoint::{RestoredTenant, ShardCheckpoint};
use crate::daemon::route_hash;
use crate::flight::{FlightKind, FlightRecorder};
use crate::protocol::{ScoreReply, ScoreRequest};
use crate::tenant::TenantState;

/// Verdict trace events retained per shard (mirrors the simulator's
/// invariant-checker ring; both dumps travel together on retirement).
const SHARD_EVENT_RING: usize = 256;

/// How long an idle worker waits before re-beating its heartbeat.
const IDLE_BEAT: Duration = Duration::from_millis(100);

/// One queued unit of work.
pub(crate) enum Job {
    /// Score a batch; the reply channel is bounded (capacity 1) and the
    /// caller may have given up — send errors are ignored.
    Score {
        /// The decoded request.
        req: ScoreRequest,
        /// Where the (possibly degraded) reply goes.
        reply: SyncSender<ScoreReply>,
        /// When the job entered the queue (feeds the queue-wait span).
        at: Instant,
    },
    /// Checkpoint every dirty tenant now; replies with records written.
    Flush(SyncSender<u64>),
    /// Report `(tenant, gen, weights_digest)` for every live tenant.
    Digests(SyncSender<Vec<(String, u64, u64)>>),
    /// Exit the worker loop (after a final flush).
    Stop,
}

/// Shared half of a shard: the queue callers submit into.
pub(crate) struct ShardInner {
    /// Heartbeat/watchdog name, `shard-<idx>`.
    pub name: String,
    /// Shard index (stable across replacements).
    pub idx: usize,
    /// Replacement generation (0 = original). Injected faults that model a
    /// *defective instance* (slow-shard) only apply to generation 0, so a
    /// supervisor replacement actually cures them.
    pub incarnation: u64,
    queue: Mutex<Vec<Job>>,
    cv: Condvar,
    capacity: usize,
    quota: usize,
    /// Set by the supervisor (or shutdown); the worker drains and exits,
    /// and late submitters see their jobs answered degraded.
    pub retired: AtomicBool,
    /// Always-on post-mortem event ring, dumped to disk by the supervisor
    /// when it retires this shard.
    pub flight: FlightRecorder,
    /// Recent filter-verdict trace events — the same ring the simulator's
    /// invariant checker dumps — written alongside the flight dump.
    pub events: Mutex<EventRing>,
    /// Fine-grained serving spans (queue wait / score / checkpoint
    /// append), served live over `OP_STATS`. Written only when
    /// `prof_on`; snapshotting an all-zero table is free.
    pub prof: SharedSpanTable,
    /// Sampled once at construction: the `profiling` feature is compiled
    /// in AND `PPF_PROFILE` enables it at runtime.
    pub prof_on: bool,
}

impl std::fmt::Debug for ShardInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardInner")
            .field("name", &self.name)
            .field("incarnation", &self.incarnation)
            .field("capacity", &self.capacity)
            .finish()
    }
}

fn send_degraded(reply: &SyncSender<ScoreReply>, n: usize) {
    // The caller may already have timed out and dropped the receiver;
    // a failed send is exactly "nobody is waiting any more".
    let _ = reply.try_send(ScoreReply::degraded(n));
}

impl ShardInner {
    pub(crate) fn new(idx: usize, incarnation: u64, capacity: usize, quota: usize) -> Self {
        Self {
            name: format!("shard-{idx}"),
            idx,
            incarnation,
            queue: Mutex::new(Vec::new()),
            cv: Condvar::new(),
            capacity: capacity.max(1),
            quota: quota.max(1),
            retired: AtomicBool::new(false),
            flight: FlightRecorder::new(),
            events: Mutex::new(EventRing::new(SHARD_EVENT_RING)),
            prof: SharedSpanTable::new(),
            prof_on: cfg!(feature = "profiling") && ProfConfig::from_env().stride != 0,
        }
    }

    /// Submits a score job, applying the shed policy. Every path produces
    /// exactly one reply on `reply` (possibly degraded, possibly later).
    pub(crate) fn submit_score(
        &self,
        req: ScoreRequest,
        reply: SyncSender<ScoreReply>,
        counters: &Counters,
    ) {
        let tenant_hash = route_hash(&req.tenant);
        let mut q = lock_unpoisoned(&self.queue);
        if self.retired.load(Ordering::Acquire) {
            // Raced with a replacement: fail open rather than enqueue into
            // a queue nobody will ever drain.
            counters.degraded_replies.fetch_add(1, Ordering::Relaxed);
            self.flight.record(FlightKind::Degraded, tenant_hash, req.candidates.len() as u64, 0);
            send_degraded(&reply, req.candidates.len());
            return;
        }
        let tenant_queued = q
            .iter()
            .filter(|j| matches!(j, Job::Score { req: r, .. } if r.tenant == req.tenant))
            .count();
        if tenant_queued >= self.quota {
            counters.shed_quota.fetch_add(1, Ordering::Relaxed);
            counters.degraded_replies.fetch_add(1, Ordering::Relaxed);
            self.flight.record(FlightKind::Degraded, tenant_hash, req.candidates.len() as u64, 0);
            send_degraded(&reply, req.candidates.len());
            return;
        }
        let scores_queued = q.iter().filter(|j| matches!(j, Job::Score { .. })).count();
        if scores_queued >= self.capacity {
            if let Some(oldest) =
                q.iter().position(|j| matches!(j, Job::Score { .. }))
            {
                if let Job::Score { req: old, reply: old_reply, .. } = q.remove(oldest) {
                    counters.shed_overflow.fetch_add(1, Ordering::Relaxed);
                    counters.degraded_replies.fetch_add(1, Ordering::Relaxed);
                    self.flight.record(
                        FlightKind::Degraded,
                        route_hash(&old.tenant),
                        old.candidates.len() as u64,
                        0,
                    );
                    send_degraded(&old_reply, old.candidates.len());
                }
            }
        }
        q.push(Job::Score { req, reply, at: Instant::now() });
        drop(q);
        self.cv.notify_one();
    }

    /// Submits a control job (flush / digests / stop), bypassing shed.
    pub(crate) fn submit_control(&self, job: Job) {
        let mut q = lock_unpoisoned(&self.queue);
        q.push(job);
        drop(q);
        self.cv.notify_one();
    }

    /// Marks the shard retired and wakes the worker (and any zombie).
    pub(crate) fn retire(&self) {
        self.retired.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    fn next_job(&self, hb: &Heartbeat) -> Option<Job> {
        let mut q = lock_unpoisoned(&self.queue);
        loop {
            hb.beat();
            if self.retired.load(Ordering::Acquire) {
                // Drain: answer everything still queued, fail-open.
                for job in q.drain(..) {
                    match job {
                        Job::Score { req, reply, .. } => send_degraded(&reply, req.candidates.len()),
                        Job::Flush(done) => {
                            let _ = done.try_send(0);
                        }
                        Job::Digests(reply) => {
                            let _ = reply.try_send(Vec::new());
                        }
                        Job::Stop => {}
                    }
                }
                return None;
            }
            if !q.is_empty() {
                return Some(q.remove(0));
            }
            let (guard, _) = self
                .cv
                .wait_timeout(q, IDLE_BEAT)
                .unwrap_or_else(|p| p.into_inner());
            q = guard;
        }
    }
}

/// Everything the worker thread owns.
pub(crate) struct ShardWorker {
    pub inner: Arc<ShardInner>,
    pub store: ShardCheckpoint,
    pub counters: Arc<Counters>,
    pub heartbeat: Heartbeat,
    pub faults: Vec<FaultSpec>,
    pub checkpoint_every: u64,
    /// Last-known-good snapshots, kept current with the on-disk file (minus
    /// injected corruption): the in-process rebuild source after a panic.
    pub restored: HashMap<String, RestoredTenant>,
}

impl ShardWorker {
    /// Spawns the worker thread.
    pub(crate) fn spawn(mut self) -> std::thread::JoinHandle<()> {
        std::thread::Builder::new()
            .name(self.inner.name.clone())
            .spawn(move || self.run())
            .expect("spawn shard worker")
    }

    fn run(&mut self) {
        let mut tenants: HashMap<String, TenantState> = HashMap::new();
        loop {
            self.heartbeat.beat();
            let Some(job) = self.inner.next_job(&self.heartbeat) else { return };
            match job {
                Job::Score { req, reply, at } => self.score(&mut tenants, req, reply, at),
                Job::Flush(done) => {
                    let _ = done.try_send(self.flush(&mut tenants));
                }
                Job::Digests(reply) => {
                    let mut out: Vec<(String, u64, u64)> = tenants
                        .iter()
                        .map(|(n, t)| (n.clone(), t.gen, t.filter.weights_digest()))
                        .collect();
                    out.sort();
                    let _ = reply.try_send(out);
                }
                Job::Stop => {
                    self.flush(&mut tenants);
                    return;
                }
            }
        }
    }

    fn build_tenant(&self, name: &str) -> TenantState {
        match self.restored.get(name) {
            Some(r) => TenantState::warm(name, r.gen, &r.weights).unwrap_or_else(|e| {
                eprintln!("[serve] {}: checkpoint for {name} unusable ({e}); fresh start", self.inner.name);
                TenantState::fresh(name)
            }),
            None => TenantState::fresh(name),
        }
    }

    fn score(
        &mut self,
        tenants: &mut HashMap<String, TenantState>,
        req: ScoreRequest,
        reply: SyncSender<ScoreReply>,
        queued_at: Instant,
    ) {
        if self.inner.prof_on {
            self.inner
                .prof
                .record_ns(Span::QueueWait, queued_at.elapsed().as_nanos() as u64);
        }
        let tenant_hash = route_hash(&req.tenant);
        if self.inner.incarnation == 0 {
            for f in &self.faults {
                if let FaultSpec::SlowShard { shard, millis } = f {
                    if *shard == self.inner.idx {
                        self.inner.flight.record(FlightKind::SlowInject, 0, *millis, 0);
                        std::thread::sleep(Duration::from_millis(*millis));
                    }
                }
            }
        }
        let name = req.tenant.clone();
        if !tenants.contains_key(&name) {
            tenants.insert(name.clone(), self.build_tenant(&name));
        }
        let tenant = tenants.get_mut(&name).expect("just inserted");

        let inject = self.inner.incarnation == 0
            && self.faults.iter().any(|f| {
                matches!(f, FaultSpec::TenantPanic { pat, nth }
                    if name.contains(pat.as_str()) && *nth == tenant.seen + 1)
            });
        // The score is timed unconditionally: the flight recorder (always
        // on) wants per-job durations; the span table additionally rolls
        // them up when profiling is enabled.
        let score_t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if inject {
                panic!("injected tenant fault: {name}");
            }
            tenant.process(&req)
        }));
        let score_ns = score_t0.elapsed().as_nanos() as u64;
        if self.inner.prof_on {
            self.inner.prof.record_ns(Span::Score, score_ns);
        }
        match outcome {
            Ok(decisions) => {
                let accepted = decisions
                    .iter()
                    .filter(|d| !matches!(d, ppf::Decision::Reject))
                    .count() as u64;
                let rejected = decisions.len() as u64 - accepted;
                self.counters.candidates.fetch_add(decisions.len() as u64, Ordering::Relaxed);
                self.counters.accepted.fetch_add(accepted, Ordering::Relaxed);
                self.counters.rejected.fetch_add(rejected, Ordering::Relaxed);
                self.inner.flight.record(
                    FlightKind::Score,
                    tenant_hash,
                    decisions.len() as u64,
                    score_ns / 1_000,
                );
                lock_unpoisoned(&self.inner.events).record(TraceEvent {
                    cycle: self.inner.flight.age_ms(),
                    core: self.inner.idx as u32,
                    kind: EventKind::PpfVerdict,
                    block: tenant_hash,
                    payload: (accepted << 32) | rejected,
                });
                let _ = reply.try_send(ScoreReply { degraded: false, decisions });
                // A zombie worker (replaced mid-job by the supervisor) must
                // not keep appending stale generations to a file its
                // replacement now owns.
                if self.inner.retired.load(Ordering::Acquire) {
                    return;
                }
                if tenant.since_checkpoint >= self.checkpoint_every {
                    self.checkpoint_one(tenants.get_mut(&name).expect("still present"));
                }
            }
            Err(_) => {
                // The tenant's filter may be mid-mutation: discard it and
                // rebuild from the last checkpoint barrier. Other tenants
                // on this shard are untouched.
                let restarts = self.counters.tenant_restarts.fetch_add(1, Ordering::Relaxed) + 1;
                self.counters.degraded_replies.fetch_add(1, Ordering::Relaxed);
                self.inner.flight.record(FlightKind::Panic, tenant_hash, restarts, score_ns / 1_000);
                let mut rebuilt = self.build_tenant(&name);
                // Keep the fault trigger one-shot: the rebuilt tenant
                // restarts its request count, so carry the poisoned
                // tenant's count forward past the trigger.
                rebuilt.seen = tenants[&name].seen + 1;
                tenants.insert(name.clone(), rebuilt);
                send_degraded(&reply, req.candidates.len());
            }
        }
    }

    fn checkpoint_one(&mut self, tenant: &mut TenantState) -> u64 {
        let (gen, weights) = tenant.barrier();
        let bitflip = self.faults.iter().any(|f| {
            matches!(f, FaultSpec::CheckpointBitflip { pat } if tenant.name.contains(pat.as_str()))
        });
        let append_t0 = Instant::now();
        match self.store.append(&tenant.name, gen, &weights, bitflip) {
            Ok(()) => {
                let append_ns = append_t0.elapsed().as_nanos() as u64;
                if self.inner.prof_on {
                    self.inner.prof.record_ns(Span::CheckpointAppend, append_ns);
                }
                self.inner.flight.record(
                    FlightKind::Checkpoint,
                    route_hash(&tenant.name),
                    gen,
                    append_ns / 1_000,
                );
                self.counters.checkpoint_records.fetch_add(1, Ordering::Relaxed);
                if bitflip {
                    self.counters.checkpoint_bitflips.fetch_add(1, Ordering::Relaxed);
                }
                // The in-memory rebuild source holds the *intended* bytes;
                // injected disk corruption is the CRC seal's problem.
                self.restored
                    .insert(tenant.name.clone(), RestoredTenant { gen, weights });
                1
            }
            Err(e) => {
                // Fail open: serving continues on the previous snapshot.
                eprintln!("[serve] {}: checkpoint append failed: {e}", self.inner.name);
                0
            }
        }
    }

    fn flush(&mut self, tenants: &mut HashMap<String, TenantState>) -> u64 {
        let mut names: Vec<String> = tenants
            .iter()
            .filter(|(_, t)| t.since_checkpoint > 0)
            .map(|(n, _)| n.clone())
            .collect();
        names.sort();
        let mut written = 0;
        for name in names {
            let tenant = tenants.get_mut(&name).expect("present");
            written += self.checkpoint_one(tenant);
        }
        written
    }
}
