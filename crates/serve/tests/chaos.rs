//! Chaos-mode integration tests: injected tenant panics, checkpoint
//! corruption, a hung shard, and a 10x load spike — the daemon must never
//! stall a caller, quarantined tenants must keep their shard serving, and
//! the warm restart must be clean.

use std::path::PathBuf;
use std::time::Duration;

use ppf_bench::fault::FaultSpec;
use ppf_serve::daemon::{Daemon, ServeConfig};
use ppf_serve::loadgen::{run_drill, silence_injected_panics, DrillConfig};
use ppf_serve::protocol::{Candidate, ScoreRequest};
use ppf_trace::{MultiTenantReplay, Suite};

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ppf-serve-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn req(tenant: &str, i: u64) -> ScoreRequest {
    let addr = 0x3000_0000 + i * 64;
    ScoreRequest {
        tenant: tenant.into(),
        candidates: vec![Candidate {
            inputs: ppf::FeatureInputs {
                trigger_addr: addr,
                trigger_pc: 0x40_0000 + (i % 7) * 4,
                delta: 1,
                ..ppf::FeatureInputs::default()
            },
            target: addr + 64,
        }],
        demands: vec![addr],
        evictions: vec![],
    }
}

#[test]
fn tenant_panic_quarantines_only_that_tenant() {
    silence_injected_panics();
    let dir = tmpdir("panic");
    let daemon = Daemon::start(ServeConfig {
        shards: 1, // both tenants share a shard: isolation must be per tenant
        checkpoint_dir: dir.clone(),
        checkpoint_every: 4,
        deadline: Duration::from_secs(5),
        faults: vec![FaultSpec::TenantPanic { pat: "victim".into(), nth: 6 }],
        ..ServeConfig::default()
    });
    let mut degraded_victim = 0;
    for i in 0..20 {
        let v = daemon.score(req("t000-victim", i));
        degraded_victim += u64::from(v.degraded);
        let b = daemon.score(req("t001-bystander", i));
        assert!(!b.degraded, "bystander on the same shard must be unaffected");
    }
    assert_eq!(degraded_victim, 1, "exactly the panicked batch degrades");
    let c = daemon.counters();
    assert_eq!(c.tenant_restarts.load(std::sync::atomic::Ordering::Relaxed), 1);
    // The victim kept serving after its rebuild.
    let reply = daemon.score(req("t000-victim", 99));
    assert!(!reply.degraded);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_chaos_drill_passes_acceptance() {
    silence_injected_panics();
    let dir = tmpdir("drill");
    let mut cfg = DrillConfig::default();
    cfg.serve.checkpoint_dir = dir.clone();

    // Route-aware slow shard: stall whichever shard serves tenant 0, so
    // the supervisor provably has something to replace.
    let probe = Daemon::start(ServeConfig {
        shards: cfg.serve.shards,
        checkpoint_dir: dir.join("probe"),
        ..ServeConfig::default()
    });
    let names =
        MultiTenantReplay::new(Suite::Spec2017, cfg.tenants, cfg.batch, 0xC0FFEE).tenant_names();
    let slow = probe.route(&names[0]);
    probe.shutdown();

    cfg.serve.faults = vec![
        FaultSpec::TenantPanic { pat: names[1].clone(), nth: 4 },
        FaultSpec::CheckpointBitflip { pat: names[2].clone() },
        FaultSpec::SlowShard { shard: slow, millis: 1500 },
        FaultSpec::LoadSpike { factor: 10 },
    ];

    let report = run_drill(&cfg);
    assert!(report.requests > 100, "the spike schedule actually ran");
    assert_eq!(report.stalled_callers, 0, "no caller may ever stall: {report:?}");
    assert!(report.tenant_restarts >= 1, "injected panic must trigger a rebuild");
    assert!(report.shard_replacements >= 1, "stalled shard must be replaced");
    assert!(report.degraded > 0, "chaos must be visible in the counters");
    assert!(report.checkpoint_bitflips >= 1, "corruption was injected");
    assert!(report.checkpoint_drops >= 1, "CRC must catch the corruption on load");
    assert!(report.warm_restored >= 1, "intact tenants warm start");
    assert_eq!(
        report.warm_unexplained_mismatch, 0,
        "every mismatch must be explained by injected corruption: {report:?}"
    );
    assert!(report.passed());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_sheds_but_never_blocks() {
    let dir = tmpdir("overload");
    let daemon = Daemon::start(ServeConfig {
        shards: 1,
        queue_capacity: 4,
        tenant_quota: 2,
        deadline: Duration::from_millis(50),
        checkpoint_dir: dir.clone(),
        faults: vec![FaultSpec::SlowShard { shard: 0, millis: 30 }],
        ..ServeConfig::default()
    });
    // Hammer one tenant from several threads; the quota and shed-oldest
    // policies must answer everything within the deadline envelope.
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for t in 0..4 {
            let daemon = &daemon;
            scope.spawn(move || {
                for i in 0..10 {
                    let reply = daemon.score(req("t000-hog", t * 100 + i));
                    assert_eq!(reply.decisions.len(), 1);
                }
            });
        }
    });
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "40 requests against a 30ms/job shard must shed, not queue unboundedly"
    );
    let c = daemon.counters();
    let shed = c.shed_overflow.load(std::sync::atomic::Ordering::Relaxed)
        + c.shed_quota.load(std::sync::atomic::Ordering::Relaxed)
        + c.deadline_misses.load(std::sync::atomic::Ordering::Relaxed);
    assert!(shed > 0, "pressure must show up as shed/degraded work");
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
