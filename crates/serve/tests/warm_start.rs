//! Warm-start bit-exactness (the serving-layer guarantee).
//!
//! A daemon checkpointed mid-run and restarted must make *identical*
//! decisions, and end with an *identical* weight arena, as a daemon that
//! never stopped. This holds by construction — the filter's checkpoint
//! barrier clears the live metadata tables at every snapshot boundary, so
//! the restarted filter and the uninterrupted one are in the same state —
//! and this test pins it end to end through the daemon, the checkpoint
//! files, and the wire-shaped request path.

use std::path::PathBuf;
use std::time::Duration;

use ppf::Decision;
use ppf_serve::loadgen::FeatureTracker;
use ppf_serve::{Daemon, ScoreRequest, ServeConfig};
use ppf_trace::{MultiTenantReplay, Suite};

const TENANTS: usize = 2;
const CADENCE: u64 = 8;
/// Per-tenant request counts; the split must land on a checkpoint
/// barrier, or the restarted run legitimately diverges (in-flight table
/// state is not checkpointed — that is the epoch-barrier contract).
const SPLIT: usize = 32;
const TOTAL: usize = 64;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ppf-serve-warmstart-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(dir: &std::path::Path) -> ServeConfig {
    ServeConfig {
        shards: 1, // sequential + single shard = fully deterministic
        checkpoint_dir: dir.to_path_buf(),
        checkpoint_every: CADENCE,
        deadline: Duration::from_secs(5),
        ..ServeConfig::default()
    }
}

/// The deterministic request stream: `TOTAL` requests per tenant,
/// interleaved tenant-major exactly as `MultiTenantReplay` yields them.
fn request_stream() -> Vec<ScoreRequest> {
    let mut replay = MultiTenantReplay::new(Suite::Spec2017, TENANTS, 4, 7);
    let names = replay.tenant_names();
    let mut trackers = vec![FeatureTracker::default(); TENANTS];
    let mut per_tenant = [0usize; TENANTS];
    let mut out = Vec::new();
    while per_tenant.iter().any(|&n| n < TOTAL) {
        let mut candidates = Vec::with_capacity(4);
        let mut demands = Vec::new();
        let mut tenant = 0;
        for _ in 0..4 {
            let (idx, rec) = replay.next_event();
            tenant = idx;
            candidates.push(trackers[idx].observe(&rec));
            demands.push(rec.addr);
        }
        if per_tenant[tenant] >= TOTAL {
            continue;
        }
        per_tenant[tenant] += 1;
        out.push(ScoreRequest {
            tenant: names[tenant].clone(),
            candidates,
            demands,
            evictions: Vec::new(),
        });
    }
    out
}

fn run(daemon: &Daemon, reqs: &[ScoreRequest]) -> Vec<Vec<Decision>> {
    reqs.iter()
        .map(|r| {
            let reply = daemon.score(r.clone());
            assert!(!reply.degraded, "a quiet single-shard fleet never degrades");
            reply.decisions
        })
        .collect()
}

/// Splits the stream so each tenant gets exactly `SPLIT` requests in the
/// first half — landing the cut on a checkpoint barrier for every tenant.
fn split_point(reqs: &[ScoreRequest]) -> usize {
    let mut seen = std::collections::HashMap::new();
    for (i, r) in reqs.iter().enumerate() {
        let n = seen.entry(r.tenant.clone()).or_insert(0usize);
        *n += 1;
        if seen.len() == TENANTS && seen.values().all(|&n| n >= SPLIT) {
            return i + 1;
        }
    }
    unreachable!("stream shorter than SPLIT per tenant");
}

#[test]
fn interrupted_run_is_bit_exact_with_uninterrupted_run() {
    assert_eq!(SPLIT as u64 % CADENCE, 0, "cut must land on a barrier");
    let reqs = request_stream();
    let cut = split_point(&reqs);
    let (first, second) = reqs.split_at(cut);

    // Uninterrupted reference.
    let ref_dir = tmpdir("reference");
    let reference = Daemon::start(config(&ref_dir));
    run(&reference, first);
    let ref_second = run(&reference, second);
    let ref_digests = reference.tenant_digests();
    reference.shutdown();

    // Interrupted run: stop cold after the first half (no extra flush —
    // the cadence itself must have produced the needed checkpoints),
    // restart from disk, continue.
    let dir = tmpdir("interrupted");
    let a = Daemon::start(config(&dir));
    run(&a, first);
    let pre_restart = a.tenant_digests();
    a.shutdown();

    let b = Daemon::start(config(&dir));
    assert_eq!(b.warm_started(), TENANTS as u64, "every tenant restored");
    let b_second = run(&b, second);
    let b_digests = b.tenant_digests();
    b.shutdown();

    assert_eq!(
        b_second, ref_second,
        "decisions after restart must be identical to the uninterrupted run"
    );
    assert_eq!(
        b_digests, ref_digests,
        "weight arenas must be bit-identical after the full stream"
    );
    // Sanity: the restart really did change process state (the digests
    // moved on from the checkpoint).
    assert_ne!(pre_restart, b_digests);

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_from_truncated_checkpoint_still_serves() {
    // Torn final record: the daemon must come up, drop the fragment, and
    // recover every tenant from the last intact generation.
    let dir = tmpdir("torn");
    let reqs = request_stream();
    let cut = split_point(&reqs);
    let daemon = Daemon::start(config(&dir));
    run(&daemon, &reqs[..cut]);
    daemon.shutdown();

    let path = dir.join("shard-0.jsonl");
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &text[..text.trim_end().len() - 9]).unwrap();

    let daemon = Daemon::start(config(&dir));
    assert!(daemon.warm_started() >= 1, "intact records still restore");
    assert!(
        daemon.counters().checkpoint_drops.load(std::sync::atomic::Ordering::Relaxed) >= 1,
        "the torn fragment is counted"
    );
    let reply = daemon.score(reqs[cut].clone());
    assert!(!reply.degraded);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
