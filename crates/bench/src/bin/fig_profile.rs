//! Self-profiler driver: overhead A/B, coverage check, cost-center tables,
//! and profile-JSONL schema validation (the profiling counterpart of
//! `fig_telemetry`).
//!
//! Two modes:
//!
//! * `fig_profile [--quick] [--workload NAME]` — runs one workload under
//!   PPF twice with the profiler off and twice with it on (no `PPF_PROFILE`
//!   needed; the binary already requires the `profiling` feature), keeps
//!   the best wall time of each pair, and enforces the overhead budget:
//!   profiled wall <= unprofiled wall * 1.05 + 0.3 s of slack for short
//!   runs. Prints the flat and top-down cost-center tables, checks the
//!   spans cover >= 90% of the root span's wall time, exports the profile
//!   JSONL under `PPF_PROFILE_DIR` (default `results/profile`), and
//!   re-validates the export through the parser. Exits non-zero if any
//!   check fails.
//! * `fig_profile --validate FILE...` — parses and schema-validates
//!   existing profile JSONL (used by `scripts/verify.sh --profile`).

use ppf_analysis::profile;
use ppf_bench::{RunScale, Scheme};
use ppf_sim::{ProfConfig, Simulation, SystemConfig};
use ppf_trace::{TraceBuilder, Workload};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Profiled wall must stay within this fraction of the unprofiled wall...
const OVERHEAD_BUDGET: f64 = 0.05;
/// ...plus this much absolute slack, so `--quick` runs (sub-second) are not
/// judged on scheduler noise.
const OVERHEAD_SLACK: Duration = Duration::from_millis(300);

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn export_dir() -> PathBuf {
    std::env::var("PPF_PROFILE_DIR").map(PathBuf::from).unwrap_or_else(|_| "results/profile".into())
}

fn validate_files(files: &[String]) -> ! {
    let mut failed = false;
    for f in files {
        match std::fs::read_to_string(f).map_err(|e| e.to_string()).and_then(|text| {
            let records = profile::parse_document(&text)?;
            if records.is_empty() {
                return Err("no records".to_string());
            }
            Ok(records.len())
        }) {
            Ok(n) => println!("OK {f}: {n} schema-valid record(s)"),
            Err(e) => {
                eprintln!("FAIL {f}: {e}");
                failed = true;
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

/// One measured run; returns wall time and (when profiled) the export.
fn run_once(workload: &Workload, scale: RunScale, profiled: bool) -> (Duration, String) {
    let trace = Box::new(TraceBuilder::new(workload.clone()).seed(42).build());
    let mut sim = Simulation::new(SystemConfig::single_core());
    sim.add_core(workload.name(), trace, Scheme::Ppf.build());
    // Programmatic control, not PPF_PROFILE: the A and B runs must differ
    // only in this switch, whatever the environment says.
    sim.set_profiling(if profiled { ProfConfig::enabled() } else { ProfConfig::disabled() });
    let t0 = Instant::now();
    sim.run(scale.warmup, scale.measure);
    (t0.elapsed(), sim.profile_jsonl())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--validate") {
        let files: Vec<String> =
            args[i + 1..].iter().filter(|a| !a.starts_with("--")).cloned().collect();
        if files.is_empty() {
            eprintln!("usage: fig_profile --validate FILE...");
            std::process::exit(2);
        }
        validate_files(&files);
    }

    let scale = RunScale::from_args();
    let name = arg_value("--workload").unwrap_or_else(|| "605.mcf_s".to_string());
    let workload = Workload::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown workload {name:?}");
        std::process::exit(2);
    });

    println!(
        "Self-profiler — {} under PPF ({} warmup / {} measured)\n",
        workload.name(),
        scale.warmup,
        scale.measure
    );

    // Best-of-two each way: the min filters out one-off scheduler stalls
    // without needing a long calibration phase.
    let mut failed = false;
    let off = (0..2).map(|_| run_once(&workload, scale, false).0).min().expect("two runs");
    let (on, jsonl) = {
        let (a_wall, a_jsonl) = run_once(&workload, scale, true);
        let (b_wall, b_jsonl) = run_once(&workload, scale, true);
        if a_wall <= b_wall { (a_wall, a_jsonl) } else { (b_wall, b_jsonl) }
    };
    let budget = off.mul_f64(1.0 + OVERHEAD_BUDGET) + OVERHEAD_SLACK;
    println!(
        "wall: unprofiled {:.3} s, profiled {:.3} s (budget {:.3} s)",
        off.as_secs_f64(),
        on.as_secs_f64(),
        budget.as_secs_f64()
    );
    if on > budget {
        eprintln!("FAIL: profiling overhead exceeds {:.0}% budget", OVERHEAD_BUDGET * 100.0);
        failed = true;
    }

    let records = match profile::parse_document(&jsonl) {
        Ok(r) if !r.is_empty() => r,
        Ok(_) => {
            eprintln!("FAIL: profiled run exported no spans");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("FAIL: profile export does not validate: {e}");
            std::process::exit(1);
        }
    };
    println!();
    print!("{}", profile::render_flat(&records));
    println!();
    print!("{}", profile::render_topdown(&records));

    match profile::coverage(&records) {
        Some(c) if c >= 0.90 => println!("\nspan coverage: {:.1}% of run_loop wall", c * 100.0),
        Some(c) => {
            eprintln!("\nFAIL: span coverage {:.1}% < 90%", c * 100.0);
            failed = true;
        }
        None => {
            eprintln!("\nFAIL: no run_loop root span in export");
            failed = true;
        }
    }

    let dir = export_dir();
    let path = dir.join(format!("profile__{}.jsonl", workload.name().replace('.', "_")));
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &jsonl)) {
        eprintln!("FAIL: export: {e}");
        failed = true;
    } else {
        println!("exported {}", path.display());
    }

    if failed {
        std::process::exit(1);
    }
}
