//! Figure 1 — the motivating experiment: SPP's lookahead depth is forced
//! from 7 to 15 on 603.bwaves_s with throttling relaxed; total prefetches
//! grow faster than useful prefetches, and IPC eventually degrades.
//! All three series are normalized to depth 7, as in the paper.

use ppf_analysis::TextTable;
use ppf_bench::{RunScale, Scheme};
use ppf_prefetchers::{Spp, SppConfig};
use ppf_sim::{Simulation, SystemConfig};
use ppf_trace::{TraceBuilder, Workload};

fn main() {
    let scale = RunScale::from_args();
    let w = Workload::by_name("603.bwaves_s").expect("bwaves exists");
    let mut rows: Vec<(u8, f64, u64, u64)> = Vec::new();
    for depth in 7..=15u8 {
        // Re-tune SPP for fixed aggressiveness: threshold low enough that the
        // lookahead reaches `depth` and stops there (the paper iteratively
        // re-tuned the confidence threshold per depth).
        let cfg = SppConfig {
            prefetch_threshold: 1,
            fill_threshold: 90,
            max_depth: depth,
            max_candidates: 2 * depth as usize,
            ..SppConfig::default()
        };
        let trace = Box::new(TraceBuilder::new(w.clone()).seed(42).build());
        let mut sim = Simulation::new(SystemConfig::single_core());
        sim.add_core(w.name(), trace, Box::new(Spp::new(cfg)));
        let r = sim.run(scale.warmup, scale.measure);
        let c = &r.cores[0];
        // TOTAL_PF follows the paper's definition: prefetches *issued by the
        // prefetcher* (before redundancy filtering); GOOD_PF are the useful
        // ones.
        eprintln!(
            "  depth {depth}: ipc {:.3}, emitted {}, issued {}, useful {}",
            c.ipc(),
            c.prefetch.emitted,
            c.prefetch.issued,
            c.prefetch.useful_total()
        );
        rows.push((depth, r.ipc(), c.prefetch.emitted, c.prefetch.useful_total()));
    }
    let base = rows[0];
    let _ = Scheme::Baseline; // scheme enum is unused here by design

    println!("Figure 1 — impact of aggressive prefetching on 603.bwaves_s");
    println!("(all series normalized to lookahead depth 7)\n");
    let mut t = TextTable::new(vec!["depth", "IPC", "TOTAL_PF", "GOOD_PF"]);
    for (d, ipc, total, good) in &rows {
        t.row(vec![
            format!("{d}"),
            format!("{:.3}", ipc / base.1),
            format!("{:.3}", *total as f64 / base.2 as f64),
            format!("{:.3}", *good as f64 / base.3 as f64),
        ]);
    }
    print!("{}", t.render());
    let last = rows.last().expect("rows");
    println!(
        "\nDepth 7 -> 15: TOTAL_PF x{:.2}, GOOD_PF x{:.2}, IPC x{:.2}",
        last.2 as f64 / base.2 as f64,
        last.3 as f64 / base.3 as f64,
        last.1 / base.1,
    );
    println!("(paper: total prefetches outgrow useful ones and IPC drops ~9%)");
}
