//! Ablation — disable the Reject Table's false-negative recovery by shrinking
//! it to a single entry, isolating its contribution (paper Sec 3.1: the
//! Reject Table trains the filter out of wrongly-rejected candidates).

use ppf::{Ppf, PpfConfig};
use ppf_analysis::{geometric_mean, TextTable};
use ppf_bench::sweep::Sweep;
use ppf_bench::throughput::record_throughput;
use ppf_bench::{run_single, runner, sweep_scalars, RunScale, Scheme};
use ppf_prefetchers::Spp;
use ppf_sim::{Prefetcher, Simulation, SystemConfig};
use ppf_trace::{Suite, TraceBuilder, Workload};

fn main() {
    let scale = RunScale::from_args();
    let workloads = Workload::memory_intensive(Suite::Spec2017);
    let threads = runner::thread_count();
    let sweep = Sweep::from_args("ablation_reject_table");
    let t0 = std::time::Instant::now();
    let mut t = TextTable::new(vec!["configuration", "geomean speedup"]);
    let base_jobs: Vec<(String, runner::BoxedJob<f64>)> = workloads
        .iter()
        .map(|w| {
            let key = format!("baseline/{}", w.name());
            let w = w.clone();
            let job: runner::BoxedJob<f64> = Box::new(move || {
                let ipc =
                    run_single(SystemConfig::single_core(), &w, Scheme::Baseline, scale).ipc();
                eprintln!("  baseline {} done", w.name());
                ipc
            });
            (key, job)
        })
        .collect();
    let base = sweep_scalars(&sweep, base_jobs);
    for (label, entries) in [("1024-entry reject table (paper)", 1024usize), ("disabled (1 entry)", 1)] {
        let jobs: Vec<(String, runner::BoxedJob<f64>)> = workloads
            .iter()
            .zip(&base)
            .filter_map(|(w, b)| {
                let b = (*b)?;
                let key = format!("reject{entries}/{}", w.name());
                let w = w.clone();
                let job: runner::BoxedJob<f64> = Box::new(move || {
                    let cfg = PpfConfig {
                        reject_table_entries: entries.next_power_of_two(),
                        ..PpfConfig::default()
                    };
                    let pf: Box<dyn Prefetcher> = Box::new(Ppf::with_config(Spp::default(), cfg));
                    let trace = Box::new(TraceBuilder::new(w.clone()).seed(42).build());
                    let mut sim = Simulation::new(SystemConfig::single_core());
                    sim.add_core(w.name(), trace, pf);
                    sim.run(scale.warmup, scale.measure).ipc() / b
                });
                Some((key, job))
            })
            .collect();
        let xs: Vec<f64> = sweep_scalars(&sweep, jobs).into_iter().flatten().collect();
        let g = geometric_mean(&xs);
        eprintln!("  {label}: {g:.3}");
        t.row(vec![label.to_string(), format!("{g:.3}")]);
    }
    record_throughput(
        "ablation_reject_table",
        threads,
        t0.elapsed(),
        3 * workloads.len() as u64 * (scale.warmup + scale.measure),
    );
    println!("\nReject-table ablation — memory-intensive subset\n");
    print!("{}", t.render());
}
