//! Figure 9 — single-core IPC speedup over no-prefetching for BOP, DA-AMPM,
//! SPP and PPF on all 20 SPEC CPU 2017 models, with geometric means over the
//! memory-intensive subset and the full suite.
//!
//! With `--verbose`, also prints the paper's Sec 6.1 statistics: average
//! lookahead depths (SPP vs PPF) and the xalancbmk prefetch-count ratios.

use ppf_analysis::{geometric_mean, percent_gain, TextTable};
use ppf_bench::throughput::record_throughput;
use ppf_bench::{run_ppf_instrumented, run_spp_instrumented, run_suite, runner, RunScale, Scheme};
use ppf_sim::SystemConfig;
use ppf_trace::Workload;

fn main() {
    let scale = RunScale::from_args();
    let verbose = std::env::args().any(|a| a == "--verbose");
    let workloads = Workload::spec2017();
    let threads = runner::thread_count();
    eprintln!(
        "Figure 9: {} workloads x {} schemes on {} thread(s)...",
        workloads.len(),
        Scheme::all().len(),
        threads
    );
    let t0 = std::time::Instant::now();
    let rows = run_suite("fig09_single_core", &workloads, SystemConfig::single_core, scale).rows;
    record_throughput(
        "fig09_single_core",
        threads,
        t0.elapsed(),
        (workloads.len() * Scheme::all().len()) as u64 * (scale.warmup + scale.measure),
    );

    let mut table = TextTable::new(vec!["app", "BOP", "DA-AMPM", "SPP", "PPF"]);
    for row in &rows {
        let mut cells = vec![format!(
            "{}{}",
            row.app,
            if row.mem_intensive { " *" } else { "" }
        )];
        for s in Scheme::prefetchers() {
            cells.push(format!("{:.3}", row.speedup(s)));
        }
        table.row(cells);
    }
    for (label, filter) in [("geomean (mem-intensive)", true), ("geomean (all)", false)] {
        let mut cells = vec![label.to_string()];
        for s in Scheme::prefetchers() {
            let xs: Vec<f64> = rows
                .iter()
                .filter(|r| !filter || r.mem_intensive)
                .map(|r| r.speedup(s))
                .collect();
            cells.push(format!("{:.3}", geometric_mean(&xs)));
        }
        table.row(cells);
    }
    println!("Figure 9 — single-core IPC speedup over no prefetching");
    println!("(* = memory-intensive subset, LLC MPKI > 1)\n");
    print!("{}", table.render());

    // Headline comparisons (paper: PPF +3.78% over SPP on the memory-
    // intensive subset; +2.27% on the full suite).
    let geo = |scheme: Scheme, intensive: bool| {
        let xs: Vec<f64> = rows
            .iter()
            .filter(|r| !intensive || r.mem_intensive)
            .map(|r| r.speedup(scheme))
            .collect();
        geometric_mean(&xs)
    };
    println!();
    for (label, intensive) in [("memory-intensive subset", true), ("full suite", false)] {
        let ppf = geo(Scheme::Ppf, intensive);
        println!(
            "{label}: PPF {:+.2}% vs SPP, {:+.2}% vs DA-AMPM, {:+.2}% vs BOP, {:+.2}% vs baseline",
            percent_gain(ppf, geo(Scheme::Spp, intensive)),
            percent_gain(ppf, geo(Scheme::DaAmpm, intensive)),
            percent_gain(ppf, geo(Scheme::Bop, intensive)),
            percent_gain(ppf, 1.0),
        );
    }

    if verbose {
        println!("\nSec 6.1 statistics (lookahead depth and xalancbmk ratios):");
        let mut spp_depths = Vec::new();
        let mut ppf_depths = Vec::new();
        for w in &workloads {
            let (_, spp) = run_spp_instrumented(w, scale);
            let (_, ppf) = run_ppf_instrumented(w, scale, 0);
            let sd = spp.borrow().stats.average_depth();
            let pd = ppf.borrow().stats.average_accepted_depth();
            if sd > 0.0 {
                spp_depths.push(sd);
            }
            if pd > 0.0 {
                ppf_depths.push(pd);
            }
            if w.name() == "623.xalancbmk_s" {
                let (spp_r, spp_h) = run_spp_instrumented(w, scale);
                let (ppf_r, ppf_h) = run_ppf_instrumented(w, scale, 0);
                println!(
                    "  xalancbmk: SPP depth {:.2}, PPF depth {:.2}; total prefetches {:.2}x, useful {:.2}x (paper: 2.1 / 3.3 / 1.61x / 2.53x)",
                    spp_h.borrow().stats.average_depth(),
                    ppf_h.borrow().stats.average_accepted_depth(),
                    ppf_r.cores[0].prefetch.issued as f64
                        / spp_r.cores[0].prefetch.issued.max(1) as f64,
                    ppf_r.cores[0].prefetch.useful_total() as f64
                        / spp_r.cores[0].prefetch.useful_total().max(1) as f64,
                );
            }
        }
        println!(
            "  average lookahead depth: SPP {:.2}, PPF {:.2} (paper: 3.28 vs 3.97, 21% deeper)",
            spp_depths.iter().sum::<f64>() / spp_depths.len().max(1) as f64,
            ppf_depths.iter().sum::<f64>() / ppf_depths.len().max(1) as f64,
        );
    }
}
