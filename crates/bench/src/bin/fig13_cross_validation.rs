//! Figure 13 — cross-validation on workloads PPF was never tuned for:
//! (a) CloudSuite-like 4-core server applications, (b) SPEC CPU 2006-like
//! single-core models (memory-intensive subset and full set).

use ppf_analysis::{geometric_mean, percent_gain, TextTable};
use ppf_bench::throughput::record_throughput;
use ppf_bench::{run_mix_suite, run_suite, runner, RunScale, Scheme};
use ppf_sim::SystemConfig;
use ppf_trace::{Suite, Workload, WorkloadMix};

fn main() {
    let scale = RunScale::from_args();
    let threads = runner::thread_count();

    // (a) CloudSuite: each server app runs in 4-core rate mode.
    println!("Figure 13(a) — CloudSuite-like 4-core applications\n");
    let cloud = Workload::suite_all(Suite::CloudSuite);
    let mixes: Vec<WorkloadMix> = cloud
        .iter()
        .map(|w| WorkloadMix { id: 0, workloads: vec![w.clone(); 4] })
        .collect();
    eprintln!("Figure 13(a): {} apps x 5 schemes on {threads} thread(s)...", cloud.len());
    let t0 = std::time::Instant::now();
    let out = run_mix_suite("fig13_cloudsuite", &mixes, 4, scale);
    let (runs, instructions) = (out.runs, out.instructions);
    record_throughput("fig13_cloudsuite", threads, t0.elapsed(), instructions);

    let mut t = TextTable::new(vec!["app", "BOP", "DA-AMPM", "SPP", "PPF"]);
    // Match runs back to apps by mix label (a failed app drops out of
    // `runs` rather than shifting the rows below it).
    for (w, mix) in cloud.iter().zip(&mixes) {
        let Some(run) = runs.iter().find(|r| r.label == mix.label()) else { continue };
        let mut cells = vec![w.name().to_string()];
        for (_, ws) in &run.speedups {
            cells.push(format!("{ws:.3}"));
        }
        t.row(cells);
    }
    let mut cells = vec!["geomean".to_string()];
    let mut cloud_geo = Vec::new();
    for (k, _) in Scheme::prefetchers().into_iter().enumerate() {
        let xs: Vec<f64> = runs.iter().map(|r| r.speedups[k].1).collect();
        let g = geometric_mean(&xs);
        cloud_geo.push(g);
        cells.push(format!("{g:.3}"));
    }
    t.row(cells);
    print!("{}", t.render());
    println!(
        "PPF {:+.2}% vs SPP (paper: +3.78% vs baseline on prefetch-agnostic apps, ahead of SPP's +3.08%)\n",
        percent_gain(cloud_geo[3], cloud_geo[2])
    );

    // (b) SPEC CPU 2006.
    println!("Figure 13(b) — SPEC CPU 2006-like single-core models\n");
    let workloads = Workload::suite_all(Suite::Spec2006);
    let t0 = std::time::Instant::now();
    let rows = run_suite("fig13_spec2006", &workloads, SystemConfig::single_core, scale).rows;
    record_throughput(
        "fig13_spec2006",
        threads,
        t0.elapsed(),
        (workloads.len() * Scheme::all().len()) as u64 * (scale.warmup + scale.measure),
    );
    let mut t = TextTable::new(vec!["set", "BOP", "DA-AMPM", "SPP", "PPF"]);
    for (label, intensive) in [("mem-intensive", true), ("full set", false)] {
        let mut cells = vec![label.to_string()];
        for s in Scheme::prefetchers() {
            let xs: Vec<f64> = rows
                .iter()
                .filter(|r| !intensive || r.mem_intensive)
                .map(|r| r.speedup(s))
                .collect();
            cells.push(format!("{:.3}", geometric_mean(&xs)));
        }
        t.row(cells);
    }
    print!("{}", t.render());
    println!("\n(paper: mem-intensive SPEC 2006 — PPF +36.3% over baseline,");
    println!(" +6.1% over SPP; full suite +19.6% / +3.33%)");
}
