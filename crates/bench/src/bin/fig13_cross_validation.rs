//! Figure 13 — cross-validation on workloads PPF was never tuned for:
//! (a) CloudSuite-like 4-core server applications, (b) SPEC CPU 2006-like
//! single-core models (memory-intensive subset and full set).

use ppf_analysis::{geometric_mean, percent_gain, weighted_speedup, TextTable};
use ppf_bench::{isolated_ipc, run_mix, run_suite, RunScale, Scheme};
use ppf_sim::SystemConfig;
use ppf_trace::{Suite, Workload, WorkloadMix};

fn main() {
    let scale = RunScale::from_args();

    // (a) CloudSuite: each server app runs in 4-core rate mode.
    println!("Figure 13(a) — CloudSuite-like 4-core applications\n");
    let mut t = TextTable::new(vec!["app", "BOP", "DA-AMPM", "SPP", "PPF"]);
    let mut per_scheme: Vec<(Scheme, Vec<f64>)> =
        Scheme::prefetchers().into_iter().map(|s| (s, Vec::new())).collect();
    for w in Workload::suite_all(Suite::CloudSuite) {
        let mix = WorkloadMix { id: 0, workloads: vec![w.clone(); 4] };
        let iso = vec![isolated_ipc(&w, 4, scale); 4];
        let base = run_mix(&mix, Scheme::Baseline, scale);
        let base_ipc: Vec<f64> = base.cores.iter().map(|c| c.ipc()).collect();
        let mut cells = vec![w.name().to_string()];
        for (s, acc) in &mut per_scheme {
            let r = run_mix(&mix, *s, scale);
            let ipc: Vec<f64> = r.cores.iter().map(|c| c.ipc()).collect();
            let ws = weighted_speedup(&ipc, &base_ipc, &iso);
            cells.push(format!("{ws:.3}"));
            acc.push(ws);
        }
        eprintln!("  {} done", w.name());
        t.row(cells);
    }
    let mut cells = vec!["geomean".to_string()];
    let mut cloud_geo = Vec::new();
    for (_, xs) in &per_scheme {
        let g = geometric_mean(xs);
        cloud_geo.push(g);
        cells.push(format!("{g:.3}"));
    }
    t.row(cells);
    print!("{}", t.render());
    println!(
        "PPF {:+.2}% vs SPP (paper: +3.78% vs baseline on prefetch-agnostic apps, ahead of SPP's +3.08%)\n",
        percent_gain(cloud_geo[3], cloud_geo[2])
    );

    // (b) SPEC CPU 2006.
    println!("Figure 13(b) — SPEC CPU 2006-like single-core models\n");
    let workloads = Workload::suite_all(Suite::Spec2006);
    let rows = run_suite(&workloads, SystemConfig::single_core, scale);
    let mut t = TextTable::new(vec!["set", "BOP", "DA-AMPM", "SPP", "PPF"]);
    for (label, intensive) in [("mem-intensive", true), ("full set", false)] {
        let mut cells = vec![label.to_string()];
        for s in Scheme::prefetchers() {
            let xs: Vec<f64> = rows
                .iter()
                .filter(|r| !intensive || r.mem_intensive)
                .map(|r| r.speedup(s))
                .collect();
            cells.push(format!("{:.3}", geometric_mean(&xs)));
        }
        t.row(cells);
    }
    print!("{}", t.render());
    println!("\n(paper: mem-intensive SPEC 2006 — PPF +36.3% over baseline,");
    println!(" +6.1% over SPP; full suite +19.6% / +3.33%)");
}
