//! Hybrid-prefetcher fusion ablation (not a paper figure): IPC speedup of
//! PPF filtering fused candidate streams (SPP+BOP, SPP+DA-AMPM) versus
//! filtering each member scheme alone, with per-source accept/useful
//! attribution for the fused columns.
//!
//! Fused columns run with the source-id feature table
//! ([`ppf::PpfConfig::hybrid`]) so the perceptron can learn a per-scheme
//! trust bias; credit for useful prefetches is routed back to the issuing
//! member through the filter's tracking table (see DESIGN.md §12).
//!
//! ```text
//! cargo run --release -p ppf-bench --bin fig_hybrid [-- --quick] [--threads N]
//! ```

use ppf_analysis::{geometric_mean, TextTable};
use ppf_bench::hybrid::{run_fusion, Fusion, FusionCell};
use ppf_bench::throughput::record_throughput;
use ppf_bench::{runner, sweep, RunScale};
use ppf_trace::{Suite, Workload};

fn main() {
    let scale = RunScale::from_args();
    let workloads = Workload::memory_intensive(Suite::Spec2017);
    let fusions = Fusion::all();
    let threads = runner::thread_count();
    eprintln!(
        "Hybrid fusion ablation: {} workloads x {} schemes on {} thread(s)...",
        workloads.len(),
        fusions.len(),
        threads
    );

    let t0 = std::time::Instant::now();
    let sweep = sweep::Sweep::from_args("fig_hybrid");
    let jobs: Vec<(String, runner::BoxedJob<Vec<f64>>)> = workloads
        .iter()
        .flat_map(|w| fusions.into_iter().map(move |f| (w, f)))
        .map(|(w, f)| {
            let key = format!("{}/{}", w.name(), f.label());
            let w = w.clone();
            let job: runner::BoxedJob<Vec<f64>> = Box::new(move || {
                let cell = run_fusion(&w, f, scale);
                eprintln!("  {} / {}: ipc {:.3}", w.name(), f.label(), cell.ipc);
                cell.to_checkpoint()
            });
            (key, job)
        })
        .collect();
    let out = sweep.run(jobs);
    out.report();
    record_throughput(
        "fig_hybrid",
        threads,
        t0.elapsed(),
        (workloads.len() * fusions.len()) as u64 * (scale.warmup + scale.measure),
    );

    // Reassemble the grid; a workload is dropped whole if any cell failed
    // or decoded to the wrong arity (same policy as the main suites).
    let mut grid = out.into_outcomes().into_iter();
    let mut rows: Vec<(String, Vec<(Fusion, FusionCell)>)> = Vec::new();
    for w in &workloads {
        let cells: Option<Vec<(Fusion, FusionCell)>> = fusions
            .into_iter()
            .map(|f| {
                let payload = grid.next().expect("one outcome per grid cell").ok()?;
                Some((f, FusionCell::from_checkpoint(&payload)?))
            })
            .collect();
        match cells {
            Some(cells) => rows.push((w.name().to_string(), cells)),
            None => eprintln!("[sweep] dropped {}: incomplete results", w.name()),
        }
    }

    let cell = |row: &[(Fusion, FusionCell)], f: Fusion| {
        row.iter().find(|(x, _)| *x == f).expect("fusion was run").1
    };

    let mut table = TextTable::new(
        std::iter::once("app")
            .chain(Fusion::filtered().into_iter().map(Fusion::label))
            .map(String::from)
            .collect(),
    );
    for (app, cells) in &rows {
        let base = cell(cells, Fusion::Baseline).ipc;
        let mut out_row = vec![app.clone()];
        for f in Fusion::filtered() {
            out_row.push(format!("{:.3}", cell(cells, f).ipc / base));
        }
        table.row(out_row);
    }
    let mut geo_row = vec!["geomean".to_string()];
    for f in Fusion::filtered() {
        let xs: Vec<f64> = rows
            .iter()
            .map(|(_, cells)| cell(cells, f).ipc / cell(cells, Fusion::Baseline).ipc)
            .collect();
        geo_row.push(format!("{:.3}", geometric_mean(&xs)));
    }
    table.row(geo_row);
    println!("Hybrid fusion — IPC speedup over no prefetching (memory-intensive subset)\n");
    print!("{}", table.render());

    // Per-source attribution for the fused columns, summed over workloads:
    // did the filter treat the members differently, and who earned the
    // useful prefetches?
    for f in [Fusion::SppBop, Fusion::SppDaAmpm] {
        println!("\n{} per-source attribution:", f.label());
        let names = f.member_names();
        let mut t = TextTable::new(
            ["source", "accepted", "rejected", "accept%", "useful"]
                .map(String::from)
                .to_vec(),
        );
        let mut unattributed = 0u64;
        for (i, name) in names.iter().enumerate() {
            let (mut acc, mut rej, mut useful) = (0u64, 0u64, 0u64);
            for (_, cells) in &rows {
                let c = cell(cells, f);
                acc += c.accepted[i];
                rej += c.rejected[i];
                useful += c.useful[i];
            }
            t.row(vec![
                name.to_string(),
                acc.to_string(),
                rej.to_string(),
                format!("{:.1}%", acc as f64 / (acc + rej).max(1) as f64 * 100.0),
                useful.to_string(),
            ]);
        }
        for (_, cells) in &rows {
            unattributed += cell(cells, f).unattributed;
        }
        print!("{}", t.render());
        println!("(useful prefetches with an evicted tracking entry: {unattributed})");
    }
}
