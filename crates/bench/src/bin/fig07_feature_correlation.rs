//! Figure 7 — global Pearson correlation of each of the nine retained
//! features with the prefetch outcome, in ascending order.

use ppf_analysis::{feature_correlations, TextTable};
use ppf_bench::{run_ppf_instrumented, RunScale};
use ppf_trace::{Suite, Workload};

fn main() {
    let scale = RunScale::from_args();
    // Concatenate training events across the memory-intensive suite.
    let mut all_events = Vec::new();
    let mut features = None;
    for w in Workload::memory_intensive(Suite::Spec2017) {
        let (_, handle) = run_ppf_instrumented(&w, scale, 50_000);
        let ppf = handle.borrow();
        features.get_or_insert_with(|| ppf.filter().features().to_vec());
        all_events.extend(ppf.filter().training_events().iter().cloned());
        eprintln!("  {}: {} events", w.name(), ppf.filter().training_events().len());
    }
    let features = features.expect("at least one run");
    let mut cs = feature_correlations(&features, &all_events);
    cs.sort_by(|a, b| a.r.abs().partial_cmp(&b.r.abs()).expect("no NaN"));

    println!("Figure 7 — global Pearson correlation per feature (ascending |r|)\n");
    let mut t = TextTable::new(vec!["feature", "Pearson r", "events"]);
    for c in &cs {
        t.row(vec![c.feature.label().to_string(), format!("{:+.3}", c.r), c.events.to_string()]);
    }
    print!("{}", t.render());
    println!("\n(paper: 5 of 9 features have |r| > 0.6; Confidence XOR Page");
    println!(" address is the strongest at 0.90)");
}
