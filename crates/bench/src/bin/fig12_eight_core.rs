//! Figure 12 — weighted speedups on 8-core memory-intensive SPEC CPU 2017
//! mixes (the paper runs a shorter region at 8 cores; so do we).

use ppf_analysis::{geometric_mean, percent_gain, sorted_series};
use ppf_bench::throughput::record_throughput;
use ppf_bench::{run_mix_suite, runner, RunScale, Scheme};
use ppf_trace::{MixGenerator, Suite, Workload};

fn main() {
    let mut scale = RunScale::from_args();
    // Paper Sec 5.3: 8-core runs use a 10x shorter region to stay tractable.
    scale.measure /= 4;
    scale.mixes = (scale.mixes / 2).max(3);
    let intensive = Workload::memory_intensive(Suite::Spec2017);
    let mixes = MixGenerator::new(intensive, 3).draw(scale.mixes, 8);

    let threads = runner::thread_count();
    eprintln!("Figure 12: {} mixes x 5 schemes on {threads} thread(s)...", mixes.len());
    let t0 = std::time::Instant::now();
    let out = run_mix_suite("fig12_eight_core", &mixes, 8, scale);
    let (runs, instructions) = (out.runs, out.instructions);
    record_throughput("fig12_eight_core", threads, t0.elapsed(), instructions);
    let per_scheme: Vec<(Scheme, Vec<f64>)> = Scheme::prefetchers()
        .into_iter()
        .enumerate()
        .map(|(k, s)| (s, runs.iter().map(|r| r.speedups[k].1).collect()))
        .collect();

    println!("Figure 12 — 8-core weighted speedups, memory-intensive mixes");
    println!("(paper: PPF +37.6% over baseline, +9.65% over SPP)\n");
    for (s, xs) in &per_scheme {
        println!("{}", sorted_series(&format!("{} weighted speedup", s.label()), xs.clone(), 40));
    }
    let geo: Vec<(Scheme, f64)> =
        per_scheme.iter().map(|(s, xs)| (*s, geometric_mean(xs))).collect();
    for (s, g) in &geo {
        println!("geomean {}: {:.3}", s.label(), g);
    }
    let ppf = geo.iter().find(|(s, _)| *s == Scheme::Ppf).expect("ppf").1;
    let spp = geo.iter().find(|(s, _)| *s == Scheme::Spp).expect("spp").1;
    println!("PPF over SPP: {:+.2}%", percent_gain(ppf, spp));
}
