//! Figure 12 — weighted speedups on 8-core memory-intensive SPEC CPU 2017
//! mixes (the paper runs a shorter region at 8 cores; so do we).

use ppf_analysis::{geometric_mean, percent_gain, sorted_series, weighted_speedup};
use ppf_bench::{isolated_ipc, run_mix, RunScale, Scheme};
use ppf_trace::{MixGenerator, Suite, Workload};
use std::collections::HashMap;

fn main() {
    let mut scale = RunScale::from_args();
    // Paper Sec 5.3: 8-core runs use a 10x shorter region to stay tractable.
    scale.measure /= 4;
    scale.mixes = (scale.mixes / 2).max(3);
    let intensive = Workload::memory_intensive(Suite::Spec2017);
    let mixes = MixGenerator::new(intensive, 3).draw(scale.mixes, 8);

    let mut isolated: HashMap<String, f64> = HashMap::new();
    let mut per_scheme: Vec<(Scheme, Vec<f64>)> =
        Scheme::prefetchers().into_iter().map(|s| (s, Vec::new())).collect();
    for mix in &mixes {
        for w in &mix.workloads {
            isolated.entry(w.name().to_string()).or_insert_with(|| isolated_ipc(w, 8, scale));
        }
        let iso: Vec<f64> = mix.workloads.iter().map(|w| isolated[w.name()]).collect();
        let base = run_mix(mix, Scheme::Baseline, scale);
        let base_ipc: Vec<f64> = base.cores.iter().map(|c| c.ipc()).collect();
        for (s, acc) in &mut per_scheme {
            let r = run_mix(mix, *s, scale);
            let ipc: Vec<f64> = r.cores.iter().map(|c| c.ipc()).collect();
            let ws = weighted_speedup(&ipc, &base_ipc, &iso);
            eprintln!("  {} {}: {:.3}", mix.label(), s.label(), ws);
            acc.push(ws);
        }
    }

    println!("Figure 12 — 8-core weighted speedups, memory-intensive mixes");
    println!("(paper: PPF +37.6% over baseline, +9.65% over SPP)\n");
    for (s, xs) in &per_scheme {
        println!("{}", sorted_series(&format!("{} weighted speedup", s.label()), xs.clone(), 40));
    }
    let geo: Vec<(Scheme, f64)> =
        per_scheme.iter().map(|(s, xs)| (*s, geometric_mean(xs))).collect();
    for (s, g) in &geo {
        println!("geomean {}: {:.3}", s.label(), g);
    }
    let ppf = geo.iter().find(|(s, _)| *s == Scheme::Ppf).expect("ppf").1;
    let spp = geo.iter().find(|(s, _)| *s == Scheme::Spp).expect("spp").1;
    println!("PPF over SPP: {:+.2}%", percent_gain(ppf, spp));
}
