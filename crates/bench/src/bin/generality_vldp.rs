//! Generality check (paper Sec 3.2: "PPF can be adapted to be used over any
//! underlying prefetcher"): the same filter, unchanged, over VLDP instead of
//! SPP.

use ppf::Ppf;
use ppf_analysis::{geometric_mean, percent_gain, TextTable};
use ppf_bench::{run_single, RunScale, Scheme};
use ppf_prefetchers::{Spp, Vldp};
use ppf_sim::{Prefetcher, Simulation, SystemConfig};
use ppf_trace::{Suite, TraceBuilder, Workload};

fn run_with(w: &Workload, pf: Box<dyn Prefetcher>, scale: RunScale) -> f64 {
    let trace = Box::new(TraceBuilder::new(w.clone()).seed(42).build());
    let mut sim = Simulation::new(SystemConfig::single_core());
    sim.add_core(w.name(), trace, pf);
    sim.run(scale.warmup, scale.measure).ipc()
}

fn main() {
    let scale = RunScale::from_args();
    let workloads = Workload::memory_intensive(Suite::Spec2017);
    let mut rows: Vec<(&str, Vec<f64>)> = vec![
        ("VLDP", vec![]),
        ("PPF over VLDP", vec![]),
        ("SPP", vec![]),
        ("PPF over SPP", vec![]),
    ];
    for w in &workloads {
        let base = run_single(SystemConfig::single_core(), w, Scheme::Baseline, scale).ipc();
        let runs: Vec<(usize, Box<dyn Prefetcher>)> = vec![
            (0, Box::new(Vldp::default())),
            (1, Box::new(Ppf::new(Vldp::default()))),
            (2, Box::new(Spp::default())),
            (3, Box::new(Ppf::new(Spp::default()))),
        ];
        for (i, pf) in runs {
            rows[i].1.push(run_with(w, pf, scale) / base);
        }
        eprintln!("  {} done", w.name());
    }
    println!("PPF generality — same filter over two lookahead prefetchers");
    println!("(memory-intensive SPEC CPU 2017 subset)\n");
    let mut t = TextTable::new(vec!["scheme", "geomean speedup"]);
    let mut geo = Vec::new();
    for (label, xs) in &rows {
        let g = geometric_mean(xs);
        geo.push(g);
        t.row(vec![label.to_string(), format!("{g:.3}")]);
    }
    print!("{}", t.render());
    println!(
        "\nPPF over VLDP: {:+.2}% | PPF over SPP: {:+.2}%",
        percent_gain(geo[1], geo[0]),
        percent_gain(geo[3], geo[2])
    );
}
