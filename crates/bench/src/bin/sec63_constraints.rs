//! Section 6.3 — additional memory constraints: low-bandwidth DRAM
//! (3.2 GB/s) and a small (512 KB) LLC, on the memory-intensive subset.

use ppf_analysis::{geometric_mean, TextTable};
use ppf_bench::{run_suite, RunScale, Scheme};
use ppf_sim::SystemConfig;

/// A named configuration constructor.
type ConfigFn = fn() -> SystemConfig;
use ppf_trace::{Suite, Workload};

fn main() {
    let scale = RunScale::from_args();
    let workloads = Workload::memory_intensive(Suite::Spec2017);
    println!("Section 6.3 — memory-constrained configurations, mem-intensive subset\n");
    let mut t = TextTable::new(vec!["config", "BOP", "DA-AMPM", "SPP", "PPF"]);
    let configs: [(&str, &str, ConfigFn); 3] = [
        ("default", "sec63_default", SystemConfig::single_core),
        ("low bandwidth (3.2 GB/s)", "sec63_low_bandwidth", SystemConfig::low_bandwidth),
        ("small LLC (512 KB)", "sec63_small_llc", SystemConfig::small_llc),
    ];
    for (label, experiment, cfg) in configs {
        eprintln!("config: {label}");
        let rows = run_suite(experiment, &workloads, cfg, scale).rows;
        let mut cells = vec![label.to_string()];
        for s in Scheme::prefetchers() {
            let xs: Vec<f64> = rows.iter().map(|r| r.speedup(s)).collect();
            cells.push(format!("{:.3}", geometric_mean(&xs)));
        }
        t.row(cells);
    }
    print!("{}", t.render());
    println!("\n(paper: PPF's edge grows with a small LLC and it matches the");
    println!(" best prefetcher, BOP, under low DRAM bandwidth)");
}
