//! Ablation — sweep PPF's inference thresholds (τ_hi/τ_lo) and training
//! saturation thresholds (θ_p/θ_n) on the memory-intensive subset.

use ppf::{Ppf, PpfConfig};
use ppf_analysis::{geometric_mean, TextTable};
use ppf_bench::sweep::Sweep;
use ppf_bench::throughput::record_throughput;
use ppf_bench::{run_single, runner, sweep_scalars, RunScale, Scheme};
use ppf_prefetchers::Spp;
use ppf_sim::{Prefetcher, Simulation, SystemConfig};
use ppf_trace::{Suite, TraceBuilder, Workload};

fn geomean_speedup(
    sweep: &Sweep,
    tag: &str,
    workloads: &[Workload],
    base: &[Option<f64>],
    cfg: &PpfConfig,
    scale: RunScale,
) -> f64 {
    let jobs: Vec<(String, runner::BoxedJob<f64>)> = workloads
        .iter()
        .zip(base)
        .filter_map(|(w, b)| {
            let b = (*b)?;
            let key = format!("{tag}/{}", w.name());
            let w = w.clone();
            let cfg = cfg.clone();
            let job: runner::BoxedJob<f64> = Box::new(move || {
                let pf: Box<dyn Prefetcher> = Box::new(Ppf::with_config(Spp::default(), cfg));
                let trace = Box::new(TraceBuilder::new(w.clone()).seed(42).build());
                let mut sim = Simulation::new(SystemConfig::single_core());
                sim.add_core(w.name(), trace, pf);
                sim.run(scale.warmup, scale.measure).ipc() / b
            });
            Some((key, job))
        })
        .collect();
    let xs: Vec<f64> = sweep_scalars(sweep, jobs).into_iter().flatten().collect();
    geometric_mean(&xs)
}

fn main() {
    let scale = RunScale::from_args();
    let workloads = Workload::memory_intensive(Suite::Spec2017);
    let threads = runner::thread_count();
    let sweep = Sweep::from_args("ablation_thresholds");
    let t0 = std::time::Instant::now();
    let base_jobs: Vec<(String, runner::BoxedJob<f64>)> = workloads
        .iter()
        .map(|w| {
            let key = format!("baseline/{}", w.name());
            let w = w.clone();
            let job: runner::BoxedJob<f64> = Box::new(move || {
                let ipc =
                    run_single(SystemConfig::single_core(), &w, Scheme::Baseline, scale).ipc();
                eprintln!("  baseline {} done", w.name());
                ipc
            });
            (key, job)
        })
        .collect();
    let base = sweep_scalars(&sweep, base_jobs);

    println!("Threshold ablation — PPF geomean speedup, memory-intensive subset\n");
    let mut t = TextTable::new(vec!["tau_hi", "tau_lo", "theta_p", "theta_n", "geomean"]);
    for (hi, lo) in [(-5, -15), (0, -10), (10, -5), (-10, -25), (25, 0)] {
        let cfg = PpfConfig { tau_hi: hi, tau_lo: lo, ..PpfConfig::default() };
        let g = geomean_speedup(&sweep, &format!("tau{hi}_{lo}"), &workloads, &base, &cfg, scale);
        eprintln!("  tau ({hi},{lo}): {g:.3}");
        t.row(vec![hi.to_string(), lo.to_string(), "90".into(), "-80".into(), format!("{g:.3}")]);
    }
    for (p, n) in [(90, -80), (40, -35), (135, -144)] {
        let cfg = PpfConfig { theta_p: p, theta_n: n, ..PpfConfig::default() };
        let g = geomean_speedup(&sweep, &format!("theta{p}_{n}"), &workloads, &base, &cfg, scale);
        eprintln!("  theta ({p},{n}): {g:.3}");
        t.row(vec!["-5".into(), "-15".into(), p.to_string(), n.to_string(), format!("{g:.3}")]);
    }
    // 1 baseline sweep + 8 threshold configurations over the subset.
    record_throughput(
        "ablation_thresholds",
        threads,
        t0.elapsed(),
        9 * workloads.len() as u64 * (scale.warmup + scale.measure),
    );
    print!("{}", t.render());
}
