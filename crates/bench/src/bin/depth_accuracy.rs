//! Accuracy as a function of lookahead depth — the dynamics behind the
//! paper's Figure 1 and Sec 6.1: deeper candidates are less accurate, and
//! PPF's per-depth accept rate shows the filter compensating.

use ppf::wrapper::DEPTH_BUCKETS;
use ppf_analysis::TextTable;
use ppf_bench::{run_ppf_instrumented, RunScale};
use ppf_trace::{Suite, Workload};

fn main() {
    let scale = RunScale::from_args();
    let mut accepted = [0u64; DEPTH_BUCKETS];
    let mut rejected = [0u64; DEPTH_BUCKETS];
    let mut useful = [0u64; DEPTH_BUCKETS];
    for w in Workload::memory_intensive(Suite::Spec2017) {
        let (_, handle) = run_ppf_instrumented(&w, scale, 0);
        let s = handle.borrow().stats;
        for d in 0..DEPTH_BUCKETS {
            accepted[d] += s.accepted_by_depth[d];
            rejected[d] += s.rejected_by_depth[d];
            useful[d] += s.useful_by_depth[d];
        }
        eprintln!("  {} done", w.name());
    }

    println!("PPF accept rate and usefulness by lookahead depth");
    println!("(memory-intensive SPEC CPU 2017 subset, aggregated)\n");
    let mut t =
        TextTable::new(vec!["depth", "candidates", "accept rate", "useful/accepted"]);
    for d in 0..DEPTH_BUCKETS {
        let total = accepted[d] + rejected[d];
        if total < 100 {
            continue;
        }
        t.row(vec![
            if d == DEPTH_BUCKETS - 1 { format!("{}+", d + 1) } else { format!("{}", d + 1) },
            total.to_string(),
            format!("{:.1}%", 100.0 * accepted[d] as f64 / total as f64),
            format!("{:.1}%", 100.0 * useful[d] as f64 / accepted[d].max(1) as f64),
        ]);
    }
    print!("{}", t.render());
    println!("\n(the filter prunes harder at depths where usefulness decays —");
    println!(" the learned replacement for SPP's monotone confidence throttle)");
}
