//! Interval-telemetry driver: phase tables, introspection dumps, and JSONL
//! schema validation (the observability counterpart of the fig* binaries).
//!
//! Two modes:
//!
//! * `fig_telemetry [--quick] [--workload NAME] [--interval N]` — runs one
//!   workload under SPP and PPF with telemetry forced on (no `PPF_TELEMETRY`
//!   needed; the binary already requires the `telemetry` feature), prints
//!   the per-interval phase table and PPF's introspection dump, exports the
//!   snapshots as JSONL/CSV, re-parses the JSONL through the schema
//!   validator, and cross-checks the final snapshot against the end-of-run
//!   report. Exits non-zero if any check fails.
//! * `fig_telemetry --validate FILE...` — parses and schema-validates
//!   existing JSONL exports (used by `scripts/verify.sh --telemetry`).

use ppf::Ppf;
use ppf_bench::{telemetry, RunScale, Scheme, Shared};
use ppf_prefetchers::Spp;
use ppf_sim::{
    IntervalSnapshot, SimReport, Simulation, SystemConfig, TelemetryConfig,
};
use ppf_trace::{TraceBuilder, Workload};

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn validate_files(files: &[String]) -> ! {
    let mut failed = false;
    for f in files {
        match std::fs::read_to_string(f).map_err(|e| e.to_string()).and_then(|text| {
            let records = ppf_analysis::parse_jsonl(&text)?;
            if records.is_empty() {
                return Err("no records".to_string());
            }
            Ok(records.len())
        }) {
            Ok(n) => println!("OK {f}: {n} schema-valid record(s)"),
            Err(e) => {
                eprintln!("FAIL {f}: {e}");
                failed = true;
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

/// The final snapshot is cumulative over the whole measurement region, so
/// it must agree exactly with the end-of-run report.
fn check_final_matches_report(report: &SimReport, snaps: &[IntervalSnapshot]) -> Result<(), String> {
    let last = snaps
        .iter()
        .rfind(|s| s.core == 0)
        .ok_or_else(|| "no snapshots recorded".to_string())?;
    let core = &report.cores[0];
    let check = |what: &str, snap: u64, rep: u64| {
        if snap == rep {
            Ok(())
        } else {
            Err(format!("final snapshot {what} = {snap}, report says {rep}"))
        }
    };
    check("instructions", last.instructions, core.instructions)?;
    check("cycles", last.cycles, core.cycles)?;
    check("l2 accesses", last.l2.demand_accesses, core.l2.demand_accesses)?;
    check("l2 hits", last.l2.demand_hits, core.l2.demand_hits)?;
    check("prefetches issued", last.prefetch.issued, core.prefetch.issued)?;
    check("useful prefetches", last.prefetch.useful, core.prefetch.useful)?;
    check("late prefetches", last.prefetch.late, core.prefetch.late)?;
    Ok(())
}

fn run_one(
    workload: &Workload,
    scheme: Scheme,
    scale: RunScale,
    interval: u64,
) -> (SimReport, Vec<IntervalSnapshot>, String) {
    let trace = Box::new(TraceBuilder::new(workload.clone()).seed(42).build());
    let mut sim = Simulation::new(SystemConfig::single_core());
    match scheme {
        Scheme::Ppf => {
            // Force the filter's decision introspection on, independent of
            // PPF_TELEMETRY (the simulator side is forced on below).
            let mut ppf = Ppf::new(Spp::default());
            ppf.filter_mut().set_telemetry_enabled(true);
            let (wrapper, _handle) = Shared::new(ppf);
            sim.add_core(workload.name(), trace, Box::new(wrapper));
        }
        s => {
            sim.add_core(workload.name(), trace, s.build());
        }
    }
    sim.set_telemetry(TelemetryConfig { interval });
    let report = sim.run(scale.warmup, scale.measure);
    let snaps = sim.all_interval_snapshots();
    let dump = sim.prefetcher_dump(0);
    (report, snaps, dump)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--validate") {
        let files: Vec<String> = args[i + 1..].iter().filter(|a| !a.starts_with("--")).cloned().collect();
        if files.is_empty() {
            eprintln!("usage: fig_telemetry --validate FILE...");
            std::process::exit(2);
        }
        validate_files(&files);
    }

    let scale = RunScale::from_args();
    let name = arg_value("--workload").unwrap_or_else(|| "605.mcf_s".to_string());
    let workload = Workload::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown workload {name:?}");
        std::process::exit(2);
    });
    let interval: u64 = arg_value("--interval")
        .map(|v| v.parse().expect("--interval takes an integer"))
        .unwrap_or(scale.measure / 20);

    println!(
        "Interval telemetry — {} ({} warmup / {} measured, interval {})\n",
        workload.name(),
        scale.warmup,
        scale.measure,
        interval
    );

    let mut failed = false;
    for scheme in [Scheme::Spp, Scheme::Ppf] {
        let (report, snaps, dump) = run_one(&workload, scheme, scale, interval);
        println!("== {} ==", scheme.label());
        println!("{} snapshots, final ipc {:.3}", snaps.len(), report.ipc());

        // Phase table: export, re-parse through the validator, difference.
        let (jsonl_path, csv_path) = match telemetry::write_snapshots(
            &telemetry::export_dir(),
            &format!("{}__{}", workload.name(), scheme.label()),
            &snaps,
        ) {
            Ok(paths) => paths,
            Err(e) => {
                eprintln!("FAIL: export: {e}");
                failed = true;
                continue;
            }
        };
        let text = std::fs::read_to_string(&jsonl_path).expect("just wrote it");
        match ppf_analysis::parse_jsonl(&text) {
            Ok(records) => {
                print!("{}", ppf_analysis::render_intervals(&records));
                println!("exported {} and {}", jsonl_path.display(), csv_path.display());
            }
            Err(e) => {
                eprintln!("FAIL: exported JSONL does not validate: {e}");
                failed = true;
            }
        }

        if let Err(e) = check_final_matches_report(&report, &snaps) {
            eprintln!("FAIL: {e}");
            failed = true;
        } else {
            println!("final snapshot matches end-of-run report exactly");
        }

        if !dump.is_empty() {
            println!("\n{dump}");
        }
        println!();
    }

    if failed {
        std::process::exit(1);
    }
}
