//! Figure 6 — distribution of trained perceptron weights for a strong
//! feature (Confidence XOR Page address, retained) and a weak one
//! (Last Signature, rejected), concatenated over the SPEC CPU 2017 runs.

use ppf::{FeatureKind, Ppf, PpfConfig};
use ppf_analysis::WeightHistogram;
use ppf_bench::{RunScale, Shared};
use ppf_prefetchers::Spp;
use ppf_sim::{Simulation, SystemConfig};
use ppf_trace::{Suite, TraceBuilder, Workload};

fn main() {
    let scale = RunScale::from_args();
    // PPF extended with the rejected Last-Signature feature so its weights
    // can be observed side-by-side with the retained set.
    let mut features = FeatureKind::default_set();
    features.push(FeatureKind::LastSignature);
    let strong_idx =
        features.iter().position(|f| *f == FeatureKind::ConfidenceXorPage).expect("present");
    let weak_idx = features.len() - 1;

    let mut strong: Option<WeightHistogram> = None;
    let mut weak: Option<WeightHistogram> = None;
    for w in Workload::memory_intensive(Suite::Spec2017) {
        let cfg = PpfConfig { features: features.clone(), ..PpfConfig::default() };
        let (wrapper, handle) = Shared::new(Ppf::with_config(Spp::default(), cfg));
        let trace = Box::new(TraceBuilder::new(w.clone()).seed(42).build());
        let mut sim = Simulation::new(SystemConfig::single_core());
        sim.add_core(w.name(), trace, Box::new(wrapper));
        sim.run(scale.warmup, scale.measure);
        let ppf = handle.borrow();
        let p = ppf.filter().perceptron();
        eprintln!("  {} done", w.name());
        let hs = WeightHistogram::of(p.feature_weights(strong_idx));
        let hw = WeightHistogram::of(p.feature_weights(weak_idx));
        match &mut strong {
            Some(acc) => acc.merge(&hs),
            None => strong = Some(hs),
        }
        match &mut weak {
            Some(acc) => acc.merge(&hw),
            None => weak = Some(hw),
        }
    }
    let strong = strong.expect("ran at least one workload");
    let weak = weak.expect("ran at least one workload");

    println!("Figure 6 — distribution of trained weights\n");
    print!("{}", strong.render("(a) Confidence XOR Page address — retained", 40));
    println!();
    print!("{}", weak.render("(b) Last Signature — rejected", 40));
    println!(
        "\nnear-zero (|w| <= 1) mass: retained {:.1}%, rejected {:.1}%",
        100.0 * strong.near_zero_fraction(1),
        100.0 * weak.near_zero_fraction(1)
    );
    println!("(paper: the rejected feature's weights settle near zero; the");
    println!(" retained feature's weights spread toward the saturation points)");
}
