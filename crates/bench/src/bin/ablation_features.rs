//! Ablation — drop each of the nine features in turn and measure the
//! geomean speedup on the memory-intensive subset (quantifies each
//! feature's contribution, complementing the paper's Sec 5.5 analysis).

use ppf::{FeatureKind, Ppf, PpfConfig};
use ppf_analysis::{geometric_mean, TextTable};
use ppf_bench::sweep::Sweep;
use ppf_bench::throughput::record_throughput;
use ppf_bench::{run_single, runner, sweep_scalars, RunScale, Scheme};
use ppf_prefetchers::Spp;
use ppf_sim::{Prefetcher, Simulation, SystemConfig};
use ppf_trace::{Suite, TraceBuilder, Workload};

fn run_with_features(w: &Workload, features: Vec<FeatureKind>, scale: RunScale) -> f64 {
    let cfg = PpfConfig { features, ..PpfConfig::default() };
    let pf: Box<dyn Prefetcher> = Box::new(Ppf::with_config(Spp::default(), cfg));
    let trace = Box::new(TraceBuilder::new(w.clone()).seed(42).build());
    let mut sim = Simulation::new(SystemConfig::single_core());
    sim.add_core(w.name(), trace, pf);
    sim.run(scale.warmup, scale.measure).ipc()
}

fn main() {
    let scale = RunScale::from_args();
    let workloads = Workload::memory_intensive(Suite::Spec2017);
    let full = FeatureKind::default_set();
    let threads = runner::thread_count();
    let sweep = Sweep::from_args("ablation_features");
    let t0 = std::time::Instant::now();
    let mut runs = 0u64;

    // Baselines per workload.
    let base_jobs: Vec<(String, runner::BoxedJob<f64>)> = workloads
        .iter()
        .map(|w| {
            let key = format!("baseline/{}", w.name());
            let w = w.clone();
            let job: runner::BoxedJob<f64> = Box::new(move || {
                let ipc =
                    run_single(SystemConfig::single_core(), &w, Scheme::Baseline, scale).ipc();
                eprintln!("  baseline {} done", w.name());
                ipc
            });
            (key, job)
        })
        .collect();
    runs += base_jobs.len() as u64;
    let base = sweep_scalars(&sweep, base_jobs);

    let mut t = TextTable::new(vec!["configuration", "geomean speedup"]);
    let mut eval = |label: String, features: Vec<FeatureKind>, t: &mut TextTable| {
        let jobs: Vec<(String, runner::BoxedJob<f64>)> = workloads
            .iter()
            .zip(&base)
            .filter_map(|(w, b)| {
                let b = (*b)?;
                let key = format!("{label}/{}", w.name());
                let w = w.clone();
                let features = features.clone();
                let job: runner::BoxedJob<f64> =
                    Box::new(move || run_with_features(&w, features, scale) / b);
                Some((key, job))
            })
            .collect();
        runs += jobs.len() as u64;
        let xs: Vec<f64> = sweep_scalars(&sweep, jobs).into_iter().flatten().collect();
        let g = geometric_mean(&xs);
        eprintln!("  {label}: {g:.3}");
        t.row(vec![label, format!("{g:.3}")]);
    };

    eval("all nine features".to_string(), full.clone(), &mut t);
    for skip in &full {
        let subset: Vec<FeatureKind> = full.iter().copied().filter(|f| f != skip).collect();
        eval(format!("without {}", skip.label()), subset, &mut t);
    }
    record_throughput(
        "ablation_features",
        threads,
        t0.elapsed(),
        runs * (scale.warmup + scale.measure),
    );
    println!("\nFeature ablation — PPF geomean speedup, memory-intensive subset\n");
    print!("{}", t.render());
}
