//! Figure 8 — per-trace variation of the Pearson coefficient for three
//! features with low *global* correlation (PC^Delta, Signature^Delta,
//! PC^Depth): even globally weak features help on a good fraction of
//! individual traces, which is why they were retained.

use ppf::FeatureKind;
use ppf_analysis::{feature_correlations, sorted_series};
use ppf_bench::{run_ppf_instrumented, RunScale};
use ppf_trace::Workload;

fn main() {
    let scale = RunScale::from_args();
    let focus =
        [FeatureKind::PcXorDelta, FeatureKind::SignatureXorDelta, FeatureKind::PcXorDepth];
    let mut per_feature: Vec<(FeatureKind, Vec<f64>)> =
        focus.iter().map(|&f| (f, Vec::new())).collect();

    for w in Workload::spec2017() {
        let (_, handle) = run_ppf_instrumented(&w, scale, 50_000);
        let ppf = handle.borrow();
        let cs = feature_correlations(ppf.filter().features(), ppf.filter().training_events());
        for (f, acc) in &mut per_feature {
            if let Some(c) = cs.iter().find(|c| c.feature == *f) {
                if c.events > 100 {
                    acc.push(c.r);
                }
            }
        }
        eprintln!("  {} done", w.name());
    }

    println!("Figure 8 — per-trace Pearson coefficient for low-global-P features\n");
    for (f, rs) in &per_feature {
        println!("{}", sorted_series(f.label(), rs.iter().map(|r| r.abs()).collect(), 40));
        let useful = rs.iter().filter(|r| r.abs() > 0.5).count();
        println!("traces with |r| > 0.5: {useful}/{}\n", rs.len());
    }
    println!("(paper: even features with low overall correlation provide");
    println!(" |r| > 0.5 on a significant number of traces)");
}
