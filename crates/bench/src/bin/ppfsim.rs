//! `ppfsim` — the user-facing simulator driver.
//!
//! ```text
//! cargo run --release -p ppf-bench --bin ppfsim -- \
//!     --workload 603.bwaves_s --prefetcher ppf --config default \
//!     --warmup 200000 --measure 1000000
//! ```
//!
//! Options:
//!
//! * `--workload NAME[,NAME...]` — one per core (default `603.bwaves_s`);
//!   `--list` prints every available model.
//! * `--trace FILE` — replay a `PPFT` trace file instead of a model
//!   (single-core only).
//! * `--prefetcher none|nextline|stride|bop|ampm|sms|sandbox|vldp|spp|ppf|ppf-vldp|rosenblatt`
//! * `--config default|lowbw|smallllc`
//! * `--warmup N`, `--measure N`, `--seed N`
//! * `--record FILE --records N` — dump the workload to a trace file and
//!   exit instead of simulating. A `.csv` extension selects the text format
//!   (`pc,addr,kind,work,dependent`); anything else writes binary `PPFT`.

use ppf::{Ppf, PpfConfig, RosenblattFilter, MAX_BATCH};
use ppf_prefetchers::{Bop, DaAmpm, NextLine, Sandbox, Sms, Spp, StridePrefetcher, Vldp};
use ppf_sim::{NoPrefetcher, Prefetcher, Simulation, SystemConfig};
use ppf_trace::{load_trace_csv, record_trace, record_trace_csv, AccessPattern, TraceBuilder, TraceFile, Workload};
use std::process::ExitCode;

const USAGE: &str = "\
ppfsim — trace-driven cache/prefetch simulator (PPF, ISCA 2019 reproduction)

USAGE:
    ppfsim [OPTIONS]

OPTIONS:
    --workload NAME[,NAME...]   workload model per core   [default: 603.bwaves_s]
                                (N comma-separated names build an N-core system)
    --trace FILE                replay a recorded trace instead of a model
                                (single-core only; .csv = text, else binary PPFT)
    --prefetcher NAME           none|nextline|stride|bop|ampm|sms|sandbox|vldp|
                                spp|ppf|ppf-vldp|rosenblatt   [default: ppf]
    --config NAME               default|lowbw|smallllc        [default: default]
    --warmup N                  warmup instructions per core  [default: 200000]
    --measure N                 measured instructions per core [default: 1000000]
    --seed N                    trace-generation seed         [default: 42]
    --batch-window N            PPF depth-window size for batched inference,
                                1..=64 (env PPF_BATCH_WINDOW) [default: 8]
    --record FILE               dump the workload to a trace file and exit
                                (.csv writes `pc,addr,kind,work,dependent` text)
    --records N                 records to dump with --record [default: 1000000]
    --profile                   print flat + top-down cost-center tables after
                                the run (needs --features profiling; stride
                                from PPF_PROFILE, default 64)
    --list                      print every available workload model and exit
    -h, --help                  print this help and exit

EXAMPLES:
    ppfsim --workload 605.mcf_s --prefetcher spp
    ppfsim --workload 619.lbm_s,605.mcf_s,621.wrf_s,654.roms_s --prefetcher ppf
    ppfsim --workload 603.bwaves_s --record bwaves.ppft --records 500000
    ppfsim --trace bwaves.ppft --prefetcher ppf

The figure/ablation binaries (fig09_single_core, ...) accept --quick for a
smoke-test scale and --threads N (or PPF_THREADS=N) to set sweep parallelism.
";

#[derive(Debug)]
struct Args {
    workloads: Vec<String>,
    trace: Option<String>,
    prefetcher: String,
    config: String,
    warmup: u64,
    measure: u64,
    seed: u64,
    record: Option<String>,
    records: u64,
    list: bool,
    profile: bool,
    batch_window: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workloads: vec!["603.bwaves_s".to_string()],
        trace: None,
        prefetcher: "ppf".to_string(),
        config: "default".to_string(),
        warmup: 200_000,
        measure: 1_000_000,
        seed: 42,
        record: None,
        records: 1_000_000,
        list: false,
        profile: false,
        batch_window: ppf::batch_window_from_env(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--workload" => {
                args.workloads =
                    value("--workload")?.split(',').map(str::to_string).collect();
            }
            "--trace" => args.trace = Some(value("--trace")?),
            "--prefetcher" => args.prefetcher = value("--prefetcher")?,
            "--config" => args.config = value("--config")?,
            "--warmup" => {
                args.warmup =
                    value("--warmup")?.parse().map_err(|e| format!("--warmup: {e}"))?;
            }
            "--measure" => {
                args.measure =
                    value("--measure")?.parse().map_err(|e| format!("--measure: {e}"))?;
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--record" => args.record = Some(value("--record")?),
            "--records" => {
                args.records =
                    value("--records")?.parse().map_err(|e| format!("--records: {e}"))?;
            }
            "--batch-window" => {
                let n: usize = value("--batch-window")?
                    .parse()
                    .map_err(|e| format!("--batch-window: {e}"))?;
                if !(1..=MAX_BATCH).contains(&n) {
                    return Err(format!("--batch-window must be in 1..={MAX_BATCH}, got {n}"));
                }
                args.batch_window = n;
            }
            "--list" => args.list = true,
            "--profile" => args.profile = true,
            "--help" | "-h" => {
                print!("{}", USAGE);
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn build_prefetcher(name: &str, batch_window: usize) -> Result<Box<dyn Prefetcher>, String> {
    let ppf_cfg = || PpfConfig { batch_window, ..PpfConfig::default() };
    Ok(match name {
        "none" => Box::new(NoPrefetcher),
        "nextline" => Box::new(NextLine::default()),
        "stride" => Box::new(StridePrefetcher::default()),
        "bop" => Box::new(Bop::default()),
        "ampm" => Box::new(DaAmpm::default()),
        "spp" => Box::new(Spp::default()),
        "vldp" => Box::new(Vldp::default()),
        "sms" => Box::new(Sms::default()),
        "sandbox" => Box::new(Sandbox::default()),
        "ppf" => Box::new(Ppf::with_config(Spp::default(), ppf_cfg())),
        "ppf-vldp" => Box::new(Ppf::with_config(Vldp::default(), ppf_cfg())),
        "rosenblatt" => Box::new(RosenblattFilter::new(Spp::default())),
        other => return Err(format!("unknown prefetcher {other}")),
    })
}

fn build_config(name: &str, cores: usize) -> Result<SystemConfig, String> {
    let mut cfg = match name {
        "default" => SystemConfig::multi_core(cores),
        "lowbw" => {
            if cores != 1 {
                return Err("lowbw config is single-core".into());
            }
            SystemConfig::low_bandwidth()
        }
        "smallllc" => {
            if cores != 1 {
                return Err("smallllc config is single-core".into());
            }
            SystemConfig::small_llc()
        }
        other => return Err(format!("unknown config {other}")),
    };
    cfg.cores = cores;
    Ok(cfg)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if args.list {
        println!("available workload models:");
        for w in Workload::spec2017()
            .into_iter()
            .chain(ppf_trace::spec2006())
            .chain(ppf_trace::cloudsuite())
        {
            println!(
                "  {:<22} ({:?}{})",
                w.name(),
                w.suite(),
                if w.is_memory_intensive() { ", memory-intensive" } else { "" }
            );
        }
        return Ok(());
    }

    // Record mode: dump a trace and exit.
    if let Some(path) = &args.record {
        let name = &args.workloads[0];
        let w = Workload::by_name(name).ok_or_else(|| format!("unknown workload {name}"))?;
        let mut gen = TraceBuilder::new(w).seed(args.seed).build();
        let p = std::path::Path::new(path);
        if path.ends_with(".csv") {
            record_trace_csv(p, &mut gen, args.records)
        } else {
            record_trace(p, &mut gen, args.records)
        }
        .map_err(|e| format!("recording failed: {e}"))?;
        println!("wrote {} records of {name} to {path}", args.records);
        return Ok(());
    }

    let cores = if args.trace.is_some() { 1 } else { args.workloads.len() };
    let cfg = build_config(&args.config, cores)?;
    println!("{}", cfg.table1());

    let mut sim = Simulation::new(cfg);
    if let Some(path) = &args.trace {
        let p = std::path::Path::new(path);
        let trace = if path.ends_with(".csv") {
            load_trace_csv(p)
        } else {
            TraceFile::open(p)
        }
        .map_err(|e| format!("opening trace: {e}"))?;
        println!("replaying {} records from {path}\n", trace.len());
        sim.add_core(
            path.clone(),
            Box::new(trace),
            build_prefetcher(&args.prefetcher, args.batch_window)?,
        );
    } else {
        for (i, name) in args.workloads.iter().enumerate() {
            let w =
                Workload::by_name(name).ok_or_else(|| format!("unknown workload {name}"))?;
            let trace: Box<dyn AccessPattern> =
                Box::new(TraceBuilder::new(w).seed(args.seed + i as u64).build());
            sim.add_core(
                name.clone(),
                trace,
                build_prefetcher(&args.prefetcher, args.batch_window)?,
            );
        }
    }

    if args.profile {
        if !cfg!(feature = "profiling") {
            return Err(
                "--profile needs the profiling feature; recompile with \
                 `cargo run --release -p ppf-bench --features profiling --bin ppfsim`"
                    .into(),
            );
        }
        // Honour an explicit PPF_PROFILE stride, default to the standard
        // sampling stride otherwise (the flag itself is the opt-in).
        let env = ppf_sim::ProfConfig::from_env();
        sim.set_profiling(if env.stride != 0 { env } else { ppf_sim::ProfConfig::enabled() });
    }

    let t0 = std::time::Instant::now();
    let report = sim.run(args.warmup, args.measure);
    let wall = t0.elapsed();

    if args.profile {
        let records = ppf_analysis::profile::parse_document(&sim.profile_jsonl())
            .map_err(|e| format!("profile export does not validate: {e}"))?;
        println!();
        print!("{}", ppf_analysis::profile::render_flat(&records));
        println!();
        print!("{}", ppf_analysis::profile::render_topdown(&records));
        if let Some(c) = ppf_analysis::profile::coverage(&records) {
            println!("\nspan coverage: {:.1}% of run_loop wall", c * 100.0);
        }
        println!();
    }

    println!("prefetcher: {}\n", args.prefetcher);
    for (i, c) in report.cores.iter().enumerate() {
        println!(
            "core {i} [{}]: ipc {:.3} | L1D MPKI {:.2} | L2 MPKI {:.2} | pf issued {} useful {} ({:.0}% accurate) | avg miss wait {:.0} cyc",
            c.workload,
            c.ipc(),
            c.l1d.demand_misses() as f64 * 1000.0 / c.instructions as f64,
            c.l2_mpki(),
            c.prefetch.issued,
            c.prefetch.useful_total(),
            100.0 * c.prefetch.accuracy(),
            c.avg_load_miss_wait(),
        );
    }
    println!(
        "LLC: {} accesses, {} misses | DRAM: {} reads, {} writes, row-hit {:.0}%",
        report.llc.demand_accesses,
        report.llc.demand_misses(),
        report.dram.reads,
        report.dram.writes,
        100.0 * report.dram.row_hit_rate(),
    );
    println!(
        "simulated {} instr/core in {:.1}s ({:.1} M instr/s)",
        args.measure,
        wall.as_secs_f64(),
        args.measure as f64 * report.cores.len() as f64 / wall.as_secs_f64() / 1e6,
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ppfsim: {e}");
            ExitCode::FAILURE
        }
    }
}
