//! Table 3 — total storage overhead of SPP + PPF (39.34 KB).

use ppf::default_budget;

fn main() {
    println!("Table 3 — SPP+PPF storage overhead\n");
    let b = default_budget();
    print!("{}", b.render());
    println!("\n(paper: 322,240 bits = 39.34 KB; DPC-2 budget was 32 KB)");
    println!(
        "Perceptron sum: adder tree of depth {} for 9 features (paper: 4 steps).",
        ppf::adder_tree_depth(9)
    );
}
