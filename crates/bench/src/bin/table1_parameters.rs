//! Table 1 — simulation parameters for the 1-, 4- and 8-core configurations
//! and the DPC-2 constraint variants.

use ppf_sim::SystemConfig;

fn main() {
    println!("Table 1 — simulation parameters\n");
    for (name, cfg) in [
        ("1-core (default)", SystemConfig::single_core()),
        ("4-core", SystemConfig::multi_core(4)),
        ("8-core", SystemConfig::multi_core(8)),
        ("1-core, low bandwidth (DPC-2)", SystemConfig::low_bandwidth()),
        ("1-core, small LLC (DPC-2)", SystemConfig::small_llc()),
    ] {
        println!("[{name}]");
        print!("{}", cfg.table1());
        println!();
    }
}
