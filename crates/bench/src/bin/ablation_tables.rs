//! Ablation — scale the perceptron weight tables and metadata tables up and
//! down (the paper's Sec 5.6 claim: the perceptron block can be scaled to
//! fit the budget).

use ppf::{FeatureKind, Ppf, PpfConfig, StorageBudget};
use ppf_analysis::{geometric_mean, TextTable};
use ppf_bench::sweep::Sweep;
use ppf_bench::throughput::record_throughput;
use ppf_bench::{run_single, runner, sweep_scalars, RunScale, Scheme};
use ppf_prefetchers::{Spp, SppConfig};
use ppf_sim::{Prefetcher, Simulation, SystemConfig};
use ppf_trace::{Suite, TraceBuilder, Workload};

fn main() {
    let scale = RunScale::from_args();
    let workloads = Workload::memory_intensive(Suite::Spec2017);
    let threads = runner::thread_count();
    let sweep = Sweep::from_args("ablation_tables");
    let t0 = std::time::Instant::now();
    let mut runs = workloads.len() as u64;
    let base_jobs: Vec<(String, runner::BoxedJob<f64>)> = workloads
        .iter()
        .map(|w| {
            let key = format!("baseline/{}", w.name());
            let w = w.clone();
            let job: runner::BoxedJob<f64> = Box::new(move || {
                let ipc =
                    run_single(SystemConfig::single_core(), &w, Scheme::Baseline, scale).ipc();
                eprintln!("  baseline {} done", w.name());
                ipc
            });
            (key, job)
        })
        .collect();
    let base = sweep_scalars(&sweep, base_jobs);

    println!("Table-size ablation — PPF geomean speedup vs. storage\n");
    let mut t = TextTable::new(vec!["metadata tables", "features", "storage (KB)", "geomean"]);
    let feature_sets: [(&str, Vec<FeatureKind>); 2] = [
        ("nine (paper)", FeatureKind::default_set()),
        (
            "top-4 only",
            vec![
                FeatureKind::PhysAddr,
                FeatureKind::CacheLine,
                FeatureKind::PageAddr,
                FeatureKind::ConfidenceXorPage,
            ],
        ),
    ];
    for (fs_label, features) in feature_sets {
        for table_entries in [256usize, 1024, 4096] {
            let cfg = PpfConfig {
                prefetch_table_entries: table_entries,
                reject_table_entries: table_entries,
                features: features.clone(),
                ..PpfConfig::default()
            };
            let kb = StorageBudget::compute(&SppConfig::default(), &cfg).total_kb();
            // Workloads whose baseline run failed are skipped (no ratio
            // to compute); the sweep summary already named the failure.
            let jobs: Vec<(String, runner::BoxedJob<f64>)> = workloads
                .iter()
                .zip(&base)
                .filter_map(|(w, b)| {
                    let b = (*b)?;
                    let key = format!("{fs_label}/{table_entries}/{}", w.name());
                    let w = w.clone();
                    let cfg = cfg.clone();
                    let job: runner::BoxedJob<f64> = Box::new(move || {
                        let pf: Box<dyn Prefetcher> =
                            Box::new(Ppf::with_config(Spp::default(), cfg));
                        let trace = Box::new(TraceBuilder::new(w.clone()).seed(42).build());
                        let mut sim = Simulation::new(SystemConfig::single_core());
                        sim.add_core(w.name(), trace, pf);
                        sim.run(scale.warmup, scale.measure).ipc() / b
                    });
                    Some((key, job))
                })
                .collect();
            runs += jobs.len() as u64;
            let xs: Vec<f64> = sweep_scalars(&sweep, jobs).into_iter().flatten().collect();
            let g = geometric_mean(&xs);
            eprintln!("  {fs_label}/{table_entries}: {g:.3}");
            t.row(vec![
                table_entries.to_string(),
                fs_label.to_string(),
                format!("{kb:.1}"),
                format!("{g:.3}"),
            ]);
        }
    }
    record_throughput("ablation_tables", threads, t0.elapsed(), runs * (scale.warmup + scale.measure));
    print!("{}", t.render());
}
