//! Extension ablation — LRU (the paper's configuration) versus SRRIP
//! replacement in the L2/LLC, with and without PPF. Scan-resistant
//! replacement overlaps partially with prefetch filtering (both fight
//! pollution), so their gains do not simply add.

use ppf_analysis::{geometric_mean, TextTable};
use ppf_bench::sweep::Sweep;
use ppf_bench::throughput::record_throughput;
use ppf_bench::{run_single, runner, sweep_scalars, RunScale, Scheme};
use ppf_sim::{ReplacementPolicy, SystemConfig};
use ppf_trace::{Suite, Workload};

fn cfg_with(policy: ReplacementPolicy) -> SystemConfig {
    let mut c = SystemConfig::single_core();
    c.l2.policy = policy;
    c.llc.policy = policy;
    c
}

fn main() {
    let scale = RunScale::from_args();
    let workloads = Workload::memory_intensive(Suite::Spec2017);
    let threads = runner::thread_count();
    let sweep = Sweep::from_args("ablation_replacement");
    let t0 = std::time::Instant::now();
    println!("Replacement-policy ablation — memory-intensive subset\n");
    let mut t = TextTable::new(vec!["policy", "SPP", "PPF"]);
    for (label, policy) in
        [("LRU (paper)", ReplacementPolicy::Lru), ("SRRIP", ReplacementPolicy::Srrip)]
    {
        let mut cells = vec![label.to_string()];
        for scheme in [Scheme::Spp, Scheme::Ppf] {
            let jobs: Vec<(String, runner::BoxedJob<f64>)> = workloads
                .iter()
                .map(|w| {
                    let key = format!("{:?}/{}/{}", policy, scheme.label(), w.name());
                    let w = w.clone();
                    let job: runner::BoxedJob<f64> = Box::new(move || {
                        let base = run_single(cfg_with(policy), &w, Scheme::Baseline, scale);
                        let r = run_single(cfg_with(policy), &w, scheme, scale);
                        r.ipc() / base.ipc()
                    });
                    (key, job)
                })
                .collect();
            let xs: Vec<f64> = sweep_scalars(&sweep, jobs).into_iter().flatten().collect();
            eprintln!("  {label}/{}: done", scheme.label());
            cells.push(format!("{:.3}", geometric_mean(&xs)));
        }
        t.row(cells);
    }
    record_throughput(
        "ablation_replacement",
        threads,
        t0.elapsed(),
        8 * workloads.len() as u64 * (scale.warmup + scale.measure),
    );
    print!("{}", t.render());
}
