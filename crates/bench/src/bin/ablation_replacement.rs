//! Extension ablation — LRU (the paper's configuration) versus SRRIP
//! replacement in the L2/LLC, with and without PPF. Scan-resistant
//! replacement overlaps partially with prefetch filtering (both fight
//! pollution), so their gains do not simply add.

use ppf_analysis::{geometric_mean, TextTable};
use ppf_bench::throughput::record_throughput;
use ppf_bench::{run_single, runner, RunScale, Scheme};
use ppf_sim::{ReplacementPolicy, SystemConfig};
use ppf_trace::{Suite, Workload};

fn cfg_with(policy: ReplacementPolicy) -> SystemConfig {
    let mut c = SystemConfig::single_core();
    c.l2.policy = policy;
    c.llc.policy = policy;
    c
}

fn main() {
    let scale = RunScale::from_args();
    let workloads = Workload::memory_intensive(Suite::Spec2017);
    let threads = runner::thread_count();
    let t0 = std::time::Instant::now();
    println!("Replacement-policy ablation — memory-intensive subset\n");
    let mut t = TextTable::new(vec!["policy", "SPP", "PPF"]);
    for (label, policy) in
        [("LRU (paper)", ReplacementPolicy::Lru), ("SRRIP", ReplacementPolicy::Srrip)]
    {
        let mut cells = vec![label.to_string()];
        for scheme in [Scheme::Spp, Scheme::Ppf] {
            let jobs: Vec<_> = workloads
                .iter()
                .map(|w| {
                    move || {
                        let base = run_single(cfg_with(policy), w, Scheme::Baseline, scale);
                        let r = run_single(cfg_with(policy), w, scheme, scale);
                        r.ipc() / base.ipc()
                    }
                })
                .collect();
            let xs = runner::run_indexed(jobs, threads);
            eprintln!("  {label}/{}: done", scheme.label());
            cells.push(format!("{:.3}", geometric_mean(&xs)));
        }
        t.row(cells);
    }
    record_throughput(
        "ablation_replacement",
        threads,
        t0.elapsed(),
        8 * workloads.len() as u64 * (scale.warmup + scale.measure),
    );
    print!("{}", t.render());
}
