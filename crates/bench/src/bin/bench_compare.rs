//! Compares the last two throughput records per `(experiment, simulated
//! instructions)` cell in `results/bench_throughput.json` and prints a
//! regression/speedup table. Keying on the workload size keeps `--quick`
//! smoke records and full-sweep records in separate trajectories — a 25
//! M-instr cell is never diffed against a 120 M-instr one.
//!
//! The log is an array of one-object-per-line JSON records appended by
//! [`ppf_bench::throughput`]; this tool parses it with the same
//! line-oriented discipline (no JSON library), tolerating pre-v2 records
//! that lack `git_rev`/`schema_version` and pre-v3 records that lack
//! `cpu`. A pair whose thread counts or host CPUs differ (or whose host
//! is unrecorded) is printed but never gates: absolute instr/s across
//! different hardware is not a regression signal.
//!
//! ```text
//! cargo run --release -p ppf-bench --bin bench_compare [-- --fail-on-regression]
//! ```
//!
//! With `--fail-on-regression` the exit status is nonzero if any cell's
//! newest record is more than 10% slower than the previous one — an opt-in
//! CI gate (interactive use never fails the build).

use std::collections::BTreeMap;
use std::path::Path;

use ppf_bench::throughput::THROUGHPUT_LOG;

/// Regression threshold for the opt-in gate: newer / older below this
/// ratio (i.e. >10% slower) fails.
const REGRESSION_GATE: f64 = 0.90;

#[derive(Debug, Clone)]
struct Record {
    experiment: String,
    git_rev: String,
    /// Host CPU model; `None` for pre-v3 records. Pairs measured on
    /// different (or unknown) hardware are compared but never gated.
    cpu: Option<String>,
    threads: u64,
    simulated_instructions: u64,
    instr_per_second: f64,
    /// Event-horizon skip ratio; `None` for pre-v4 records.
    skip_ratio: Option<f64>,
}

/// Extracts `"key":"value"` from one record line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts `"key":<number>` from one record line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn parse_log(text: &str) -> Vec<Record> {
    text.lines()
        .map(str::trim)
        .filter(|l| l.starts_with('{'))
        .filter_map(|line| {
            Some(Record {
                experiment: str_field(line, "experiment")?,
                // Pre-v2 records carry no revision; keep them comparable.
                git_rev: str_field(line, "git_rev").unwrap_or_else(|| "pre-v2".into()),
                cpu: str_field(line, "cpu"),
                threads: num_field(line, "threads")? as u64,
                simulated_instructions: num_field(line, "simulated_instructions")? as u64,
                instr_per_second: num_field(line, "instr_per_second")?,
                skip_ratio: num_field(line, "skip_ratio"),
            })
        })
        .collect()
}

/// Groups records in append (chronological) order per `(experiment,
/// simulated_instructions)` cell: records at different workload sizes
/// measure different work and must never share a comparison trajectory.
fn group_cells(records: Vec<Record>) -> BTreeMap<(String, u64), Vec<Record>> {
    let mut by_cell: BTreeMap<(String, u64), Vec<Record>> = BTreeMap::new();
    for r in records {
        by_cell
            .entry((r.experiment.clone(), r.simulated_instructions))
            .or_default()
            .push(r);
    }
    by_cell
}

/// Cells holding at least two records — the only cells the table can
/// actually diff. When this is zero the whole run compared *nothing*, which
/// must be reported loudly rather than printed as an innocuous-looking
/// table of single-record rows.
fn comparable_pairs(by_cell: &BTreeMap<(String, u64), Vec<Record>>) -> usize {
    by_cell.values().filter(|runs| runs.len() >= 2).count()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fail_on_regression = false;
    let mut path = THROUGHPUT_LOG.to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fail-on-regression" => fail_on_regression = true,
            "--log" => match it.next() {
                Some(p) => path = p.clone(),
                None => {
                    eprintln!("--log requires a path");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: bench_compare [--log <file>] [--fail-on-regression]\n\n\
                     Diffs the last two throughput records per (experiment,\n\
                     simulated_instructions) cell in {THROUGHPUT_LOG} and prints\n\
                     a speedup table. With --fail-on-regression, exits nonzero\n\
                     when any cell regressed by more than {:.0}%.",
                    (1.0 - REGRESSION_GATE) * 100.0
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let text = match std::fs::read_to_string(Path::new(&path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_compare: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let records = parse_log(&text);
    if records.is_empty() {
        eprintln!("bench_compare: no records in {path}");
        std::process::exit(2);
    }

    let by_cell = group_cells(records);

    println!(
        "{:<34} {:>12} {:>12} {:>8}  {:<7} -> {:<7}",
        "experiment (instr)", "old instr/s", "new instr/s", "speedup", "old rev", "new rev"
    );
    let mut regressed = Vec::new();
    for ((exp, instr), runs) in &by_cell {
        let label = format!("{exp} ({instr})");
        if runs.len() < 2 {
            println!(
                "{:<34} {:>12} {:>12.0} {:>8}  (only one record)",
                label, "-", runs[0].instr_per_second, "-"
            );
            continue;
        }
        let old = &runs[runs.len() - 2];
        let new = &runs[runs.len() - 1];
        let ratio = new.instr_per_second / old.instr_per_second.max(1e-9);
        // Workload size already matches within a cell; a thread-count
        // change or different (or unrecorded) host hardware still makes
        // the pair incomparable.
        let same_cpu = match (&old.cpu, &new.cpu) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        };
        let like_for_like = new.threads == old.threads && same_cpu;
        let marker = if ratio < REGRESSION_GATE && like_for_like { "  REGRESSION" } else { "" };
        println!(
            "{:<34} {:>12.0} {:>12.0} {:>7.2}x  {:<7} -> {:<7}{marker}",
            label, old.instr_per_second, new.instr_per_second, ratio, old.git_rev, new.git_rev
        );
        if old.skip_ratio.is_some() || new.skip_ratio.is_some() {
            let fmt = |r: Option<f64>| r.map_or("-".to_string(), |v| format!("{v:.2}"));
            println!(
                "{:<34} (skip ratio: {} -> {})",
                "",
                fmt(old.skip_ratio),
                fmt(new.skip_ratio)
            );
        }
        if new.threads != old.threads {
            println!(
                "{:<34} (thread counts differ: {} vs {} — ratio is not like-for-like)",
                "", old.threads, new.threads
            );
        }
        if !same_cpu {
            println!(
                "{:<34} (host CPUs differ or unrecorded: {} vs {} — ratio is not like-for-like)",
                "",
                old.cpu.as_deref().unwrap_or("unknown"),
                new.cpu.as_deref().unwrap_or("unknown")
            );
        }
        if ratio < REGRESSION_GATE && like_for_like {
            regressed.push(label);
        }
    }

    if comparable_pairs(&by_cell) == 0 {
        eprintln!(
            "bench_compare: WARNING: no comparable pairs — every (experiment, \
             simulated_instructions) cell holds a single record, so nothing was \
             compared (and nothing can gate). Re-run an experiment at the same \
             scale to produce a pair."
        );
        // Distinct from 1 (regression found) and 2 (usage/IO error): the
        // gate was asked to judge a comparison that never happened.
        if fail_on_regression {
            std::process::exit(3);
        }
        return;
    }

    if !regressed.is_empty() {
        eprintln!(
            "bench_compare: >{:.0}% regression in: {}",
            (1.0 - REGRESSION_GATE) * 100.0,
            regressed.join(", ")
        );
        if fail_on_regression {
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_v2_and_legacy_lines() {
        let text = "[\n  {\"experiment\":\"fig09\",\"threads\":1,\"wall_seconds\":1.0,\"simulated_instructions\":10,\"instr_per_second\":13433995,\"unix_time\":0},\n  {\"schema_version\":2,\"experiment\":\"fig09\",\"git_rev\":\"abc1234\",\"threads\":1,\"wall_seconds\":1.0,\"simulated_instructions\":10,\"instr_per_second\":16310538,\"unix_time\":0}\n]\n";
        let recs = parse_log(text);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].git_rev, "pre-v2");
        assert_eq!(recs[1].git_rev, "abc1234");
        assert_eq!(recs[1].threads, 1);
        assert!((recs[1].instr_per_second - 16310538.0).abs() < 1.0);
    }

    #[test]
    fn quick_and_full_records_land_in_separate_cells() {
        let text = "[\n\
            {\"experiment\":\"fig09\",\"threads\":1,\"simulated_instructions\":25000000,\"instr_per_second\":30000000,\"unix_time\":0},\n\
            {\"experiment\":\"fig09\",\"threads\":1,\"simulated_instructions\":120000000,\"instr_per_second\":18000000,\"unix_time\":1},\n\
            {\"experiment\":\"fig09\",\"threads\":1,\"simulated_instructions\":120000000,\"instr_per_second\":19000000,\"unix_time\":2}\n\
            ]\n";
        let cells = group_cells(parse_log(text));
        assert_eq!(cells.len(), 2, "one cell per workload size");
        assert_eq!(cells[&("fig09".to_string(), 25_000_000)].len(), 1);
        let full = &cells[&("fig09".to_string(), 120_000_000)];
        assert_eq!(full.len(), 2);
        // Chronological order preserved within the cell: the newest record
        // is last, so the comparison diffs 18 M/s -> 19 M/s, never the
        // 25 M-instr smoke record against a full sweep.
        assert!((full[0].instr_per_second - 18_000_000.0).abs() < 1.0);
        assert!((full[1].instr_per_second - 19_000_000.0).abs() < 1.0);
    }

    #[test]
    fn cpu_field_is_optional_and_parsed() {
        let text = "[\n\
            {\"experiment\":\"fig09\",\"threads\":1,\"simulated_instructions\":10,\"instr_per_second\":1,\"unix_time\":0},\n\
            {\"schema_version\":3,\"experiment\":\"fig09\",\"git_rev\":\"abc\",\"cpu\":\"AMD EPYC 7571\",\"threads\":1,\"simulated_instructions\":10,\"instr_per_second\":2,\"unix_time\":1}\n\
            ]\n";
        let recs = parse_log(text);
        assert_eq!(recs[0].cpu, None, "pre-v3 record must stay parseable");
        assert_eq!(recs[1].cpu.as_deref(), Some("AMD EPYC 7571"));
    }

    #[test]
    fn skip_ratio_parses_when_present_only() {
        let text = "[\n\
            {\"experiment\":\"fig09\",\"threads\":1,\"simulated_instructions\":10,\"instr_per_second\":1,\"unix_time\":0},\n\
            {\"schema_version\":4,\"experiment\":\"fig09\",\"git_rev\":\"abc\",\"cpu\":\"X\",\"threads\":1,\"simulated_instructions\":10,\"instr_per_second\":2,\"skip_ratio\":0.8125,\"unix_time\":1}\n\
            ]\n";
        let recs = parse_log(text);
        assert_eq!(recs[0].skip_ratio, None, "pre-v4 record must stay parseable");
        assert!((recs[1].skip_ratio.unwrap() - 0.8125).abs() < 1e-9);
    }

    #[test]
    fn comparable_pairs_counts_only_diffable_cells() {
        // Three single-record cells: a table full of rows, zero comparisons.
        let text = "[\n\
            {\"experiment\":\"fig09\",\"threads\":1,\"simulated_instructions\":10,\"instr_per_second\":1,\"unix_time\":0},\n\
            {\"experiment\":\"fig09\",\"threads\":1,\"simulated_instructions\":20,\"instr_per_second\":1,\"unix_time\":1},\n\
            {\"experiment\":\"fig11\",\"threads\":1,\"simulated_instructions\":10,\"instr_per_second\":1,\"unix_time\":2}\n\
            ]\n";
        let cells = group_cells(parse_log(text));
        assert_eq!(cells.len(), 3);
        assert_eq!(comparable_pairs(&cells), 0, "single records never pair");

        // A second record at the same (experiment, size) makes one pair.
        let text2 = format!(
            "{}{}",
            text,
            "{\"experiment\":\"fig09\",\"threads\":1,\"simulated_instructions\":10,\"instr_per_second\":2,\"unix_time\":3}\n"
        );
        assert_eq!(comparable_pairs(&group_cells(parse_log(&text2))), 1);
    }

    #[test]
    fn num_field_stops_at_delimiters() {
        let line = "{\"threads\":8,\"instr_per_second\":123}";
        assert_eq!(num_field(line, "threads"), Some(8.0));
        assert_eq!(num_field(line, "instr_per_second"), Some(123.0));
        assert_eq!(num_field(line, "missing"), None);
    }
}
