//! Compares the last two throughput records per experiment in
//! `results/bench_throughput.json` and prints a regression/speedup table.
//!
//! The log is an array of one-object-per-line JSON records appended by
//! [`ppf_bench::throughput`]; this tool parses it with the same
//! line-oriented discipline (no JSON library), tolerating pre-v2 records
//! that lack `git_rev`/`schema_version`.
//!
//! ```text
//! cargo run --release -p ppf-bench --bin bench_compare [-- --fail-on-regression]
//! ```
//!
//! With `--fail-on-regression` the exit status is nonzero if any
//! experiment's newest record is more than 10% slower than the previous
//! one — an opt-in CI gate (interactive use never fails the build).

use std::collections::BTreeMap;
use std::path::Path;

use ppf_bench::throughput::THROUGHPUT_LOG;

/// Regression threshold for the opt-in gate: newer / older below this
/// ratio (i.e. >10% slower) fails.
const REGRESSION_GATE: f64 = 0.90;

#[derive(Debug, Clone)]
struct Record {
    experiment: String,
    git_rev: String,
    threads: u64,
    simulated_instructions: u64,
    instr_per_second: f64,
}

/// Extracts `"key":"value"` from one record line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts `"key":<number>` from one record line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn parse_log(text: &str) -> Vec<Record> {
    text.lines()
        .map(str::trim)
        .filter(|l| l.starts_with('{'))
        .filter_map(|line| {
            Some(Record {
                experiment: str_field(line, "experiment")?,
                // Pre-v2 records carry no revision; keep them comparable.
                git_rev: str_field(line, "git_rev").unwrap_or_else(|| "pre-v2".into()),
                threads: num_field(line, "threads")? as u64,
                simulated_instructions: num_field(line, "simulated_instructions")? as u64,
                instr_per_second: num_field(line, "instr_per_second")?,
            })
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fail_on_regression = false;
    let mut path = THROUGHPUT_LOG.to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fail-on-regression" => fail_on_regression = true,
            "--log" => match it.next() {
                Some(p) => path = p.clone(),
                None => {
                    eprintln!("--log requires a path");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: bench_compare [--log <file>] [--fail-on-regression]\n\n\
                     Diffs the last two throughput records per experiment in\n\
                     {THROUGHPUT_LOG} and prints a speedup table. With\n\
                     --fail-on-regression, exits nonzero when any experiment\n\
                     regressed by more than {:.0}%.",
                    (1.0 - REGRESSION_GATE) * 100.0
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let text = match std::fs::read_to_string(Path::new(&path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_compare: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let records = parse_log(&text);
    if records.is_empty() {
        eprintln!("bench_compare: no records in {path}");
        std::process::exit(2);
    }

    // Group in append (chronological) order per experiment.
    let mut by_exp: BTreeMap<String, Vec<Record>> = BTreeMap::new();
    for r in records {
        by_exp.entry(r.experiment.clone()).or_default().push(r);
    }

    println!(
        "{:<24} {:>12} {:>12} {:>8}  {:<7} -> {:<7}",
        "experiment", "old instr/s", "new instr/s", "speedup", "old rev", "new rev"
    );
    let mut regressed = Vec::new();
    for (exp, runs) in &by_exp {
        if runs.len() < 2 {
            println!(
                "{:<24} {:>12} {:>12.0} {:>8}  (only one record)",
                exp, "-", runs[0].instr_per_second, "-"
            );
            continue;
        }
        let old = &runs[runs.len() - 2];
        let new = &runs[runs.len() - 1];
        let ratio = new.instr_per_second / old.instr_per_second.max(1e-9);
        // A --quick record and a full sweep (or different thread counts)
        // are not comparable: annotate and keep them out of the gate.
        let like_for_like = new.threads == old.threads
            && new.simulated_instructions == old.simulated_instructions;
        let marker = if ratio < REGRESSION_GATE && like_for_like { "  REGRESSION" } else { "" };
        println!(
            "{:<24} {:>12.0} {:>12.0} {:>7.2}x  {:<7} -> {:<7}{marker}",
            exp, old.instr_per_second, new.instr_per_second, ratio, old.git_rev, new.git_rev
        );
        if new.threads != old.threads {
            println!(
                "{:<24} (thread counts differ: {} vs {} — ratio is not like-for-like)",
                "", old.threads, new.threads
            );
        }
        if new.simulated_instructions != old.simulated_instructions {
            println!(
                "{:<24} (workload sizes differ: {} vs {} instr — ratio is not like-for-like)",
                "", old.simulated_instructions, new.simulated_instructions
            );
        }
        if ratio < REGRESSION_GATE && like_for_like {
            regressed.push(exp.clone());
        }
    }

    if !regressed.is_empty() {
        eprintln!(
            "bench_compare: >{:.0}% regression in: {}",
            (1.0 - REGRESSION_GATE) * 100.0,
            regressed.join(", ")
        );
        if fail_on_regression {
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_v2_and_legacy_lines() {
        let text = "[\n  {\"experiment\":\"fig09\",\"threads\":1,\"wall_seconds\":1.0,\"simulated_instructions\":10,\"instr_per_second\":13433995,\"unix_time\":0},\n  {\"schema_version\":2,\"experiment\":\"fig09\",\"git_rev\":\"abc1234\",\"threads\":1,\"wall_seconds\":1.0,\"simulated_instructions\":10,\"instr_per_second\":16310538,\"unix_time\":0}\n]\n";
        let recs = parse_log(text);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].git_rev, "pre-v2");
        assert_eq!(recs[1].git_rev, "abc1234");
        assert_eq!(recs[1].threads, 1);
        assert!((recs[1].instr_per_second - 16310538.0).abs() < 1.0);
    }

    #[test]
    fn num_field_stops_at_delimiters() {
        let line = "{\"threads\":8,\"instr_per_second\":123}";
        assert_eq!(num_field(line, "threads"), Some(8.0));
        assert_eq!(num_field(line, "instr_per_second"), Some(123.0));
        assert_eq!(num_field(line, "missing"), None);
    }
}
