//! Figure 10 — fraction of L2 and LLC demand misses covered by each
//! prefetcher on the SPEC CPU 2017 models.

use ppf_analysis::{mean, TextTable};
use ppf_bench::throughput::record_throughput;
use ppf_bench::{coverage, run_suite, runner, RunScale, Scheme};
use ppf_sim::SystemConfig;
use ppf_trace::Workload;

fn main() {
    let scale = RunScale::from_args();
    let workloads = Workload::spec2017();
    let threads = runner::thread_count();
    eprintln!(
        "Figure 10: running {} workloads x 5 schemes on {} thread(s)...",
        workloads.len(),
        threads
    );
    let t0 = std::time::Instant::now();
    let rows = run_suite("fig10_coverage", &workloads, SystemConfig::single_core, scale).rows;
    record_throughput(
        "fig10_coverage",
        threads,
        t0.elapsed(),
        (workloads.len() * Scheme::all().len()) as u64 * (scale.warmup + scale.measure),
    );

    let mut t = TextTable::new(vec!["scheme", "L2 coverage", "LLC coverage"]);
    for s in Scheme::prefetchers() {
        let mut l2 = Vec::new();
        let mut llc = Vec::new();
        for row in &rows {
            let base = row.report(Scheme::Baseline);
            let with = row.report(s);
            // Skip apps with negligible baseline misses (coverage undefined).
            if base.cores[0].l2.demand_misses() > 500 {
                l2.push(coverage(
                    base.cores[0].l2.demand_misses(),
                    with.cores[0].l2.demand_misses(),
                ));
            }
            if base.llc.demand_misses() > 500 {
                llc.push(coverage(base.llc.demand_misses(), with.llc.demand_misses()));
            }
        }
        t.row(vec![
            s.label().to_string(),
            format!("{:.1}%", 100.0 * mean(&l2)),
            format!("{:.1}%", 100.0 * mean(&llc)),
        ]);
    }
    println!("Figure 10 — fraction of demand misses covered (mean over apps)\n");
    print!("{}", t.render());
    println!("\n(paper: PPF covers 75.5% of L2 and 86.9% of LLC misses — the");
    println!(" highest of all prefetchers; DA-AMPM next at 54.3% / 78.5%)");
}
