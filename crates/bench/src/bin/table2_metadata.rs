//! Table 2 — metadata stored per Prefetch-Table entry (85 bits).

use ppf_analysis::TextTable;

fn main() {
    println!("Table 2 — metadata stored in the Prefetch Table\n");
    let mut t = TextTable::new(vec!["Field", "Bits", "Comment"]);
    let rows: &[(&str, u64, &str)] = &[
        ("Valid", 1, "indicates a valid entry"),
        ("Tag", 6, "identifier for the entry"),
        ("Useful", 1, "entry led to a useful demand fetch"),
        ("Perc Decision", 1, "prefetched vs not-prefetched"),
        ("PC", 12, "metadata for perceptron training"),
        ("Address", 24, ""),
        ("Curr Signature", 10, ""),
        ("PC_i Hash", 12, ""),
        ("Delta", 7, ""),
        ("Confidence", 7, ""),
        ("Depth", 4, ""),
    ];
    let mut total = 0;
    for (f, b, c) in rows {
        t.row(vec![f.to_string(), b.to_string(), c.to_string()]);
        total += b;
    }
    t.row(vec!["Total".to_string(), total.to_string(), "(paper: 85 bits)".to_string()]);
    print!("{}", t.render());
    assert_eq!(total, ppf::tables::prefetch_table_entry_bits(), "code/table drift");
    println!(
        "\nReject-Table entries omit the Useful bit: {} bits.",
        ppf::tables::reject_table_entry_bits()
    );
}
