//! Related-work comparison (paper Sec 7.4): the basic Rosenblatt perceptron
//! filter of Wang & Luo versus PPF. The paper's claim, reproduced here:
//! the Rosenblatt design raises accuracy over the plain baseline but loses
//! coverage, so its performance impact is small — PPF gets both.

use ppf::{Ppf, RosenblattFilter};
use ppf_analysis::{geometric_mean, mean, TextTable};
use ppf_bench::{coverage, run_single, RunScale, Scheme};
use ppf_prefetchers::Spp;
use ppf_sim::{Prefetcher, Simulation, SystemConfig};
use ppf_trace::{Suite, TraceBuilder, Workload};

fn run_with(w: &Workload, pf: Box<dyn Prefetcher>, scale: RunScale) -> ppf_sim::SimReport {
    let trace = Box::new(TraceBuilder::new(w.clone()).seed(42).build());
    let mut sim = Simulation::new(SystemConfig::single_core());
    sim.add_core(w.name(), trace, pf);
    sim.run(scale.warmup, scale.measure)
}

fn main() {
    let scale = RunScale::from_args();
    let workloads = Workload::memory_intensive(Suite::Spec2017);

    let mut speedups: Vec<(&str, Vec<f64>)> =
        vec![("SPP", vec![]), ("SPP+Rosenblatt", vec![]), ("PPF", vec![])];
    let mut accuracies: Vec<(&str, Vec<f64>)> =
        vec![("SPP", vec![]), ("SPP+Rosenblatt", vec![]), ("PPF", vec![])];
    let mut coverages: Vec<(&str, Vec<f64>)> =
        vec![("SPP", vec![]), ("SPP+Rosenblatt", vec![]), ("PPF", vec![])];

    for w in &workloads {
        let base = run_single(SystemConfig::single_core(), w, Scheme::Baseline, scale);
        let runs: Vec<(usize, Box<dyn Prefetcher>)> = vec![
            (0, Box::new(Spp::default())),
            (1, Box::new(RosenblattFilter::new(Spp::default()))),
            (2, Box::new(Ppf::new(Spp::default()))),
        ];
        for (i, pf) in runs {
            let r = run_with(w, pf, scale);
            speedups[i].1.push(r.ipc() / base.ipc());
            if r.cores[0].prefetch.issued > 100 {
                accuracies[i].1.push(r.cores[0].prefetch.accuracy());
            }
            if base.cores[0].l2.demand_misses() > 500 {
                coverages[i].1.push(coverage(
                    base.cores[0].l2.demand_misses(),
                    r.cores[0].l2.demand_misses(),
                ));
            }
        }
        eprintln!("  {} done", w.name());
    }

    println!("Related work — Rosenblatt filter vs PPF (memory-intensive subset)\n");
    let mut t = TextTable::new(vec!["scheme", "geomean speedup", "mean accuracy", "mean L2 coverage"]);
    for i in 0..3 {
        t.row(vec![
            speedups[i].0.to_string(),
            format!("{:.3}", geometric_mean(&speedups[i].1)),
            format!("{:.1}%", 100.0 * mean(&accuracies[i].1)),
            format!("{:.1}%", 100.0 * mean(&coverages[i].1)),
        ]);
    }
    print!("{}", t.render());
    println!("\n(paper Sec 7.4: the basic-perceptron design increases accuracy but");
    println!(" lowers coverage, hence low performance impact; PPF raises both)");
}
