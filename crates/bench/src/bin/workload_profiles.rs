//! Quantitative character sheet of every workload model — the measured
//! backing for DESIGN.md §4's substitution argument (footprint, access
//! density, stride regularity, delta entropy, dependence, store mix).

use ppf_analysis::TextTable;
use ppf_trace::{Suite, TraceBuilder, TraceProfile, Workload};

fn main() {
    let records = if std::env::args().any(|a| a == "--quick") { 20_000 } else { 100_000 };
    println!("Workload model profiles ({records} records each)\n");
    let mut t = TextTable::new(vec![
        "model", "APKI", "footprint", "pages", "stores", "dependent", "dom.delta", "H(delta)",
    ]);
    for suite in [Suite::Spec2017, Suite::Spec2006, Suite::CloudSuite] {
        for w in Workload::suite_all(suite) {
            let mut g = TraceBuilder::new(w.clone()).seed(42).build();
            let p = TraceProfile::measure(&mut g, records);
            t.row(vec![
                format!("{}{}", w.name(), if w.is_memory_intensive() { " *" } else { "" }),
                format!("{:.1}", p.apki),
                format!("{:.1} MB", p.footprint_bytes() as f64 / 1e6),
                p.distinct_pages.to_string(),
                format!("{:.0}%", 100.0 * p.store_fraction),
                format!("{:.0}%", 100.0 * p.dependent_fraction),
                format!("{:.2}", p.dominant_delta_fraction),
                format!("{:.2}b", p.delta_entropy_bits),
            ]);
            eprintln!("  {} done", w.name());
        }
    }
    print!("{}", t.render());
    println!("\n* = memory-intensive subset. dom.delta = share of the most common");
    println!("within-page delta (1.0 = perfectly strided); H(delta) = Shannon");
    println!("entropy of within-page deltas in bits.");
}
