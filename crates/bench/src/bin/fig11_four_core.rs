//! Figure 11 — weighted speedups on 4-core memory-intensive SPEC CPU 2017
//! mixes, sorted ascending per scheme, plus geometric means. Also reports
//! the fully-random-mix geomeans the paper quotes in the text.

use ppf_analysis::{geometric_mean, percent_gain, sorted_series};
use ppf_bench::throughput::record_throughput;
use ppf_bench::{run_mix_suite, runner, RunScale, Scheme};
use ppf_trace::{MixGenerator, Suite, Workload, WorkloadMix};

fn run_batch(label: &str, experiment: &str, mixes: &[WorkloadMix], scale: RunScale) {
    let cores = mixes[0].cores();
    let threads = runner::thread_count();
    eprintln!("{label}: {} mixes x 5 schemes on {threads} thread(s)...", mixes.len());
    let t0 = std::time::Instant::now();
    let out = run_mix_suite(experiment, mixes, cores, scale);
    let (runs, instructions) = (out.runs, out.instructions);
    record_throughput(
        &format!("fig11_four_core[{label}]"),
        threads,
        t0.elapsed(),
        instructions,
    );

    let per_scheme: Vec<(Scheme, Vec<f64>)> = Scheme::prefetchers()
        .into_iter()
        .enumerate()
        .map(|(k, s)| (s, runs.iter().map(|r| r.speedups[k].1).collect()))
        .collect();

    println!("\n== {label} ==");
    for (s, xs) in &per_scheme {
        println!("{}", sorted_series(&format!("{} weighted speedup", s.label()), xs.clone(), 40));
    }
    let geo: Vec<(Scheme, f64)> =
        per_scheme.iter().map(|(s, xs)| (*s, geometric_mean(xs))).collect();
    for (s, g) in &geo {
        println!("geomean {}: {:.3}", s.label(), g);
    }
    let ppf = geo.iter().find(|(s, _)| *s == Scheme::Ppf).expect("ppf ran").1;
    let spp = geo.iter().find(|(s, _)| *s == Scheme::Spp).expect("spp ran").1;
    println!("PPF over SPP: {:+.2}%", percent_gain(ppf, spp));
}

fn main() {
    let scale = RunScale::from_args();
    let intensive = Workload::memory_intensive(Suite::Spec2017);
    let mixes = MixGenerator::new(intensive, 1).draw(scale.mixes, 4);
    println!("Figure 11 — 4-core weighted speedups, memory-intensive mixes");
    println!("(paper: PPF +51.2% over baseline, +11.4% over SPP)");
    run_batch("mem-intensive 4-core", "fig11_mem_intensive", &mixes, scale);

    let all = Workload::spec2017();
    let random_mixes = MixGenerator::new(all, 2).draw(scale.mixes / 2, 4);
    println!("\nFully random mixes (paper text: PPF +26.07% over baseline, +5.6% over SPP)");
    run_batch("random 4-core", "fig11_random", &random_mixes, scale);
}
