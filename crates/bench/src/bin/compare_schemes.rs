//! Developer tool: compare all schemes on a handful of workloads with rich
//! per-run diagnostics (cycles, misses, prefetch stats, DRAM behaviour).
//!
//! ```sh
//! cargo run --release -p ppf-bench --bin compare_schemes [app...]
//! ```

use ppf::Ppf;
use ppf_prefetchers::{Bop, DaAmpm, Spp};
use ppf_sim::{run_single_core, NoPrefetcher, Prefetcher, SystemConfig};
use ppf_trace::{TraceBuilder, Workload};

fn main() {
    let warm = 200_000u64;
    let meas = 1_000_000u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let default = ["603.bwaves_s", "605.mcf_s", "623.xalancbmk_s", "619.lbm_s", "607.cactuBSSN_s", "649.fotonik3d_s"];
    let apps: Vec<&str> = if args.is_empty() { default.to_vec() } else { args.iter().map(|s| s.as_str()).collect() };
    println!("{:<18} {:>8} {:>8} {:>8} {:>8} {:>8}", "app", "none", "bop", "ampm", "spp", "ppf");
    for app in &apps {
        let app: &str = app;
        let mut row = format!("{:<18}", app);
        let mut base_ipc = 0.0;
        for which in 0..5 {
            let w = Workload::by_name(app).unwrap();
            let trace = Box::new(TraceBuilder::new(w).seed(42).build());
            let pf: Box<dyn Prefetcher> = match which {
                0 => Box::new(NoPrefetcher),
                1 => Box::new(Bop::default()),
                2 => Box::new(DaAmpm::default()),
                3 => Box::new(Spp::default()),
                _ => Box::new(Ppf::new(Spp::default())),
            };
            let t0 = std::time::Instant::now();
            let r = run_single_core(SystemConfig::single_core(), app, trace, pf, warm, meas);
            let ipc = r.ipc();
            if which == 0 { base_ipc = ipc; }
            let c = &r.cores[0];
            row += &format!(" {:>8.3}", ipc / base_ipc);
            eprintln!("  [{app} {which}] ipc={ipc:.3} cyc={} l2miss={} llcacc={} llcmiss={} pf_iss={} pf_useful={} late={} latewait={:.0} wait={:.0} acc={:.2} dram[r={} w={} rowhit={:.2} bus={}] {}ms",
                c.cycles, c.l2.demand_misses(), r.llc.demand_accesses, r.llc.demand_misses(), c.prefetch.issued, c.prefetch.useful, c.prefetch.late, c.prefetch.avg_late_wait(), c.avg_load_miss_wait(),
                c.prefetch.accuracy(), r.dram.reads, r.dram.writes, r.dram.row_hit_rate(), r.dram.bus_busy_cycles, t0.elapsed().as_millis());
        }
        println!("{row}");
    }
}
