//! Developer tool: run PPF on one workload and dump the filter's internal
//! state — per-feature weight statistics, training counters, SPP depth.
//!
//! ```sh
//! cargo run --release -p ppf-bench --bin inspect_ppf [workload]
//! ```

use ppf::{Ppf, FeatureKind};
use ppf_prefetchers::Spp;
use ppf_sim::{Simulation, SystemConfig, Prefetcher, AccessContext, PrefetchRequest, EvictionInfo, FillLevel};
use ppf_trace::{TraceBuilder, Workload};

/// Wrapper exposing PPF internals after a run via Drop.
struct Spy(Ppf<Spp>);
impl Prefetcher for Spy {
    fn on_demand_access(&mut self, ctx: &AccessContext, out: &mut Vec<PrefetchRequest>) {
        self.0.on_demand_access(ctx, out)
    }
    fn on_useful_prefetch(&mut self, a: u64) { self.0.on_useful_prefetch(a) }
    fn on_eviction(&mut self, i: &EvictionInfo) { self.0.on_eviction(i) }
    fn on_llc_eviction(&mut self, i: &EvictionInfo) { self.0.on_llc_eviction(i) }
    fn on_prefetch_fill(&mut self, a: u64, l: FillLevel) { self.0.on_prefetch_fill(a, l) }
    fn name(&self) -> &'static str { "ppf-spy" }
}
impl Drop for Spy {
    fn drop(&mut self) {
        let f = self.0.filter();
        println!("filter stats: {:?}", f.stats);
        println!("ppf stats: {:?} avg_depth={:.2}", self.0.stats, self.0.stats.average_accepted_depth());
        println!("spp stats: {:?} avg_depth={:.2}", self.0.source().stats, self.0.source().stats.average_depth());
        println!("spp alpha: {}", self.0.source().alpha_percent());
        for (i, k) in f.features().iter().enumerate() {
            let w = f.perceptron().feature_weights(i);
            let nonzero = w.iter().filter(|&&x| x != 0).count();
            let sum: i64 = w.iter().map(|&x| x as i64).sum();
            let min = w.iter().min().unwrap();
            let max = w.iter().max().unwrap();
            println!("  {:<20} nonzero={:<6} mean={:>7.3} min={} max={}", k.label(), nonzero, sum as f64 / nonzero.max(1) as f64, min, max);
        }
        let _ = FeatureKind::default_set();
    }
}

fn main() {
    let app = std::env::args().nth(1).unwrap_or("623.xalancbmk_s".into());
    let w = Workload::by_name(&app).unwrap();
    let trace = Box::new(TraceBuilder::new(w).seed(42).build());
    let mut sim = Simulation::new(SystemConfig::single_core());
    sim.add_core(&app, trace, Box::new(Spy(Ppf::new(Spp::default()))));
    let r = sim.run(200_000, 1_000_000);
    let c = &r.cores[0];
    println!("ipc={:.3} l2miss={} llcmiss={} pf[em={} iss={} useful={} redundant={} q={}]",
        c.ipc(), c.l2.demand_misses(), r.llc.demand_misses(),
        c.prefetch.emitted, c.prefetch.issued, c.prefetch.useful_total(), c.prefetch.dropped_redundant, c.prefetch.dropped_queue);
}
