//! Hybrid-composition ablation support for the `fig_hybrid` binary: which
//! scheme fusions to evaluate, how to run one (workload × fusion) cell with
//! per-source attribution, and how to round-trip a cell through the sweep
//! checkpoint format (`Vec<f64>`).
//!
//! Not a paper figure — the paper filters a single unthrottled SPP — but
//! the natural extension it gestures at (Sec 7: PPF "can be adapted" to
//! other prefetchers): fuse several unthrottled candidate streams through
//! one perceptron filter and let a source-id feature learn per-scheme
//! trust, with useful/fill credit routed back to the issuing scheme.

use crate::{RunScale, Shared};
use ppf::{Ppf, PpfConfig};
use ppf_prefetchers::{Bop, DaAmpm, Hybrid, LookaheadSource, Spp, MAX_SOURCES};
use ppf_sim::{NoPrefetcher, Simulation, SystemConfig};
use ppf_trace::{TraceBuilder, Workload};

/// The fusion ablation's schemes: the no-prefetch baseline, each member
/// filtered alone (single-member hybrids, so the comparison isolates the
/// fusion itself), and the two-member fusions named by the issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fusion {
    /// No prefetching (the normalization baseline).
    Baseline,
    /// PPF over unthrottled SPP alone.
    Spp,
    /// PPF over unthrottled BOP alone.
    Bop,
    /// PPF over unthrottled DA-AMPM alone.
    DaAmpm,
    /// PPF over SPP + BOP fused.
    SppBop,
    /// PPF over SPP + DA-AMPM fused.
    SppDaAmpm,
}

impl Fusion {
    /// Every column of the ablation, baseline first.
    pub fn all() -> [Fusion; 6] {
        [
            Fusion::Baseline,
            Fusion::Spp,
            Fusion::Bop,
            Fusion::DaAmpm,
            Fusion::SppBop,
            Fusion::SppDaAmpm,
        ]
    }

    /// The filtered columns (everything but the baseline).
    pub fn filtered() -> [Fusion; 5] {
        [Fusion::Spp, Fusion::Bop, Fusion::DaAmpm, Fusion::SppBop, Fusion::SppDaAmpm]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Fusion::Baseline => "no-pf",
            Fusion::Spp => "PPF(SPP)",
            Fusion::Bop => "PPF(BOP)",
            Fusion::DaAmpm => "PPF(AMPM)",
            Fusion::SppBop => "PPF(SPP+BOP)",
            Fusion::SppDaAmpm => "PPF(SPP+AMPM)",
        }
    }

    /// The fused member sources, in [`SourceId`](ppf_prefetchers::SourceId)
    /// order; empty for the baseline.
    pub fn members(self) -> Vec<Box<dyn LookaheadSource>> {
        match self {
            Fusion::Baseline => vec![],
            Fusion::Spp => vec![Box::new(Spp::default())],
            Fusion::Bop => vec![Box::new(Bop::default())],
            Fusion::DaAmpm => vec![Box::new(DaAmpm::default())],
            Fusion::SppBop => vec![Box::new(Spp::default()), Box::new(Bop::default())],
            Fusion::SppDaAmpm => {
                vec![Box::new(Spp::default()), Box::new(DaAmpm::default())]
            }
        }
    }

    /// Member display names (matches `members()` order).
    pub fn member_names(self) -> Vec<&'static str> {
        Hybrid::new(self.members()).member_names()
    }

    /// Whether this column fuses more than one scheme (and therefore runs
    /// with the source-id feature table enabled).
    pub fn is_fused(self) -> bool {
        matches!(self, Fusion::SppBop | Fusion::SppDaAmpm)
    }
}

/// One (workload × fusion) cell: IPC plus the per-source attribution
/// counters the run accumulated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusionCell {
    /// Measured IPC.
    pub ipc: f64,
    /// Filter accepts attributed to each member.
    pub accepted: [u64; MAX_SOURCES],
    /// Filter rejects attributed to each member.
    pub rejected: [u64; MAX_SOURCES],
    /// Useful-prefetch events credited to each member.
    pub useful: [u64; MAX_SOURCES],
    /// Useful events whose issuer the tracking table had already evicted.
    pub unattributed: u64,
}

impl FusionCell {
    /// Flattens to the sweep checkpoint payload (`Vec<f64>`): IPC, then
    /// the three per-source arrays, then the unattributed count.
    pub fn to_checkpoint(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(2 + 3 * MAX_SOURCES);
        v.push(self.ipc);
        v.extend(self.accepted.iter().map(|&x| x as f64));
        v.extend(self.rejected.iter().map(|&x| x as f64));
        v.extend(self.useful.iter().map(|&x| x as f64));
        v.push(self.unattributed as f64);
        v
    }

    /// Inverse of [`Self::to_checkpoint`]. Returns `None` on a payload of
    /// the wrong arity (a checkpoint written by an incompatible build).
    pub fn from_checkpoint(v: &[f64]) -> Option<Self> {
        if v.len() != 2 + 3 * MAX_SOURCES {
            return None;
        }
        let arr = |at: usize| {
            let mut a = [0u64; MAX_SOURCES];
            for (dst, &x) in a.iter_mut().zip(&v[at..at + MAX_SOURCES]) {
                *dst = x as u64;
            }
            a
        };
        Some(Self {
            ipc: v[0],
            accepted: arr(1),
            rejected: arr(1 + MAX_SOURCES),
            useful: arr(1 + 2 * MAX_SOURCES),
            unattributed: v[1 + 3 * MAX_SOURCES] as u64,
        })
    }
}

/// Runs one (workload × fusion) cell on a single-core system.
///
/// Fused columns filter with [`PpfConfig::hybrid`] (the paper's nine
/// features plus the source-id table); single-member columns keep the
/// default nine so they measure each scheme exactly as the main figures
/// would filter it.
pub fn run_fusion(workload: &Workload, fusion: Fusion, scale: RunScale) -> FusionCell {
    let trace = Box::new(TraceBuilder::new(workload.clone()).seed(42).build());
    let mut sim = Simulation::new(SystemConfig::single_core());
    let members = fusion.members();
    if members.is_empty() {
        sim.add_core(workload.name(), trace, Box::new(NoPrefetcher));
        let report = sim.run(scale.warmup, scale.measure);
        return FusionCell {
            ipc: report.cores[0].ipc(),
            accepted: [0; MAX_SOURCES],
            rejected: [0; MAX_SOURCES],
            useful: [0; MAX_SOURCES],
            unattributed: 0,
        };
    }
    let cfg = if fusion.is_fused() { PpfConfig::hybrid() } else { PpfConfig::default() };
    let ppf = Ppf::with_config(Hybrid::new(members), cfg);
    let (wrapper, handle) = Shared::new(ppf);
    sim.add_core(workload.name(), trace, Box::new(wrapper));
    let report = sim.run(scale.warmup, scale.measure);
    let ppf = handle.borrow();
    let fs = ppf.filter_stats();
    FusionCell {
        ipc: report.cores[0].ipc(),
        accepted: fs.accepted_by_source,
        rejected: fs.rejected_by_source,
        useful: ppf.stats.useful_by_source,
        unattributed: ppf.stats.unattributed_useful,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunScale {
        RunScale { warmup: 5_000, measure: 30_000, mixes: 1 }
    }

    #[test]
    fn checkpoint_round_trips() {
        let mut cell = FusionCell {
            ipc: 1.25,
            accepted: [0; MAX_SOURCES],
            rejected: [0; MAX_SOURCES],
            useful: [0; MAX_SOURCES],
            unattributed: 3,
        };
        cell.accepted[0] = 10;
        cell.accepted[1] = 7;
        cell.rejected[1] = 4;
        cell.useful[0] = 6;
        let v = cell.to_checkpoint();
        assert_eq!(FusionCell::from_checkpoint(&v), Some(cell));
        assert_eq!(FusionCell::from_checkpoint(&v[1..]), None, "wrong arity must not decode");
    }

    #[test]
    fn fused_run_attributes_both_members() {
        let w = Workload::by_name("603.bwaves_s").unwrap();
        let cell = run_fusion(&w, Fusion::SppBop, tiny());
        let decided: u64 = cell.accepted.iter().chain(&cell.rejected).sum();
        assert!(decided > 0, "fused run must judge candidates");
        let spp = cell.accepted[0] + cell.rejected[0];
        let bop = cell.accepted[1] + cell.rejected[1];
        assert!(spp > 0, "SPP member saw no decisions");
        assert!(bop > 0, "BOP member saw no decisions");
        // Only two members exist, so nothing may land beyond slot 1.
        let tail: u64 = cell.accepted[2..].iter().chain(&cell.rejected[2..]).sum();
        assert_eq!(tail, 0, "phantom source beyond the member count");
    }

    #[test]
    fn single_member_run_keeps_everything_in_slot_zero() {
        let w = Workload::by_name("603.bwaves_s").unwrap();
        let cell = run_fusion(&w, Fusion::Spp, tiny());
        assert!(cell.accepted[0] + cell.rejected[0] > 0);
        let tail: u64 = cell.accepted[1..].iter().chain(&cell.rejected[1..]).sum();
        assert_eq!(tail, 0);
    }

    #[test]
    fn member_names_match_member_order() {
        assert_eq!(Fusion::SppBop.member_names(), vec!["spp-unthrottled", "bop-unthrottled"]);
        assert_eq!(
            Fusion::SppDaAmpm.member_names(),
            vec!["spp-unthrottled", "da-ampm-unthrottled"]
        );
        for f in Fusion::filtered() {
            assert!(!f.label().is_empty());
            assert!(!f.members().is_empty());
        }
    }
}
