//! Checkpointed, resumable experiment sweeps.
//!
//! [`Sweep`] is the driver every `fig*`/`ablation*` binary runs its job grid
//! through. It layers three things on top of the fault-isolating
//! [`runner`](crate::runner):
//!
//! 1. **Incremental checkpoints.** Each completed job appends one JSONL
//!    record to `results/checkpoints/<experiment>.jsonl` (override the
//!    directory with `PPF_CHECKPOINT_DIR`). Records are schema-versioned
//!    (`"v":1`) like the throughput log and keyed by the job label, e.g.
//!    `619.lbm_s/PPF` or `isolated/470.lbm`.
//! 2. **`--resume`.** A rerun with `--resume` loads the checkpoint file,
//!    skips every job whose key decodes cleanly, and re-runs the rest. All
//!    numeric payloads round-trip through `f64::to_bits` hex, so a resumed
//!    sweep's final output is byte-identical to an uninterrupted run.
//! 3. **Fault injection.** `PPF_FAULT_INJECT=panic:<substr>` (or
//!    `hang:<substr>`) sabotages the first pending job whose label contains
//!    the substring — the test hook behind `scripts/verify.sh --faults`.
//!
//! Failed jobs are *not* checkpointed, so `--resume` retries them. The
//! sweep summary ([`SweepOutcome::report`]) goes to stderr; experiment
//! stdout stays byte-identical to the pre-checkpoint harness on clean runs.

use crate::ckpt;
use crate::fault::FaultSpec;
use crate::runner::{self, lock_unpoisoned, BoxedJob, JobError, Outcome};
use ppf_sim::{CacheStats, CoreReport, DramStats, PrefetchStats, SimReport};
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Checkpoint record schema version (bump on incompatible format changes;
/// old-version records are ignored on resume, so the jobs simply re-run).
/// v2 added the CRC seal ([`ckpt::seal`]) on every record.
pub const CHECKPOINT_SCHEMA_VERSION: u32 = 2;

/// A value that can round-trip through a checkpoint record.
///
/// Encodings must be *bit-exact* (floats go through [`f64::to_bits`]) and
/// must not contain `"` or `\` — the record line is spliced as a JSON
/// string without an escaper.
pub trait Checkpoint: Sized {
    /// Serializes the value into a checkpoint payload.
    fn encode(&self) -> String;
    /// Parses a payload back; `None` means "corrupt, re-run the job".
    fn decode(s: &str) -> Option<Self>;
}

fn enc_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn dec_f64(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

impl Checkpoint for f64 {
    fn encode(&self) -> String {
        enc_f64(*self)
    }

    fn decode(s: &str) -> Option<Self> {
        dec_f64(s)
    }
}

impl Checkpoint for Vec<f64> {
    fn encode(&self) -> String {
        self.iter().map(|v| enc_f64(*v)).collect::<Vec<_>>().join(",")
    }

    fn decode(s: &str) -> Option<Self> {
        if s.is_empty() {
            return Some(Vec::new());
        }
        s.split(',').map(dec_f64).collect()
    }
}

fn dec_u64s<const N: usize>(s: &str) -> Option<[u64; N]> {
    let mut out = [0u64; N];
    let mut parts = s.split(',');
    for slot in &mut out {
        *slot = parts.next()?.parse().ok()?;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(out)
}

impl Checkpoint for CacheStats {
    fn encode(&self) -> String {
        format!(
            "{},{},{},{},{},{}",
            self.demand_accesses,
            self.demand_hits,
            self.demand_fills,
            self.prefetch_fills,
            self.useful_prefetches,
            self.useless_prefetches
        )
    }

    fn decode(s: &str) -> Option<Self> {
        let [a, h, df, pf, us, ul] = dec_u64s::<6>(s)?;
        Some(CacheStats {
            demand_accesses: a,
            demand_hits: h,
            demand_fills: df,
            prefetch_fills: pf,
            useful_prefetches: us,
            useless_prefetches: ul,
        })
    }
}

impl Checkpoint for PrefetchStats {
    fn encode(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{}",
            self.emitted,
            self.issued,
            self.dropped_redundant,
            self.dropped_mshr,
            self.dropped_queue,
            self.useful,
            self.late,
            self.late_wait_cycles
        )
    }

    fn decode(s: &str) -> Option<Self> {
        let [e, i, dr, dm, dq, u, l, lw] = dec_u64s::<8>(s)?;
        Some(PrefetchStats {
            emitted: e,
            issued: i,
            dropped_redundant: dr,
            dropped_mshr: dm,
            dropped_queue: dq,
            useful: u,
            late: l,
            late_wait_cycles: lw,
        })
    }
}

impl Checkpoint for DramStats {
    fn encode(&self) -> String {
        format!(
            "{},{},{},{},{}",
            self.reads, self.writes, self.row_hits, self.row_misses, self.bus_busy_cycles
        )
    }

    fn decode(s: &str) -> Option<Self> {
        let [r, w, rh, rm, bb] = dec_u64s::<5>(s)?;
        Some(DramStats {
            reads: r,
            writes: w,
            row_hits: rh,
            row_misses: rm,
            bus_busy_cycles: bb,
        })
    }
}

impl Checkpoint for CoreReport {
    fn encode(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}|{}|{}|{}|{}",
            self.workload,
            self.instructions,
            self.cycles,
            self.l1d.encode(),
            self.l2.encode(),
            self.prefetch.encode(),
            self.load_miss_waits,
            self.load_miss_wait_cycles,
            self.ipc_samples.encode()
        )
    }

    fn decode(s: &str) -> Option<Self> {
        let mut p = s.split('|');
        let report = CoreReport {
            workload: p.next()?.to_string(),
            instructions: p.next()?.parse().ok()?,
            cycles: p.next()?.parse().ok()?,
            l1d: CacheStats::decode(p.next()?)?,
            l2: CacheStats::decode(p.next()?)?,
            prefetch: PrefetchStats::decode(p.next()?)?,
            load_miss_waits: p.next()?.parse().ok()?,
            load_miss_wait_cycles: p.next()?.parse().ok()?,
            ipc_samples: Vec::<f64>::decode(p.next()?)?,
        };
        if p.next().is_some() {
            return None;
        }
        Some(report)
    }
}

impl Checkpoint for SimReport {
    fn encode(&self) -> String {
        format!(
            "{}~{}~{}~{}",
            self.total_cycles,
            self.llc.encode(),
            self.dram.encode(),
            self.cores.iter().map(Checkpoint::encode).collect::<Vec<_>>().join("^")
        )
    }

    fn decode(s: &str) -> Option<Self> {
        let mut p = s.splitn(4, '~');
        let total_cycles = p.next()?.parse().ok()?;
        let llc = CacheStats::decode(p.next()?)?;
        let dram = DramStats::decode(p.next()?)?;
        let cores_field = p.next()?;
        let cores = if cores_field.is_empty() {
            Vec::new()
        } else {
            cores_field.split('^').map(CoreReport::decode).collect::<Option<Vec<_>>>()?
        };
        Some(SimReport { cores, llc, dram, total_cycles })
    }
}

/// Extracts a `"name":"value"` string field from a checkpoint line.
/// Payloads never contain `"`, so scanning to the next quote is exact.
fn json_str_field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\":\"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

fn format_record(experiment: &str, key: &str, wall: Duration, data: &str) -> String {
    debug_assert!(!experiment.contains(['"', '\\']) && !key.contains(['"', '\\']));
    let body = format!(
        "{{\"v\":{CHECKPOINT_SCHEMA_VERSION},\"experiment\":\"{experiment}\",\"key\":\"{key}\",\"wall_ms\":{},\"data\":\"{data}\"}}",
        wall.as_millis()
    );
    let mut line = ckpt::seal(&body);
    line.push('\n');
    line
}

/// A checkpointed, fault-isolated experiment sweep.
///
/// Construct one per experiment with [`Sweep::from_args`] (flags:
/// `--threads`, `--job-timeout`, `--resume`; env: `PPF_THREADS`,
/// `PPF_JOB_TIMEOUT`, `PPF_CHECKPOINT_DIR`, `PPF_FAULT_INJECT`) and push
/// each labelled job grid through [`Sweep::run`]. Experiments with several
/// grids (e.g. isolated IPCs then the mix grid) call `run` repeatedly on
/// the same `Sweep`; the checkpoint file is truncated once per process and
/// appended to afterwards.
#[derive(Debug)]
pub struct Sweep {
    experiment: String,
    threads: usize,
    timeout: Option<Duration>,
    resume: bool,
    dir: PathBuf,
    opened: AtomicBool,
    faults: Vec<FaultSpec>,
}

/// One job's bookkeeping inside [`Sweep::run`].
enum Slot<T> {
    /// Restored from a checkpoint record.
    Done(String, T),
    /// Must run this time.
    Pending(String),
}

impl Sweep {
    /// Builds a sweep from CLI flags and the environment (the normal
    /// entry point for experiment binaries).
    ///
    /// A malformed `PPF_FAULT_INJECT` spec exits with code 2 here, like a
    /// malformed `--threads` — a drill that would silently inject nothing
    /// is a configuration error, not a degraded run.
    pub fn from_args(experiment: &str) -> Self {
        let dir = std::env::var("PPF_CHECKPOINT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results/checkpoints"));
        let mut sweep = Self::new(
            experiment,
            runner::thread_count(),
            runner::job_timeout(),
            std::env::args().any(|a| a == "--resume"),
            dir,
        );
        sweep.faults = crate::fault::specs_from_env_or_exit();
        sweep
    }

    /// A sweep writing checkpoints under a unique temp directory, never
    /// resuming — for tests and throwaway runs that must not touch
    /// `results/checkpoints`.
    pub fn ephemeral(experiment: &str, threads: usize) -> Self {
        let dir = std::env::temp_dir()
            .join(format!("ppf_sweep_{experiment}_{}", std::process::id()));
        Self::new(experiment, threads, None, false, dir)
    }

    /// Fully explicit constructor (tests, embedding). Fault specs still
    /// come from `PPF_FAULT_INJECT`; in this library path a malformed spec
    /// is reported and ignored rather than fatal.
    pub fn new(
        experiment: &str,
        threads: usize,
        timeout: Option<Duration>,
        resume: bool,
        dir: impl Into<PathBuf>,
    ) -> Self {
        let faults = crate::fault::specs_from_env().unwrap_or_else(|msg| {
            eprintln!("warning: {msg}; ignoring fault injection");
            Vec::new()
        });
        Self {
            experiment: experiment.to_string(),
            threads,
            timeout,
            resume,
            dir: dir.into(),
            opened: AtomicBool::new(false),
            faults,
        }
    }

    /// The experiment label used in checkpoint records.
    pub fn experiment(&self) -> &str {
        &self.experiment
    }

    /// Whether `--resume` was requested.
    pub fn resuming(&self) -> bool {
        self.resume
    }

    /// Worker-thread count for this sweep.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Where this experiment's checkpoint records live.
    pub fn checkpoint_path(&self) -> PathBuf {
        self.dir.join(format!("{}.jsonl", self.experiment))
    }

    /// Loads `key -> payload` for this experiment from the checkpoint file
    /// (last record per key wins; foreign or unparsable lines are skipped).
    ///
    /// Crash artifacts are tolerated, never fatal: a torn final line (the
    /// process died mid-append) and records failing their CRC seal are
    /// logged and dropped, so only the affected jobs re-run.
    fn load_completed(&self) -> std::collections::HashMap<String, String> {
        let mut done = std::collections::HashMap::new();
        let path = self.checkpoint_path();
        let load = match ckpt::load_tolerant(&path) {
            Ok(load) => load,
            Err(e) => {
                eprintln!(
                    "warning: cannot read checkpoint file {}: {e}; all jobs will re-run",
                    path.display()
                );
                return done;
            }
        };
        if load.torn_tail {
            eprintln!(
                "[sweep] {}: dropping torn trailing checkpoint record (crash mid-append); \
                 the affected job will re-run",
                self.experiment
            );
        }
        if load.dropped_crc > 0 {
            eprintln!(
                "[sweep] {}: dropping {} checkpoint record(s) failing their CRC seal; \
                 the affected jobs will re-run",
                self.experiment, load.dropped_crc
            );
        }
        let version_tag = format!("\"v\":{CHECKPOINT_SCHEMA_VERSION},");
        for line in &load.lines {
            if !line.contains(&version_tag) {
                continue;
            }
            if json_str_field(line, "experiment") != Some(&self.experiment) {
                continue;
            }
            let (Some(key), Some(data)) =
                (json_str_field(line, "key"), json_str_field(line, "data"))
            else {
                continue;
            };
            done.insert(key.to_string(), data.to_string());
        }
        done
    }

    /// Opens the checkpoint file for this run: truncate on the first
    /// non-resume `run` of the process, append afterwards. Returns `None`
    /// (with a warning) if the file can't be opened — the sweep still runs,
    /// it just isn't resumable.
    fn open_sink(&self) -> Option<File> {
        if let Err(e) = fs::create_dir_all(&self.dir) {
            eprintln!(
                "warning: cannot create checkpoint dir {}: {e}; sweep will not be resumable",
                self.dir.display()
            );
            return None;
        }
        let path = self.checkpoint_path();
        let fresh = !self.resume && !self.opened.swap(true, Ordering::SeqCst);
        let opened = if fresh {
            File::create(&path)
        } else {
            OpenOptions::new().create(true).append(true).open(&path)
        };
        match opened {
            Ok(f) => Some(f),
            Err(e) => {
                eprintln!(
                    "warning: cannot open checkpoint file {}: {e}; sweep will not be resumable",
                    path.display()
                );
                None
            }
        }
    }

    /// Applies the sweep-relevant `PPF_FAULT_INJECT` specs: each `panic:` /
    /// `hang:` directive sabotages the first pending job whose label
    /// contains its pattern. Serving-side fault kinds are ignored here.
    fn inject_fault<T: Send + 'static>(&self, pending: &mut [(String, BoxedJob<T>)]) {
        for spec in &self.faults {
            let (pat, hang) = match spec {
                FaultSpec::JobPanic(pat) => (pat, false),
                FaultSpec::JobHang(pat) => (pat, true),
                _ => continue,
            };
            let Some((label, job)) = pending.iter_mut().find(|(l, _)| l.contains(pat.as_str()))
            else {
                continue;
            };
            let l = label.clone();
            *job = if hang {
                Box::new(move || loop {
                    std::thread::sleep(Duration::from_secs(3600));
                })
            } else {
                Box::new(move || panic!("injected fault (PPF_FAULT_INJECT) in {l}"))
            };
        }
    }

    /// Runs a labelled job grid: resumes completed jobs from checkpoints,
    /// executes the rest with panic isolation (and the watchdog when a
    /// `--job-timeout` is set), and checkpoints each success as it lands.
    /// Results come back in input order.
    pub fn run<T: Checkpoint + Send + 'static>(
        &self,
        jobs: Vec<(String, BoxedJob<T>)>,
    ) -> SweepOutcome<T> {
        let completed = if self.resume { self.load_completed() } else { Default::default() };
        let mut slots: Vec<Slot<T>> = Vec::with_capacity(jobs.len());
        let mut pending: Vec<(String, BoxedJob<T>)> = Vec::new();
        for (label, job) in jobs {
            match completed.get(&label).and_then(|d| T::decode(d)) {
                Some(value) => slots.push(Slot::Done(label, value)),
                None => {
                    slots.push(Slot::Pending(label.clone()));
                    pending.push((label, job));
                }
            }
        }
        let resumed = slots.len() - pending.len();
        self.inject_fault(&mut pending);

        let sink = self.open_sink().map(Mutex::new);
        let warned = AtomicBool::new(false);
        let hook = |_i: usize, label: &str, wall: Duration, outcome: &Outcome<T>| {
            let (Ok(value), Some(sink)) = (outcome, &sink) else { return };
            let line = format_record(&self.experiment, label, wall, &value.encode());
            let mut f = lock_unpoisoned(sink);
            let wrote = f.write_all(line.as_bytes()).and_then(|()| f.flush());
            if wrote.is_err() && !warned.swap(true, Ordering::SeqCst) {
                eprintln!(
                    "warning: failed to append checkpoint record for {label}; resume may re-run jobs"
                );
            }
        };
        let mut ran = runner::run_watched(pending, self.threads, self.timeout, &hook).into_iter();

        let results = slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Done(label, value) => (label, Ok(value)),
                Slot::Pending(label) => {
                    (label, ran.next().expect("one outcome per pending job"))
                }
            })
            .collect();
        SweepOutcome { experiment: self.experiment.clone(), results, resumed }
    }
}

/// The outcome of one [`Sweep::run`] grid, in input job order.
#[derive(Debug)]
pub struct SweepOutcome<T> {
    /// Experiment label (for the summary line).
    pub experiment: String,
    /// `(job label, outcome)` per job, in input order.
    pub results: Vec<(String, Outcome<T>)>,
    /// Jobs skipped because a checkpoint record already covered them.
    pub resumed: usize,
}

impl<T> SweepOutcome<T> {
    /// Failed jobs, in job order.
    pub fn failures(&self) -> impl Iterator<Item = &JobError> {
        self.results.iter().filter_map(|(_, r)| r.as_ref().err())
    }

    /// Number of successful jobs.
    pub fn ok_count(&self) -> usize {
        self.results.iter().filter(|(_, r)| r.is_ok()).count()
    }

    /// Prints the sweep summary (and each failure, labelled) to stderr.
    pub fn report(&self) {
        let failed = self.results.len() - self.ok_count();
        eprintln!(
            "[sweep] {}: {} ok, {} failed, {} resumed",
            self.experiment,
            self.ok_count(),
            failed,
            self.resumed
        );
        for e in self.failures() {
            eprintln!("[sweep] FAILED {e}");
        }
    }

    /// Drops labels, keeping outcomes in job order.
    pub fn into_outcomes(self) -> Vec<Outcome<T>> {
        self.results.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ppf_sweep_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn boxed<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> BoxedJob<T> {
        Box::new(f)
    }

    #[test]
    fn f64_roundtrip_is_bit_exact() {
        for v in [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE, 1.0 / 3.0] {
            let back = f64::decode(&v.encode()).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
        assert!(f64::decode("not hex").is_none());
    }

    #[test]
    fn vec_f64_roundtrip() {
        let v = vec![1.0, -2.5, 1.0 / 3.0];
        assert_eq!(Vec::<f64>::decode(&v.encode()).unwrap(), v);
        assert_eq!(Vec::<f64>::decode("").unwrap(), Vec::<f64>::new());
        assert!(Vec::<f64>::decode("zz").is_none());
    }

    fn sample_report() -> SimReport {
        SimReport {
            cores: vec![CoreReport {
                workload: "619.lbm_s".into(),
                instructions: 1_000_000,
                cycles: 612_345,
                l1d: CacheStats { demand_accesses: 9, demand_hits: 5, ..Default::default() },
                l2: CacheStats { demand_fills: 3, prefetch_fills: 2, ..Default::default() },
                prefetch: PrefetchStats { emitted: 7, issued: 6, useful: 4, ..Default::default() },
                load_miss_waits: 11,
                load_miss_wait_cycles: 220,
                ipc_samples: vec![1.25, 0.75],
            }],
            llc: CacheStats { demand_accesses: 100, demand_hits: 40, ..Default::default() },
            dram: DramStats { reads: 50, writes: 10, row_hits: 30, row_misses: 20, bus_busy_cycles: 400 },
            total_cycles: 612_345,
        }
    }

    #[test]
    fn sim_report_roundtrip() {
        let r = sample_report();
        let back = SimReport::decode(&r.encode()).unwrap();
        assert_eq!(back.encode(), r.encode());
        assert_eq!(back.total_cycles, r.total_cycles);
        assert_eq!(back.cores[0].workload, "619.lbm_s");
        assert_eq!(back.cores[0].ipc_samples, r.cores[0].ipc_samples);
        assert_eq!(back.llc, r.llc);
        assert_eq!(back.dram, r.dram);
        // Zero-core reports (defensive) round-trip too.
        let empty = SimReport {
            cores: vec![],
            llc: CacheStats::default(),
            dram: DramStats::default(),
            total_cycles: 0,
        };
        assert!(SimReport::decode(&empty.encode()).unwrap().cores.is_empty());
    }

    #[test]
    fn corrupt_payloads_decode_to_none() {
        assert!(SimReport::decode("garbage").is_none());
        assert!(CacheStats::decode("1,2,3").is_none(), "too few fields");
        assert!(CacheStats::decode("1,2,3,4,5,6,7").is_none(), "too many fields");
        assert!(CoreReport::decode("w|1|2").is_none());
    }

    #[test]
    fn checkpoint_then_resume_skips_done_jobs() {
        let dir = temp_dir("resume");
        let mk_jobs = || {
            vec![
                ("a".to_string(), boxed(|| 1.0f64)),
                ("b".to_string(), boxed(|| 2.0f64)),
                ("c".to_string(), boxed(|| 3.0f64)),
            ]
        };
        let first = Sweep::new("exp", 1, None, false, &dir);
        let out = first.run(mk_jobs());
        assert_eq!(out.resumed, 0);
        assert_eq!(out.ok_count(), 3);

        // Resume: all three restore from checkpoints; jobs that would
        // panic if executed prove they are skipped.
        let resumed = Sweep::new("exp", 1, None, true, &dir);
        let jobs: Vec<(String, BoxedJob<f64>)> = ["a", "b", "c"]
            .iter()
            .map(|l| (l.to_string(), boxed(|| -> f64 { panic!("must not re-run") })))
            .collect();
        let out = resumed.run(jobs);
        assert_eq!(out.resumed, 3);
        let values: Vec<f64> = out.into_outcomes().into_iter().map(Result::unwrap).collect();
        assert_eq!(values, vec![1.0, 2.0, 3.0]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_jobs_are_not_checkpointed() {
        let dir = temp_dir("failures");
        let sweep = Sweep::new("exp", 2, None, false, &dir);
        let jobs: Vec<(String, BoxedJob<f64>)> = vec![
            ("good".into(), boxed(|| 4.0)),
            ("bad".into(), boxed(|| panic!("down"))),
        ];
        let out = sweep.run(jobs);
        assert_eq!(out.ok_count(), 1);
        assert_eq!(out.failures().count(), 1);
        let text = fs::read_to_string(sweep.checkpoint_path()).unwrap();
        assert!(text.contains("\"key\":\"good\""));
        assert!(!text.contains("\"key\":\"bad\""));
        // Resume re-runs only the failed job.
        let again = Sweep::new("exp", 1, None, true, &dir);
        let jobs: Vec<(String, BoxedJob<f64>)> = vec![
            ("good".into(), boxed(|| -> f64 { panic!("must not re-run") })),
            ("bad".into(), boxed(|| 5.0)),
        ];
        let out = again.run(jobs);
        assert_eq!(out.resumed, 1);
        let values: Vec<f64> = out.into_outcomes().into_iter().map(Result::unwrap).collect();
        assert_eq!(values, vec![4.0, 5.0]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_tolerates_torn_final_line() {
        // A crash mid-append leaves the last record truncated with no
        // newline. Resume must drop exactly that record and re-run only its
        // job — never fail the whole resume.
        let dir = temp_dir("torn");
        let first = Sweep::new("exp", 1, None, false, &dir);
        let out = first.run(vec![
            ("a".to_string(), boxed(|| 1.0f64)),
            ("b".to_string(), boxed(|| 2.0f64)),
        ]);
        assert_eq!(out.ok_count(), 2);
        // Truncate the file mid-way through the final record.
        let path = first.checkpoint_path();
        let text = fs::read_to_string(&path).unwrap();
        let cut = text.trim_end().len() - 7;
        fs::write(&path, &text[..cut]).unwrap();

        let resumed = Sweep::new("exp", 1, None, true, &dir);
        let out = resumed.run(vec![
            ("a".to_string(), boxed(|| -> f64 { panic!("a must resume") })),
            ("b".to_string(), boxed(|| 20.0f64)),
        ]);
        assert_eq!(out.resumed, 1, "intact record resumes, torn one re-runs");
        let values: Vec<f64> = out.into_outcomes().into_iter().map(Result::unwrap).collect();
        assert_eq!(values, vec![1.0, 20.0]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_drops_record_failing_its_crc_seal() {
        let dir = temp_dir("bitflip");
        let first = Sweep::new("exp", 1, None, false, &dir);
        let out = first.run(vec![
            ("a".to_string(), boxed(|| 1.0f64)),
            ("b".to_string(), boxed(|| 2.0f64)),
        ]);
        assert_eq!(out.ok_count(), 2);
        // Flip one payload bit in record "a" (2.0 and 1.0 encode to hex
        // payloads differing in the exponent byte; corrupt a data nibble).
        let path = first.checkpoint_path();
        let text = fs::read_to_string(&path).unwrap();
        let corrupt = text.replacen(&1.0f64.encode(), &3.0f64.encode(), 1);
        assert_ne!(corrupt, text, "the first record must contain its payload");
        fs::write(&path, corrupt).unwrap();

        let resumed = Sweep::new("exp", 1, None, true, &dir);
        let out = resumed.run(vec![
            ("a".to_string(), boxed(|| 10.0f64)),
            ("b".to_string(), boxed(|| -> f64 { panic!("b must resume") })),
        ]);
        assert_eq!(out.resumed, 1, "sealed record resumes, corrupted one re-runs");
        let values: Vec<f64> = out.into_outcomes().into_iter().map(Result::unwrap).collect();
        assert_eq!(values, vec![10.0, 2.0]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_experiment_records_are_ignored() {
        let dir = temp_dir("foreign");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("exp.jsonl");
        // A record from another experiment and one corrupt line.
        fs::write(
            &path,
            format!(
                "{}not json at all\n",
                format_record("other", "a", Duration::from_millis(1), &7.0f64.encode())
            ),
        )
        .unwrap();
        let sweep = Sweep::new("exp", 1, None, true, &dir);
        let out = sweep.run(vec![("a".to_string(), boxed(|| 1.0f64))]);
        assert_eq!(out.resumed, 0, "foreign record must not satisfy this experiment");
        assert_eq!(*out.results[0].1.as_ref().unwrap(), 1.0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn last_record_per_key_wins() {
        let dir = temp_dir("lastwins");
        fs::create_dir_all(&dir).unwrap();
        let mut text = format_record("exp", "a", Duration::from_millis(1), &1.0f64.encode());
        text.push_str(&format_record("exp", "a", Duration::from_millis(1), &9.0f64.encode()));
        fs::write(dir.join("exp.jsonl"), text).unwrap();
        let sweep = Sweep::new("exp", 1, None, true, &dir);
        let out = sweep.run(vec![("a".to_string(), boxed(|| -> f64 { panic!("skip") }))]);
        assert_eq!(*out.results[0].1.as_ref().unwrap(), 9.0);
        let _ = fs::remove_dir_all(&dir);
    }
}
