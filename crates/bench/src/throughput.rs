//! Machine-readable throughput records for the experiment binaries.
//!
//! Every figure/ablation run appends one JSON object to
//! `results/bench_throughput.json` (a JSON array), recording how many
//! simulated instructions the sweep covered and how long it took on the
//! host. The file is the repository's performance baseline: compare
//! `instr_per_second` across commits to spot simulator regressions, and
//! across `threads` values to see harness scaling.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Default location of the throughput log, relative to the working
/// directory (the repository root for `cargo run` invocations).
pub const THROUGHPUT_LOG: &str = "results/bench_throughput.json";

/// Version of the record layout. Bumped when fields are added so tooling
/// (`bench_compare`) can tell old records apart; absent in pre-v2 records.
/// v3 added `cpu`, so cross-host record pairs can be flagged as not
/// like-for-like. v4 added `skip_ratio`: the fraction of simulated cycles
/// the event-horizon scheduler jumped instead of executing (0 under
/// `PPF_NO_SKIP=1`), so a throughput change can be attributed to (or
/// decoupled from) cycle skipping.
pub const SCHEMA_VERSION: u32 = 4;

/// Git revision of the working tree, for record provenance.
///
/// Honors `PPF_GIT_REV` if set (CI can inject the exact rev without a git
/// checkout), then falls back to `git rev-parse --short HEAD`, then to
/// `"unknown"` — throughput logging must never fail the experiment.
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("PPF_GIT_REV") {
        let rev = rev.trim().to_string();
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// CPU model string of the host, for like-for-like comparisons: records
/// measured on different hardware (shared runners, migrated containers)
/// must not gate regressions against each other.
///
/// Reads `model name` from `/proc/cpuinfo`; degrades to `"unknown"` where
/// that is unavailable — throughput logging must never fail the experiment.
pub fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .filter(|m| !m.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// One appended measurement.
#[derive(Debug, Clone)]
pub struct ThroughputRecord {
    /// Experiment name (binary name, e.g. `fig09_single_core`).
    pub experiment: String,
    /// Worker threads the sweep ran with.
    pub threads: usize,
    /// Wall-clock time of the sweep.
    pub wall: Duration,
    /// Nominal simulated instructions across all runs in the sweep
    /// (per-core warmup + measure, summed over cores and runs).
    pub simulated_instructions: u64,
    /// Git revision the measurement was taken at (see [`git_rev`]).
    pub git_rev: String,
    /// Host CPU model the measurement was taken on (see [`cpu_model`]).
    pub cpu: String,
    /// Fraction of simulated cycles skipped by the event-horizon scheduler
    /// across the sweep (`None` when no simulation ran in-process, e.g. a
    /// sweep resumed entirely from checkpoints).
    pub skip_ratio: Option<f64>,
}

impl ThroughputRecord {
    /// Simulated instructions per host second.
    pub fn instr_per_second(&self) -> f64 {
        self.simulated_instructions as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn to_json(&self) -> String {
        let unix_time = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        let skip = self
            .skip_ratio
            .map_or(String::new(), |r| format!("\"skip_ratio\":{r:.4},"));
        format!(
            "{{\"schema_version\":{},\"experiment\":\"{}\",\"git_rev\":\"{}\",\"cpu\":\"{}\",\"threads\":{},\"wall_seconds\":{:.3},\"simulated_instructions\":{},\"instr_per_second\":{:.0},{}\"unix_time\":{}}}",
            SCHEMA_VERSION,
            self.experiment.replace('"', ""),
            self.git_rev.replace('"', ""),
            self.cpu.replace('"', ""),
            self.threads,
            self.wall.as_secs_f64(),
            self.simulated_instructions,
            self.instr_per_second(),
            skip,
            unix_time,
        )
    }
}

/// Appends `record` to the JSON array at `path`, creating the file (and its
/// parent directory) if needed. The array is maintained textually — the
/// existing content is kept verbatim and the new object is spliced before
/// the closing bracket — so no JSON parser is required.
pub fn append_record(path: &Path, record: &ThroughputRecord) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let entry = record.to_json();
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            match trimmed.strip_suffix(']') {
                Some(head) => {
                    let head = head.trim_end();
                    if head.ends_with('[') {
                        format!("{head}\n  {entry}\n]\n")
                    } else {
                        format!("{head},\n  {entry}\n]\n")
                    }
                }
                // Unrecognized content: preserve it and start a fresh array.
                None => format!("{trimmed}\n[\n  {entry}\n]\n"),
            }
        }
        Err(_) => format!("[\n  {entry}\n]\n"),
    };
    let mut f = std::fs::File::create(path)?;
    f.write_all(body.as_bytes())
}

/// Best-effort convenience used by the experiment binaries: appends to
/// [`THROUGHPUT_LOG`] and prints a one-line summary on stderr. Errors are
/// reported on stderr but never fail the experiment, and nothing is written
/// to stdout (figure output stays byte-stable).
pub fn record_throughput(
    experiment: &str,
    threads: usize,
    wall: Duration,
    simulated_instructions: u64,
) {
    // The sweep's workers all fold into the same process-wide tally, so
    // this is the skip ratio over every simulation the experiment ran.
    let cycles = ppf_sim::horizon::global_stats();
    let skip_ratio = (cycles.total_cycles > 0).then(|| cycles.skip_ratio());
    let rec = ThroughputRecord {
        experiment: experiment.to_string(),
        threads,
        wall,
        simulated_instructions,
        git_rev: git_rev(),
        cpu: cpu_model(),
        skip_ratio,
    };
    eprintln!(
        "[throughput] {}: {} simulated instr in {:.2}s with {} thread(s) = {:.1} M instr/s{}",
        experiment,
        simulated_instructions,
        wall.as_secs_f64(),
        threads,
        rec.instr_per_second() / 1e6,
        skip_ratio.map_or(String::new(), |r| format!(" (skip ratio {r:.2})")),
    );
    if let Err(e) = append_record(PathBuf::from(THROUGHPUT_LOG).as_path(), &rec) {
        eprintln!("[throughput] could not write {THROUGHPUT_LOG}: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ppf-throughput-{}-{name}.json", std::process::id()));
        p
    }

    fn rec(exp: &str) -> ThroughputRecord {
        ThroughputRecord {
            experiment: exp.into(),
            threads: 4,
            wall: Duration::from_millis(1500),
            simulated_instructions: 3_000_000,
            git_rev: "deadbee".into(),
            cpu: "TestCPU 9000".into(),
            skip_ratio: Some(0.8125),
        }
    }

    #[test]
    fn rate_math() {
        assert!((rec("x").instr_per_second() - 2_000_000.0).abs() < 1.0);
    }

    #[test]
    fn append_creates_then_extends_valid_array() {
        let path = tmpfile("append");
        let _ = std::fs::remove_file(&path);
        append_record(&path, &rec("first")).unwrap();
        append_record(&path, &rec("second")).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.trim_start().starts_with('['), "not an array: {s}");
        assert!(s.trim_end().ends_with(']'), "unterminated: {s}");
        assert_eq!(s.matches("\"experiment\"").count(), 2);
        assert_eq!(s.matches("},").count(), 1, "objects must be comma-separated: {s}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_escapes_quotes_in_name() {
        let r = ThroughputRecord { experiment: "a\"b".into(), ..rec("x") };
        assert!(!r.to_json().contains("a\"b"));
    }

    #[test]
    fn json_carries_provenance_fields() {
        let s = rec("x").to_json();
        assert!(s.contains(&format!("\"schema_version\":{SCHEMA_VERSION}")), "{s}");
        assert!(s.contains("\"git_rev\":\"deadbee\""), "{s}");
        assert!(s.contains("\"threads\":4"), "{s}");
        assert!(s.contains("\"cpu\":\"TestCPU 9000\""), "{s}");
        assert!(s.contains("\"skip_ratio\":0.8125"), "{s}");
    }

    #[test]
    fn skip_ratio_is_omitted_when_unknown() {
        let r = ThroughputRecord { skip_ratio: None, ..rec("x") };
        let s = r.to_json();
        assert!(!s.contains("skip_ratio"), "{s}");
        // The record must stay a single well-formed object either way.
        assert!(s.contains(",\"unix_time\":"), "{s}");
    }

    #[test]
    fn cpu_model_never_empty() {
        assert!(!cpu_model().is_empty());
    }

    #[test]
    fn git_rev_never_empty() {
        // In a checkout this is the short HEAD rev; outside one it must
        // still degrade to a usable placeholder rather than failing.
        assert!(!git_rev().is_empty());
    }

    #[test]
    fn append_tolerates_pre_v2_records() {
        let path = tmpfile("legacy");
        std::fs::write(
            &path,
            "[\n  {\"experiment\":\"old\",\"threads\":1,\"wall_seconds\":1.0,\"simulated_instructions\":10,\"instr_per_second\":10,\"unix_time\":0}\n]\n",
        )
        .unwrap();
        append_record(&path, &rec("new")).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert_eq!(s.matches("\"experiment\"").count(), 2, "{s}");
        assert!(s.trim_end().ends_with(']'), "{s}");
        let _ = std::fs::remove_file(&path);
    }
}
