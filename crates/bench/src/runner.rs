//! A dependency-free parallel job runner for experiment sweeps.
//!
//! Experiments are embarrassingly parallel grids of independent simulations
//! (workload × scheme, mix × scheme). Each job is deterministic and owns all
//! of its state, so the only requirement for reproducibility is that results
//! land in the same order as a sequential run. [`run_indexed`] guarantees
//! that: jobs are pulled from a shared queue by `N` scoped worker threads
//! and each result is written to its job's original index, so output is
//! bit-identical to sequential execution regardless of scheduling.

use std::sync::Mutex;

/// Resolves the worker-thread count for experiment sweeps.
///
/// Priority: a `--threads N` command-line flag, then the `PPF_THREADS`
/// environment variable, then [`std::thread::available_parallelism`].
/// Invalid values fall through to the next source; the result is always at
/// least 1.
pub fn thread_count() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            if let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                return n.max(1);
            }
        } else if let Some(v) = a.strip_prefix("--threads=") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
    }
    if let Ok(v) = std::env::var("PPF_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs every job and returns the results in job order.
///
/// With `threads <= 1` (or a single job) the jobs run sequentially on the
/// calling thread — the zero-risk fallback. Otherwise `min(threads, jobs)`
/// scoped workers drain a shared queue; a worker that finishes a long job
/// late still writes its result to the job's own slot, so the returned
/// vector is identical to what the sequential path produces.
///
/// # Panics
///
/// Propagates a panic from any job (the scope joins all workers first).
pub fn run_indexed<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|f| f()).collect();
    }
    let workers = threads.min(jobs.len());
    let n = jobs.len();
    let queue = Mutex::new(jobs.into_iter().enumerate());
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Take the lock only long enough to pop one job.
                let next = queue.lock().expect("queue poisoned").next();
                let Some((i, job)) = next else { break };
                let result = job();
                *slots[i].lock().expect("slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("slot poisoned").expect("every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_job_order() {
        let jobs: Vec<_> = (0..37)
            .map(|i| {
                move || {
                    // Stagger finish times so fast jobs overtake slow ones.
                    if i % 5 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    i * 10
                }
            })
            .collect();
        let got = run_indexed(jobs, 4);
        let want: Vec<i32> = (0..37).map(|i| i * 10).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn sequential_fallback_matches() {
        let mk = || (0..16).map(|i| move || i * i).collect::<Vec<_>>();
        assert_eq!(run_indexed(mk(), 1), run_indexed(mk(), 8));
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<fn() -> u8> = Vec::new();
        assert!(run_indexed(empty, 4).is_empty());
        assert_eq!(run_indexed(vec![|| 7u8], 4), vec![7]);
    }

    #[test]
    fn more_threads_than_jobs() {
        assert_eq!(run_indexed(vec![|| 1, || 2], 64), vec![1, 2]);
    }
}
