//! A dependency-free, fault-tolerant parallel job runner for experiment
//! sweeps.
//!
//! Experiments are embarrassingly parallel grids of independent simulations
//! (workload × scheme, mix × scheme). Each job is deterministic and owns all
//! of its state, so the only requirement for reproducibility is that results
//! land in the same order as a sequential run. [`run_indexed`] guarantees
//! that: jobs are pulled from a shared queue by `N` scoped worker threads
//! and each result is written to its job's original index, so output is
//! bit-identical to sequential execution regardless of scheduling.
//!
//! # Failure model
//!
//! A multi-hour 8-core sweep must not discard every finished result because
//! one job misbehaves, so every job runs inside [`std::panic::catch_unwind`]
//! and the runner returns `Vec<Result<T, JobError>>` in job order: a
//! panicking job yields `Err` in its own slot and every other slot is
//! exactly what a clean run produces. The queue and result slots use
//! poison-recovering locks, so a panic inside one worker can never
//! cascade-poison the shared state of the others.
//!
//! [`run_watched`] additionally arms a per-job watchdog (`--job-timeout N`
//! seconds or `PPF_JOB_TIMEOUT=N`, default off): a job that exceeds the
//! limit is marked [`FailReason::TimedOut`] and the sweep moves on. The hung
//! job's thread is abandoned (Rust cannot kill a thread) and dies with the
//! process — acceptable for a CLI sweep, which is why the watchdog is
//! opt-in. The deadline machinery itself lives in [`crate::watchdog`],
//! shared with the serving daemon's shard supervision.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

pub use crate::watchdog::job_timeout;

/// Locks a mutex, recovering the guard from a poisoned lock.
///
/// Safe here because jobs are `catch_unwind`-isolated: the protected data
/// (a job queue iterator, a write-once result slot) is never left in a
/// half-updated state by a panicking job, so the poison flag carries no
/// information worth dying for.
pub fn lock_unpoisoned<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Why a sweep job failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailReason {
    /// The job panicked; the payload is the panic message.
    Panicked(String),
    /// The job exceeded the watchdog limit and was abandoned.
    TimedOut(Duration),
}

/// A failed sweep job: which job, why, and how long it ran.
#[derive(Debug, Clone)]
pub struct JobError {
    /// The job's label (resume key for sweep-driver jobs, `job N` otherwise).
    pub label: String,
    /// Panic payload or watchdog verdict.
    pub reason: FailReason,
    /// Wall-clock time the job consumed before failing.
    pub wall: Duration,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.reason {
            FailReason::Panicked(msg) => {
                write!(f, "{}: panicked after {:.2}s: {msg}", self.label, self.wall.as_secs_f64())
            }
            FailReason::TimedOut(limit) => write!(
                f,
                "{}: timed out after {:.2}s (job timeout {:.0}s)",
                self.label,
                self.wall.as_secs_f64(),
                limit.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for JobError {}

/// A job's outcome: its result, or a structured failure.
pub type Outcome<T> = Result<T, JobError>;

/// Per-job completion hook `(job index, label, wall time, outcome)`, called
/// from the worker that finished the job (used for incremental
/// checkpointing).
pub type CompleteFn<'a, T> = &'a (dyn Fn(usize, &str, Duration, &Outcome<T>) + Sync);

fn no_complete<T>() -> impl Fn(usize, &str, Duration, &Outcome<T>) + Sync {
    |_, _, _, _| {}
}

/// Resolves the worker-thread count for experiment sweeps.
///
/// Priority: a `--threads N` command-line flag, then the `PPF_THREADS`
/// environment variable, then [`std::thread::available_parallelism`].
///
/// A malformed request — a bare trailing `--threads`, `--threads=0`, a
/// non-numeric value, or an invalid `PPF_THREADS` — is rejected with a clear
/// message on stderr and exit code 2 rather than silently falling through to
/// a default the user did not ask for.
pub fn thread_count() -> usize {
    match resolve_threads(std::env::args().skip(1), std::env::var("PPF_THREADS").ok().as_deref())
    {
        Ok(Some(n)) => n,
        Ok(None) => std::thread::available_parallelism().map_or(1, |n| n.get()),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// Pure core of [`thread_count`]: `Ok(Some(n))` for an explicit request,
/// `Ok(None)` when nothing was specified, `Err` for a malformed request.
fn resolve_threads(
    mut args: impl Iterator<Item = String>,
    env: Option<&str>,
) -> Result<Option<usize>, String> {
    while let Some(a) = args.next() {
        if a == "--threads" {
            let v = args
                .next()
                .ok_or_else(|| "--threads requires a value (e.g. --threads 8)".to_string())?;
            return parse_count(&v, "--threads").map(Some);
        } else if let Some(v) = a.strip_prefix("--threads=") {
            return parse_count(v, "--threads").map(Some);
        }
    }
    match env {
        Some(v) => parse_count(v, "PPF_THREADS").map(Some),
        None => Ok(None),
    }
}

fn parse_count(v: &str, source: &str) -> Result<usize, String> {
    match v.parse::<usize>() {
        Ok(0) => Err(format!("{source} must be at least 1, got 0")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("{source} expects a positive integer, got `{v}`")),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` with panic isolation, converting an unwind into a [`JobError`].
pub(crate) fn guard<T>(label: &str, f: impl FnOnce() -> T) -> Outcome<T> {
    let t0 = Instant::now();
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| JobError {
        label: label.to_string(),
        reason: FailReason::Panicked(panic_message(payload)),
        wall: t0.elapsed(),
    })
}

/// The shared worker loop: each `F` already encapsulates its own isolation
/// (catch_unwind, optionally a watchdog) and must return an [`Outcome`]
/// rather than panic.
fn drive<T, F>(jobs: Vec<(String, F)>, threads: usize, on_complete: CompleteFn<T>) -> Vec<Outcome<T>>
where
    T: Send,
    F: FnOnce(&str) -> Outcome<T> + Send,
{
    let n = jobs.len();
    if threads <= 1 || n <= 1 {
        return jobs
            .into_iter()
            .enumerate()
            .map(|(i, (label, f))| {
                let t0 = Instant::now();
                let result = f(&label);
                on_complete(i, &label, t0.elapsed(), &result);
                result
            })
            .collect();
    }
    let workers = threads.min(n);
    let queue = Mutex::new(jobs.into_iter().enumerate());
    let slots: Vec<Mutex<Option<Outcome<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Take the lock only long enough to pop one job.
                let next = lock_unpoisoned(&queue).next();
                let Some((i, (label, f))) = next else { break };
                let t0 = Instant::now();
                let result = f(&label);
                on_complete(i, &label, t0.elapsed(), &result);
                *lock_unpoisoned(&slots[i]) = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().unwrap_or_else(PoisonError::into_inner).expect("every job ran")
        })
        .collect()
}

/// Runs every job with panic isolation and returns the outcomes in job
/// order.
///
/// With `threads <= 1` (or a single job) the jobs run sequentially on the
/// calling thread — the zero-risk fallback. Otherwise `min(threads, jobs)`
/// scoped workers drain a shared queue; a worker that finishes a long job
/// late still writes its result to the job's own slot, so the returned
/// vector is identical to what the sequential path produces.
///
/// A panicking job becomes `Err(JobError)` in its own slot; all other slots
/// are unaffected. Jobs are labelled `job N` — use [`run_labeled`] to attach
/// meaningful labels.
pub fn run_indexed<T, F>(jobs: Vec<F>, threads: usize) -> Vec<Outcome<T>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let labeled =
        jobs.into_iter().enumerate().map(|(i, f)| (format!("job {i}"), f)).collect();
    run_labeled(labeled, threads)
}

/// [`run_indexed`] with a label per job (carried into each [`JobError`]).
pub fn run_labeled<T, F>(jobs: Vec<(String, F)>, threads: usize) -> Vec<Outcome<T>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let hook = no_complete();
    drive(
        jobs.into_iter().map(|(label, f)| (label, move |l: &str| guard(l, f))).collect(),
        threads,
        &hook,
    )
}

/// A heap-allocated sweep job (the `'static` bound is what lets the
/// watchdog hand the job to an abandonable thread).
pub type BoxedJob<T> = Box<dyn FnOnce() -> T + Send + 'static>;

/// Runs boxed jobs with panic isolation, an optional per-job watchdog, and a
/// per-completion hook — the engine under the sweep driver.
///
/// With `timeout: Some(limit)`, each job runs on its own disposable thread;
/// a job still running after `limit` is reported as
/// [`FailReason::TimedOut`] and its thread abandoned (it dies with the
/// process). With `timeout: None`, jobs run directly on the workers.
pub fn run_watched<T: Send + 'static>(
    jobs: Vec<(String, BoxedJob<T>)>,
    threads: usize,
    timeout: Option<Duration>,
    on_complete: CompleteFn<T>,
) -> Vec<Outcome<T>> {
    match timeout {
        None => drive(
            jobs.into_iter().map(|(label, f)| (label, move |l: &str| guard(l, f))).collect(),
            threads,
            on_complete,
        ),
        Some(limit) => drive(
            jobs.into_iter()
                .map(|(label, f)| {
                    (label, move |l: &str| crate::watchdog::run_with_deadline(l, f, limit))
                })
                .collect(),
            threads,
            on_complete,
        ),
    }
}

/// Unwraps a vector of outcomes where no failure is expected (tests and
/// infallible local sweeps).
///
/// # Panics
///
/// Panics on the first `Err`, with its job label and reason.
pub fn expect_all<T>(outcomes: Vec<Outcome<T>>) -> Vec<T> {
    outcomes
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(e) => panic!("sweep job failed: {e}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_job_order() {
        let jobs: Vec<_> = (0..37)
            .map(|i| {
                move || {
                    // Stagger finish times so fast jobs overtake slow ones.
                    if i % 5 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    i * 10
                }
            })
            .collect();
        let got = expect_all(run_indexed(jobs, 4));
        let want: Vec<i32> = (0..37).map(|i| i * 10).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn sequential_fallback_matches() {
        let mk = || (0..16).map(|i| move || i * i).collect::<Vec<_>>();
        assert_eq!(expect_all(run_indexed(mk(), 1)), expect_all(run_indexed(mk(), 8)));
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<fn() -> u8> = Vec::new();
        assert!(run_indexed(empty, 4).is_empty());
        assert_eq!(expect_all(run_indexed(vec![|| 7u8], 4)), vec![7]);
    }

    #[test]
    fn more_threads_than_jobs() {
        assert_eq!(expect_all(run_indexed(vec![|| 1, || 2], 64)), vec![1, 2]);
    }

    #[test]
    fn panicking_job_is_isolated() {
        for threads in [1, 4] {
            let jobs: Vec<Box<dyn FnOnce() -> i32 + Send>> = (0..12)
                .map(|i| {
                    let f: Box<dyn FnOnce() -> i32 + Send> = if i == 5 {
                        Box::new(|| panic!("boom {}", 5))
                    } else {
                        Box::new(move || i * 2)
                    };
                    f
                })
                .collect();
            let got = run_indexed(jobs, threads);
            assert_eq!(got.len(), 12);
            for (i, r) in got.iter().enumerate() {
                if i == 5 {
                    let e = r.as_ref().expect_err("job 5 panics");
                    assert_eq!(e.label, "job 5");
                    assert_eq!(e.reason, FailReason::Panicked("boom 5".into()));
                } else {
                    assert_eq!(*r.as_ref().expect("other jobs fine"), (i as i32) * 2);
                }
            }
        }
    }

    #[test]
    fn panic_does_not_cascade_poison() {
        // Many panicking jobs interleaved with good ones: every good result
        // must still land, even though workers observe panics constantly.
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..40)
            .map(|i| {
                let f: Box<dyn FnOnce() -> usize + Send> = if i % 3 == 0 {
                    Box::new(move || panic!("injected {i}"))
                } else {
                    Box::new(move || i)
                };
                f
            })
            .collect();
        let got = run_indexed(jobs, 6);
        for (i, r) in got.iter().enumerate() {
            if i % 3 == 0 {
                assert!(r.is_err());
            } else {
                assert_eq!(*r.as_ref().unwrap(), i);
            }
        }
    }

    #[test]
    fn watchdog_times_out_hung_job() {
        let jobs: Vec<(String, BoxedJob<u32>)> = vec![
            ("fast".into(), Box::new(|| 1)),
            (
                "hung".into(),
                Box::new(|| {
                    std::thread::sleep(Duration::from_secs(60));
                    2
                }),
            ),
            ("also-fast".into(), Box::new(|| 3)),
        ];
        let hook = no_complete();
        let got = run_watched(jobs, 2, Some(Duration::from_millis(50)), &hook);
        assert_eq!(*got[0].as_ref().unwrap(), 1);
        let e = got[1].as_ref().expect_err("hung job times out");
        assert_eq!(e.label, "hung");
        assert!(matches!(e.reason, FailReason::TimedOut(_)));
        assert_eq!(*got[2].as_ref().unwrap(), 3);
    }

    #[test]
    fn watchdog_passes_fast_jobs_and_catches_panics() {
        let jobs: Vec<(String, BoxedJob<u32>)> = vec![
            ("ok".into(), Box::new(|| 7)),
            ("bad".into(), Box::new(|| panic!("watched panic"))),
        ];
        let hook = no_complete();
        let got = run_watched(jobs, 2, Some(Duration::from_secs(30)), &hook);
        assert_eq!(*got[0].as_ref().unwrap(), 7);
        let e = got[1].as_ref().expect_err("panic surfaces through watchdog");
        assert_eq!(e.reason, FailReason::Panicked("watched panic".into()));
    }

    #[test]
    fn completion_hook_sees_every_job() {
        let count = AtomicUsize::new(0);
        let hook = |_: usize, _: &str, _: Duration, _: &Outcome<u32>| {
            count.fetch_add(1, Ordering::SeqCst);
        };
        let jobs: Vec<(String, BoxedJob<u32>)> =
            (0..9u32).map(|i| (format!("j{i}"), Box::new(move || i) as BoxedJob<u32>)).collect();
        let got = run_watched(jobs, 3, None, &hook);
        assert_eq!(got.len(), 9);
        assert_eq!(count.load(Ordering::SeqCst), 9);
    }

    fn strings(v: &[&str]) -> impl Iterator<Item = String> + use<> {
        v.iter().map(|s| s.to_string()).collect::<Vec<_>>().into_iter()
    }

    #[test]
    fn thread_arg_parsing() {
        assert_eq!(resolve_threads(strings(&["--threads", "8"]), None), Ok(Some(8)));
        assert_eq!(resolve_threads(strings(&["--threads=3"]), None), Ok(Some(3)));
        assert_eq!(resolve_threads(strings(&["--quick"]), None), Ok(None));
        assert_eq!(resolve_threads(strings(&[]), Some("5")), Ok(Some(5)));
        // Flag beats environment.
        assert_eq!(resolve_threads(strings(&["--threads", "2"]), Some("5")), Ok(Some(2)));
    }

    #[test]
    fn thread_arg_rejects_malformed() {
        assert!(resolve_threads(strings(&["--threads"]), None).is_err(), "bare trailing flag");
        assert!(resolve_threads(strings(&["--threads=0"]), None).is_err(), "zero (eq form)");
        assert!(resolve_threads(strings(&["--threads", "0"]), None).is_err(), "zero");
        assert!(resolve_threads(strings(&["--threads", "lots"]), None).is_err(), "non-numeric");
        assert!(resolve_threads(strings(&["--threads=-2"]), None).is_err(), "negative");
        assert!(resolve_threads(strings(&[]), Some("0")).is_err(), "env zero");
        assert!(resolve_threads(strings(&[]), Some("soon")).is_err(), "env non-numeric");
    }

    #[test]
    fn timeout_arg_parsing() {
        use crate::watchdog::resolve_timeout;
        assert_eq!(
            resolve_timeout(strings(&["--job-timeout", "30"]), None),
            Ok(Some(Duration::from_secs(30)))
        );
        assert_eq!(
            resolve_timeout(strings(&["--job-timeout=0.5"]), None),
            Ok(Some(Duration::from_millis(500)))
        );
        assert_eq!(resolve_timeout(strings(&[]), Some("2")), Ok(Some(Duration::from_secs(2))));
        assert_eq!(resolve_timeout(strings(&[]), None), Ok(None));
        assert!(resolve_timeout(strings(&["--job-timeout"]), None).is_err());
        assert!(resolve_timeout(strings(&["--job-timeout", "0"]), None).is_err());
        assert!(resolve_timeout(strings(&["--job-timeout", "never"]), None).is_err());
    }

    #[test]
    fn job_error_display_names_the_job() {
        let e = JobError {
            label: "619.lbm_s/PPF".into(),
            reason: FailReason::Panicked("index out of bounds".into()),
            wall: Duration::from_millis(1234),
        };
        let s = e.to_string();
        assert!(s.contains("619.lbm_s/PPF"), "{s}");
        assert!(s.contains("index out of bounds"), "{s}");
        let t = JobError {
            label: "mix00/SPP".into(),
            reason: FailReason::TimedOut(Duration::from_secs(30)),
            wall: Duration::from_secs(31),
        };
        assert!(t.to_string().contains("timed out"), "{t}");
    }
}
