//! Experiment harness regenerating every table and figure of
//! *Perceptron-Based Prefetch Filtering* (ISCA 2019).
//!
//! Each `fig*`/`table*`/`sec*` binary in `src/bin/` drives this library to
//! reproduce one artifact of the paper; `cargo bench` runs the Criterion
//! micro-benchmarks. See DESIGN.md §3 for the full experiment index and
//! EXPERIMENTS.md for recorded paper-vs-measured results.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ckpt;
pub mod fault;
pub mod hybrid;
pub mod runner;
pub mod sweep;
pub mod telemetry;
pub mod throughput;
pub mod watchdog;

use ppf::{Ppf, PpfConfig};
use ppf_prefetchers::{Bop, DaAmpm, Hybrid, LookaheadSource, Spp, SppConfig};
use ppf_sim::{
    AccessContext, EvictionInfo, FillLevel, NoPrefetcher, Prefetcher, PrefetchRequest,
    SimReport, Simulation, SystemConfig,
};
use ppf_trace::{TraceBuilder, Workload, WorkloadMix};
use std::cell::RefCell;
use std::rc::Rc;

/// The prefetching schemes the paper evaluates (Sec 5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// No prefetching (the normalization baseline).
    Baseline,
    /// Best-Offset Prefetcher.
    Bop,
    /// DRAM-aware AMPM.
    DaAmpm,
    /// Signature Path Prefetcher with its native throttling.
    Spp,
    /// PPF over an unthrottled SPP (the paper's contribution).
    Ppf,
}

impl Scheme {
    /// All schemes in the paper's presentation order.
    pub fn all() -> [Scheme; 5] {
        [Scheme::Baseline, Scheme::Bop, Scheme::DaAmpm, Scheme::Spp, Scheme::Ppf]
    }

    /// The four prefetchers (without the baseline).
    pub fn prefetchers() -> [Scheme; 4] {
        [Scheme::Bop, Scheme::DaAmpm, Scheme::Spp, Scheme::Ppf]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Baseline => "no-pf",
            Scheme::Bop => "BOP",
            Scheme::DaAmpm => "DA-AMPM",
            Scheme::Spp => "SPP",
            Scheme::Ppf => "PPF",
        }
    }

    /// Builds the scheme's prefetcher instance.
    ///
    /// With `PPF_WRAP_HYBRID=1` the PPF scheme routes its SPP through a
    /// single-member [`Hybrid`] instead of filtering it bare. The
    /// combinator is an identity for one member, so every figure must
    /// produce byte-identical output either way — `scripts/verify.sh
    /// --hybrid` diffs a fig09 run under each setting to prove it.
    pub fn build(self) -> Box<dyn Prefetcher> {
        match self {
            Scheme::Baseline => Box::new(NoPrefetcher),
            Scheme::Bop => Box::new(Bop::default()),
            Scheme::DaAmpm => Box::new(DaAmpm::default()),
            Scheme::Spp => Box::new(Spp::default()),
            Scheme::Ppf => {
                if std::env::var_os("PPF_WRAP_HYBRID").is_some_and(|v| v == "1") {
                    let members: Vec<Box<dyn LookaheadSource>> =
                        vec![Box::new(Spp::default())];
                    Box::new(Ppf::new(Hybrid::new(members)))
                } else {
                    Box::new(Ppf::new(Spp::default()))
                }
            }
        }
    }
}

/// Instruction budgets for an experiment, scaled from the paper's SimPoint
/// methodology (200 M warmup / 1 B measured per core) by 1:1000 so the full
/// suite runs in minutes. `quick` shrinks further for smoke tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunScale {
    /// Warmup instructions per core.
    pub warmup: u64,
    /// Measured instructions per core.
    pub measure: u64,
    /// Multi-programmed mixes per multi-core experiment.
    pub mixes: usize,
}

impl RunScale {
    /// The default scale (1:1000 of the paper).
    pub fn default_scale() -> Self {
        Self { warmup: 200_000, measure: 1_000_000, mixes: 20 }
    }

    /// A fast scale for smoke runs (`--quick`).
    pub fn quick() -> Self {
        Self { warmup: 50_000, measure: 200_000, mixes: 6 }
    }

    /// Parses `--quick` from argv.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Self::quick()
        } else {
            Self::default_scale()
        }
    }
}

/// Runs one workload on a single-core system under `scheme`. When interval
/// telemetry is active (`PPF_TELEMETRY` + the `telemetry` feature), the
/// run's snapshots are exported as `<workload>__<scheme>` JSONL/CSV under
/// the telemetry directory (see [`telemetry::export_simulation`]).
pub fn run_single(cfg: SystemConfig, workload: &Workload, scheme: Scheme, scale: RunScale) -> SimReport {
    let trace = Box::new(TraceBuilder::new(workload.clone()).seed(42).build());
    let mut sim = Simulation::new(cfg);
    sim.add_core(workload.name(), trace, scheme.build());
    let report = sim.run(scale.warmup, scale.measure);
    telemetry::export_simulation(&format!("{}__{}", workload.name(), scheme.label()), &sim);
    report
}

/// Runs a multi-programmed mix on an `n`-core system under `scheme`.
pub fn run_mix(mix: &WorkloadMix, scheme: Scheme, scale: RunScale) -> SimReport {
    let mut sim = Simulation::new(SystemConfig::multi_core(mix.cores()));
    for (core, w) in mix.workloads.iter().enumerate() {
        let trace = Box::new(TraceBuilder::new(w.clone()).seed(42 + core as u64).build());
        sim.add_core(w.name(), trace, scheme.build());
    }
    // Multi-core runs use a shorter region per core (the paper reduces the
    // 8-core runs for the same reason); contention still plays out fully.
    let report = sim.run(scale.warmup, scale.measure / 2);
    telemetry::export_simulation(&format!("{}__{}", mix.label(), scheme.label()), &sim);
    report
}

/// IPC of `workload` running alone on a 1-core machine with the same LLC as
/// the `cores`-core mix (the paper's `IPC_isolated`).
pub fn isolated_ipc(workload: &Workload, cores: usize, scale: RunScale) -> f64 {
    let mut cfg = SystemConfig::single_core();
    cfg.llc.size_bytes = 2 * 1024 * 1024 * cores as u64;
    cfg.llc.mshrs = 64 * cores;
    run_single(cfg, workload, Scheme::Baseline, scale).ipc()
}

/// A prefetcher wrapper that keeps a shared handle to its inner prefetcher,
/// so experiment code can inspect internal state (weights, event logs,
/// depth statistics) after a simulation completes.
#[derive(Debug)]
pub struct Shared<P>(pub Rc<RefCell<P>>);

impl<P> Shared<P> {
    /// Wraps `inner`, returning the wrapper and a handle kept by the caller.
    pub fn new(inner: P) -> (Self, Rc<RefCell<P>>) {
        let rc = Rc::new(RefCell::new(inner));
        (Self(rc.clone()), rc)
    }
}

impl<P: Prefetcher> Prefetcher for Shared<P> {
    fn on_demand_access(&mut self, ctx: &AccessContext, out: &mut Vec<PrefetchRequest>) {
        self.0.borrow_mut().on_demand_access(ctx, out)
    }

    fn on_useful_prefetch(&mut self, addr: u64) {
        self.0.borrow_mut().on_useful_prefetch(addr)
    }

    fn on_eviction(&mut self, info: &EvictionInfo) {
        self.0.borrow_mut().on_eviction(info)
    }

    fn on_llc_eviction(&mut self, info: &EvictionInfo) {
        self.0.borrow_mut().on_llc_eviction(info)
    }

    fn on_prefetch_fill(&mut self, addr: u64, level: FillLevel) {
        self.0.borrow_mut().on_prefetch_fill(addr, level)
    }

    fn name(&self) -> &'static str {
        "shared"
    }

    fn filter_counters(&self) -> ppf_sim::FilterCounters {
        self.0.borrow().filter_counters()
    }

    fn telemetry_dump(&self) -> String {
        self.0.borrow().telemetry_dump()
    }
}

/// Runs `workload` under PPF with an event log enabled and returns the
/// report plus a handle to the PPF instance for post-run analysis.
pub fn run_ppf_instrumented(
    workload: &Workload,
    scale: RunScale,
    event_log_capacity: usize,
) -> (SimReport, Rc<RefCell<Ppf<Spp>>>) {
    let cfg = PpfConfig { event_log_capacity, ..PpfConfig::default() };
    let ppf = Ppf::with_config(Spp::new(SppConfig::default()), cfg);
    let (wrapper, handle) = Shared::new(ppf);
    let trace = Box::new(TraceBuilder::new(workload.clone()).seed(42).build());
    let mut sim = Simulation::new(SystemConfig::single_core());
    sim.add_core(workload.name(), trace, Box::new(wrapper));
    let report = sim.run(scale.warmup, scale.measure);
    (report, handle)
}

/// Runs `workload` under a shared-handle SPP (for depth statistics).
pub fn run_spp_instrumented(
    workload: &Workload,
    scale: RunScale,
) -> (SimReport, Rc<RefCell<Spp>>) {
    let (wrapper, handle) = Shared::new(Spp::default());
    let trace = Box::new(TraceBuilder::new(workload.clone()).seed(42).build());
    let mut sim = Simulation::new(SystemConfig::single_core());
    sim.add_core(workload.name(), trace, Box::new(wrapper));
    let report = sim.run(scale.warmup, scale.measure);
    (report, handle)
}

/// Results of running one workload under every scheme.
#[derive(Debug)]
pub struct SuiteRow {
    /// Workload name.
    pub app: String,
    /// Whether the workload is in the memory-intensive subset.
    pub mem_intensive: bool,
    /// One report per scheme, in [`Scheme::all`] order.
    pub reports: Vec<(Scheme, SimReport)>,
}

impl SuiteRow {
    /// The report for a scheme.
    ///
    /// # Panics
    ///
    /// Panics if the scheme was not run.
    pub fn report(&self, scheme: Scheme) -> &SimReport {
        &self.reports.iter().find(|(s, _)| *s == scheme).expect("scheme was run").1
    }

    /// IPC speedup of a scheme over the baseline.
    pub fn speedup(&self, scheme: Scheme) -> f64 {
        self.report(scheme).ipc() / self.report(Scheme::Baseline).ipc()
    }
}

/// Results of a fault-tolerant suite sweep.
///
/// A workload only yields a [`SuiteRow`] when all of its scheme runs
/// succeeded — partial rows would silently skew cross-scheme comparisons,
/// so they are dropped (and named in `dropped`) instead.
#[derive(Debug)]
pub struct SuiteOutcome {
    /// Complete rows (every scheme succeeded), in workload order.
    pub rows: Vec<SuiteRow>,
    /// Workloads dropped because at least one scheme run failed.
    pub dropped: Vec<String>,
    /// Every failed job, in grid order.
    pub failures: Vec<runner::JobError>,
    /// Jobs restored from checkpoint records instead of re-run.
    pub resumed: usize,
}

/// Runs every workload under every scheme on `make_cfg()`-configured
/// single-core systems, reporting progress and a sweep summary on stderr.
///
/// The (workload × scheme) grid goes through a checkpointed
/// [`sweep::Sweep`] built from argv/env (`--threads`, `--job-timeout`,
/// `--resume`, `PPF_*`): each job runs panic-isolated, successes are
/// checkpointed under `experiment`, and a rerun with `--resume` skips
/// completed jobs bit-exactly. Results are identical to a sequential run
/// (every simulation is independent and results are collected by grid
/// index).
pub fn run_suite<F: Fn() -> SystemConfig>(
    experiment: &str,
    workloads: &[Workload],
    make_cfg: F,
    scale: RunScale,
) -> SuiteOutcome {
    run_suite_with(&sweep::Sweep::from_args(experiment), workloads, make_cfg, scale)
}

/// [`run_suite`] over an explicitly-configured [`sweep::Sweep`] (tests,
/// embedding).
pub fn run_suite_with<F: Fn() -> SystemConfig>(
    sweep: &sweep::Sweep,
    workloads: &[Workload],
    make_cfg: F,
    scale: RunScale,
) -> SuiteOutcome {
    let jobs: Vec<(String, runner::BoxedJob<SimReport>)> = workloads
        .iter()
        .flat_map(|w| Scheme::all().into_iter().map(move |s| (w, s)))
        .map(|(w, s)| {
            let key = format!("{}/{}", w.name(), s.label());
            let w = w.clone();
            let cfg = make_cfg();
            let job: runner::BoxedJob<SimReport> = Box::new(move || {
                let t0 = std::time::Instant::now();
                let r = run_single(cfg, &w, s, scale);
                eprintln!(
                    "  {} / {}: ipc {:.3} ({} ms)",
                    w.name(),
                    s.label(),
                    r.ipc(),
                    t0.elapsed().as_millis()
                );
                r
            });
            (key, job)
        })
        .collect();
    let out = sweep.run(jobs);
    out.report();
    let resumed = out.resumed;

    let mut grid = out.results.into_iter();
    let mut rows = Vec::new();
    let mut dropped = Vec::new();
    let mut failures = Vec::new();
    for w in workloads {
        let mut reports = Vec::new();
        let mut complete = true;
        for s in Scheme::all() {
            match grid.next().expect("one outcome per grid cell").1 {
                Ok(report) => reports.push((s, report)),
                Err(e) => {
                    complete = false;
                    failures.push(e);
                }
            }
        }
        if complete {
            rows.push(SuiteRow {
                app: w.name().to_string(),
                mem_intensive: w.is_memory_intensive(),
                reports,
            });
        } else {
            eprintln!("[sweep] dropped {}: incomplete results", w.name());
            dropped.push(w.name().to_string());
        }
    }
    SuiteOutcome { rows, dropped, failures, resumed }
}

/// Weighted speedups of one multi-programmed mix under every prefetcher.
#[derive(Debug)]
pub struct MixRun {
    /// The mix's display label.
    pub label: String,
    /// Weighted speedup over the no-prefetch baseline per scheme, in
    /// [`Scheme::prefetchers`] order.
    pub speedups: Vec<(Scheme, f64)>,
}

/// Results of a fault-tolerant multi-core mix sweep.
///
/// A mix only yields a [`MixRun`] when its isolated-IPC jobs and all of
/// its scheme runs succeeded; otherwise it is dropped (and named in
/// `dropped`).
#[derive(Debug)]
pub struct MixSuiteOutcome {
    /// Completed mixes, in input order.
    pub runs: Vec<MixRun>,
    /// Nominal simulated instructions (for throughput accounting).
    pub instructions: u64,
    /// Mix labels dropped because a contributing job failed.
    pub dropped: Vec<String>,
    /// Every failed job (isolated and grid), in job order.
    pub failures: Vec<runner::JobError>,
    /// Jobs restored from checkpoint records instead of re-run.
    pub resumed: usize,
}

/// Runs every mix under every scheme (plus the baseline) on `cores`-core
/// systems and computes weighted speedups against per-workload isolated
/// IPCs.
///
/// Both job grids (isolated IPCs, then mix × scheme) go through one
/// checkpointed [`sweep::Sweep`] built from argv/env — see [`run_suite`]
/// for the resume/fault-isolation semantics. Mix results come back in
/// input order.
pub fn run_mix_suite(
    experiment: &str,
    mixes: &[WorkloadMix],
    cores: usize,
    scale: RunScale,
) -> MixSuiteOutcome {
    run_mix_suite_with(&sweep::Sweep::from_args(experiment), mixes, cores, scale)
}

/// [`run_mix_suite`] over an explicitly-configured [`sweep::Sweep`].
pub fn run_mix_suite_with(
    sweep: &sweep::Sweep,
    mixes: &[WorkloadMix],
    cores: usize,
    scale: RunScale,
) -> MixSuiteOutcome {
    // Isolated IPCs are shared across mixes; compute each unique workload
    // once, in parallel, in first-appearance order.
    let mut unique: Vec<&Workload> = Vec::new();
    for mix in mixes {
        for w in &mix.workloads {
            if !unique.iter().any(|u| u.name() == w.name()) {
                unique.push(w);
            }
        }
    }
    let iso_jobs: Vec<(String, runner::BoxedJob<f64>)> = unique
        .iter()
        .map(|w| {
            let key = format!("isolated/{}", w.name());
            let w = (*w).clone();
            let job: runner::BoxedJob<f64> = Box::new(move || {
                let ipc = isolated_ipc(&w, cores, scale);
                eprintln!("  isolated {}: ipc {:.3}", w.name(), ipc);
                ipc
            });
            (key, job)
        })
        .collect();
    let iso_out = sweep.run(iso_jobs);
    let iso_ok = iso_out.ok_count();
    let mut resumed = iso_out.resumed;

    let mut failures: Vec<runner::JobError> = Vec::new();
    let mut isolated: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    for (w, (_key, outcome)) in unique.iter().zip(iso_out.results) {
        match outcome {
            Ok(ipc) => {
                isolated.insert(w.name().to_string(), ipc);
            }
            Err(e) => failures.push(e),
        }
    }

    // The (mix × scheme) grid, baseline included.
    let schemes = Scheme::all();
    let jobs: Vec<(String, runner::BoxedJob<Vec<f64>>)> = mixes
        .iter()
        .flat_map(|mix| schemes.into_iter().map(move |s| (mix, s)))
        .map(|(mix, s)| {
            let key = format!("{}/{}", mix.label(), s.label());
            let mix = mix.clone();
            let job: runner::BoxedJob<Vec<f64>> = Box::new(move || {
                let r = run_mix(&mix, s, scale);
                eprintln!("  {} / {}: done", mix.label(), s.label());
                r.cores.iter().map(|c| c.ipc()).collect::<Vec<f64>>()
            });
            (key, job)
        })
        .collect();
    let grid_out = sweep.run(jobs);
    let grid_ok = grid_out.ok_count();
    resumed += grid_out.resumed;

    let mut runs = Vec::new();
    let mut dropped = Vec::new();
    let mut grid = grid_out.results.into_iter();
    for mix in mixes {
        let mut per_scheme: Vec<(Scheme, Vec<f64>)> = Vec::new();
        let mut complete = true;
        for s in schemes {
            match grid.next().expect("one outcome per grid cell").1 {
                Ok(ipcs) => per_scheme.push((s, ipcs)),
                Err(e) => {
                    complete = false;
                    failures.push(e);
                }
            }
        }
        let iso: Option<Vec<f64>> =
            mix.workloads.iter().map(|w| isolated.get(w.name()).copied()).collect();
        let (true, Some(iso)) = (complete, iso) else {
            dropped.push(mix.label());
            continue;
        };
        let base_ipc =
            &per_scheme.iter().find(|(s, _)| *s == Scheme::Baseline).expect("baseline").1;
        let speedups = Scheme::prefetchers()
            .into_iter()
            .map(|s| {
                let ipcs = &per_scheme.iter().find(|(x, _)| *x == s).expect("scheme").1;
                (s, ppf_analysis::weighted_speedup(ipcs, base_ipc, &iso))
            })
            .collect();
        runs.push(MixRun { label: mix.label(), speedups });
    }

    eprintln!(
        "[sweep] {}: {} ok, {} failed, {} resumed",
        sweep.experiment(),
        iso_ok + grid_ok,
        failures.len(),
        resumed
    );
    for e in &failures {
        eprintln!("[sweep] FAILED {e}");
    }
    for d in &dropped {
        eprintln!("[sweep] dropped {d}: incomplete results");
    }

    let per_mix = (cores as u64) * (scale.warmup + scale.measure / 2);
    let instructions = (unique.len() as u64) * (scale.warmup + scale.measure)
        + (mixes.len() as u64) * (schemes.len() as u64) * per_mix;
    MixSuiteOutcome { runs, instructions, dropped, failures, resumed }
}

/// Runs one labelled grid of scalar jobs through `sweep`, reports the
/// summary on stderr, and returns each job's value in input order (`None`
/// for failed jobs) — the shared driver for the ablation binaries, whose
/// grids produce per-workload speedup ratios rather than full reports.
pub fn sweep_scalars(
    sweep: &sweep::Sweep,
    jobs: Vec<(String, runner::BoxedJob<f64>)>,
) -> Vec<Option<f64>> {
    let out = sweep.run(jobs);
    out.report();
    out.into_outcomes().into_iter().map(Result::ok).collect()
}

/// Coverage of a prefetching run versus a baseline run at one cache level:
/// the fraction of baseline misses the prefetcher eliminated (paper Fig. 10).
pub fn coverage(baseline_misses: u64, with_pf_misses: u64) -> f64 {
    if baseline_misses == 0 {
        return 0.0;
    }
    1.0 - (with_pf_misses.min(baseline_misses) as f64 / baseline_misses as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppf_trace::{MixGenerator, Suite};

    fn tiny() -> RunScale {
        RunScale { warmup: 5_000, measure: 30_000, mixes: 2 }
    }

    #[test]
    fn schemes_build() {
        for s in Scheme::all() {
            let _ = s.build();
            assert!(!s.label().is_empty());
        }
    }

    #[test]
    fn single_run_produces_report() {
        let w = Workload::by_name("638.imagick_s").unwrap();
        let r = run_single(SystemConfig::single_core(), &w, Scheme::Spp, tiny());
        assert!(r.ipc() > 0.0);
    }

    #[test]
    fn mix_run_produces_report() {
        let pool = Workload::memory_intensive(Suite::Spec2017);
        let mixes = MixGenerator::new(pool, 7).draw(1, 2);
        let r = run_mix(&mixes[0], Scheme::Baseline, tiny());
        assert_eq!(r.cores.len(), 2);
    }

    #[test]
    fn instrumented_ppf_exposes_state() {
        let w = Workload::by_name("603.bwaves_s").unwrap();
        let (r, handle) = run_ppf_instrumented(&w, tiny(), 1024);
        assert!(r.ipc() > 0.0);
        let ppf = handle.borrow();
        assert!(ppf.filter().stats.inferences > 0, "PPF saw no candidates");
    }

    #[test]
    fn coverage_math() {
        assert!((coverage(1000, 200) - 0.8).abs() < 1e-12);
        assert_eq!(coverage(0, 5), 0.0);
        // More misses than baseline clamps to zero coverage.
        assert_eq!(coverage(100, 150), 0.0);
    }

    #[test]
    fn quick_scale_smaller() {
        assert!(RunScale::quick().measure < RunScale::default_scale().measure);
    }
}
