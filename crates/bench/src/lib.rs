//! Experiment harness regenerating every table and figure of
//! *Perceptron-Based Prefetch Filtering* (ISCA 2019).
//!
//! Each `fig*`/`table*`/`sec*` binary in `src/bin/` drives this library to
//! reproduce one artifact of the paper; `cargo bench` runs the Criterion
//! micro-benchmarks. See DESIGN.md §3 for the full experiment index and
//! EXPERIMENTS.md for recorded paper-vs-measured results.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod runner;
pub mod throughput;

use ppf::{Ppf, PpfConfig};
use ppf_prefetchers::{Bop, DaAmpm, Spp, SppConfig};
use ppf_sim::{
    AccessContext, EvictionInfo, FillLevel, NoPrefetcher, Prefetcher, PrefetchRequest,
    SimReport, Simulation, SystemConfig,
};
use ppf_trace::{TraceBuilder, Workload, WorkloadMix};
use std::cell::RefCell;
use std::rc::Rc;

/// The prefetching schemes the paper evaluates (Sec 5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// No prefetching (the normalization baseline).
    Baseline,
    /// Best-Offset Prefetcher.
    Bop,
    /// DRAM-aware AMPM.
    DaAmpm,
    /// Signature Path Prefetcher with its native throttling.
    Spp,
    /// PPF over an unthrottled SPP (the paper's contribution).
    Ppf,
}

impl Scheme {
    /// All schemes in the paper's presentation order.
    pub fn all() -> [Scheme; 5] {
        [Scheme::Baseline, Scheme::Bop, Scheme::DaAmpm, Scheme::Spp, Scheme::Ppf]
    }

    /// The four prefetchers (without the baseline).
    pub fn prefetchers() -> [Scheme; 4] {
        [Scheme::Bop, Scheme::DaAmpm, Scheme::Spp, Scheme::Ppf]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Baseline => "no-pf",
            Scheme::Bop => "BOP",
            Scheme::DaAmpm => "DA-AMPM",
            Scheme::Spp => "SPP",
            Scheme::Ppf => "PPF",
        }
    }

    /// Builds the scheme's prefetcher instance.
    pub fn build(self) -> Box<dyn Prefetcher> {
        match self {
            Scheme::Baseline => Box::new(NoPrefetcher),
            Scheme::Bop => Box::new(Bop::default()),
            Scheme::DaAmpm => Box::new(DaAmpm::default()),
            Scheme::Spp => Box::new(Spp::default()),
            Scheme::Ppf => Box::new(Ppf::new(Spp::default())),
        }
    }
}

/// Instruction budgets for an experiment, scaled from the paper's SimPoint
/// methodology (200 M warmup / 1 B measured per core) by 1:1000 so the full
/// suite runs in minutes. `quick` shrinks further for smoke tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunScale {
    /// Warmup instructions per core.
    pub warmup: u64,
    /// Measured instructions per core.
    pub measure: u64,
    /// Multi-programmed mixes per multi-core experiment.
    pub mixes: usize,
}

impl RunScale {
    /// The default scale (1:1000 of the paper).
    pub fn default_scale() -> Self {
        Self { warmup: 200_000, measure: 1_000_000, mixes: 20 }
    }

    /// A fast scale for smoke runs (`--quick`).
    pub fn quick() -> Self {
        Self { warmup: 50_000, measure: 200_000, mixes: 6 }
    }

    /// Parses `--quick` from argv.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Self::quick()
        } else {
            Self::default_scale()
        }
    }
}

/// Runs one workload on a single-core system under `scheme`.
pub fn run_single(cfg: SystemConfig, workload: &Workload, scheme: Scheme, scale: RunScale) -> SimReport {
    let trace = Box::new(TraceBuilder::new(workload.clone()).seed(42).build());
    let mut sim = Simulation::new(cfg);
    sim.add_core(workload.name(), trace, scheme.build());
    sim.run(scale.warmup, scale.measure)
}

/// Runs a multi-programmed mix on an `n`-core system under `scheme`.
pub fn run_mix(mix: &WorkloadMix, scheme: Scheme, scale: RunScale) -> SimReport {
    let mut sim = Simulation::new(SystemConfig::multi_core(mix.cores()));
    for (core, w) in mix.workloads.iter().enumerate() {
        let trace = Box::new(TraceBuilder::new(w.clone()).seed(42 + core as u64).build());
        sim.add_core(w.name(), trace, scheme.build());
    }
    // Multi-core runs use a shorter region per core (the paper reduces the
    // 8-core runs for the same reason); contention still plays out fully.
    sim.run(scale.warmup, scale.measure / 2)
}

/// IPC of `workload` running alone on a 1-core machine with the same LLC as
/// the `cores`-core mix (the paper's `IPC_isolated`).
pub fn isolated_ipc(workload: &Workload, cores: usize, scale: RunScale) -> f64 {
    let mut cfg = SystemConfig::single_core();
    cfg.llc.size_bytes = 2 * 1024 * 1024 * cores as u64;
    cfg.llc.mshrs = 64 * cores;
    run_single(cfg, workload, Scheme::Baseline, scale).ipc()
}

/// A prefetcher wrapper that keeps a shared handle to its inner prefetcher,
/// so experiment code can inspect internal state (weights, event logs,
/// depth statistics) after a simulation completes.
#[derive(Debug)]
pub struct Shared<P>(pub Rc<RefCell<P>>);

impl<P> Shared<P> {
    /// Wraps `inner`, returning the wrapper and a handle kept by the caller.
    pub fn new(inner: P) -> (Self, Rc<RefCell<P>>) {
        let rc = Rc::new(RefCell::new(inner));
        (Self(rc.clone()), rc)
    }
}

impl<P: Prefetcher> Prefetcher for Shared<P> {
    fn on_demand_access(&mut self, ctx: &AccessContext, out: &mut Vec<PrefetchRequest>) {
        self.0.borrow_mut().on_demand_access(ctx, out)
    }

    fn on_useful_prefetch(&mut self, addr: u64) {
        self.0.borrow_mut().on_useful_prefetch(addr)
    }

    fn on_eviction(&mut self, info: &EvictionInfo) {
        self.0.borrow_mut().on_eviction(info)
    }

    fn on_llc_eviction(&mut self, info: &EvictionInfo) {
        self.0.borrow_mut().on_llc_eviction(info)
    }

    fn on_prefetch_fill(&mut self, addr: u64, level: FillLevel) {
        self.0.borrow_mut().on_prefetch_fill(addr, level)
    }

    fn name(&self) -> &'static str {
        "shared"
    }
}

/// Runs `workload` under PPF with an event log enabled and returns the
/// report plus a handle to the PPF instance for post-run analysis.
pub fn run_ppf_instrumented(
    workload: &Workload,
    scale: RunScale,
    event_log_capacity: usize,
) -> (SimReport, Rc<RefCell<Ppf<Spp>>>) {
    let cfg = PpfConfig { event_log_capacity, ..PpfConfig::default() };
    let ppf = Ppf::with_config(Spp::new(SppConfig::default()), cfg);
    let (wrapper, handle) = Shared::new(ppf);
    let trace = Box::new(TraceBuilder::new(workload.clone()).seed(42).build());
    let mut sim = Simulation::new(SystemConfig::single_core());
    sim.add_core(workload.name(), trace, Box::new(wrapper));
    let report = sim.run(scale.warmup, scale.measure);
    (report, handle)
}

/// Runs `workload` under a shared-handle SPP (for depth statistics).
pub fn run_spp_instrumented(
    workload: &Workload,
    scale: RunScale,
) -> (SimReport, Rc<RefCell<Spp>>) {
    let (wrapper, handle) = Shared::new(Spp::default());
    let trace = Box::new(TraceBuilder::new(workload.clone()).seed(42).build());
    let mut sim = Simulation::new(SystemConfig::single_core());
    sim.add_core(workload.name(), trace, Box::new(wrapper));
    let report = sim.run(scale.warmup, scale.measure);
    (report, handle)
}

/// Results of running one workload under every scheme.
#[derive(Debug)]
pub struct SuiteRow {
    /// Workload name.
    pub app: String,
    /// Whether the workload is in the memory-intensive subset.
    pub mem_intensive: bool,
    /// One report per scheme, in [`Scheme::all`] order.
    pub reports: Vec<(Scheme, SimReport)>,
}

impl SuiteRow {
    /// The report for a scheme.
    ///
    /// # Panics
    ///
    /// Panics if the scheme was not run.
    pub fn report(&self, scheme: Scheme) -> &SimReport {
        &self.reports.iter().find(|(s, _)| *s == scheme).expect("scheme was run").1
    }

    /// IPC speedup of a scheme over the baseline.
    pub fn speedup(&self, scheme: Scheme) -> f64 {
        self.report(scheme).ipc() / self.report(Scheme::Baseline).ipc()
    }
}

/// Runs every workload under every scheme on `make_cfg()`-configured
/// single-core systems, reporting progress on stderr.
///
/// The (workload × scheme) grid runs on [`runner::thread_count`] worker
/// threads; results are identical to a sequential run (every simulation is
/// independent and results are collected by grid index). Use `--threads N`
/// or `PPF_THREADS` to override the thread count.
pub fn run_suite<F: Fn() -> SystemConfig + Sync>(
    workloads: &[Workload],
    make_cfg: F,
    scale: RunScale,
) -> Vec<SuiteRow> {
    run_suite_with_threads(workloads, make_cfg, scale, runner::thread_count())
}

/// [`run_suite`] with an explicit worker-thread count (`<= 1` runs
/// sequentially on the calling thread).
pub fn run_suite_with_threads<F: Fn() -> SystemConfig + Sync>(
    workloads: &[Workload],
    make_cfg: F,
    scale: RunScale,
    threads: usize,
) -> Vec<SuiteRow> {
    let make_cfg = &make_cfg;
    let jobs: Vec<_> = workloads
        .iter()
        .flat_map(|w| Scheme::all().into_iter().map(move |s| (w, s)))
        .map(|(w, s)| {
            move || {
                let t0 = std::time::Instant::now();
                let r = run_single(make_cfg(), w, s, scale);
                eprintln!(
                    "  {} / {}: ipc {:.3} ({} ms)",
                    w.name(),
                    s.label(),
                    r.ipc(),
                    t0.elapsed().as_millis()
                );
                (s, r)
            }
        })
        .collect();
    let mut reports = runner::run_indexed(jobs, threads).into_iter();
    workloads
        .iter()
        .map(|w| SuiteRow {
            app: w.name().to_string(),
            mem_intensive: w.is_memory_intensive(),
            reports: reports.by_ref().take(Scheme::all().len()).collect(),
        })
        .collect()
}

/// Weighted speedups of one multi-programmed mix under every prefetcher.
#[derive(Debug)]
pub struct MixRun {
    /// The mix's display label.
    pub label: String,
    /// Weighted speedup over the no-prefetch baseline per scheme, in
    /// [`Scheme::prefetchers`] order.
    pub speedups: Vec<(Scheme, f64)>,
}

/// Runs every mix under every scheme (plus the baseline) on `cores`-core
/// systems and computes weighted speedups against per-workload isolated
/// IPCs, parallelizing across [`runner::thread_count`] workers.
///
/// Returns the mix results in input order plus the nominal number of
/// simulated instructions (for throughput accounting).
pub fn run_mix_suite(
    mixes: &[WorkloadMix],
    cores: usize,
    scale: RunScale,
) -> (Vec<MixRun>, u64) {
    run_mix_suite_with_threads(mixes, cores, scale, runner::thread_count())
}

/// [`run_mix_suite`] with an explicit worker-thread count.
pub fn run_mix_suite_with_threads(
    mixes: &[WorkloadMix],
    cores: usize,
    scale: RunScale,
    threads: usize,
) -> (Vec<MixRun>, u64) {
    // Isolated IPCs are shared across mixes; compute each unique workload
    // once, in parallel, in first-appearance order.
    let mut unique: Vec<&Workload> = Vec::new();
    for mix in mixes {
        for w in &mix.workloads {
            if !unique.iter().any(|u| u.name() == w.name()) {
                unique.push(w);
            }
        }
    }
    let iso_jobs: Vec<_> = unique
        .iter()
        .map(|w| {
            move || {
                let ipc = isolated_ipc(w, cores, scale);
                eprintln!("  isolated {}: ipc {:.3}", w.name(), ipc);
                ipc
            }
        })
        .collect();
    let iso_ipcs = runner::run_indexed(iso_jobs, threads);
    let isolated: std::collections::HashMap<&str, f64> =
        unique.iter().map(|w| w.name()).zip(iso_ipcs).collect();

    // The (mix × scheme) grid, baseline included.
    let schemes = Scheme::all();
    let jobs: Vec<_> = mixes
        .iter()
        .flat_map(|mix| schemes.into_iter().map(move |s| (mix, s)))
        .map(|(mix, s)| {
            move || {
                let r = run_mix(mix, s, scale);
                eprintln!("  {} / {}: done", mix.label(), s.label());
                r.cores.iter().map(|c| c.ipc()).collect::<Vec<f64>>()
            }
        })
        .collect();
    let all_ipcs = runner::run_indexed(jobs, threads);

    let runs = mixes
        .iter()
        .enumerate()
        .map(|(m, mix)| {
            let iso: Vec<f64> = mix.workloads.iter().map(|w| isolated[w.name()]).collect();
            let grid = &all_ipcs[m * schemes.len()..(m + 1) * schemes.len()];
            let base_idx = schemes.iter().position(|s| *s == Scheme::Baseline).expect("baseline");
            let base_ipc = &grid[base_idx];
            let speedups = Scheme::prefetchers()
                .into_iter()
                .map(|s| {
                    let idx = schemes.iter().position(|x| *x == s).expect("scheme");
                    (s, ppf_analysis::weighted_speedup(&grid[idx], base_ipc, &iso))
                })
                .collect();
            MixRun { label: mix.label(), speedups }
        })
        .collect();

    let per_mix = (cores as u64) * (scale.warmup + scale.measure / 2);
    let instructions = (unique.len() as u64) * (scale.warmup + scale.measure)
        + (mixes.len() as u64) * (schemes.len() as u64) * per_mix;
    (runs, instructions)
}

/// Coverage of a prefetching run versus a baseline run at one cache level:
/// the fraction of baseline misses the prefetcher eliminated (paper Fig. 10).
pub fn coverage(baseline_misses: u64, with_pf_misses: u64) -> f64 {
    if baseline_misses == 0 {
        return 0.0;
    }
    1.0 - (with_pf_misses.min(baseline_misses) as f64 / baseline_misses as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppf_trace::{MixGenerator, Suite};

    fn tiny() -> RunScale {
        RunScale { warmup: 5_000, measure: 30_000, mixes: 2 }
    }

    #[test]
    fn schemes_build() {
        for s in Scheme::all() {
            let _ = s.build();
            assert!(!s.label().is_empty());
        }
    }

    #[test]
    fn single_run_produces_report() {
        let w = Workload::by_name("638.imagick_s").unwrap();
        let r = run_single(SystemConfig::single_core(), &w, Scheme::Spp, tiny());
        assert!(r.ipc() > 0.0);
    }

    #[test]
    fn mix_run_produces_report() {
        let pool = Workload::memory_intensive(Suite::Spec2017);
        let mixes = MixGenerator::new(pool, 7).draw(1, 2);
        let r = run_mix(&mixes[0], Scheme::Baseline, tiny());
        assert_eq!(r.cores.len(), 2);
    }

    #[test]
    fn instrumented_ppf_exposes_state() {
        let w = Workload::by_name("603.bwaves_s").unwrap();
        let (r, handle) = run_ppf_instrumented(&w, tiny(), 1024);
        assert!(r.ipc() > 0.0);
        let ppf = handle.borrow();
        assert!(ppf.filter().stats.inferences > 0, "PPF saw no candidates");
    }

    #[test]
    fn coverage_math() {
        assert!((coverage(1000, 200) - 0.8).abs() < 1e-12);
        assert_eq!(coverage(0, 5), 0.0);
        // More misses than baseline clamps to zero coverage.
        assert_eq!(coverage(100, 150), 0.0);
    }

    #[test]
    fn quick_scale_smaller() {
        assert!(RunScale::quick().measure < RunScale::default_scale().measure);
    }
}
