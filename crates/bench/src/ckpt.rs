//! Shared crash-safe JSONL checkpoint substrate.
//!
//! Both the sweep driver ([`crate::sweep`]) and the serving daemon
//! (`ppf-serve`) persist state as append-only JSONL files and must survive
//! the two corruptions a crash actually produces:
//!
//! * **Torn tails.** A process killed mid-append leaves a final line with no
//!   terminating newline (or half a record). [`load_tolerant`] drops that
//!   tail, reports it, and keeps every complete line — a torn tail must
//!   never fail a whole resume.
//! * **Bit rot / interleaved writers.** Every record is *sealed* with a
//!   CRC-32 over its body ([`seal`]); [`check`] rejects any line whose body
//!   no longer matches. An abandoned (watchdog-replaced) shard thread that
//!   wakes up and races an append can interleave bytes mid-line — the CRC
//!   turns that into a dropped record instead of silent corruption.
//!
//! Whole-file rewrites (sweep truncation, serve compaction) go through
//! [`atomic_write`]: write to a temp file in the same directory, fsync,
//! rename — a crash leaves either the old file or the new one, never a
//! partial mix.

use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup table.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of a byte slice — the checksum sealing every checkpoint
/// record.
pub fn crc32(bytes: &[u8]) -> u32 {
    !bytes.iter().fold(!0u32, |c, &b| CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8))
}

/// The field prefix every sealed line starts with.
const SEAL_PREFIX: &str = "{\"crc\":\"";

/// Seals a one-line JSON object with a leading CRC field.
///
/// `body` must be a single-line `{...}` object; the result is
/// `{"crc":"xxxxxxxx",<body without its leading brace>` where the checksum
/// covers exactly those remaining bytes. [`check`] is the inverse.
///
/// # Panics
///
/// Panics (debug) if `body` is not a braced single-line object.
pub fn seal(body: &str) -> String {
    debug_assert!(
        body.starts_with('{') && body.ends_with('}') && !body.contains('\n'),
        "seal() expects a one-line JSON object, got {body:?}"
    );
    let rest = &body[1..];
    format!("{SEAL_PREFIX}{:08x}\",{rest}", crc32(rest.as_bytes()))
}

/// Why a sealed line failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealError {
    /// The line does not start with a `{"crc":"xxxxxxxx",` field.
    Unsealed,
    /// The stored checksum does not match the body.
    Mismatch,
}

impl std::fmt::Display for SealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SealError::Unsealed => write!(f, "record carries no CRC seal"),
            SealError::Mismatch => write!(f, "record body does not match its CRC"),
        }
    }
}

/// Validates a line produced by [`seal`]. The line still contains every
/// original field (plus `crc`), so callers keep scanning it as before.
///
/// # Errors
///
/// [`SealError::Unsealed`] when the CRC prefix is absent or malformed,
/// [`SealError::Mismatch`] when the body was altered after sealing.
pub fn check(line: &str) -> Result<(), SealError> {
    let rest = line.strip_prefix(SEAL_PREFIX).ok_or(SealError::Unsealed)?;
    let (hex, body) = rest.split_at_checked(8).ok_or(SealError::Unsealed)?;
    let stored = u32::from_str_radix(hex, 16).map_err(|_| SealError::Unsealed)?;
    let body = body.strip_prefix("\",").ok_or(SealError::Unsealed)?;
    if crc32(body.as_bytes()) == stored {
        Ok(())
    } else {
        Err(SealError::Mismatch)
    }
}

/// What [`load_tolerant`] recovered from a checkpoint file.
#[derive(Debug, Default)]
pub struct JsonlLoad {
    /// Every line that passed [`check`], in file order.
    pub lines: Vec<String>,
    /// A final line with no terminating newline was dropped.
    pub torn_tail: bool,
    /// Complete lines dropped because the CRC seal was absent or wrong.
    pub dropped_crc: usize,
}

impl JsonlLoad {
    /// True when anything at all had to be dropped.
    pub fn lossy(&self) -> bool {
        self.torn_tail || self.dropped_crc > 0
    }
}

/// Reads a sealed JSONL file, tolerating the corruptions a crash produces:
/// a missing file loads as empty, a torn final line is dropped (and
/// flagged), and any line failing its CRC seal is dropped (and counted).
/// Empty lines are ignored.
///
/// # Errors
///
/// Propagates I/O errors other than `NotFound`.
pub fn load_tolerant(path: &Path) -> io::Result<JsonlLoad> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(JsonlLoad::default()),
        Err(e) => return Err(e),
    };
    let mut out = JsonlLoad::default();
    let mut body = text.as_str();
    if !text.is_empty() && !text.ends_with('\n') {
        // A crash mid-append: everything after the last newline is the torn
        // tail. Complete lines before it are still good.
        out.torn_tail = true;
        body = match text.rfind('\n') {
            Some(nl) => &text[..=nl],
            None => "",
        };
    }
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        match check(line) {
            Ok(()) => out.lines.push(line.to_string()),
            Err(_) => out.dropped_crc += 1,
        }
    }
    Ok(out)
}

/// The temp path [`atomic_write`] stages through (same directory as the
/// target, so the rename cannot cross filesystems).
fn staging_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

/// Replaces `path` with `bytes` atomically: write a sibling temp file, fsync
/// it, rename over the target. A crash at any point leaves the old file or
/// the complete new one.
///
/// # Errors
///
/// Propagates filesystem errors (the temp file is cleaned up on failure).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = staging_path(path);
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn seal_check_roundtrip() {
        let line = seal(r#"{"v":2,"key":"a","data":"00ff"}"#);
        assert!(line.starts_with(SEAL_PREFIX), "{line}");
        assert!(line.contains("\"key\":\"a\""), "original fields survive: {line}");
        check(&line).expect("sealed line validates");
    }

    #[test]
    fn check_rejects_tampering() {
        let line = seal(r#"{"v":2,"key":"a","data":"00ff"}"#);
        let flipped = line.replace("00ff", "01ff");
        assert_eq!(check(&flipped), Err(SealError::Mismatch));
        assert_eq!(check("{\"v\":2}"), Err(SealError::Unsealed));
        assert_eq!(check(""), Err(SealError::Unsealed));
        assert_eq!(check("{\"crc\":\"zzzzzzzz\",\"v\":2}"), Err(SealError::Unsealed));
        // Truncated mid-prefix.
        assert_eq!(check(&line[..10]), Err(SealError::Unsealed));
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ppf-ckpt-{name}-{}", std::process::id()))
    }

    #[test]
    fn load_tolerant_drops_torn_tail_and_bad_crc() {
        let path = tmp("torn");
        let good1 = seal(r#"{"k":"a"}"#);
        let good2 = seal(r#"{"k":"b"}"#);
        let bad = seal(r#"{"k":"c"}"#).replace("\"c\"", "\"X\"");
        let torn = &good2[..good2.len() - 4];
        fs::write(&path, format!("{good1}\n{bad}\n{good2}\n{torn}")).unwrap();
        let load = load_tolerant(&path).unwrap();
        assert_eq!(load.lines, vec![good1, good2]);
        assert!(load.torn_tail);
        assert_eq!(load.dropped_crc, 1);
        assert!(load.lossy());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn load_tolerant_missing_file_is_empty() {
        let load = load_tolerant(&tmp("never-written")).unwrap();
        assert!(load.lines.is_empty());
        assert!(!load.lossy());
    }

    #[test]
    fn load_tolerant_single_torn_line() {
        let path = tmp("only-torn");
        fs::write(&path, "{\"crc\":\"0000").unwrap();
        let load = load_tolerant(&path).unwrap();
        assert!(load.lines.is_empty());
        assert!(load.torn_tail);
        assert_eq!(load.dropped_crc, 0);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let path = tmp("atomic");
        atomic_write(&path, b"first\n").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first\n");
        atomic_write(&path, b"second\n").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second\n");
        assert!(!staging_path(&path).exists(), "staging file cleaned up");
        let _ = fs::remove_file(&path);
    }
}
