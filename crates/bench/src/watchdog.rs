//! Watchdog machinery shared by sweeps and serving.
//!
//! PR 3 gave the sweep runner a per-job watchdog (`--job-timeout` /
//! `PPF_JOB_TIMEOUT`): run the job on a disposable thread, wait a bounded
//! time, abandon it on overrun. The serving daemon needs the same policy at
//! a different granularity — a *shard* that stops making progress must be
//! detected and replaced without stalling callers. This module holds both:
//!
//! * [`run_with_deadline`] — the one-shot form: execute a boxed job with
//!   panic isolation on an abandonable thread, bounded by a limit. The
//!   sweep runner's watchdog path delegates here.
//! * [`Watchdog`] + [`Heartbeat`] — the continuous form: long-lived workers
//!   register a heartbeat and beat it every loop iteration; a supervisor
//!   polls [`Watchdog::stalled`] and replaces whatever went quiet.
//!
//! Timeout *resolution* (`--job-timeout N`, `PPF_JOB_TIMEOUT`) also lives
//! here, re-exported through [`crate::runner`] for existing callers.

use crate::runner::{BoxedJob, FailReason, JobError, Outcome};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Resolves the per-job watchdog timeout: `--job-timeout N` (seconds, also
/// `--job-timeout=N`), then `PPF_JOB_TIMEOUT=N`, then `None` (watchdog off).
///
/// Malformed values are rejected with exit code 2, like
/// [`crate::runner::thread_count`].
pub fn job_timeout() -> Option<Duration> {
    match resolve_timeout(
        std::env::args().skip(1),
        std::env::var("PPF_JOB_TIMEOUT").ok().as_deref(),
    ) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// Pure core of [`job_timeout`] (tests inject args/env).
pub(crate) fn resolve_timeout(
    mut args: impl Iterator<Item = String>,
    env: Option<&str>,
) -> Result<Option<Duration>, String> {
    while let Some(a) = args.next() {
        if a == "--job-timeout" {
            let v = args.next().ok_or_else(|| {
                "--job-timeout requires a value in seconds (e.g. --job-timeout 600)".to_string()
            })?;
            return parse_timeout(&v, "--job-timeout").map(Some);
        } else if let Some(v) = a.strip_prefix("--job-timeout=") {
            return parse_timeout(v, "--job-timeout").map(Some);
        }
    }
    match env {
        Some(v) => parse_timeout(v, "PPF_JOB_TIMEOUT").map(Some),
        None => Ok(None),
    }
}

fn parse_timeout(v: &str, source: &str) -> Result<Duration, String> {
    match v.parse::<f64>() {
        Ok(s) if s > 0.0 && s.is_finite() => Ok(Duration::from_secs_f64(s)),
        Ok(_) => Err(format!("{source} must be a positive number of seconds, got `{v}`")),
        Err(_) => Err(format!("{source} expects a number of seconds, got `{v}`")),
    }
}

/// Runs a job on a disposable thread and waits at most `limit` for it.
///
/// On overrun the job's thread is abandoned (Rust cannot kill a thread) and
/// dies with the process; the caller gets [`FailReason::TimedOut`] and moves
/// on. Panics inside the job are isolated and surface as
/// [`FailReason::Panicked`].
pub fn run_with_deadline<T: Send + 'static>(
    label: &str,
    job: BoxedJob<T>,
    limit: Duration,
) -> Outcome<T> {
    let t0 = Instant::now();
    let (tx, rx) = std::sync::mpsc::channel::<Outcome<T>>();
    let owned = label.to_string();
    let spawned = std::thread::Builder::new().name(format!("ppf-job {label}")).spawn(move || {
        let _ = tx.send(crate::runner::guard(&owned, job));
    });
    if spawned.is_err() {
        return Err(JobError {
            label: label.to_string(),
            reason: FailReason::Panicked("could not spawn watchdog job thread".into()),
            wall: t0.elapsed(),
        });
    }
    match rx.recv_timeout(limit) {
        Ok(outcome) => outcome,
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => Err(JobError {
            label: label.to_string(),
            reason: FailReason::TimedOut(limit),
            wall: t0.elapsed(),
        }),
        // The sender dropped without sending: only possible if the job
        // thread died outside catch_unwind (e.g. a non-unwinding abort would
        // have taken the process with it, so treat this as a panic).
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => Err(JobError {
            label: label.to_string(),
            reason: FailReason::Panicked("job thread exited without a result".into()),
            wall: t0.elapsed(),
        }),
    }
}

/// Sentinel for "never beat yet": participants start stalled-from-birth
/// *only* after the limit elapses from registration, so a worker that
/// dies before its first beat is still caught.
const NEVER: u64 = u64::MAX;

/// A worker's liveness signal. Cheap to beat (one relaxed atomic store);
/// clone-free hand-off to the worker thread.
#[derive(Debug)]
pub struct Heartbeat {
    last_beat_micros: Arc<AtomicU64>,
    epoch: Instant,
}

impl Heartbeat {
    /// Marks the worker alive *now*. Call once per work-loop iteration.
    pub fn beat(&self) {
        let t = self.epoch.elapsed().as_micros() as u64;
        self.last_beat_micros.store(t, Ordering::Relaxed);
    }
}

/// One registered participant.
#[derive(Debug)]
struct Participant {
    name: String,
    last_beat_micros: Arc<AtomicU64>,
    registered_micros: u64,
}

/// A heartbeat registry for long-lived workers (serving shards).
///
/// Workers [`register`](Watchdog::register) once and beat every iteration;
/// a supervisor polls [`stalled`](Watchdog::stalled). Registering a name
/// again (a replaced shard) supersedes the old entry, so an abandoned
/// worker cannot keep its slot alive or keep it stalled.
#[derive(Debug)]
pub struct Watchdog {
    limit: Duration,
    epoch: Instant,
    parts: Mutex<Vec<Participant>>,
}

impl Watchdog {
    /// A watchdog flagging any participant quiet for longer than `limit`.
    pub fn new(limit: Duration) -> Self {
        Self { limit, epoch: Instant::now(), parts: Mutex::new(Vec::new()) }
    }

    /// The stall limit.
    pub fn limit(&self) -> Duration {
        self.limit
    }

    /// Registers (or replaces) a named participant and returns its
    /// heartbeat handle.
    pub fn register(&self, name: &str) -> Heartbeat {
        let cell = Arc::new(AtomicU64::new(NEVER));
        let mut parts = crate::runner::lock_unpoisoned(&self.parts);
        parts.retain(|p| p.name != name);
        parts.push(Participant {
            name: name.to_string(),
            last_beat_micros: Arc::clone(&cell),
            registered_micros: self.epoch.elapsed().as_micros() as u64,
        });
        Heartbeat { last_beat_micros: cell, epoch: self.epoch }
    }

    /// Removes a participant (clean worker shutdown).
    pub fn deregister(&self, name: &str) {
        crate::runner::lock_unpoisoned(&self.parts).retain(|p| p.name != name);
    }

    /// Every participant whose last beat (or registration, if it never
    /// beat) is older than the limit, with how long it has been quiet.
    pub fn stalled(&self) -> Vec<(String, Duration)> {
        let now = self.epoch.elapsed().as_micros() as u64;
        let limit = self.limit.as_micros() as u64;
        crate::runner::lock_unpoisoned(&self.parts)
            .iter()
            .filter_map(|p| {
                let last = match p.last_beat_micros.load(Ordering::Relaxed) {
                    NEVER => p.registered_micros,
                    t => t,
                };
                let quiet = now.saturating_sub(last);
                (quiet > limit).then(|| (p.name.clone(), Duration::from_micros(quiet)))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beating_workers_are_not_stalled() {
        let wd = Watchdog::new(Duration::from_millis(40));
        let hb = wd.register("shard-0");
        hb.beat();
        assert!(wd.stalled().is_empty());
        assert_eq!(wd.limit(), Duration::from_millis(40));
    }

    #[test]
    fn quiet_worker_is_flagged_and_replacement_clears_it() {
        let wd = Watchdog::new(Duration::from_millis(20));
        let hb = wd.register("shard-1");
        hb.beat();
        std::thread::sleep(Duration::from_millis(60));
        let stalled = wd.stalled();
        assert_eq!(stalled.len(), 1);
        assert_eq!(stalled[0].0, "shard-1");
        assert!(stalled[0].1 >= Duration::from_millis(20));
        // Replacing the shard supersedes the stalled entry.
        let hb2 = wd.register("shard-1");
        hb2.beat();
        assert!(wd.stalled().is_empty());
        // The old handle no longer resurrects the entry.
        hb.beat();
        assert!(wd.stalled().is_empty());
    }

    #[test]
    fn never_beating_worker_stalls_after_limit() {
        let wd = Watchdog::new(Duration::from_millis(15));
        let _hb = wd.register("shard-2");
        assert!(wd.stalled().is_empty(), "not stalled at birth");
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(wd.stalled().len(), 1);
        wd.deregister("shard-2");
        assert!(wd.stalled().is_empty());
    }

    #[test]
    fn run_with_deadline_times_out_and_passes_fast_jobs() {
        let fast = run_with_deadline("fast", Box::new(|| 42u32), Duration::from_secs(30));
        assert_eq!(*fast.as_ref().unwrap(), 42);
        let hung = run_with_deadline(
            "hung",
            Box::new(|| {
                std::thread::sleep(Duration::from_secs(60));
                0u32
            }),
            Duration::from_millis(40),
        );
        let e = hung.expect_err("must time out");
        assert!(matches!(e.reason, FailReason::TimedOut(_)));
    }

    fn strings(v: &[&str]) -> impl Iterator<Item = String> + use<> {
        v.iter().map(|s| s.to_string()).collect::<Vec<_>>().into_iter()
    }

    #[test]
    fn timeout_resolution_still_parses() {
        assert_eq!(
            resolve_timeout(strings(&["--job-timeout", "30"]), None),
            Ok(Some(Duration::from_secs(30)))
        );
        assert_eq!(resolve_timeout(strings(&[]), Some("1.5")), Ok(Some(Duration::from_millis(1500))));
        assert!(resolve_timeout(strings(&["--job-timeout", "-1"]), None).is_err());
    }
}
