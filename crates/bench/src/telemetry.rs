//! Interval-telemetry export: writes a simulation's interval snapshots as
//! JSONL (full schema) and CSV (headline columns) files.
//!
//! Every [`crate::run_single`] / [`crate::run_mix`] call funnels through
//! [`export_simulation`] after the run completes. With telemetry off (the
//! default) that is a single integer compare; with telemetry on, one
//! `<run-label>.jsonl` and one `<run-label>.csv` land under the export
//! directory — `PPF_TELEMETRY_DIR`, defaulting to [`DEFAULT_DIR`] — so a
//! checkpointed sweep accumulates one pair of files per (workload, scheme)
//! cell alongside its checkpoint records.

use ppf_sim::{IntervalSnapshot, Simulation};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Export directory when `PPF_TELEMETRY_DIR` is unset.
pub const DEFAULT_DIR: &str = "results/telemetry";

/// Resolves the export directory from `PPF_TELEMETRY_DIR`.
pub fn export_dir() -> PathBuf {
    std::env::var("PPF_TELEMETRY_DIR").map(PathBuf::from).unwrap_or_else(|_| DEFAULT_DIR.into())
}

/// Makes a run label filesystem-safe (sweep keys contain `/`).
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') { c } else { '_' })
        .collect()
}

/// Writes `snapshots` as `<dir>/<label>.jsonl` and `<dir>/<label>.csv`,
/// creating the directory as needed. Returns the two paths.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_snapshots(
    dir: &Path,
    label: &str,
    snapshots: &[IntervalSnapshot],
) -> std::io::Result<(PathBuf, PathBuf)> {
    fs::create_dir_all(dir)?;
    let stem = sanitize(label);

    let jsonl_path = dir.join(format!("{stem}.jsonl"));
    let mut jsonl = fs::File::create(&jsonl_path)?;
    for s in snapshots {
        writeln!(jsonl, "{}", s.to_jsonl())?;
    }

    let csv_path = dir.join(format!("{stem}.csv"));
    let mut csv = fs::File::create(&csv_path)?;
    writeln!(csv, "{}", IntervalSnapshot::CSV_HEADER)?;
    for s in snapshots {
        writeln!(csv, "{}", s.to_csv_row())?;
    }

    Ok((jsonl_path, csv_path))
}

/// Exports a finished simulation's snapshots under `label` if its telemetry
/// was active; no-op (and no filesystem access) otherwise. Export failures
/// must not kill a sweep that already computed its results, so errors are
/// reported on stderr rather than propagated.
pub fn export_simulation(label: &str, sim: &Simulation) -> Option<(PathBuf, PathBuf)> {
    if sim.telemetry().interval == 0 {
        return None;
    }
    match write_snapshots(&export_dir(), label, &sim.all_interval_snapshots()) {
        Ok(paths) => Some(paths),
        Err(e) => {
            eprintln!("warning: telemetry export for {label:?} failed: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppf_sim::{CacheStats, FilterCounters, PrefetchStats};

    fn snap(seq: u64) -> IntervalSnapshot {
        IntervalSnapshot {
            core: 0,
            seq,
            instructions: (seq + 1) * 100,
            cycles: (seq + 1) * 200,
            l2: CacheStats::default(),
            llc_demand_misses: 0,
            prefetch: PrefetchStats::default(),
            filter: FilterCounters::default(),
        }
    }

    #[test]
    fn writes_schema_valid_jsonl_and_csv() {
        let dir = std::env::temp_dir().join(format!("ppf-telemetry-test-{}", std::process::id()));
        let (jsonl, csv) =
            write_snapshots(&dir, "603.bwaves_s/PPF", &[snap(0), snap(1)]).expect("write");
        assert!(jsonl.file_name().unwrap().to_str().unwrap().contains("603.bwaves_s_PPF"));

        let text = fs::read_to_string(&jsonl).unwrap();
        let records = ppf_analysis::parse_jsonl(&text).expect("exported JSONL validates");
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].req("instr"), 200.0);

        let csv_text = fs::read_to_string(&csv).unwrap();
        let mut lines = csv_text.lines();
        assert_eq!(lines.next(), Some(IntervalSnapshot::CSV_HEADER));
        assert_eq!(lines.count(), 2);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sanitize_keeps_names_flat() {
        assert_eq!(sanitize("mix 3/SPP"), "mix_3_SPP");
        assert_eq!(sanitize("a-b_c.d"), "a-b_c.d");
    }
}
