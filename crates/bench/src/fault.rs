//! `PPF_FAULT_INJECT` — the shared chaos-drill specification.
//!
//! One environment variable drives every fault-injection hook in the
//! workspace: the sweep driver's job saboteurs (`panic:` / `hang:`, PR 3)
//! and the serving daemon's chaos modes (tenant panics, checkpoint
//! bit-flips, slow shards, load spikes). Specs are comma-separated, so one
//! drill can combine several faults:
//!
//! ```text
//! PPF_FAULT_INJECT=tenant-panic:t003,checkpoint-bitflip:t007,load-spike:10
//! ```
//!
//! Parsing is *strict*: a malformed spec is a configuration error, and
//! binaries reject it with a clear message and exit code 2 (exactly like a
//! malformed `--threads`) rather than silently running a drill that injects
//! nothing — see [`specs_from_env_or_exit`]. Consumers ignore spec kinds
//! that don't apply to them (a sweep never sees a tenant, a daemon never
//! runs sweep jobs), so one combined spec can drive both.

/// One parsed fault-injection directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// `panic:<substr>` — panic the first pending sweep job whose label
    /// contains the substring.
    JobPanic(String),
    /// `hang:<substr>` — hang the first pending sweep job whose label
    /// contains the substring (exercises the job watchdog).
    JobHang(String),
    /// `tenant-panic:<substr>[@<nth>]` — panic a serving tenant whose id
    /// contains the substring, on its `nth` scored batch (default 1).
    TenantPanic {
        /// Substring of the tenant id to sabotage.
        pat: String,
        /// Which scored batch panics (1-based).
        nth: u64,
    },
    /// `checkpoint-bitflip:<substr>` — flip one payload bit in every
    /// checkpoint record written for tenants whose id contains the
    /// substring (the CRC seal must catch it on warm-start).
    CheckpointBitflip {
        /// Substring of the tenant id whose records are corrupted.
        pat: String,
    },
    /// `slow-shard:<index>:<millis>` — stall shard `index` for `millis`
    /// before each batch it processes (exercises deadlines + the shard
    /// watchdog).
    SlowShard {
        /// Shard index to slow down.
        shard: usize,
        /// Injected delay per batch, in milliseconds.
        millis: u64,
    },
    /// `load-spike:<factor>` — the load generator multiplies its offered
    /// rate by `factor` during its spike window.
    LoadSpike {
        /// Rate multiplier (≥ 1).
        factor: u64,
    },
}

/// The accepted forms, for error messages.
const FORMS: &str = "panic:<substr>, hang:<substr>, tenant-panic:<substr>[@<nth>], \
                     checkpoint-bitflip:<substr>, slow-shard:<index>:<millis>, \
                     load-spike:<factor>";

fn nonempty(pat: &str, form: &str) -> Result<String, String> {
    if pat.is_empty() {
        return Err(format!("PPF_FAULT_INJECT: {form} requires a non-empty pattern"));
    }
    Ok(pat.to_string())
}

fn parse_num(v: &str, what: &str) -> Result<u64, String> {
    v.parse::<u64>()
        .map_err(|_| format!("PPF_FAULT_INJECT: {what} expects a non-negative integer, got `{v}`"))
}

/// Parses one `kind:arg` spec.
fn parse_one(spec: &str) -> Result<FaultSpec, String> {
    let Some((kind, arg)) = spec.split_once(':') else {
        return Err(format!(
            "PPF_FAULT_INJECT: `{spec}` has no `kind:` prefix (accepted forms: {FORMS})"
        ));
    };
    match kind {
        "panic" => Ok(FaultSpec::JobPanic(nonempty(arg, "panic:")?)),
        "hang" => Ok(FaultSpec::JobHang(nonempty(arg, "hang:")?)),
        "tenant-panic" => {
            let (pat, nth) = match arg.split_once('@') {
                Some((p, n)) => {
                    let nth = parse_num(n, "tenant-panic @<nth>")?;
                    if nth == 0 {
                        return Err(
                            "PPF_FAULT_INJECT: tenant-panic @<nth> is 1-based, got 0".to_string()
                        );
                    }
                    (p, nth)
                }
                None => (arg, 1),
            };
            Ok(FaultSpec::TenantPanic { pat: nonempty(pat, "tenant-panic:")?, nth })
        }
        "checkpoint-bitflip" => {
            Ok(FaultSpec::CheckpointBitflip { pat: nonempty(arg, "checkpoint-bitflip:")? })
        }
        "slow-shard" => {
            let Some((idx, ms)) = arg.split_once(':') else {
                return Err(format!(
                    "PPF_FAULT_INJECT: slow-shard expects <index>:<millis>, got `{arg}`"
                ));
            };
            let shard = parse_num(idx, "slow-shard <index>")? as usize;
            let millis = parse_num(ms, "slow-shard <millis>")?;
            if millis == 0 {
                return Err("PPF_FAULT_INJECT: slow-shard <millis> must be at least 1".to_string());
            }
            Ok(FaultSpec::SlowShard { shard, millis })
        }
        "load-spike" => {
            let factor = parse_num(arg, "load-spike <factor>")?;
            if factor == 0 {
                return Err("PPF_FAULT_INJECT: load-spike <factor> must be at least 1".to_string());
            }
            Ok(FaultSpec::LoadSpike { factor })
        }
        other => Err(format!(
            "PPF_FAULT_INJECT: unknown fault kind `{other}` (accepted forms: {FORMS})"
        )),
    }
}

/// Parses a comma-separated fault-spec list.
///
/// # Errors
///
/// Returns a message naming the first malformed spec and listing the
/// accepted forms. An empty string is an error (set the variable to
/// something or unset it).
pub fn parse_specs(s: &str) -> Result<Vec<FaultSpec>, String> {
    if s.trim().is_empty() {
        return Err(format!("PPF_FAULT_INJECT is set but empty (accepted forms: {FORMS})"));
    }
    s.split(',').map(|part| parse_one(part.trim())).collect()
}

/// Reads and parses `PPF_FAULT_INJECT`; unset means no faults.
///
/// # Errors
///
/// Propagates [`parse_specs`] errors.
pub fn specs_from_env() -> Result<Vec<FaultSpec>, String> {
    match std::env::var("PPF_FAULT_INJECT") {
        Ok(s) => parse_specs(&s),
        Err(_) => Ok(Vec::new()),
    }
}

/// [`specs_from_env`] for binary entry points: a malformed spec prints the
/// error and exits with code 2 — the same contract as a malformed
/// `--threads` (see [`crate::runner::thread_count`]).
pub fn specs_from_env_or_exit() -> Vec<FaultSpec> {
    match specs_from_env() {
        Ok(specs) => specs,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pins_every_accepted_form() {
        assert_eq!(parse_specs("panic:SPP").unwrap(), vec![FaultSpec::JobPanic("SPP".into())]);
        assert_eq!(parse_specs("hang:mix00").unwrap(), vec![FaultSpec::JobHang("mix00".into())]);
        assert_eq!(
            parse_specs("tenant-panic:t003").unwrap(),
            vec![FaultSpec::TenantPanic { pat: "t003".into(), nth: 1 }]
        );
        assert_eq!(
            parse_specs("tenant-panic:t003@7").unwrap(),
            vec![FaultSpec::TenantPanic { pat: "t003".into(), nth: 7 }]
        );
        assert_eq!(
            parse_specs("checkpoint-bitflip:t0").unwrap(),
            vec![FaultSpec::CheckpointBitflip { pat: "t0".into() }]
        );
        assert_eq!(
            parse_specs("slow-shard:2:250").unwrap(),
            vec![FaultSpec::SlowShard { shard: 2, millis: 250 }]
        );
        assert_eq!(parse_specs("load-spike:10").unwrap(), vec![FaultSpec::LoadSpike { factor: 10 }]);
    }

    #[test]
    fn comma_separated_specs_combine() {
        let specs = parse_specs("tenant-panic:t1, checkpoint-bitflip:t2 ,load-spike:10").unwrap();
        assert_eq!(specs.len(), 3);
        assert!(matches!(specs[0], FaultSpec::TenantPanic { .. }));
        assert!(matches!(specs[1], FaultSpec::CheckpointBitflip { .. }));
        assert!(matches!(specs[2], FaultSpec::LoadSpike { factor: 10 }));
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        for (spec, needle) in [
            ("", "empty"),
            ("panic", "no `kind:` prefix"),
            ("panic:", "non-empty pattern"),
            ("hang:", "non-empty pattern"),
            ("explode:x", "unknown fault kind `explode`"),
            ("tenant-panic:", "non-empty pattern"),
            ("tenant-panic:t1@", "non-negative integer"),
            ("tenant-panic:t1@zero", "non-negative integer"),
            ("tenant-panic:t1@0", "1-based"),
            ("checkpoint-bitflip:", "non-empty pattern"),
            ("slow-shard:1", "expects <index>:<millis>"),
            ("slow-shard:one:5", "non-negative integer"),
            ("slow-shard:1:0", "at least 1"),
            ("load-spike:", "non-negative integer"),
            ("load-spike:0", "at least 1"),
            ("panic:a,bogus", "no `kind:` prefix"),
        ] {
            let err = parse_specs(spec).expect_err(spec);
            assert!(err.contains(needle), "spec `{spec}`: error {err:?} lacks {needle:?}");
        }
    }
}
