//! Golden end-to-end determinism pin for the data-layout optimizations.
//!
//! The flattened weight arena (ppf-core) and the struct-of-arrays cache
//! (ppf-sim) are pure layout changes: every simulated outcome must be
//! byte-identical to the original per-feature-table / array-of-structs
//! code. This test pins a small fig09-style sweep to a digest recorded
//! from the pre-change implementation (same pattern as the PR 1 parallel
//! determinism tests, but against a stored golden rather than a second
//! run). If any refactor of the perceptron, tables, or cache perturbs a
//! single counter or IPC bit, the digest changes and this test fails.

use ppf_bench::sweep::Sweep;
use ppf_bench::{run_suite_with, RunScale, Scheme};
use ppf_sim::SystemConfig;
use ppf_trace::{Suite, Workload};

/// Renders every counter the sweep produces into a canonical string.
/// IPCs are rendered as exact `f64` bit patterns, so "close" is not
/// "equal" — only bit-identical simulation passes.
fn digest() -> String {
    let workloads: Vec<Workload> = Workload::memory_intensive(Suite::Spec2017)
        .into_iter()
        .take(3)
        .collect();
    let scale = RunScale { warmup: 2_000, measure: 10_000, mixes: 1 };
    let rows =
        run_suite_with(&Sweep::ephemeral("layout_golden", 1), &workloads, SystemConfig::single_core, scale)
            .rows;
    let mut out = String::new();
    for row in &rows {
        for (scheme, report) in &row.reports {
            let core = &report.cores[0];
            out.push_str(&format!(
                "{}/{}: ipc={:016x} cycles={} l1d={:?} l2={:?} llc={:?} pf={:?}\n",
                row.app,
                scheme.label(),
                report.ipc().to_bits(),
                report.total_cycles,
                core.l1d,
                core.l2,
                report.llc,
                core.prefetch,
            ));
        }
        // The PPF row exercises the full filter (arena indexing + both
        // metadata tables); pin its decision counters too.
        let _ = row.report(Scheme::Ppf);
    }
    out
}

/// FNV-1a over the digest keeps the golden constant short while still
/// covering every byte.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Digest hash recorded from the pre-arena, pre-SoA implementation, and
/// re-recorded after two deliberate behaviour fixes: late prefetch merges
/// no longer double-count into `useful` (PrefetchStats), and FxHasher's
/// short-write path mixes width, which re-seeds every hashed container.
const GOLDEN_FNV: u64 = 0xe4e14bf5d49a9800;

#[test]
fn layout_changes_are_byte_identical() {
    let d = digest();
    let h = fnv1a(&d);
    assert_eq!(
        h, GOLDEN_FNV,
        "simulation output diverged from the pre-layout-change golden.\n\
         New digest (fnv1a = {h:#018x}):\n{d}"
    );
}
