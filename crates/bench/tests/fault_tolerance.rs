//! End-to-end fault tolerance for the sweep harness: a panicking job must
//! not take down its sweep, a hung job must be reaped by the watchdog, and
//! checkpoint/resume must skip completed work while reproducing results
//! bit-for-bit.

use ppf_bench::runner::{BoxedJob, FailReason};
use ppf_bench::sweep::{Checkpoint, Sweep};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ppf-fault-tolerance-{tag}-{}", std::process::id()))
}

/// An f64 whose bit pattern exercises the full mantissa (catches any
/// formatting round trip that loses precision).
const AWKWARD: f64 = std::f64::consts::PI / 3.0;

fn job(v: f64) -> BoxedJob<f64> {
    Box::new(move || v)
}

/// One job panics mid-sweep; the others complete, keep their input order,
/// and produce exactly the values they would have produced alone.
#[test]
fn panic_mid_sweep_leaves_other_results_intact() {
    let dir = tmp_dir("panic");
    let sweep = Sweep::new("panic_mid_sweep", 4, None, false, dir.clone());
    let jobs: Vec<(String, BoxedJob<f64>)> = vec![
        ("a".into(), job(1.25)),
        ("boom".into(), Box::new(|| panic!("deliberate test panic"))),
        ("c".into(), job(3.5)),
        ("d".into(), job(-0.0)),
    ];
    let out = sweep.run(jobs);
    assert_eq!(out.ok_count(), 3);
    let labels: Vec<&str> = out.results.iter().map(|(l, _)| l.as_str()).collect();
    assert_eq!(labels, ["a", "boom", "c", "d"], "input order preserved");
    assert_eq!(out.results[0].1.as_ref().unwrap().to_bits(), 1.25f64.to_bits());
    assert_eq!(out.results[2].1.as_ref().unwrap().to_bits(), 3.5f64.to_bits());
    assert_eq!(out.results[3].1.as_ref().unwrap().to_bits(), (-0.0f64).to_bits());
    let err = out.results[1].1.as_ref().unwrap_err();
    assert_eq!(err.label, "boom");
    match &err.reason {
        FailReason::Panicked(msg) => assert!(msg.contains("deliberate test panic"), "{msg}"),
        other => panic!("expected a panic failure, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A hung job is cut off by the watchdog while fast jobs pass through.
#[test]
fn watchdog_reaps_hung_sweep_job() {
    let dir = tmp_dir("hang");
    let sweep =
        Sweep::new("hung_job", 2, Some(Duration::from_millis(50)), false, dir.clone());
    let jobs: Vec<(String, BoxedJob<f64>)> = vec![
        ("fast".into(), job(2.0)),
        (
            "stuck".into(),
            Box::new(|| loop {
                std::thread::sleep(Duration::from_secs(1));
            }),
        ),
    ];
    let out = sweep.run(jobs);
    assert_eq!(out.ok_count(), 1);
    let err = out.results[1].1.as_ref().unwrap_err();
    assert!(
        matches!(err.reason, FailReason::TimedOut(_)),
        "expected a timeout, got {:?}",
        err.reason
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Simulates checkpoint -> kill -> `--resume`: the second process sees the
/// first run's checkpoint file, re-runs only the job that never completed,
/// and every carried-over result is bit-identical to the original.
#[test]
fn resume_skips_completed_jobs_and_is_bit_identical() {
    let dir = tmp_dir("resume");
    std::fs::remove_dir_all(&dir).ok();
    let experiment = "resume_bit_identical";
    let runs = Arc::new(AtomicUsize::new(0));

    // First run: three jobs succeed, the fourth dies ("the kill").
    let first = {
        let sweep = Sweep::new(experiment, 1, None, false, dir.clone());
        let mut jobs: Vec<(String, BoxedJob<f64>)> = Vec::new();
        for (label, v) in [("w0", 0.1), ("w1", AWKWARD), ("w2", 1e-300)] {
            let runs = Arc::clone(&runs);
            jobs.push((
                label.into(),
                Box::new(move || {
                    runs.fetch_add(1, Ordering::SeqCst);
                    v
                }),
            ));
        }
        jobs.push(("w3".into(), Box::new(|| panic!("killed before completing"))));
        sweep.run(jobs)
    };
    assert_eq!(first.ok_count(), 3);
    assert_eq!(runs.load(Ordering::SeqCst), 3);

    // Second run with resume: completed jobs must come from the checkpoint
    // (the counter proves their closures never execute), only w3 re-runs.
    let second = {
        let sweep = Sweep::new(experiment, 1, None, true, dir.clone());
        let mut jobs: Vec<(String, BoxedJob<f64>)> = Vec::new();
        for (label, v) in [("w0", 0.1), ("w1", AWKWARD), ("w2", 1e-300)] {
            let runs = Arc::clone(&runs);
            jobs.push((
                label.into(),
                Box::new(move || {
                    runs.fetch_add(1, Ordering::SeqCst);
                    v
                }),
            ));
        }
        jobs.push(("w3".into(), job(4.0)));
        sweep.run(jobs)
    };
    assert_eq!(runs.load(Ordering::SeqCst), 3, "resumed jobs must not re-run");
    assert_eq!(second.resumed, 3);
    assert_eq!(second.ok_count(), 4);
    for i in 0..3 {
        let (la, a) = &first.results[i];
        let (lb, b) = &second.results[i];
        assert_eq!(la, lb);
        // Bit-identity, not float equality: encode() renders exact f64 bits.
        assert_eq!(
            a.as_ref().unwrap().encode(),
            b.as_ref().unwrap().encode(),
            "{la} must be byte-identical across resume"
        );
    }
    assert_eq!(second.results[3].1.as_ref().unwrap().to_bits(), 4.0f64.to_bits());
    std::fs::remove_dir_all(&dir).ok();
}

/// NaN survives the checkpoint round trip with its exact payload (a plain
/// `{}` format would lose it); the checkpoint file itself carries the CRC
/// seal and the schema version tag.
#[test]
fn checkpoint_file_is_versioned_and_nan_safe() {
    let dir = tmp_dir("schema");
    std::fs::remove_dir_all(&dir).ok();
    let experiment = "schema_check";
    {
        let sweep = Sweep::new(experiment, 1, None, false, dir.clone());
        let out = sweep.run(vec![("nan".to_string(), job(f64::NAN))]);
        assert_eq!(out.ok_count(), 1);
    }
    let path = dir.join(format!("{experiment}.jsonl"));
    let text = std::fs::read_to_string(&path).expect("checkpoint written");
    assert!(text.starts_with("{\"crc\":\""), "CRC seal missing: {text}");
    assert!(text.contains("\"v\":2,"), "schema version tag missing: {text}");
    assert!(
        ppf_bench::ckpt::check(text.lines().next().unwrap()).is_ok(),
        "seal must verify: {text}"
    );
    {
        let sweep = Sweep::new(experiment, 1, None, true, dir.clone());
        let out = sweep.run(vec![(
            "nan".to_string(),
            Box::new(|| -> f64 { panic!("must come from the checkpoint") }) as BoxedJob<f64>,
        )]);
        assert!(out.results[0].1.as_ref().unwrap().is_nan());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `PPF_FAULT_INJECT=panic:<substr>` sabotages exactly one matching pending
/// job — the mechanism `scripts/verify.sh --faults` drives from outside.
#[test]
fn fault_injection_env_panics_matching_job() {
    // Env vars are process-global; runner/sweep tests in this binary run in
    // other threads, so scope the variable tightly and use a unique label.
    let dir = tmp_dir("inject");
    std::env::set_var("PPF_FAULT_INJECT", "panic:inject-target");
    let sweep = Sweep::new("fault_inject", 1, None, false, dir.clone());
    let out = sweep.run(vec![
        ("other".to_string(), job(1.0)),
        ("inject-target".to_string(), job(2.0)),
    ]);
    std::env::remove_var("PPF_FAULT_INJECT");
    assert_eq!(out.ok_count(), 1);
    let err = out.results[1].1.as_ref().unwrap_err();
    match &err.reason {
        FailReason::Panicked(msg) => {
            assert!(msg.contains("injected fault"), "{msg}");
        }
        other => panic!("expected injected panic, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
