//! The parallel harness must be a pure scheduling change: running a sweep
//! with N workers has to produce results byte-identical to the sequential
//! run, in the same order. These tests compare `Debug` renderings of the
//! full result structures, which cover every counter in every report.

use ppf_bench::{run_mix_suite_with_threads, run_suite_with_threads, RunScale};
use ppf_sim::SystemConfig;
use ppf_trace::{MixGenerator, Suite, Workload};

/// Small enough to keep the test quick, large enough for the prefetchers
/// and replacement state to diverge if a run were perturbed.
fn tiny() -> RunScale {
    RunScale { warmup: 2_000, measure: 10_000, mixes: 2 }
}

#[test]
fn suite_parallel_matches_sequential() {
    let workloads: Vec<Workload> = Workload::memory_intensive(Suite::Spec2017)
        .into_iter()
        .take(3)
        .collect();
    let seq = run_suite_with_threads(&workloads, SystemConfig::single_core, tiny(), 1);
    let par = run_suite_with_threads(&workloads, SystemConfig::single_core, tiny(), 4);
    assert_eq!(format!("{seq:?}"), format!("{par:?}"));
}

#[test]
fn mix_suite_parallel_matches_sequential() {
    let pool = Workload::memory_intensive(Suite::Spec2017);
    let mixes = MixGenerator::new(pool, 7).draw(2, 2);
    let (seq, seq_instr) = run_mix_suite_with_threads(&mixes, 2, tiny(), 1);
    let (par, par_instr) = run_mix_suite_with_threads(&mixes, 2, tiny(), 4);
    assert_eq!(seq_instr, par_instr);
    assert_eq!(format!("{seq:?}"), format!("{par:?}"));
}
