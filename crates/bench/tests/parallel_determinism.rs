//! The parallel harness must be a pure scheduling change: running a sweep
//! with N workers has to produce results byte-identical to the sequential
//! run, in the same order. These tests compare `Debug` renderings of the
//! full result structures, which cover every counter in every report.

use ppf_bench::sweep::Sweep;
use ppf_bench::{run_mix_suite_with, run_suite_with, RunScale};
use ppf_sim::SystemConfig;
use ppf_trace::{MixGenerator, Suite, Workload};

/// Small enough to keep the test quick, large enough for the prefetchers
/// and replacement state to diverge if a run were perturbed.
fn tiny() -> RunScale {
    RunScale { warmup: 2_000, measure: 10_000, mixes: 2 }
}

#[test]
fn suite_parallel_matches_sequential() {
    let workloads: Vec<Workload> = Workload::memory_intensive(Suite::Spec2017)
        .into_iter()
        .take(3)
        .collect();
    let seq = run_suite_with(
        &Sweep::ephemeral("det_suite_seq", 1),
        &workloads,
        SystemConfig::single_core,
        tiny(),
    );
    let par = run_suite_with(
        &Sweep::ephemeral("det_suite_par", 4),
        &workloads,
        SystemConfig::single_core,
        tiny(),
    );
    assert!(seq.failures.is_empty() && par.failures.is_empty());
    assert_eq!(format!("{:?}", seq.rows), format!("{:?}", par.rows));
}

#[test]
fn mix_suite_parallel_matches_sequential() {
    let pool = Workload::memory_intensive(Suite::Spec2017);
    let mixes = MixGenerator::new(pool, 7).draw(2, 2);
    let seq = run_mix_suite_with(&Sweep::ephemeral("det_mix_seq", 1), &mixes, 2, tiny());
    let par = run_mix_suite_with(&Sweep::ephemeral("det_mix_par", 4), &mixes, 2, tiny());
    assert!(seq.failures.is_empty() && par.failures.is_empty());
    assert_eq!(seq.instructions, par.instructions);
    assert_eq!(format!("{:?}", seq.runs), format!("{:?}", par.runs));
}
