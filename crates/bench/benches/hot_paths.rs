//! Criterion micro-benchmarks for the two hot paths rebuilt in the
//! zero-allocation PR: the flattened-arena filter inference fast path
//! (`infer_indexed` + `record_indexed`, no heap traffic) and the
//! struct-of-arrays cache tag scan (`probe` / `demand_access` / `fill`).
//!
//! These isolate the data-layout work from whole-simulator noise: the
//! `perceptron` bench measures the legacy `infer` API, this one measures
//! the indexed path the simulator wrapper actually drives.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ppf::{FeatureInputs, IndexList, Perceptron, PpfConfig, PpfFilter};
use ppf_sim::{Cache, CacheConfig, FillKind, ReplacementPolicy};

fn inputs(i: u64) -> FeatureInputs {
    FeatureInputs {
        trigger_addr: 0x1000_0000 + i * 64,
        trigger_pc: 0x400000 + (i % 64) * 4,
        pc_1: 0x400100,
        pc_2: 0x400200,
        pc_3: 0x400300,
        signature: (i % 4096) as u16,
        last_signature: ((i + 7) % 4096) as u16,
        confidence: (i % 101) as u8,
        delta: ((i % 63) as i16) - 31,
        depth: (i % 16) as u8 + 1,
        source: (i % 3) as u8,
    }
}

fn bench_filter_fast_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("filter_fast_path");
    g.throughput(Throughput::Elements(1));
    g.bench_function("infer_indexed", |b| {
        let mut f = PpfFilter::new(PpfConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(f.infer_indexed(&inputs(i)))
        });
    });
    g.bench_function("infer_record_indexed", |b| {
        let mut f = PpfFilter::new(PpfConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let inp = inputs(i);
            let (d, sum, idxs) = f.infer_indexed(&inp);
            f.record_indexed(black_box(inp.trigger_addr + 64), inp, idxs, sum, d);
            black_box(d)
        });
    });
    g.finish();
}

/// Batched SIMD scoring over the paper-sized weight arena at the depth
/// windows that matter: 1 (degenerate/scalar-equivalent), 8 (the default
/// `PPF_BATCH_WINDOW`), and 40 (SPP's max_candidates — a full lookahead
/// burst in one call).
fn bench_sum_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("sum_batch");
    // The paper's Table 3 perceptron block.
    let mut p = Perceptron::new(&[4096, 4096, 4096, 4096, 2048, 2048, 1024, 1024, 128]);
    for i in 0..5000usize {
        let locals: Vec<usize> = (0..9).map(|f| i.wrapping_mul(f + 3)).collect();
        p.train(&locals, i % 3 != 0);
    }
    let lists: Vec<IndexList> = (0..64u32)
        .map(|c| {
            p.globalize(
                &(0..9)
                    .map(|f| c.wrapping_mul(2654435761).wrapping_add(f * 40503))
                    .collect::<IndexList>(),
            )
        })
        .collect();
    for n in [1usize, 8, 40] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("batch_{n}"), |b| {
            let mut out = [0i32; 64];
            b.iter(|| {
                p.sum_batch(black_box(&lists[..n]), &mut out[..n]);
                black_box(out[n - 1])
            });
        });
    }
    g.finish();
}

fn l2_cache() -> Cache {
    Cache::new(&CacheConfig {
        size_bytes: 512 * 1024,
        ways: 8,
        latency: 14,
        mshrs: 16,
        policy: ReplacementPolicy::Lru,
    })
}

fn bench_cache_tag_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_tag_scan");
    g.throughput(Throughput::Elements(1));

    // Pre-fill a 512 KB / 8-way L2 with a strided working set twice its
    // capacity so probes split roughly evenly between hits and misses and
    // every set is full (worst-case tag scans).
    let mut warm = l2_cache();
    let lines = (warm.sets() * warm.ways()) as u64;
    for i in 0..lines * 2 {
        warm.fill(i, FillKind::Demand, false);
    }

    g.bench_function("probe", |b| {
        let cache = warm.clone();
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9e37_79b9); // golden-ratio stride over blocks
            black_box(cache.probe(i % (lines * 4)))
        });
    });
    g.bench_function("demand_access", |b| {
        let mut cache = warm.clone();
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9e37_79b9);
            black_box(cache.demand_access(i % (lines * 4), false))
        });
    });
    g.bench_function("fill_evict", |b| {
        let mut cache = warm.clone();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(cache.fill(i, FillKind::Prefetch, false))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_filter_fast_path, bench_sum_batch, bench_cache_tag_scan);
criterion_main!(benches);
