//! Criterion macro-benchmark for the event-horizon run loop: a fixed
//! 4-core multi-programmed mix simulated end to end, once with cycle
//! skipping (the default) and once ticking every cycle (`PPF_NO_SKIP`
//! semantics, forced programmatically). Throughput is reported in
//! simulated cycles per host second, so the two bars are directly
//! comparable — both modes simulate the identical cycle count — and the
//! gap is the horizon win in isolation from full-sweep harness noise.
//!
//! A probe run before the measurement prints the mix's skip ratio
//! (skipped cycles / total cycles) on stderr; the deterministic simulator
//! guarantees the benched runs replay the same schedule.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ppf::Ppf;
use ppf_prefetchers::Spp;
use ppf_sim::{Simulation, SystemConfig};
use ppf_trace::{TraceBuilder, Workload};

const WARMUP: u64 = 2_000;
const MEASURE: u64 = 20_000;

/// A deliberately mixed quartet: mcf (latency-bound pointer chasing, long
/// stalls → high skip), lbm (bandwidth streaming), gcc (irregular control)
/// and omnetpp (pointer-heavy discrete-event churn).
const MIX: [&str; 4] = ["605.mcf_s", "619.lbm_s", "602.gcc_s", "620.omnetpp_s"];

fn build_sim() -> Simulation {
    let mut sim = Simulation::new(SystemConfig::multi_core(MIX.len()));
    for (core, name) in MIX.iter().enumerate() {
        let w = Workload::by_name(name).expect("workload in mix");
        let trace = Box::new(TraceBuilder::new(w).seed(7 + core as u64).build());
        sim.add_core(*name, trace, Box::new(Ppf::new(Spp::default())));
    }
    sim
}

fn bench_tick_loop(c: &mut Criterion) {
    // Probe run: the simulator is deterministic, so every benched run (in
    // either mode) covers exactly this many cycles; Criterion's element
    // count turns wall time into simulated cycles per second.
    let mut probe = build_sim();
    probe.set_cycle_skip(true);
    probe.run(WARMUP, MEASURE);
    let stats = probe.cycle_stats();
    eprintln!(
        "[tick_loop] 4-core mix: {} cycles total, {} ticked, {} skipped (skip ratio {:.2})",
        stats.total_cycles,
        stats.ticks,
        stats.skipped_cycles,
        stats.skip_ratio(),
    );

    let mut g = c.benchmark_group("tick_loop");
    g.sample_size(10);
    g.throughput(Throughput::Elements(stats.total_cycles));
    for (name, skip) in [("horizon_skip", true), ("naive_tick", false)] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut sim = build_sim();
                    sim.set_cycle_skip(skip);
                    sim
                },
                |mut sim| sim.run(WARMUP, MEASURE),
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tick_loop);
criterion_main!(benches);
