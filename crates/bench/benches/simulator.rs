//! Criterion macro-benchmark: whole-simulator throughput (instructions
//! simulated per second) with and without prefetching.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ppf::Ppf;
use ppf_prefetchers::Spp;
use ppf_sim::{run_single_core, NoPrefetcher, Prefetcher, SystemConfig};
use ppf_trace::{TraceBuilder, Workload};

const INSTR: u64 = 100_000;

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.throughput(Throughput::Elements(INSTR));
    for (name, mk) in [
        ("baseline", (|| Box::new(NoPrefetcher) as Box<dyn Prefetcher>) as fn() -> Box<dyn Prefetcher>),
        ("spp", || Box::new(Spp::default())),
        ("ppf", || Box::new(Ppf::new(Spp::default()))),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let w = Workload::by_name("621.wrf_s").expect("workload");
                    (Box::new(TraceBuilder::new(w).seed(5).build()), mk())
                },
                |(trace, pf)| {
                    run_single_core(SystemConfig::single_core(), "wrf", trace, pf, 10_000, INSTR)
                },
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
