//! Criterion micro-benchmarks for the PPF perceptron path: inference,
//! recording and training throughput (the operations the paper argues fit
//! in L2 access time, Sec 5.6).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ppf::{Decision, FeatureInputs, PpfConfig, PpfFilter};

fn inputs(i: u64) -> FeatureInputs {
    FeatureInputs {
        trigger_addr: 0x1000_0000 + i * 64,
        trigger_pc: 0x400000 + (i % 64) * 4,
        pc_1: 0x400100,
        pc_2: 0x400200,
        pc_3: 0x400300,
        signature: (i % 4096) as u16,
        last_signature: ((i + 7) % 4096) as u16,
        confidence: (i % 101) as u8,
        delta: ((i % 63) as i16) - 31,
        depth: (i % 16) as u8 + 1,
        source: (i % 3) as u8,
    }
}

fn bench_inference(c: &mut Criterion) {
    let mut g = c.benchmark_group("perceptron");
    g.throughput(Throughput::Elements(1));
    g.bench_function("infer", |b| {
        let mut f = PpfFilter::new(PpfConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(f.infer(&inputs(i)))
        });
    });
    g.bench_function("infer_record", |b| {
        let mut f = PpfFilter::new(PpfConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let inp = inputs(i);
            let (d, sum) = f.infer(&inp);
            f.record(black_box(inp.trigger_addr + 64), inp, sum, d);
            black_box(d)
        });
    });
    g.bench_function("full_train_cycle", |b| {
        let mut f = PpfFilter::new(PpfConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let inp = inputs(i);
            let addr = inp.trigger_addr + 64;
            let (d, sum) = f.infer(&inp);
            f.record(addr, inp, sum, d);
            if d == Decision::Reject || i.is_multiple_of(2) {
                f.train_on_demand(addr);
            } else {
                f.train_on_eviction(addr, false);
            }
        });
    });
    g.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
