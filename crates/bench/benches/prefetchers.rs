//! Criterion micro-benchmarks: candidate-generation throughput of each
//! prefetcher on a mixed access stream.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ppf::Ppf;
use ppf_prefetchers::{Bop, DaAmpm, Spp};
use ppf_sim::{AccessContext, Prefetcher};
use ppf_trace::{TraceBuilder, Workload};

fn drive<P: Prefetcher>(c: &mut Criterion, name: &str, mut pf: P) {
    let w = Workload::by_name("602.gcc_s").expect("workload");
    let mut gen = TraceBuilder::new(w).seed(3).shrink(3).build();
    let mut out = Vec::new();
    let mut cycle = 0u64;
    let mut g = c.benchmark_group("prefetchers");
    g.throughput(Throughput::Elements(1));
    g.bench_function(name, |b| {
        b.iter(|| {
            let rec = gen.next_record();
            cycle += 1;
            let ctx = AccessContext {
                pc: rec.pc,
                addr: rec.addr,
                is_store: false,
                l2_hit: cycle.is_multiple_of(2),
                cycle,
                core: 0,
            };
            out.clear();
            pf.on_demand_access(&ctx, &mut out);
            black_box(out.len())
        });
    });
    g.finish();
}

fn bench_all(c: &mut Criterion) {
    drive(c, "spp", Spp::default());
    drive(c, "bop", Bop::default());
    drive(c, "da_ampm", DaAmpm::default());
    drive(c, "ppf_over_spp", Ppf::new(Spp::default()));
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
