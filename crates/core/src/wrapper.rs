//! `Ppf<S>`: the filter wrapped around a lookahead prefetcher, presented to
//! the simulator as an ordinary [`Prefetcher`] (paper Fig. 4).
//!
//! On every L2 demand access the wrapper (1) trains the filter against the
//! access (Prefetch/Reject table feedback), (2) pulls the *unthrottled*
//! candidate stream from the underlying prefetcher, (3) runs inference per
//! candidate and (4) forwards the accepted ones at the fill level the
//! perceptron chose. L2 evictions of unused prefetched lines train the
//! filter downward.

use crate::features::FeatureInputs;
use crate::filter::{Decision, FilterStats, PpfConfig, PpfFilter, ScoredBatch, MAX_BATCH};
use ppf_prefetchers::{depth_window_len, Candidate, LookaheadSource};
use ppf_sim::{
    AccessContext, EvictionInfo, FillLevel, FilterCounters, Prefetcher, PrefetchRequest,
};

/// Depth buckets tracked by [`PpfStats`] (depths beyond clamp into the
/// last bucket).
pub const DEPTH_BUCKETS: usize = 16;

/// PPF-specific run statistics (Sec 6.1 depth analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PpfStats {
    /// Candidates accepted (either fill level).
    pub accepted: u64,
    /// Sum of accepted candidates' depths.
    pub accepted_depth_sum: u64,
    /// Candidates rejected.
    pub rejected: u64,
    /// Accepted candidates per lookahead depth (bucket = depth - 1).
    pub accepted_by_depth: [u64; DEPTH_BUCKETS],
    /// Rejected candidates per lookahead depth.
    pub rejected_by_depth: [u64; DEPTH_BUCKETS],
    /// Useful outcomes per depth (first demand use of a tracked prefetch).
    pub useful_by_depth: [u64; DEPTH_BUCKETS],
}

impl Default for PpfStats {
    fn default() -> Self {
        Self {
            accepted: 0,
            accepted_depth_sum: 0,
            rejected: 0,
            accepted_by_depth: [0; DEPTH_BUCKETS],
            rejected_by_depth: [0; DEPTH_BUCKETS],
            useful_by_depth: [0; DEPTH_BUCKETS],
        }
    }
}

fn bucket(depth: u8) -> usize {
    (usize::from(depth).saturating_sub(1)).min(DEPTH_BUCKETS - 1)
}

impl PpfStats {
    /// Average lookahead depth of accepted prefetches.
    pub fn average_accepted_depth(&self) -> f64 {
        if self.accepted == 0 {
            return 0.0;
        }
        self.accepted_depth_sum as f64 / self.accepted as f64
    }
}

/// The Perceptron-Based Prefetch Filter over a lookahead prefetcher `S`.
///
/// ```
/// use ppf::Ppf;
/// use ppf_prefetchers::Spp;
/// use ppf_sim::{AccessContext, Prefetcher};
///
/// let mut prefetcher = Ppf::new(Spp::default());
/// let ctx = AccessContext { pc: 0x400, addr: 0x10_0040, is_store: false, l2_hit: false, cycle: 1, core: 0 };
/// let mut requests = Vec::new();
/// prefetcher.on_demand_access(&ctx, &mut requests);
/// // A cold SPP has no pattern yet, so nothing is suggested — but the
/// // filter saw the trigger and is ready to train.
/// assert_eq!(prefetcher.filter_stats().inferences as usize, requests.len());
/// ```
#[derive(Debug, Clone)]
pub struct Ppf<S> {
    source: S,
    filter: PpfFilter,
    // The paper's three global PC trackers (Table 3).
    pc_history: [u64; 3],
    candidate_buf: Vec<Candidate>,
    /// Scratch for batched scoring: one depth-window of feature inputs and
    /// the scored sums/indices. Lives in the struct so the demand-access
    /// path stays allocation-free.
    inputs_buf: [FeatureInputs; MAX_BATCH],
    batch: ScoredBatch,
    /// Depth levels per `infer_batch` call (clamped config knob).
    batch_window: usize,
    /// Run statistics.
    pub stats: PpfStats,
}

impl<S: LookaheadSource> Ppf<S> {
    /// Wraps `source` with a default-configured filter.
    pub fn new(source: S) -> Self {
        Self::with_config(source, PpfConfig::default())
    }

    /// Wraps `source` with an explicit filter configuration.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`PpfFilter::new`].
    pub fn with_config(source: S, cfg: PpfConfig) -> Self {
        let batch_window = cfg.batch_window.clamp(1, MAX_BATCH);
        Self {
            source,
            filter: PpfFilter::new(cfg),
            pc_history: [0; 3],
            candidate_buf: Vec::new(),
            inputs_buf: [FeatureInputs::default(); MAX_BATCH],
            batch: ScoredBatch::default(),
            batch_window,
            stats: PpfStats::default(),
        }
    }

    /// The effective depth-window size (config value clamped to
    /// `1..=MAX_BATCH`).
    pub fn batch_window(&self) -> usize {
        self.batch_window
    }

    /// Borrow of the filter (weights, tables, stats).
    pub fn filter(&self) -> &PpfFilter {
        &self.filter
    }

    /// Mutable borrow of the filter (e.g. to load a weight snapshot).
    pub fn filter_mut(&mut self) -> &mut PpfFilter {
        &mut self.filter
    }

    /// Filter counters.
    pub fn filter_stats(&self) -> FilterStats {
        self.filter.stats
    }

    /// Borrow of the underlying prefetcher.
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Mutable borrow of the underlying prefetcher.
    pub fn source_mut(&mut self) -> &mut S {
        &mut self.source
    }

    fn build_inputs(&self, ctx: &AccessContext, c: &Candidate, last_signature: u16) -> FeatureInputs {
        FeatureInputs {
            trigger_addr: ctx.addr,
            trigger_pc: c.meta.trigger_pc,
            pc_1: self.pc_history[0],
            pc_2: self.pc_history[1],
            pc_3: self.pc_history[2],
            signature: c.meta.signature,
            last_signature,
            confidence: c.meta.confidence,
            delta: c.meta.delta,
            depth: c.meta.depth,
        }
    }
}

impl<S: LookaheadSource> Prefetcher for Ppf<S> {
    fn on_demand_access(&mut self, ctx: &AccessContext, out: &mut Vec<PrefetchRequest>) {
        // Feedback first (paper Fig. 5 step 3): the demand address may match
        // a recorded prefetch or a rejected candidate.
        self.filter.train_on_demand(ctx.addr);

        // Pull the unthrottled candidate stream.
        let mut cands = std::mem::take(&mut self.candidate_buf);
        cands.clear();
        self.source.candidates(ctx, &mut cands);

        // Judge the stream one depth-window at a time: feature-index and
        // score a whole window with one batched SIMD pass, then commit
        // decisions strictly in candidate order (judge_scored rescores if
        // recording an earlier candidate trained the weights), so emission
        // order and τ-threshold semantics match the per-candidate loop
        // exactly. `last_signature` chains through the lookahead path (the
        // previous step's signature) and depends only on candidate
        // metadata, so the whole window's inputs can be built up front.
        let mut last_signature = cands.first().map_or(0, |c| c.meta.signature);
        let mut start = 0usize;
        while start < cands.len() {
            let n = depth_window_len(&cands[start..], self.batch_window, MAX_BATCH);
            for (j, c) in cands[start..start + n].iter().enumerate() {
                let inputs = self.build_inputs(ctx, c, last_signature);
                last_signature = c.meta.signature;
                self.inputs_buf[j] = inputs;
            }
            self.filter.infer_batch(&self.inputs_buf[..n], &mut self.batch);
            for (j, c) in cands[start..start + n].iter().enumerate() {
                // Zero-allocation fast path: judging hands back the weight-
                // arena indices and recording stores them for training.
                let (decision, sum, indices) = self.filter.judge_scored(&mut self.batch, j);
                self.filter.record_indexed(c.addr, self.inputs_buf[j], indices, sum, decision);
                match decision {
                    Decision::PrefetchL2 => {
                        self.stats.accepted += 1;
                        self.stats.accepted_depth_sum += u64::from(c.meta.depth);
                        self.stats.accepted_by_depth[bucket(c.meta.depth)] += 1;
                        out.push(PrefetchRequest::new(c.addr, FillLevel::L2));
                    }
                    Decision::PrefetchLlc => {
                        self.stats.accepted += 1;
                        self.stats.accepted_depth_sum += u64::from(c.meta.depth);
                        self.stats.accepted_by_depth[bucket(c.meta.depth)] += 1;
                        out.push(PrefetchRequest::new(c.addr, FillLevel::Llc));
                    }
                    Decision::Reject => {
                        self.stats.rejected += 1;
                        self.stats.rejected_by_depth[bucket(c.meta.depth)] += 1;
                    }
                }
            }
            start += n;
        }
        self.candidate_buf = cands;

        // Update the global PC trackers *after* using them: they must hold
        // the PCs before the current trigger (paper Sec 4.2).
        if self.pc_history[0] != ctx.pc {
            self.pc_history = [ctx.pc, self.pc_history[0], self.pc_history[1]];
        }
    }

    fn on_useful_prefetch(&mut self, addr: u64) {
        // Forward to the source (SPP's global-accuracy α) and train.
        self.source.on_useful_prefetch(addr);
        if let Some(depth) = self.filter.tracked_depth(addr) {
            self.stats.useful_by_depth[bucket(depth)] += 1;
        }
        self.filter.train_on_demand(addr);
    }

    fn on_eviction(&mut self, info: &EvictionInfo) {
        if info.was_prefetch {
            self.filter.train_on_eviction(info.addr, info.was_used);
        }
    }

    fn on_prefetch_fill(&mut self, addr: u64, _level: FillLevel) {
        // Keep the source's global-accuracy denominator honest.
        self.source.on_prefetch_fill(addr);
    }

    fn on_llc_eviction(&mut self, info: &EvictionInfo) {
        // LLC-directed prefetches never enter the L2, so their negative
        // feedback arrives here. The Prefetch-Table tag match filters out
        // other cores' lines.
        if info.was_prefetch && !info.was_used {
            self.filter.train_on_eviction(info.addr, false);
        }
    }

    fn name(&self) -> &'static str {
        "ppf"
    }

    fn filter_counters(&self) -> FilterCounters {
        let s = self.filter.stats;
        FilterCounters {
            inferences: s.inferences,
            accepted_l2: s.accepted_l2,
            accepted_llc: s.accepted_llc,
            rejected: s.rejected,
            positive_trains: s.positive_trains,
            negative_trains: s.negative_trains,
            false_negative_recoveries: s.false_negative_recoveries,
            replacement_trains: s.replacement_trains,
            batch_window: self.batch_window as u64,
        }
    }

    fn telemetry_dump(&self) -> String {
        crate::introspect::render_report(&self.filter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppf_prefetchers::CandidateMeta;

    /// A source that proposes two candidates per access: one "good" target
    /// (trigger + 64) and one "bad" target (trigger + 4096·8, distinct page).
    struct TwoFaced;

    impl LookaheadSource for TwoFaced {
        fn candidates(&mut self, ctx: &AccessContext, out: &mut Vec<Candidate>) {
            let meta = |depth, conf, delta| CandidateMeta {
                depth,
                signature: 0x111,
                confidence: conf,
                delta,
                trigger_pc: ctx.pc,
                trigger_addr: ctx.addr,
            };
            out.push(Candidate { addr: ctx.addr + 64, meta: meta(1, 90, 1) });
            out.push(Candidate { addr: ctx.addr + 4096 * 8, meta: meta(4, 15, 63) });
        }
        fn name(&self) -> &'static str {
            "two-faced"
        }
    }

    fn ctx(pc: u64, addr: u64) -> AccessContext {
        AccessContext { pc, addr, is_store: false, l2_hit: false, cycle: 0, core: 0 }
    }

    #[test]
    fn cold_ppf_forwards_candidates() {
        let mut ppf = Ppf::new(TwoFaced);
        let mut out = Vec::new();
        ppf.on_demand_access(&ctx(0x400, 0x10_0000), &mut out);
        assert_eq!(out.len(), 2, "cold filter accepts everything");
    }

    #[test]
    fn learns_to_reject_the_bad_candidate() {
        let mut ppf = Ppf::new(TwoFaced);
        let mut out = Vec::new();
        for i in 0..400u64 {
            out.clear();
            let addr = 0x10_0000 + i * 64;
            ppf.on_demand_access(&ctx(0x400, addr), &mut out);
            // The +64 candidate is always used (next access lands on it)...
            // that happens naturally through on_demand_access's training.
            // The far candidate is always evicted unused:
            ppf.on_eviction(&EvictionInfo {
                addr: addr + 4096 * 8,
                was_prefetch: true,
                was_used: false,
            });
        }
        out.clear();
        ppf.on_demand_access(&ctx(0x400, 0x20_0000), &mut out);
        assert_eq!(out.len(), 1, "bad candidate must be filtered: {out:?}");
        assert_eq!(out[0].addr, 0x20_0000 + 64);
        assert!(ppf.filter_stats().negative_trains > 0);
        assert!(ppf.stats.rejected > 0);
    }

    #[test]
    fn pc_history_excludes_current_trigger() {
        let mut ppf = Ppf::new(TwoFaced);
        let mut out = Vec::new();
        ppf.on_demand_access(&ctx(0xAAA0, 0x1000), &mut out);
        ppf.on_demand_access(&ctx(0xBBB0, 0x2000), &mut out);
        assert_eq!(ppf.pc_history, [0xBBB0, 0xAAA0, 0]);
    }

    #[test]
    fn average_depth_tracks_accepts() {
        let mut ppf = Ppf::new(TwoFaced);
        let mut out = Vec::new();
        ppf.on_demand_access(&ctx(0x400, 0x5000), &mut out);
        // Cold: both accepted, depths 1 and 4 -> average 2.5.
        assert!((ppf.stats.average_accepted_depth() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_of_non_prefetch_ignored() {
        let mut ppf = Ppf::new(TwoFaced);
        ppf.on_eviction(&EvictionInfo { addr: 0x9000, was_prefetch: false, was_used: true });
        assert_eq!(ppf.filter_stats().negative_trains, 0);
    }

    #[test]
    fn name_is_ppf() {
        assert_eq!(Ppf::new(TwoFaced).name(), "ppf");
    }

    #[test]
    fn batch_window_is_clamped_and_reported() {
        let cfg = PpfConfig { batch_window: 0, ..PpfConfig::default() };
        let ppf = Ppf::with_config(TwoFaced, cfg);
        assert_eq!(ppf.batch_window(), 1);
        let cfg = PpfConfig { batch_window: 10_000, ..PpfConfig::default() };
        let ppf = Ppf::with_config(TwoFaced, cfg);
        assert_eq!(ppf.batch_window(), MAX_BATCH);
        assert_eq!(ppf.filter_counters().batch_window, MAX_BATCH as u64);
    }

    /// The depth-window size is a pure scheduling knob: any value must
    /// produce the same requests, decisions, and trained weights.
    #[test]
    fn window_size_does_not_change_behavior() {
        let run = |window: usize| {
            let cfg = PpfConfig { batch_window: window, ..PpfConfig::default() };
            let mut ppf = Ppf::with_config(TwoFaced, cfg);
            let mut all = Vec::new();
            for i in 0..300u64 {
                let addr = 0x10_0000 + i * 64;
                ppf.on_demand_access(&ctx(0x400, addr), &mut all);
                ppf.on_eviction(&EvictionInfo {
                    addr: addr + 4096 * 8,
                    was_prefetch: true,
                    was_used: false,
                });
            }
            (all, ppf.filter_stats(), ppf.filter().save_weights())
        };
        let baseline = run(1);
        for window in [2, 8, MAX_BATCH] {
            let got = run(window);
            assert_eq!(got.0, baseline.0, "requests differ at window {window}");
            assert_eq!(got.1, baseline.1, "stats differ at window {window}");
            assert_eq!(got.2, baseline.2, "weights differ at window {window}");
        }
    }
}
