//! `Ppf<S>`: the filter wrapped around a lookahead prefetcher, presented to
//! the simulator as an ordinary [`Prefetcher`] (paper Fig. 4).
//!
//! On every L2 demand access the wrapper (1) trains the filter against the
//! access (Prefetch/Reject table feedback), (2) pulls the *unthrottled*
//! candidate stream from the underlying prefetcher, (3) runs inference per
//! candidate and (4) forwards the accepted ones at the fill level the
//! perceptron chose. L2 evictions of unused prefetched lines train the
//! filter downward.

use crate::features::FeatureInputs;
use crate::filter::{Decision, FilterStats, PpfConfig, PpfFilter, ScoredBatch, MAX_BATCH};
use ppf_prefetchers::{
    depth_window_len, Candidate, Feedback, LookaheadSource, SourceId, MAX_SOURCES,
};
use ppf_sim::{
    AccessContext, EvictionInfo, FillLevel, FilterCounters, Prefetcher, PrefetchRequest,
};

/// Depth buckets tracked by [`PpfStats`] (depths beyond clamp into the
/// last bucket).
pub const DEPTH_BUCKETS: usize = 16;

/// PPF-specific run statistics (Sec 6.1 depth analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PpfStats {
    /// Candidates accepted (either fill level).
    pub accepted: u64,
    /// Sum of accepted candidates' depths.
    pub accepted_depth_sum: u64,
    /// Candidates rejected.
    pub rejected: u64,
    /// Accepted candidates per lookahead depth (bucket = depth - 1).
    pub accepted_by_depth: [u64; DEPTH_BUCKETS],
    /// Rejected candidates per lookahead depth.
    pub rejected_by_depth: [u64; DEPTH_BUCKETS],
    /// Useful outcomes per depth (first demand use of a tracked prefetch).
    pub useful_by_depth: [u64; DEPTH_BUCKETS],
    /// Useful outcomes per originating scheme, resolved from the
    /// issued-prefetch tracking (first-issuer wins). Bare sources land in
    /// bucket 0; hybrids spread by member.
    pub useful_by_source: [u64; MAX_SOURCES],
    /// Useful outcomes whose tracking entry was already displaced, so no
    /// scheme could be credited (the feedback was broadcast).
    pub unattributed_useful: u64,
}

impl Default for PpfStats {
    fn default() -> Self {
        Self {
            accepted: 0,
            accepted_depth_sum: 0,
            rejected: 0,
            accepted_by_depth: [0; DEPTH_BUCKETS],
            rejected_by_depth: [0; DEPTH_BUCKETS],
            useful_by_depth: [0; DEPTH_BUCKETS],
            useful_by_source: [0; MAX_SOURCES],
            unattributed_useful: 0,
        }
    }
}

fn bucket(depth: u8) -> usize {
    (usize::from(depth).saturating_sub(1)).min(DEPTH_BUCKETS - 1)
}

impl PpfStats {
    /// Average lookahead depth of accepted prefetches.
    pub fn average_accepted_depth(&self) -> f64 {
        if self.accepted == 0 {
            return 0.0;
        }
        self.accepted_depth_sum as f64 / self.accepted as f64
    }
}

/// The Perceptron-Based Prefetch Filter over a lookahead prefetcher `S`.
///
/// ```
/// use ppf::Ppf;
/// use ppf_prefetchers::Spp;
/// use ppf_sim::{AccessContext, Prefetcher};
///
/// let mut prefetcher = Ppf::new(Spp::default());
/// let ctx = AccessContext { pc: 0x400, addr: 0x10_0040, is_store: false, l2_hit: false, cycle: 1, core: 0 };
/// let mut requests = Vec::new();
/// prefetcher.on_demand_access(&ctx, &mut requests);
/// // A cold SPP has no pattern yet, so nothing is suggested — but the
/// // filter saw the trigger and is ready to train.
/// assert_eq!(prefetcher.filter_stats().inferences as usize, requests.len());
/// ```
#[derive(Debug, Clone)]
pub struct Ppf<S> {
    source: S,
    filter: PpfFilter,
    // The paper's three global PC trackers (Table 3).
    pc_history: [u64; 3],
    candidate_buf: Vec<Candidate>,
    /// Scratch for batched scoring: one depth-window of feature inputs and
    /// the scored sums/indices. Lives in the struct so the demand-access
    /// path stays allocation-free.
    inputs_buf: [FeatureInputs; MAX_BATCH],
    batch: ScoredBatch,
    /// Depth levels per `infer_batch` call (clamped config knob).
    batch_window: usize,
    /// Run statistics.
    pub stats: PpfStats,
}

impl<S: LookaheadSource> Ppf<S> {
    /// Wraps `source` with a default-configured filter.
    pub fn new(source: S) -> Self {
        Self::with_config(source, PpfConfig::default())
    }

    /// Wraps `source` with an explicit filter configuration.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`PpfFilter::new`].
    pub fn with_config(source: S, cfg: PpfConfig) -> Self {
        let batch_window = cfg.batch_window.clamp(1, MAX_BATCH);
        Self {
            source,
            filter: PpfFilter::new(cfg),
            pc_history: [0; 3],
            candidate_buf: Vec::new(),
            inputs_buf: [FeatureInputs::default(); MAX_BATCH],
            batch: ScoredBatch::default(),
            batch_window,
            stats: PpfStats::default(),
        }
    }

    /// The effective depth-window size (config value clamped to
    /// `1..=MAX_BATCH`).
    pub fn batch_window(&self) -> usize {
        self.batch_window
    }

    /// Borrow of the filter (weights, tables, stats).
    pub fn filter(&self) -> &PpfFilter {
        &self.filter
    }

    /// Mutable borrow of the filter (e.g. to load a weight snapshot).
    pub fn filter_mut(&mut self) -> &mut PpfFilter {
        &mut self.filter
    }

    /// Filter counters.
    pub fn filter_stats(&self) -> FilterStats {
        self.filter.stats
    }

    /// Borrow of the underlying prefetcher.
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Mutable borrow of the underlying prefetcher.
    pub fn source_mut(&mut self) -> &mut S {
        &mut self.source
    }

    fn build_inputs(&self, ctx: &AccessContext, c: &Candidate, last_signature: u16) -> FeatureInputs {
        FeatureInputs {
            trigger_addr: ctx.addr,
            trigger_pc: c.meta.trigger_pc,
            pc_1: self.pc_history[0],
            pc_2: self.pc_history[1],
            pc_3: self.pc_history[2],
            signature: c.meta.signature,
            last_signature,
            // Boundary clamp: `FeatureInputs.confidence` is documented
            // 0..=100, and an out-of-range value would silently index the
            // wrong row of the 128-entry confidence table. Well-behaved
            // sources already construct via `Candidate::new` (which asserts
            // in debug); this keeps literal-built candidates honest too.
            confidence: c.meta.confidence.min(100),
            delta: c.meta.delta,
            depth: c.meta.depth,
            source: c.meta.source.0,
        }
    }

    /// Resolves address-keyed cache feedback to the provenance recorded for
    /// the issued prefetch, falling back to broadcast when the tracking
    /// entry is gone.
    fn resolve_feedback(&self, addr: u64) -> Feedback {
        match self.filter.tracked_source(addr) {
            Some(src) => Feedback { addr, source: SourceId(src) },
            None => Feedback::unattributed(addr),
        }
    }
}

impl<S: LookaheadSource> Prefetcher for Ppf<S> {
    fn on_demand_access(&mut self, ctx: &AccessContext, out: &mut Vec<PrefetchRequest>) {
        // Feedback first (paper Fig. 5 step 3): the demand address may match
        // a recorded prefetch or a rejected candidate.
        self.filter.train_on_demand(ctx.addr);

        // Pull the unthrottled candidate stream.
        let mut cands = std::mem::take(&mut self.candidate_buf);
        cands.clear();
        self.source.candidates(ctx, &mut cands);

        // Judge the stream one depth-window at a time: feature-index and
        // score a whole window with one batched SIMD pass, then commit
        // decisions strictly in candidate order (judge_scored rescores if
        // recording an earlier candidate trained the weights), so emission
        // order and τ-threshold semantics match the per-candidate loop
        // exactly. `last_signature` chains through the lookahead path (the
        // previous step's signature) and depends only on candidate
        // metadata, so the whole window's inputs can be built up front.
        let mut last_signature = cands.first().map_or(0, |c| c.meta.signature);
        let mut start = 0usize;
        while start < cands.len() {
            let n = depth_window_len(&cands[start..], self.batch_window, MAX_BATCH);
            for (j, c) in cands[start..start + n].iter().enumerate() {
                let inputs = self.build_inputs(ctx, c, last_signature);
                last_signature = c.meta.signature;
                self.inputs_buf[j] = inputs;
            }
            self.filter.infer_batch(&self.inputs_buf[..n], &mut self.batch);
            for (j, c) in cands[start..start + n].iter().enumerate() {
                // Zero-allocation fast path: judging hands back the weight-
                // arena indices and recording stores them for training.
                let (decision, sum, indices) = self.filter.judge_scored(&mut self.batch, j);
                self.filter.record_indexed(c.addr, self.inputs_buf[j], indices, sum, decision);
                match decision {
                    Decision::PrefetchL2 => {
                        self.stats.accepted += 1;
                        self.stats.accepted_depth_sum += u64::from(c.meta.depth);
                        self.stats.accepted_by_depth[bucket(c.meta.depth)] += 1;
                        out.push(PrefetchRequest::new(c.addr, FillLevel::L2));
                    }
                    Decision::PrefetchLlc => {
                        self.stats.accepted += 1;
                        self.stats.accepted_depth_sum += u64::from(c.meta.depth);
                        self.stats.accepted_by_depth[bucket(c.meta.depth)] += 1;
                        out.push(PrefetchRequest::new(c.addr, FillLevel::Llc));
                    }
                    Decision::Reject => {
                        self.stats.rejected += 1;
                        self.stats.rejected_by_depth[bucket(c.meta.depth)] += 1;
                    }
                }
            }
            start += n;
        }
        self.candidate_buf = cands;

        // Update the global PC trackers *after* using them: they must hold
        // the PCs before the current trigger (paper Sec 4.2).
        if self.pc_history[0] != ctx.pc {
            self.pc_history = [ctx.pc, self.pc_history[0], self.pc_history[1]];
        }
    }

    fn on_useful_prefetch(&mut self, addr: u64) {
        // Resolve provenance from the issued-prefetch tracking *before* any
        // training touches the tables, then forward to the source (SPP's
        // global-accuracy α). Routing by recorded provenance — not by
        // address match inside the source — is what keeps credit with the
        // scheme that actually issued the prefetch when several members of
        // a hybrid predicted the same block.
        let fb = self.resolve_feedback(addr);
        self.source.on_useful_prefetch(fb);
        if let Some(depth) = self.filter.tracked_depth(addr) {
            self.stats.useful_by_depth[bucket(depth)] += 1;
        }
        match fb.source.counter_index() {
            Some(i) => self.stats.useful_by_source[i] += 1,
            None => self.stats.unattributed_useful += 1,
        }
        self.filter.train_on_demand(addr);
    }

    fn on_eviction(&mut self, info: &EvictionInfo) {
        if info.was_prefetch {
            self.filter.train_on_eviction(info.addr, info.was_used);
        }
    }

    fn on_prefetch_fill(&mut self, addr: u64, _level: FillLevel) {
        // Keep the source's global-accuracy denominator honest, crediting
        // the member that issued the fill when provenance is still tracked.
        let fb = self.resolve_feedback(addr);
        self.source.on_prefetch_fill(fb);
    }

    fn on_llc_eviction(&mut self, info: &EvictionInfo) {
        // LLC-directed prefetches never enter the L2, so their negative
        // feedback arrives here. The Prefetch-Table tag match filters out
        // other cores' lines.
        if info.was_prefetch && !info.was_used {
            self.filter.train_on_eviction(info.addr, false);
        }
    }

    fn name(&self) -> &'static str {
        "ppf"
    }

    fn filter_counters(&self) -> FilterCounters {
        let s = self.filter.stats;
        FilterCounters {
            inferences: s.inferences,
            accepted_l2: s.accepted_l2,
            accepted_llc: s.accepted_llc,
            rejected: s.rejected,
            positive_trains: s.positive_trains,
            negative_trains: s.negative_trains,
            false_negative_recoveries: s.false_negative_recoveries,
            replacement_trains: s.replacement_trains,
            batch_window: self.batch_window as u64,
        }
    }

    fn telemetry_dump(&self) -> String {
        crate::introspect::render_report(&self.filter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppf_prefetchers::CandidateMeta;

    /// A source that proposes two candidates per access: one "good" target
    /// (trigger + 64) and one "bad" target (trigger + 4096·8, distinct page).
    struct TwoFaced;

    impl LookaheadSource for TwoFaced {
        fn candidates(&mut self, ctx: &AccessContext, out: &mut Vec<Candidate>) {
            let meta = |depth, conf, delta| CandidateMeta {
                depth,
                signature: 0x111,
                confidence: conf,
                delta,
                trigger_pc: ctx.pc,
                trigger_addr: ctx.addr,
                source: SourceId::PRIMARY,
            };
            out.push(Candidate { addr: ctx.addr + 64, meta: meta(1, 90, 1) });
            out.push(Candidate { addr: ctx.addr + 4096 * 8, meta: meta(4, 15, 63) });
        }
        fn name(&self) -> &'static str {
            "two-faced"
        }
    }

    fn ctx(pc: u64, addr: u64) -> AccessContext {
        AccessContext { pc, addr, is_store: false, l2_hit: false, cycle: 0, core: 0 }
    }

    #[test]
    fn cold_ppf_forwards_candidates() {
        let mut ppf = Ppf::new(TwoFaced);
        let mut out = Vec::new();
        ppf.on_demand_access(&ctx(0x400, 0x10_0000), &mut out);
        assert_eq!(out.len(), 2, "cold filter accepts everything");
    }

    #[test]
    fn learns_to_reject_the_bad_candidate() {
        let mut ppf = Ppf::new(TwoFaced);
        let mut out = Vec::new();
        for i in 0..400u64 {
            out.clear();
            let addr = 0x10_0000 + i * 64;
            ppf.on_demand_access(&ctx(0x400, addr), &mut out);
            // The +64 candidate is always used (next access lands on it)...
            // that happens naturally through on_demand_access's training.
            // The far candidate is always evicted unused:
            ppf.on_eviction(&EvictionInfo {
                addr: addr + 4096 * 8,
                was_prefetch: true,
                was_used: false,
            });
        }
        out.clear();
        ppf.on_demand_access(&ctx(0x400, 0x20_0000), &mut out);
        assert_eq!(out.len(), 1, "bad candidate must be filtered: {out:?}");
        assert_eq!(out[0].addr, 0x20_0000 + 64);
        assert!(ppf.filter_stats().negative_trains > 0);
        assert!(ppf.stats.rejected > 0);
    }

    #[test]
    fn pc_history_excludes_current_trigger() {
        let mut ppf = Ppf::new(TwoFaced);
        let mut out = Vec::new();
        ppf.on_demand_access(&ctx(0xAAA0, 0x1000), &mut out);
        ppf.on_demand_access(&ctx(0xBBB0, 0x2000), &mut out);
        assert_eq!(ppf.pc_history, [0xBBB0, 0xAAA0, 0]);
    }

    #[test]
    fn average_depth_tracks_accepts() {
        let mut ppf = Ppf::new(TwoFaced);
        let mut out = Vec::new();
        ppf.on_demand_access(&ctx(0x400, 0x5000), &mut out);
        // Cold: both accepted, depths 1 and 4 -> average 2.5.
        assert!((ppf.stats.average_accepted_depth() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_of_non_prefetch_ignored() {
        let mut ppf = Ppf::new(TwoFaced);
        ppf.on_eviction(&EvictionInfo { addr: 0x9000, was_prefetch: false, was_used: true });
        assert_eq!(ppf.filter_stats().negative_trains, 0);
    }

    #[test]
    fn name_is_ppf() {
        assert_eq!(Ppf::new(TwoFaced).name(), "ppf");
    }

    #[test]
    fn batch_window_is_clamped_and_reported() {
        let cfg = PpfConfig { batch_window: 0, ..PpfConfig::default() };
        let ppf = Ppf::with_config(TwoFaced, cfg);
        assert_eq!(ppf.batch_window(), 1);
        let cfg = PpfConfig { batch_window: 10_000, ..PpfConfig::default() };
        let ppf = Ppf::with_config(TwoFaced, cfg);
        assert_eq!(ppf.batch_window(), MAX_BATCH);
        assert_eq!(ppf.filter_counters().batch_window, MAX_BATCH as u64);
    }

    /// A source that pushes one literal candidate per access at a fixed
    /// confidence, bypassing `Candidate::new`'s construction-time clamp.
    struct RawConf(u8);

    impl LookaheadSource for RawConf {
        fn candidates(&mut self, ctx: &AccessContext, out: &mut Vec<Candidate>) {
            out.push(Candidate {
                addr: ctx.addr + 64,
                meta: CandidateMeta {
                    depth: 1,
                    signature: 0x222,
                    confidence: self.0,
                    delta: 1,
                    trigger_pc: ctx.pc,
                    trigger_addr: ctx.addr,
                    source: SourceId::PRIMARY,
                },
            });
        }
        fn name(&self) -> &'static str {
            "raw-conf"
        }
    }

    /// Regression pin: `FeatureInputs.confidence` is documented 0..=100 but
    /// the `LookaheadSource` boundary used to pass raw values through, so an
    /// out-of-range confidence silently indexed the wrong row of the
    /// 128-entry confidence table. The wrapper now clamps at input
    /// construction: a misbehaving source is bit-identical to the same
    /// source clamped to 100.
    #[test]
    fn out_of_range_confidence_clamps_at_the_filter_boundary() {
        let run = |conf: u8| {
            let mut ppf = Ppf::new(RawConf(conf));
            let mut all = Vec::new();
            for i in 0..300u64 {
                let addr = 0x30_0000 + i * 64;
                ppf.on_demand_access(&ctx(0x400, addr), &mut all);
                if i % 3 == 0 {
                    ppf.on_eviction(&EvictionInfo {
                        addr: addr + 64,
                        was_prefetch: true,
                        was_used: false,
                    });
                }
            }
            (all, ppf.filter_stats(), ppf.filter().save_weights())
        };
        assert_eq!(run(250), run(100), "251 candidates must index the conf-100 row");
    }

    /// Counts provenance-routed feedback events (the member schemes of the
    /// hybrid in the mis-attribution pin below).
    struct Counting {
        name: &'static str,
        useful: std::rc::Rc<std::cell::Cell<u32>>,
        fills: std::rc::Rc<std::cell::Cell<u32>>,
    }

    impl LookaheadSource for Counting {
        fn candidates(&mut self, ctx: &AccessContext, out: &mut Vec<Candidate>) {
            // Every member predicts the SAME next block.
            out.push(Candidate::new(
                ctx.addr + 64,
                CandidateMeta {
                    depth: 1,
                    signature: 0x333,
                    confidence: 90,
                    delta: 1,
                    trigger_pc: ctx.pc,
                    trigger_addr: ctx.addr,
                    source: SourceId::PRIMARY,
                },
            ));
        }
        fn on_useful_prefetch(&mut self, _fb: Feedback) {
            self.useful.set(self.useful.get() + 1);
        }
        fn on_prefetch_fill(&mut self, _fb: Feedback) {
            self.fills.set(self.fills.get() + 1);
        }
        fn name(&self) -> &'static str {
            self.name
        }
    }

    /// Bugfix pin for address-only feedback mis-attribution: when two
    /// members of a hybrid (an SPP-like and a BOP-like stream here) predict
    /// the same block, `on_useful_prefetch(addr)` used to credit whichever
    /// source matched the address. Credit must instead follow the recorded
    /// provenance of the issued prefetch — first-issuer wins, exactly one
    /// member credited.
    #[test]
    fn shared_address_credit_goes_to_the_issuing_member() {
        use ppf_prefetchers::Hybrid;
        use std::cell::Cell;
        use std::rc::Rc;

        type Counters = Vec<(Rc<Cell<u32>>, Rc<Cell<u32>>)>;
        let counters: Counters =
            (0..2).map(|_| (Rc::new(Cell::new(0)), Rc::new(Cell::new(0)))).collect();
        let hybrid = Hybrid::new(vec![
            Box::new(Counting {
                name: "spp-like",
                useful: counters[0].0.clone(),
                fills: counters[0].1.clone(),
            }),
            Box::new(Counting {
                name: "bop-like",
                useful: counters[1].0.clone(),
                fills: counters[1].1.clone(),
            }),
        ]);
        let mut ppf = Ppf::new(hybrid);
        let mut out = Vec::new();
        ppf.on_demand_access(&ctx(0x400, 0x10_0000), &mut out);
        // Cold filter accepts both candidates (the simulator's prefetch
        // queue dedups the duplicate address); the tracking table keeps the
        // FIRST issuer's provenance for the shared block.
        assert_eq!(out.len(), 2);
        assert_eq!(ppf.filter().tracked_source(0x10_0040), Some(0));

        // The prefetched block proves useful: exactly the first issuer
        // (member 0) is credited, not both and not the address-matching one.
        ppf.on_useful_prefetch(0x10_0040);
        assert_eq!(counters[0].0.get(), 1, "issuing member must be credited");
        assert_eq!(counters[1].0.get(), 0, "non-issuing member must not be credited");
        assert_eq!(ppf.stats.useful_by_source[0], 1);
        assert_eq!(ppf.stats.useful_by_source[1], 0);
        assert_eq!(ppf.stats.unattributed_useful, 0);

        // Fill feedback routes by the same provenance.
        ppf.on_prefetch_fill(0x10_0040, FillLevel::L2);
        assert_eq!(counters[0].1.get(), 1);
        assert_eq!(counters[1].1.get(), 0);

        // Feedback for an address with no tracking entry broadcasts to all
        // members (the fail-open path) and counts as unattributed.
        ppf.on_useful_prefetch(0x77_0000);
        assert_eq!(counters[0].0.get(), 2);
        assert_eq!(counters[1].0.get(), 1);
        assert_eq!(ppf.stats.unattributed_useful, 1);
    }

    /// The depth-window size is a pure scheduling knob: any value must
    /// produce the same requests, decisions, and trained weights.
    #[test]
    fn window_size_does_not_change_behavior() {
        let run = |window: usize| {
            let cfg = PpfConfig { batch_window: window, ..PpfConfig::default() };
            let mut ppf = Ppf::with_config(TwoFaced, cfg);
            let mut all = Vec::new();
            for i in 0..300u64 {
                let addr = 0x10_0000 + i * 64;
                ppf.on_demand_access(&ctx(0x400, addr), &mut all);
                ppf.on_eviction(&EvictionInfo {
                    addr: addr + 4096 * 8,
                    was_prefetch: true,
                    was_used: false,
                });
            }
            (all, ppf.filter_stats(), ppf.filter().save_weights())
        };
        let baseline = run(1);
        for window in [2, 8, MAX_BATCH] {
            let got = run(window);
            assert_eq!(got.0, baseline.0, "requests differ at window {window}");
            assert_eq!(got.1, baseline.1, "stats differ at window {window}");
            assert_eq!(got.2, baseline.2, "weights differ at window {window}");
        }
    }
}
