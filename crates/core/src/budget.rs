//! Hardware storage accounting (paper Sec 5.6, Tables 2 and 3).
//!
//! Reproduces the paper's bit budget: SPP's structures, the nine perceptron
//! weight tables, the Prefetch and Reject tables, the GHR, the accuracy
//! counters and the global PC trackers — 322,240 bits ≈ 39.34 KB total.


use crate::filter::PpfConfig;
use crate::tables::{prefetch_table_entry_bits, reject_table_entry_bits};
use ppf_prefetchers::SppConfig;

/// One row of the storage table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetRow {
    /// Structure name.
    pub structure: &'static str,
    /// Number of entries.
    pub entries: u64,
    /// Bits per entry (amortized).
    pub bits_per_entry: u64,
    /// Total bits.
    pub total_bits: u64,
}

/// The full storage budget of an SPP + PPF configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageBudget {
    /// Per-structure rows.
    pub rows: Vec<BudgetRow>,
}

impl StorageBudget {
    /// Computes the budget for a given SPP and PPF configuration.
    pub fn compute(spp: &SppConfig, ppf: &PpfConfig) -> Self {
        let mut rows = Vec::new();

        // Signature Table: valid(1) + tag(16) + last offset(6) + sig(12) +
        // LRU(6) = 41 bits, padded to the paper's 43 (the paper rounds the
        // entry to 11008/256 = 43 bits).
        let st_bits = 43;
        rows.push(BudgetRow {
            structure: "Signature Table",
            entries: spp.signature_table_entries as u64,
            bits_per_entry: st_bits,
            total_bits: spp.signature_table_entries as u64 * st_bits,
        });

        // Pattern Table: C_sig(4) + 4×C_delta(4) + 4×delta(7) = 48 bits.
        let pt_bits = 4 + spp.deltas_per_entry as u64 * (4 + 7);
        rows.push(BudgetRow {
            structure: "Pattern Table",
            entries: spp.pattern_table_entries as u64,
            bits_per_entry: pt_bits,
            total_bits: spp.pattern_table_entries as u64 * pt_bits,
        });

        // Perceptron weight tables: 5 bits per weight.
        let weight_entries: u64 = ppf.features.iter().map(|f| f.table_entries() as u64).sum();
        rows.push(BudgetRow {
            structure: "Perceptron Weights",
            entries: weight_entries,
            bits_per_entry: 5,
            total_bits: weight_entries * 5,
        });

        rows.push(BudgetRow {
            structure: "Prefetch Table",
            entries: ppf.prefetch_table_entries as u64,
            bits_per_entry: prefetch_table_entry_bits(),
            total_bits: ppf.prefetch_table_entries as u64 * prefetch_table_entry_bits(),
        });
        rows.push(BudgetRow {
            structure: "Reject Table",
            entries: ppf.reject_table_entries as u64,
            bits_per_entry: reject_table_entry_bits(),
            total_bits: ppf.reject_table_entries as u64 * reject_table_entry_bits(),
        });

        // GHR: signature(12) + confidence(8) + last offset(6) + delta(7).
        let ghr_bits = 33;
        rows.push(BudgetRow {
            structure: "Global History Register",
            entries: spp.ghr_entries as u64,
            bits_per_entry: ghr_bits,
            total_bits: spp.ghr_entries as u64 * ghr_bits,
        });

        // Accuracy counters: C_total and C_useful, 10 bits each.
        rows.push(BudgetRow {
            structure: "Accuracy Counters",
            entries: 2,
            bits_per_entry: 10,
            total_bits: 20,
        });

        // Global PC trackers: 3 × 12 bits.
        rows.push(BudgetRow {
            structure: "Global PC Trackers",
            entries: 3,
            bits_per_entry: 12,
            total_bits: 36,
        });

        Self { rows }
    }

    /// Total bits across all structures.
    pub fn total_bits(&self) -> u64 {
        self.rows.iter().map(|r| r.total_bits).sum()
    }

    /// Total kilobytes.
    pub fn total_kb(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / 1024.0
    }

    /// Renders the budget as the paper's Table 3.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<26} {:>8} {:>14} {:>12}\n",
            "Structure", "Entries", "Bits/entry", "Total bits"
        ));
        for r in &self.rows {
            s.push_str(&format!(
                "{:<26} {:>8} {:>14} {:>12}\n",
                r.structure, r.entries, r.bits_per_entry, r.total_bits
            ));
        }
        s.push_str(&format!(
            "Total: {} bits = {:.2} KB\n",
            self.total_bits(),
            self.total_kb()
        ));
        s
    }
}

/// The adder-tree depth needed to sum one weight per feature
/// (`ceil(log2(n))`, paper Sec 5.6: 4 steps for 9 features).
pub fn adder_tree_depth(num_features: usize) -> u32 {
    (num_features.max(1) as u32).next_power_of_two().trailing_zeros()
}

/// Convenience: the default design's budget.
///
/// ```
/// let budget = ppf::default_budget();
/// assert_eq!(budget.total_bits(), 322_240); // the paper's Table 3 total
/// ```
pub fn default_budget() -> StorageBudget {
    StorageBudget::compute(&SppConfig::default(), &PpfConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureKind;

    #[test]
    fn matches_paper_table3_totals() {
        let b = default_budget();
        let row = |name: &str| b.rows.iter().find(|r| r.structure == name).unwrap().total_bits;
        assert_eq!(row("Signature Table"), 11_008);
        assert_eq!(row("Pattern Table"), 24_576);
        assert_eq!(row("Perceptron Weights"), 113_280);
        assert_eq!(row("Prefetch Table"), 87_040);
        assert_eq!(row("Reject Table"), 86_016);
        assert_eq!(row("Global History Register"), 264);
        assert_eq!(row("Accuracy Counters"), 20);
        assert_eq!(row("Global PC Trackers"), 36);
        // The paper's bottom line.
        assert_eq!(b.total_bits(), 322_240);
        assert!((b.total_kb() - 39.34).abs() < 0.01);
    }

    #[test]
    fn adder_tree_matches_paper() {
        // ceil(log2 9) = 4 steps (paper Sec 5.6).
        assert_eq!(adder_tree_depth(9), 4);
        assert_eq!(adder_tree_depth(8), 3);
        assert_eq!(adder_tree_depth(1), 0);
    }

    #[test]
    fn render_contains_total() {
        let s = default_budget().render();
        assert!(s.contains("322240 bits"));
        assert!(s.contains("39.34 KB"));
    }

    #[test]
    fn scaling_features_scales_budget() {
        let ppf =
            PpfConfig { features: vec![FeatureKind::Confidence], ..PpfConfig::default() };
        let b = StorageBudget::compute(&SppConfig::default(), &ppf);
        assert!(b.total_bits() < default_budget().total_bits());
    }
}
