//! The perceptron filter proper: inference, recording, and training
//! (paper Sec 3.1, Figure 5).

use crate::features::{index_list, FeatureInputs, FeatureKind, IndexList};
use crate::introspect::DecisionTelemetry;
use crate::perceptron::{Perceptron, WeightList};
use crate::tables::MetaTable;
use ppf_prefetchers::MAX_SOURCES;
use ppf_sim::addr::block_number;

/// Most candidates one [`ScoredBatch`] holds (and the most one
/// [`PpfFilter::infer_batch`] call accepts). Sized above SPP's
/// `max_candidates` (40) so a full lookahead burst fits in one batch.
pub const MAX_BATCH: usize = 64;

/// Default [`PpfConfig::batch_window`]: how many consecutive lookahead
/// depth levels are scored per [`PpfFilter::infer_batch`] call.
pub const DEFAULT_BATCH_WINDOW: usize = 8;

/// Resolves the depth-window size from `PPF_BATCH_WINDOW`: unset, empty, or
/// unparsable means [`DEFAULT_BATCH_WINDOW`]; numeric values are clamped to
/// `1..=MAX_BATCH`.
pub fn batch_window_from_env() -> usize {
    match std::env::var("PPF_BATCH_WINDOW") {
        Ok(raw) if !raw.trim().is_empty() => match raw.trim().parse::<usize>() {
            Ok(n) => n.clamp(1, MAX_BATCH),
            Err(_) => {
                eprintln!("PPF_BATCH_WINDOW={raw:?} is not a number; using {DEFAULT_BATCH_WINDOW}");
                DEFAULT_BATCH_WINDOW
            }
        },
        _ => DEFAULT_BATCH_WINDOW,
    }
}

/// Inference outcome for one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Sum ≥ τ_hi: high confidence, fill into the L2.
    PrefetchL2,
    /// τ_lo ≤ sum < τ_hi: moderate confidence, fill into the larger LLC.
    PrefetchLlc,
    /// Sum < τ_lo: predicted useless, do not prefetch.
    Reject,
}

/// PPF configuration.
///
/// Threshold defaults follow the authors' released ChampSim implementation
/// (the paper gives the mechanism but not the constants); see DESIGN.md §5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PpfConfig {
    /// τ_hi: at or above, prefetch into L2.
    pub tau_hi: i32,
    /// τ_lo: at or above (but below τ_hi), prefetch into LLC; below, reject.
    pub tau_lo: i32,
    /// θ_p: positive-side training saturation — correct positives train only
    /// while the sum is below this.
    pub theta_p: i32,
    /// θ_n: negative-side training saturation — correct negatives train only
    /// while the sum is above this.
    pub theta_n: i32,
    /// Prefetch Table entries.
    pub prefetch_table_entries: usize,
    /// Reject Table entries.
    pub reject_table_entries: usize,
    /// Two-stage replacement training: a Prefetch-Table entry displaced
    /// before being used moves to the Reject Table (probation) instead of
    /// vanishing; negative training fires only when it falls off *both*
    /// tables unused, and a demand meanwhile recovers it positively. The
    /// paper trains on cache evictions only; at this crate's trace densities
    /// the 1,024-entry table turns over several times faster than the L2, so
    /// eviction feedback alone starves the negative side (see DESIGN.md §5).
    pub train_on_replacement: bool,
    /// The feature set (defaults to the paper's nine).
    pub features: Vec<FeatureKind>,
    /// Keep the most recent training events for offline analysis (0 = off).
    pub event_log_capacity: usize,
    /// Lookahead depth levels batched per [`PpfFilter::infer_batch`] call
    /// (clamped to `1..=MAX_BATCH`; purely a scheduling knob — results are
    /// bit-identical at any value). Defaults from `PPF_BATCH_WINDOW`.
    pub batch_window: usize,
}

impl Default for PpfConfig {
    fn default() -> Self {
        Self {
            tau_hi: -5,
            tau_lo: -15,
            theta_p: 90,
            theta_n: -80,
            prefetch_table_entries: 1024,
            reject_table_entries: 1024,
            train_on_replacement: true,
            features: FeatureKind::default_set(),
            event_log_capacity: 0,
            batch_window: batch_window_from_env(),
        }
    }
}

impl PpfConfig {
    /// Configuration for filtering a fused multi-scheme stream (see
    /// `ppf_prefetchers::Hybrid`): the default thresholds and tables with
    /// [`FeatureKind::hybrid_set`], so the perceptron carries a per-source
    /// trust table on top of the paper's nine features.
    pub fn hybrid() -> Self {
        Self { features: FeatureKind::hybrid_set(), ..Self::default() }
    }
}

/// Filter counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Candidates evaluated.
    pub inferences: u64,
    /// Accepted toward the L2.
    pub accepted_l2: u64,
    /// Accepted toward the LLC.
    pub accepted_llc: u64,
    /// Rejected.
    pub rejected: u64,
    /// Upward training events (useful prefetches / recovered rejects).
    pub positive_trains: u64,
    /// Downward training events (useless prefetches evicted).
    pub negative_trains: u64,
    /// Demand hits on rejected candidates (false negatives recovered).
    pub false_negative_recoveries: u64,
    /// Negative trainings triggered by table replacement (a prefetch entry
    /// displaced before any demand used it).
    pub replacement_trains: u64,
    /// Accepted candidates (either fill level) per originating scheme,
    /// indexed by `FeatureInputs::source` (clamped to the last bucket).
    /// Bare sources land entirely in bucket 0; hybrids spread by member.
    pub accepted_by_source: [u64; MAX_SOURCES],
    /// Rejected candidates per originating scheme.
    pub rejected_by_source: [u64; MAX_SOURCES],
}

/// One logged training event: the weights read at inference time for each
/// feature, and whether the prefetch turned out useful. Feeds the paper's
/// Sec 5.5 Pearson methodology. `Copy` (inline [`WeightList`]), so logging
/// into the preallocated ring never touches the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainingEvent {
    /// Weight per feature at the moment of training.
    pub weights: WeightList,
    /// Ground truth: the candidate was useful.
    pub useful: bool,
}

/// A depth-window of candidates scored in one [`PpfFilter::infer_batch`]
/// call: per-candidate arena indices and perceptron sums, plus the weight
/// [epoch](Perceptron::epoch) they were scored under.
///
/// Scoring is split from judging so the whole window can be summed with one
/// transposed SIMD pass, while decisions are still issued strictly in
/// candidate order by [`PpfFilter::judge_scored`] — which rescores a
/// candidate if recording a previous one trained the weights in between.
/// That makes the batched path bit-identical to the sequential
/// infer/record loop.
#[derive(Debug, Clone, Copy)]
pub struct ScoredBatch {
    len: usize,
    epoch: u64,
    sums: [i32; MAX_BATCH],
    indices: [IndexList; MAX_BATCH],
    /// Per-candidate provenance, carried so [`PpfFilter::judge_scored`]
    /// attributes its decision counters exactly like the sequential path.
    sources: [u8; MAX_BATCH],
}

impl Default for ScoredBatch {
    fn default() -> Self {
        Self {
            len: 0,
            epoch: 0,
            sums: [0; MAX_BATCH],
            indices: [IndexList::default(); MAX_BATCH],
            sources: [0; MAX_BATCH],
        }
    }
}

impl ScoredBatch {
    /// Candidates currently scored in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The Perceptron Prefetch Filter.
///
/// ```
/// use ppf::{Decision, FeatureInputs, PpfConfig, PpfFilter};
///
/// let mut filter = PpfFilter::new(PpfConfig::default());
/// let inputs = FeatureInputs { trigger_addr: 0x1000, confidence: 80, delta: 1, depth: 1, ..Default::default() };
///
/// // 1. Inference: a cold filter lets the candidate through to the L2.
/// let (decision, sum) = filter.infer(&inputs);
/// assert_eq!(decision, Decision::PrefetchL2);
///
/// // 2. Record it; 3-4. train when feedback arrives.
/// filter.record(0x1040, inputs, sum, decision);
/// filter.train_on_demand(0x1040); // the prefetch proved useful
/// assert_eq!(filter.stats.positive_trains, 1);
/// ```
#[derive(Debug, Clone)]
pub struct PpfFilter {
    cfg: PpfConfig,
    perceptron: Perceptron,
    prefetch_table: MetaTable,
    reject_table: MetaTable,
    /// Counter block.
    pub stats: FilterStats,
    telemetry: DecisionTelemetry,
    event_log: Vec<TrainingEvent>,
    event_cursor: usize,
}

impl PpfFilter {
    /// Builds a filter from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the feature set is empty, thresholds are inconsistent
    /// (`tau_lo > tau_hi`), or table sizes are not powers of two.
    pub fn new(cfg: PpfConfig) -> Self {
        assert!(!cfg.features.is_empty(), "need at least one feature");
        assert!(cfg.tau_lo <= cfg.tau_hi, "tau_lo must not exceed tau_hi");
        let sizes: Vec<usize> = cfg.features.iter().map(|k| k.table_entries()).collect();
        Self {
            perceptron: Perceptron::new(&sizes),
            prefetch_table: MetaTable::new(cfg.prefetch_table_entries),
            reject_table: MetaTable::new(cfg.reject_table_entries),
            stats: FilterStats::default(),
            telemetry: DecisionTelemetry::from_env(),
            // Full capacity up front: ring pushes never reallocate, keeping
            // the event-logging path allocation-free after construction.
            event_log: Vec::with_capacity(cfg.event_log_capacity),
            event_cursor: 0,
            cfg,
        }
    }

    /// Borrow of the configuration.
    pub fn config(&self) -> &PpfConfig {
        &self.cfg
    }

    /// Borrow of the weight bank (Fig. 6/7 analysis).
    pub fn perceptron(&self) -> &Perceptron {
        &self.perceptron
    }

    /// The feature set in table order.
    pub fn features(&self) -> &[FeatureKind] {
        &self.cfg.features
    }

    /// Logged training events, oldest first (empty unless
    /// [`PpfConfig::event_log_capacity`] was set).
    pub fn training_events(&self) -> &[TrainingEvent] {
        &self.event_log
    }

    /// Borrow of the decision-telemetry block (contribution attribution,
    /// threshold-margin histograms; see [`crate::introspect`]).
    pub fn telemetry(&self) -> &DecisionTelemetry {
        &self.telemetry
    }

    /// Enables or disables decision telemetry programmatically, overriding
    /// the `PPF_TELEMETRY` resolution done at construction (tests use this
    /// so they never race on process-global environment). Forced off when
    /// the `telemetry` feature is not compiled in.
    pub fn set_telemetry_enabled(&mut self, enabled: bool) {
        self.telemetry.set_enabled(enabled);
    }

    /// Snapshots the trained weights (see [`Perceptron::save_weights`]).
    pub fn save_weights(&self) -> Vec<u8> {
        self.perceptron.save_weights()
    }

    /// Restores weights from a snapshot taken with the same feature set.
    ///
    /// # Errors
    ///
    /// Propagates [`Perceptron::load_weights`] errors.
    pub fn load_weights(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.perceptron.load_weights(bytes)
    }

    /// The lookahead depth recorded for a tracked (accepted) prefetch of
    /// this address, if any.
    pub fn tracked_depth(&self, addr: u64) -> Option<u8> {
        self.prefetch_table.lookup(block_number(addr)).map(|e| e.inputs.depth)
    }

    /// The provenance (`FeatureInputs::source`) recorded for a tracked
    /// (accepted) prefetch of this address, if any. This is how the wrapper
    /// resolves address-keyed cache feedback back to the originating scheme
    /// of a composed source: attribution is *first-issuer wins*, because
    /// [`MetaTable::record`] keeps a pending same-tag entry over a later
    /// re-record of the same block.
    pub fn tracked_source(&self, addr: u64) -> Option<u8> {
        self.prefetch_table.lookup(block_number(addr)).map(|e| e.inputs.source)
    }

    /// FNV-1a digest of the weight arena (see
    /// [`Perceptron::weights_digest`]).
    pub fn weights_digest(&self) -> u64 {
        self.perceptron.weights_digest()
    }

    /// Takes an *epoch-barrier checkpoint*: snapshots the weights and clears
    /// both metadata tables.
    ///
    /// A filter restored from a weight checkpoint necessarily starts with
    /// empty Prefetch/Reject tables (their in-flight entries died with the
    /// process). Clearing the live filter's tables at the same boundary
    /// makes recovery *bit-exact by construction*: the post-barrier decision
    /// and training stream of an uninterrupted filter is identical to that
    /// of one restarted from the checkpoint. The cost is dropping feedback
    /// attribution for candidates in flight at the barrier — bounded by the
    /// checkpoint cadence, and fail-open (unattributed candidates simply
    /// don't train).
    pub fn checkpoint_barrier(&mut self) -> Vec<u8> {
        let weights = self.perceptron.save_weights();
        self.prefetch_table.clear();
        self.reject_table.clear();
        weights
    }

    /// Warm-starts the filter from a [`PpfFilter::checkpoint_barrier`]
    /// snapshot: loads the weights and clears the metadata tables, restoring
    /// exactly the post-barrier state of the filter that took the snapshot.
    ///
    /// # Errors
    ///
    /// Propagates [`Perceptron::load_weights`] errors (the filter is left
    /// untouched on error).
    pub fn warm_start(&mut self, weights: &[u8]) -> Result<(), String> {
        self.perceptron.load_weights(weights)?;
        self.prefetch_table.clear();
        self.reject_table.clear();
        Ok(())
    }

    /// Hashes every feature and maps the hashes to weight-arena positions —
    /// the indices the whole inference/record/train cycle reuses. Inline
    /// ([`IndexList`]), so no heap allocation.
    fn index(&self, inputs: &FeatureInputs) -> IndexList {
        self.perceptron.globalize(&index_list(&self.cfg.features, inputs))
    }

    /// Step 1, inference: sums the feature-selected weights and thresholds
    /// the result against τ_hi / τ_lo.
    ///
    /// Also returns the weight-arena indices so [`PpfFilter::record_indexed`]
    /// can store them without rehashing (the zero-allocation fast path the
    /// [`Ppf`](crate::Ppf) wrapper uses).
    pub fn infer_indexed(&mut self, inputs: &FeatureInputs) -> (Decision, i32, IndexList) {
        let idxs = self.index(inputs);
        let sum = self.perceptron.sum_at(&idxs);
        let decision = self.judge(sum, &idxs, inputs.source);
        (decision, sum, idxs)
    }

    /// Thresholds an inference sum and commits the decision: counters
    /// (aggregate and per-source) and the telemetry hook. Shared tail of
    /// [`PpfFilter::infer_indexed`] and [`PpfFilter::judge_scored`].
    fn judge(&mut self, sum: i32, idxs: &IndexList, source: u8) -> Decision {
        self.stats.inferences += 1;
        let src = usize::from(source).min(MAX_SOURCES - 1);
        let decision = if sum >= self.cfg.tau_hi {
            self.stats.accepted_l2 += 1;
            self.stats.accepted_by_source[src] += 1;
            Decision::PrefetchL2
        } else if sum >= self.cfg.tau_lo {
            self.stats.accepted_llc += 1;
            self.stats.accepted_by_source[src] += 1;
            Decision::PrefetchLlc
        } else {
            self.stats.rejected += 1;
            self.stats.rejected_by_source[src] += 1;
            Decision::Reject
        };
        // Double-gated: without the feature the cfg! folds the whole hook
        // away; with it, a disabled block costs one branch.
        if cfg!(feature = "telemetry") && self.telemetry.enabled() {
            self.telemetry.record(
                &self.perceptron,
                idxs,
                sum,
                decision,
                self.cfg.tau_hi,
                self.cfg.tau_lo,
            );
        }
        decision
    }

    /// Scores a depth-window of candidates in one transposed SIMD pass:
    /// feature-hashes every input, then sums all index lists with
    /// [`Perceptron::sum_batch`]. No counters or telemetry fire here —
    /// decisions are committed per candidate by
    /// [`PpfFilter::judge_scored`], in order, so the observable behavior
    /// matches one [`PpfFilter::infer_indexed`] call per candidate exactly.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` holds more than [`MAX_BATCH`] candidates.
    pub fn infer_batch(&self, inputs: &[FeatureInputs], batch: &mut ScoredBatch) {
        assert!(inputs.len() <= MAX_BATCH, "batch of {} exceeds MAX_BATCH", inputs.len());
        batch.len = inputs.len();
        batch.epoch = self.perceptron.epoch();
        for (i, inp) in inputs.iter().enumerate() {
            batch.indices[i] = self.index(inp);
            batch.sources[i] = inp.source;
        }
        self.perceptron.sum_batch(&batch.indices[..batch.len], &mut batch.sums[..batch.len]);
    }

    /// Commits the decision for candidate `i` of a scored batch, in
    /// candidate order. If the weights moved since the batch was scored
    /// (recording an earlier candidate can displacement-train — see
    /// [`PpfFilter::record_indexed`]), this candidate is rescored against
    /// the current weights, so every decision sees exactly the weights the
    /// sequential loop would have seen. The rescore is per-candidate (one
    /// fresh gather), not a tail rescore: when training fires on most
    /// records, a tail rescore degenerates to quadratic work while this
    /// path never exceeds the sequential loop's cost.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the batch.
    pub fn judge_scored(&mut self, batch: &mut ScoredBatch, i: usize) -> (Decision, i32, IndexList) {
        assert!(i < batch.len, "candidate {i} outside batch of {}", batch.len);
        let sum = if batch.epoch != self.perceptron.epoch() {
            self.perceptron.sum_at(&batch.indices[i])
        } else {
            batch.sums[i]
        };
        let idxs = batch.indices[i];
        let decision = self.judge(sum, &idxs, batch.sources[i]);
        (decision, sum, idxs)
    }

    /// Step 1, inference, without surfacing the indices (convenience; see
    /// [`PpfFilter::infer_indexed`]).
    pub fn infer(&mut self, inputs: &FeatureInputs) -> (Decision, i32) {
        let (decision, sum, _) = self.infer_indexed(inputs);
        (decision, sum)
    }

    /// Step 2, recording: stores the candidate's metadata — including the
    /// arena indices from [`PpfFilter::infer_indexed`] — in the Prefetch
    /// Table (accepted) or the Reject Table (rejected).
    pub fn record_indexed(
        &mut self,
        target_addr: u64,
        inputs: FeatureInputs,
        indices: IndexList,
        sum: i32,
        d: Decision,
    ) {
        let block = block_number(target_addr);
        match d {
            Decision::PrefetchL2 | Decision::PrefetchLlc => {
                let displaced = self.prefetch_table.record(block, inputs, indices, sum, true);
                if self.cfg.train_on_replacement {
                    if let Some(old) = displaced {
                        if !old.useful {
                            // Probation: park the displaced entry in the
                            // Reject Table. A demand recovers it positively;
                            // falling off that table too is the negative
                            // signal.
                            self.park_displaced(old);
                        }
                    }
                }
            }
            Decision::Reject => {
                let displaced = self.reject_table.record(block, inputs, indices, sum, false);
                if self.cfg.train_on_replacement {
                    if let Some(old) = displaced {
                        self.negative_train_displaced(&old);
                    }
                }
            }
        }
    }

    /// Step 2, recording, re-deriving the indices from `inputs`
    /// (convenience for callers that used [`PpfFilter::infer`]; still
    /// allocation-free).
    pub fn record(&mut self, target_addr: u64, inputs: FeatureInputs, sum: i32, d: Decision) {
        let indices = self.index(&inputs);
        self.record_indexed(target_addr, inputs, indices, sum, d);
    }

    /// Steps 3–4 on a demand access: a hit in the Prefetch Table is a
    /// correct positive (train up while under θ_p); a hit in the Reject
    /// Table is a recovered false negative (always train up).
    pub fn train_on_demand(&mut self, addr: u64) {
        let block = block_number(addr);
        let theta_p = self.cfg.theta_p;

        // Training reuses the arena indices computed at inference time (no
        // feature rehash, no allocation).
        let mut positive: Option<(IndexList, bool)> = None;
        if let Some(e) = self.prefetch_table.lookup_mut(block) {
            if !e.useful {
                e.useful = true;
                positive = Some((e.indices, false));
            }
        } else if let Some(e) = self.reject_table.take(block) {
            positive = Some((e.indices, true));
        }

        if let Some((idxs, was_rejected)) = positive {
            let sum = self.perceptron.sum_at(&idxs);
            self.log_event(&idxs, true);
            if was_rejected {
                self.stats.false_negative_recoveries += 1;
                self.stats.positive_trains += 1;
                self.perceptron.train_at(&idxs, true);
            } else if sum < theta_p {
                self.stats.positive_trains += 1;
                self.perceptron.train_at(&idxs, true);
            }
        }
    }

    /// Steps 3–4 on an L2 eviction: a prefetched line leaving the cache
    /// unused means the filter should have rejected it (train down; always,
    /// since it is a misprediction — but saturate at θ_n if it was judged
    /// correctly negative before).
    pub fn train_on_eviction(&mut self, addr: u64, was_used: bool) {
        let block = block_number(addr);
        let Some(e) = self.prefetch_table.take(block) else { return };
        if was_used || e.useful {
            // Correct positive already credited at demand time.
            return;
        }
        let sum = self.perceptron.sum_at(&e.indices);
        self.log_event(&e.indices, false);
        if sum > self.cfg.theta_n {
            self.stats.negative_trains += 1;
            self.perceptron.train_at(&e.indices, false);
        }
    }

    /// Moves a displaced, unused Prefetch-Table entry into the Reject Table
    /// (probation). Whatever *that* displaces unused trains negative.
    fn park_displaced(&mut self, old: crate::tables::TableEntry) {
        let displaced = self.reject_table.record(
            old.target_block,
            old.inputs,
            old.indices,
            old.sum,
            old.perc_decision,
        );
        if let Some(evicted) = displaced {
            self.negative_train_displaced(&evicted);
        }
    }

    /// Negative training for an entry that aged out of both tables unused.
    fn negative_train_displaced(&mut self, old: &crate::tables::TableEntry) {
        // Only candidates the filter *accepted* are evidence of a wrong
        // positive; aged-out rejected candidates already got their verdict.
        if !old.perc_decision {
            return;
        }
        let s = self.perceptron.sum_at(&old.indices);
        self.log_event(&old.indices, false);
        if s > self.cfg.theta_n {
            self.stats.negative_trains += 1;
            self.stats.replacement_trains += 1;
            self.perceptron.train_at(&old.indices, false);
        }
    }

    fn log_event(&mut self, idxs: &IndexList, useful: bool) {
        if self.cfg.event_log_capacity == 0 {
            return;
        }
        let ev = TrainingEvent { weights: self.perceptron.weights_at(idxs), useful };
        if self.event_log.len() < self.cfg.event_log_capacity {
            self.event_log.push(ev);
        } else {
            self.event_log[self.event_cursor] = ev;
            self.event_cursor = (self.event_cursor + 1) % self.cfg.event_log_capacity;
        }
    }
}

impl Default for PpfFilter {
    fn default() -> Self {
        Self::new(PpfConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(addr: u64, conf: u8) -> FeatureInputs {
        FeatureInputs {
            trigger_addr: addr,
            trigger_pc: 0x400100,
            confidence: conf,
            delta: 1,
            depth: 1,
            ..FeatureInputs::default()
        }
    }

    #[test]
    fn cold_filter_accepts_into_l2() {
        // Zero weights sum to 0 ≥ τ_hi (-5): a cold PPF lets SPP through —
        // essential for bootstrap.
        let mut f = PpfFilter::default();
        let (d, sum) = f.infer(&inputs(0x1000, 80));
        assert_eq!(sum, 0);
        assert_eq!(d, Decision::PrefetchL2);
    }

    #[test]
    fn negative_training_flips_to_reject() {
        let mut f = PpfFilter::default();
        let i = inputs(0x2000, 10);
        // Repeatedly: record an accepted prefetch, then evict it unused.
        for _ in 0..20 {
            let (d, sum) = f.infer(&i);
            f.record(0x2000, i, sum, d);
            f.train_on_eviction(0x2000, false);
        }
        let (d, sum) = f.infer(&i);
        assert!(sum < -15, "sum {sum} should be deeply negative");
        assert_eq!(d, Decision::Reject);
        assert!(f.stats.negative_trains > 0);
    }

    #[test]
    fn reject_table_recovers_false_negatives() {
        let mut f = PpfFilter::default();
        let i = inputs(0x3000, 10);
        // Drive the filter negative.
        for _ in 0..20 {
            let (d, sum) = f.infer(&i);
            f.record(0x3000, i, sum, d);
            f.train_on_eviction(0x3000, false);
        }
        assert_eq!(f.infer(&i).0, Decision::Reject);
        // Now the workload changes: the rejected candidate is demanded.
        for _ in 0..40 {
            let (d, sum) = f.infer(&i);
            f.record(0x3000, i, sum, d);
            f.train_on_demand(0x3000);
        }
        assert!(f.stats.false_negative_recoveries > 0);
        let (d, _) = f.infer(&i);
        assert_ne!(d, Decision::Reject, "reject-table training must recover");
    }

    #[test]
    fn positive_training_saturates_at_theta_p() {
        let mut f = PpfFilter::default();
        let i = inputs(0x4000, 90);
        for _ in 0..200 {
            let (d, sum) = f.infer(&i);
            f.record(0x4000, i, sum, d);
            f.train_on_demand(0x4000);
        }
        let (_, sum) = f.infer(&i);
        // Trained only while sum < θ_p: one step past at most.
        assert!(sum <= f.config().theta_p + 9, "sum {sum} exceeded θ_p ceiling");
        assert!(sum > 0);
    }

    #[test]
    fn useful_entries_train_once() {
        let mut f = PpfFilter::default();
        let i = inputs(0x5000, 50);
        let (d, sum) = f.infer(&i);
        f.record(0x5000, i, sum, d);
        f.train_on_demand(0x5000);
        let trains = f.stats.positive_trains;
        // Second demand to the same block: entry already marked useful.
        f.train_on_demand(0x5000);
        assert_eq!(f.stats.positive_trains, trains);
    }

    #[test]
    fn eviction_of_used_prefetch_does_not_train_down() {
        let mut f = PpfFilter::default();
        let i = inputs(0x6000, 50);
        let (d, sum) = f.infer(&i);
        f.record(0x6000, i, sum, d);
        f.train_on_demand(0x6000); // used
        f.train_on_eviction(0x6000, true);
        assert_eq!(f.stats.negative_trains, 0);
    }

    #[test]
    fn fill_level_band() {
        let cfg = PpfConfig { tau_hi: 5, tau_lo: -5, ..PpfConfig::default() };
        let mut f = PpfFilter::new(cfg);
        // Cold sum = 0 lands between the thresholds -> LLC.
        let (d, _) = f.infer(&inputs(0x7000, 50));
        assert_eq!(d, Decision::PrefetchLlc);
    }

    #[test]
    fn event_log_is_bounded_ring() {
        // Shared feature indices drive the sum negative quickly, so only the
        // first few candidates are accepted (and can later log an eviction
        // event) before the filter starts rejecting — capacity 2 is enough
        // to exercise the ring replacement.
        let cfg = PpfConfig { event_log_capacity: 2, ..PpfConfig::default() };
        let mut f = PpfFilter::new(cfg);
        let mut logged = 0;
        for n in 0..10u64 {
            let a = 0x8000 + n * 64;
            let i = inputs(a, 30);
            let (d, sum) = f.infer(&i);
            f.record(a, i, sum, d);
            if d != Decision::Reject {
                logged += 1;
            }
            f.train_on_eviction(a, false);
        }
        assert!(logged >= 3, "need enough events to wrap the ring, got {logged}");
        assert_eq!(f.training_events().len(), 2);
        assert!(f.training_events().iter().all(|e| !e.useful));
        assert_eq!(f.training_events()[0].weights.len(), 9);
    }

    #[test]
    fn stats_track_decisions() {
        let mut f = PpfFilter::default();
        f.infer(&inputs(0x9000, 10));
        assert_eq!(f.stats.inferences, 1);
        assert_eq!(f.stats.accepted_l2, 1);
    }

    #[test]
    fn per_source_counters_follow_provenance() {
        let mut f = PpfFilter::new(PpfConfig::hybrid());
        let i0 = inputs(0xA000, 80);
        let mut i1 = inputs(0xA040, 80);
        i1.source = 1;
        let mut far = inputs(0xA080, 80);
        far.source = 250; // out of range: clamps to the last bucket
        f.infer(&i0);
        f.infer(&i1);
        f.infer(&i1);
        f.infer(&far);
        assert_eq!(f.stats.accepted_by_source[0], 1);
        assert_eq!(f.stats.accepted_by_source[1], 2);
        assert_eq!(f.stats.accepted_by_source[MAX_SOURCES - 1], 1);
        assert_eq!(f.stats.rejected_by_source, [0; MAX_SOURCES]);

        // The batched path attributes identically.
        let mut b = PpfFilter::new(PpfConfig::hybrid());
        let window = [i0, i1, i1, far];
        let mut batch = ScoredBatch::default();
        b.infer_batch(&window, &mut batch);
        for j in 0..window.len() {
            b.judge_scored(&mut batch, j);
        }
        assert_eq!(b.stats, f.stats);
    }

    #[test]
    #[should_panic(expected = "tau_lo must not exceed tau_hi")]
    fn inconsistent_thresholds_rejected() {
        let cfg = PpfConfig { tau_lo: 10, tau_hi: -10, ..PpfConfig::default() };
        PpfFilter::new(cfg);
    }

    #[test]
    fn batch_window_default_is_sane() {
        assert!((1..=MAX_BATCH).contains(&DEFAULT_BATCH_WINDOW));
        // The suite never sets PPF_BATCH_WINDOW, so the config default is
        // the compiled-in one.
        assert_eq!(PpfConfig::default().batch_window, DEFAULT_BATCH_WINDOW);
    }

    /// The batched score/judge split must reproduce the sequential
    /// infer/record loop exactly — including when recording one candidate
    /// displacement-trains the weights before the next is judged. Tiny
    /// metadata tables make displacement constant, exercising the epoch
    /// rescore in `judge_scored`.
    #[test]
    fn batched_path_matches_sequential_with_mid_batch_training() {
        let tiny = PpfConfig {
            prefetch_table_entries: 8,
            reject_table_entries: 8,
            ..PpfConfig::default()
        };
        let mut seq = PpfFilter::new(tiny.clone());
        let mut bat = PpfFilter::new(tiny);
        let stream: Vec<(u64, FeatureInputs)> = (0..400u64)
            .map(|n| {
                let addr = 0x10_000 + (n * 64) % 4096 + (n % 7) * 0x10_000;
                (addr, inputs(addr, (n % 100) as u8))
            })
            .collect();
        let mut batch = ScoredBatch::default();
        for window in stream.chunks(11) {
            // Sequential reference.
            for &(addr, inp) in window {
                let (d, sum, idxs) = seq.infer_indexed(&inp);
                seq.record_indexed(addr, inp, idxs, sum, d);
            }
            // Batched path.
            let inps: Vec<FeatureInputs> = window.iter().map(|&(_, i)| i).collect();
            bat.infer_batch(&inps, &mut batch);
            for (j, &(addr, inp)) in window.iter().enumerate() {
                let (d, sum, idxs) = bat.judge_scored(&mut batch, j);
                bat.record_indexed(addr, inp, idxs, sum, d);
            }
            // Occasional eviction feedback so training fires on both sides.
            for &(addr, _) in window.iter().step_by(3) {
                seq.train_on_eviction(addr, false);
                bat.train_on_eviction(addr, false);
            }
        }
        assert!(seq.stats.replacement_trains > 0, "tiny tables must displace-train");
        assert_eq!(seq.stats, bat.stats);
        assert_eq!(seq.save_weights(), bat.save_weights());
    }

    /// Drives a filter through a deterministic infer/record/feedback stream
    /// and folds every decision into a digest.
    fn drive_stream(f: &mut PpfFilter, lo: u64, hi: u64) -> u64 {
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        for n in lo..hi {
            let addr = 0x40_000 + (n * 64) % 16_384 + (n % 5) * 0x20_000;
            let i = inputs(addr, (n % 100) as u8);
            let (d, sum, idxs) = f.infer_indexed(&i);
            f.record_indexed(addr, i, idxs, sum, d);
            digest ^= (d as u64).wrapping_add(sum as u64).rotate_left((n % 63) as u32);
            digest = digest.wrapping_mul(0x100_0000_01b3);
            if n % 3 == 0 {
                f.train_on_demand(addr);
            }
            if n % 4 == 1 {
                f.train_on_eviction(addr, false);
            }
        }
        digest
    }

    #[test]
    fn checkpoint_barrier_makes_warm_start_bit_exact() {
        // Uninterrupted filter: stream A, barrier, stream B.
        let mut live = PpfFilter::default();
        drive_stream(&mut live, 0, 500);
        let snapshot = live.checkpoint_barrier();
        let live_digest_at_barrier = live.weights_digest();
        let live_decisions = drive_stream(&mut live, 500, 1000);

        // Restarted filter: warm-start from the snapshot, stream B.
        let mut restarted = PpfFilter::default();
        restarted.warm_start(&snapshot).expect("snapshot restores");
        assert_eq!(restarted.weights_digest(), live_digest_at_barrier);
        let restarted_decisions = drive_stream(&mut restarted, 500, 1000);

        assert_eq!(live_decisions, restarted_decisions, "post-barrier decision streams diverge");
        assert_eq!(live.weights_digest(), restarted.weights_digest());
        assert_eq!(live.save_weights(), restarted.save_weights());
    }

    #[test]
    fn weights_digest_tracks_training() {
        let mut f = PpfFilter::default();
        let d0 = f.weights_digest();
        assert_eq!(d0, PpfFilter::default().weights_digest(), "cold digests agree");
        let i = inputs(0x2000, 10);
        let (d, sum) = f.infer(&i);
        f.record(0x2000, i, sum, d);
        f.train_on_eviction(0x2000, false);
        assert_ne!(f.weights_digest(), d0, "training must move the digest");
    }

    #[test]
    fn warm_start_rejects_bad_snapshots_untouched() {
        let mut f = PpfFilter::default();
        let before = f.weights_digest();
        assert!(f.warm_start(&[0u8; 3]).is_err());
        assert_eq!(f.weights_digest(), before);
    }

    #[test]
    #[should_panic(expected = "outside batch")]
    fn judging_past_the_batch_panics() {
        let mut f = PpfFilter::default();
        let mut batch = ScoredBatch::default();
        f.infer_batch(&[inputs(0x1000, 50)], &mut batch);
        assert_eq!(batch.len(), 1);
        assert!(!batch.is_empty());
        f.judge_scored(&mut batch, 1);
    }
}
