//! PPF's perceptron features (paper Sec 4.2).
//!
//! Each feature hashes some combination of the triggering access's context
//! and the candidate prefetch's metadata into an index for its own weight
//! table. The nine features the paper retained (after the Sec 5.5 Pearson
//! analysis) are [`FeatureKind::default_set`]; the rejected candidates the
//! paper discusses (e.g. *Last Signature*, Fig. 6's weak example) are also
//! implemented so the feature-selection methodology can be reproduced.
//!
//! Table sizes follow the paper's Table 3: the strongest features get full
//! 12-bit indexing (4096 entries), the weaker PC hashes get 10–11 bits, and
//! the raw confidence (0..=100) needs only 128 entries.

/// Everything a feature may hash over: the trigger context plus one
/// candidate's metadata (cf. paper Table 2's stored metadata).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FeatureInputs {
    /// Byte address of the demand access that triggered the prefetch chain.
    pub trigger_addr: u64,
    /// PC of the triggering instruction.
    pub trigger_pc: u64,
    /// The most recent PC before the trigger.
    pub pc_1: u64,
    /// The second most recent PC before the trigger.
    pub pc_2: u64,
    /// The third most recent PC before the trigger.
    pub pc_3: u64,
    /// Signature under which the candidate's delta was predicted.
    pub signature: u16,
    /// Signature at the *previous* lookahead step (the paper's rejected
    /// "Last Signature" feature).
    pub last_signature: u16,
    /// The underlying prefetcher's path confidence, 0..=100.
    pub confidence: u8,
    /// Predicted block delta.
    pub delta: i16,
    /// Lookahead depth of the candidate.
    pub depth: u8,
    /// Which scheme in a composed (hybrid) source produced the candidate;
    /// 0 for bare single-scheme sources. Consumed by the opt-in
    /// [`FeatureKind::SourceId`] table, ignored by the paper's nine.
    pub source: u8,
}

/// 7-bit sign-magnitude delta encoding (shared with SPP's signature hash).
fn encode_delta(delta: i16) -> u64 {
    let mag = (delta.unsigned_abs() & 0x3F) as u64;
    if delta < 0 {
        mag | 0x40
    } else {
        mag
    }
}

/// One perceptron feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureKind {
    /// Low bits of the triggering physical address.
    PhysAddr,
    /// The trigger address shifted by the block size.
    CacheLine,
    /// The trigger address shifted by the page size.
    PageAddr,
    /// Page address XOR candidate confidence — the paper's single strongest
    /// feature (Pearson ≈ 0.90).
    ConfidenceXorPage,
    /// `PC_1 ^ (PC_2 >> 1) ^ (PC_3 >> 2)`: the control-flow path hash.
    PcPathHash,
    /// Current signature XOR predicted delta (≈ the next signature).
    SignatureXorDelta,
    /// Trigger PC XOR lookahead depth (virtual-PC style disambiguation).
    PcXorDepth,
    /// Trigger PC XOR predicted delta.
    PcXorDelta,
    /// The raw path confidence.
    Confidence,
    /// REJECTED by the paper (Fig. 6): the previous step's signature alone.
    LastSignature,
    /// REJECTED: the trigger PC alone (aliases all lookahead depths).
    RawPc,
    /// REJECTED: the depth alone.
    DepthAlone,
    /// Which member of a composed (hybrid) source produced the candidate —
    /// lets the perceptron learn a per-scheme trust bias. Not in the
    /// paper's nine (meaningless for a single source); added by
    /// [`FeatureKind::hybrid_set`].
    SourceId,
}

impl FeatureKind {
    /// The nine features of the final PPF design, in Table 3 size order.
    pub fn default_set() -> Vec<FeatureKind> {
        vec![
            FeatureKind::PhysAddr,
            FeatureKind::CacheLine,
            FeatureKind::PageAddr,
            FeatureKind::ConfidenceXorPage,
            FeatureKind::PcPathHash,
            FeatureKind::SignatureXorDelta,
            FeatureKind::PcXorDepth,
            FeatureKind::PcXorDelta,
            FeatureKind::Confidence,
        ]
    }

    /// The paper's nine plus [`FeatureKind::SourceId`], for filtering fused
    /// multi-scheme streams (see `ppf_prefetchers::Hybrid`). With a bare
    /// source every candidate indexes row 0 of the source table, so the
    /// extra feature degenerates to a shared bias weight.
    pub fn hybrid_set() -> Vec<FeatureKind> {
        let mut set = Self::default_set();
        set.push(FeatureKind::SourceId);
        set
    }

    /// Index bits for this feature's weight table (paper Table 3 allocation:
    /// high-correlation features get more entries, Sec 5.5).
    pub fn table_bits(self) -> u32 {
        match self {
            FeatureKind::PhysAddr
            | FeatureKind::CacheLine
            | FeatureKind::PageAddr
            | FeatureKind::ConfidenceXorPage => 12,
            FeatureKind::PcPathHash | FeatureKind::SignatureXorDelta => 11,
            FeatureKind::PcXorDepth | FeatureKind::PcXorDelta => 10,
            FeatureKind::Confidence => 7,
            FeatureKind::LastSignature => 12,
            FeatureKind::RawPc => 10,
            FeatureKind::DepthAlone => 4,
            // One row per possible ensemble member (MAX_SOURCES = 8).
            FeatureKind::SourceId => 3,
        }
    }

    /// Entries in this feature's weight table.
    pub fn table_entries(self) -> usize {
        1 << self.table_bits()
    }

    /// Human-readable label (used in the analysis figures).
    pub fn label(self) -> &'static str {
        match self {
            FeatureKind::PhysAddr => "phys_addr",
            FeatureKind::CacheLine => "cache_line",
            FeatureKind::PageAddr => "page_addr",
            FeatureKind::ConfidenceXorPage => "confidence^page",
            FeatureKind::PcPathHash => "pc1^pc2>>1^pc3>>2",
            FeatureKind::SignatureXorDelta => "signature^delta",
            FeatureKind::PcXorDepth => "pc^depth",
            FeatureKind::PcXorDelta => "pc^delta",
            FeatureKind::Confidence => "confidence",
            FeatureKind::LastSignature => "last_signature",
            FeatureKind::RawPc => "raw_pc",
            FeatureKind::DepthAlone => "depth",
            FeatureKind::SourceId => "source_id",
        }
    }

    /// Hashes the inputs into this feature's table index.
    pub fn index(self, f: &FeatureInputs) -> usize {
        let mask = (1usize << self.table_bits()) - 1;
        let raw: u64 = match self {
            // Three shifted views of the trigger address (Sec 4.2: shifting
            // instead of folding avoids destructive interference).
            FeatureKind::PhysAddr => f.trigger_addr >> 2,
            FeatureKind::CacheLine => f.trigger_addr >> 6,
            FeatureKind::PageAddr => f.trigger_addr >> 12,
            FeatureKind::ConfidenceXorPage => (f.trigger_addr >> 12) ^ u64::from(f.confidence),
            FeatureKind::PcPathHash => (f.pc_1 >> 2) ^ (f.pc_2 >> 3) ^ (f.pc_3 >> 4),
            FeatureKind::SignatureXorDelta => u64::from(f.signature) ^ encode_delta(f.delta),
            FeatureKind::PcXorDepth => (f.trigger_pc >> 2) ^ u64::from(f.depth),
            FeatureKind::PcXorDelta => (f.trigger_pc >> 2) ^ encode_delta(f.delta),
            FeatureKind::Confidence => u64::from(f.confidence.min(127)),
            FeatureKind::LastSignature => u64::from(f.last_signature),
            FeatureKind::RawPc => f.trigger_pc >> 2,
            FeatureKind::DepthAlone => u64::from(f.depth),
            FeatureKind::SourceId => u64::from(f.source),
        };
        (raw as usize) & mask
    }
}

/// Upper bound on features per perceptron — every [`FeatureKind`] variant
/// fits, with headroom. The inference/record/train hot paths carry indices
/// in a fixed `[u32; MAX_FEATURES]` ([`IndexList`]) instead of a heap
/// `Vec`, so evaluating a candidate allocates nothing.
pub const MAX_FEATURES: usize = 16;

/// A fixed-capacity list of per-feature table indices.
///
/// This is the zero-allocation replacement for the `Vec<usize>` that
/// inference used to build per candidate: a `Copy` value small enough to
/// live inline in the Prefetch/Reject table entries, so training can
/// reuse the indices computed at inference time instead of rehashing the
/// features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexList {
    raw: [u32; MAX_FEATURES],
    len: u8,
}

impl IndexList {
    /// An empty list.
    pub const fn new() -> Self {
        Self { raw: [0; MAX_FEATURES], len: 0 }
    }

    /// Appends an index.
    ///
    /// # Panics
    ///
    /// Panics if the list already holds [`MAX_FEATURES`] indices.
    pub fn push(&mut self, index: u32) {
        assert!((self.len as usize) < MAX_FEATURES, "more than {MAX_FEATURES} features");
        self.raw[self.len as usize] = index;
        self.len += 1;
    }

    /// Number of indices.
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The indices as a slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.raw[..usize::from(self.len)]
    }
}

impl FromIterator<u32> for IndexList {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut list = Self::new();
        for i in iter {
            list.push(i);
        }
        list
    }
}

/// Computes the table index of every feature in `set` without allocating.
pub fn index_list(set: &[FeatureKind], inputs: &FeatureInputs) -> IndexList {
    set.iter().map(|k| k.index(inputs) as u32).collect()
}

/// Computes the table index of every feature in `set`.
///
/// Heap-allocating convenience for tests and offline analysis; the hot
/// paths use [`index_list`].
pub fn index_all(set: &[FeatureKind], inputs: &FeatureInputs) -> Vec<usize> {
    set.iter().map(|k| k.index(inputs)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FeatureInputs {
        FeatureInputs {
            trigger_addr: 0x12345678,
            trigger_pc: 0x401234,
            pc_1: 0x401230,
            pc_2: 0x40122C,
            pc_3: 0x401228,
            signature: 0x5A5,
            last_signature: 0x2D2,
            confidence: 87,
            delta: -3,
            depth: 4,
            source: 0,
        }
    }

    #[test]
    fn default_set_is_the_papers_nine() {
        let set = FeatureKind::default_set();
        assert_eq!(set.len(), 9);
        // Table 3: 4 tables of 4096, 2 of 2048, 2 of 1024, 1 of 128.
        let mut sizes: Vec<usize> = set.iter().map(|k| k.table_entries()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![128, 1024, 1024, 2048, 2048, 4096, 4096, 4096, 4096]);
    }

    #[test]
    fn indices_within_table() {
        let f = sample();
        for k in FeatureKind::default_set() {
            assert!(k.index(&f) < k.table_entries(), "{} out of range", k.label());
        }
    }

    #[test]
    fn depth_disambiguates_pc() {
        let mut a = sample();
        let mut b = sample();
        a.depth = 1;
        b.depth = 2;
        assert_ne!(FeatureKind::PcXorDepth.index(&a), FeatureKind::PcXorDepth.index(&b));
        // ...while RawPc aliases them (the reason the paper rejected it).
        assert_eq!(FeatureKind::RawPc.index(&a), FeatureKind::RawPc.index(&b));
    }

    #[test]
    fn delta_sign_matters() {
        let mut a = sample();
        let mut b = sample();
        a.delta = 3;
        b.delta = -3;
        assert_ne!(FeatureKind::PcXorDelta.index(&a), FeatureKind::PcXorDelta.index(&b));
        assert_ne!(
            FeatureKind::SignatureXorDelta.index(&a),
            FeatureKind::SignatureXorDelta.index(&b)
        );
    }

    #[test]
    fn confidence_feature_is_direct() {
        let mut f = sample();
        f.confidence = 55;
        assert_eq!(FeatureKind::Confidence.index(&f), 55);
        f.confidence = 100;
        assert_eq!(FeatureKind::Confidence.index(&f), 100);
    }

    #[test]
    fn shifted_address_views_differ() {
        let f = sample();
        let a = FeatureKind::PhysAddr.index(&f);
        let b = FeatureKind::CacheLine.index(&f);
        let c = FeatureKind::PageAddr.index(&f);
        assert!(a != b || b != c, "shifted views should rarely collide");
    }

    #[test]
    fn path_hash_uses_history() {
        let mut a = sample();
        let mut b = sample();
        b.pc_2 = 0x40F00C;
        assert_ne!(FeatureKind::PcPathHash.index(&a), FeatureKind::PcPathHash.index(&b));
        // Identical PCs don't collapse to zero thanks to the shifts.
        a.pc_1 = 0x400004;
        a.pc_2 = 0x400004;
        a.pc_3 = 0x400004;
        assert_ne!(FeatureKind::PcPathHash.index(&a), 0);
    }

    #[test]
    fn index_all_matches_individual() {
        let set = FeatureKind::default_set();
        let f = sample();
        let all = index_all(&set, &f);
        for (k, &i) in set.iter().zip(&all) {
            assert_eq!(k.index(&f), i);
        }
    }

    #[test]
    fn index_list_matches_index_all() {
        let set = FeatureKind::default_set();
        let f = sample();
        let list = index_list(&set, &f);
        let all = index_all(&set, &f);
        assert_eq!(list.len(), all.len());
        for (&a, &b) in list.as_slice().iter().zip(&all) {
            assert_eq!(a as usize, b);
        }
    }

    #[test]
    fn index_list_push_and_bounds() {
        let mut l = IndexList::new();
        assert!(l.is_empty());
        for i in 0..MAX_FEATURES {
            l.push(i as u32);
        }
        assert_eq!(l.len(), MAX_FEATURES);
        assert_eq!(l.as_slice()[MAX_FEATURES - 1], (MAX_FEATURES - 1) as u32);
    }

    #[test]
    #[should_panic(expected = "features")]
    fn index_list_overflow_panics() {
        let mut l = IndexList::new();
        for i in 0..=MAX_FEATURES {
            l.push(i as u32);
        }
    }

    #[test]
    fn hybrid_set_is_the_nine_plus_source_id() {
        let set = FeatureKind::hybrid_set();
        assert_eq!(set.len(), 10);
        assert_eq!(set[..9], FeatureKind::default_set()[..]);
        assert_eq!(set[9], FeatureKind::SourceId);
        assert_eq!(FeatureKind::SourceId.table_entries(), 8);
    }

    #[test]
    fn source_id_feature_is_direct() {
        let mut f = sample();
        assert_eq!(FeatureKind::SourceId.index(&f), 0, "bare sources share row 0");
        f.source = 3;
        assert_eq!(FeatureKind::SourceId.index(&f), 3);
        // The paper's nine never read provenance: indices are unchanged.
        let a = sample();
        for k in FeatureKind::default_set() {
            assert_eq!(k.index(&a), k.index(&f), "{} must ignore source", k.label());
        }
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<&str> = FeatureKind::default_set().iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 9);
    }
}
