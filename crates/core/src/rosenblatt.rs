//! The related-work comparison point: a basic Rosenblatt perceptron filter
//! (Wang & Luo, *Data cache prefetching with perceptron learning*, 2017 —
//! paper Sec 7.4).
//!
//! Unlike PPF's hashed-perceptron organization, this design keeps **one**
//! weight vector over binary input features (bits of the candidate's
//! address, trigger PC and delta) and trains with classic error-correction:
//! weights move only when the prediction was wrong. It filters an
//! *unmodified* baseline prefetcher — there is no unthrottled candidate
//! stream, no fill-level banding, and no reject table, so false negatives
//! are never recovered.
//!
//! The PPF paper's observation, which the experiment binary
//! `related_rosenblatt` reproduces: this design raises accuracy but *lowers*
//! coverage, so its performance impact is small.

use crate::features::FeatureInputs;
use ppf_prefetchers::{Candidate, Feedback, LookaheadSource};
use ppf_sim::{AccessContext, EvictionInfo, FillLevel, Prefetcher, PrefetchRequest};

/// Number of binary inputs: 16 address bits + 12 PC bits + 7 delta bits
/// + bias.
const INPUTS: usize = 16 + 12 + 7 + 1;

/// Configuration of the Rosenblatt filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RosenblattConfig {
    /// Decision threshold: accept when the dot product is at or above it.
    pub threshold: i32,
    /// Weight clamp (symmetric).
    pub weight_limit: i16,
    /// Tracking-table entries for outcome attribution.
    pub table_entries: usize,
}

impl Default for RosenblattConfig {
    fn default() -> Self {
        Self { threshold: 0, weight_limit: 64, table_entries: 1024 }
    }
}

#[derive(Debug, Clone, Copy)]
struct Tracked {
    tag: u16,
    bits: [bool; INPUTS],
    predicted_useful: bool,
    resolved: bool,
}

/// Counters for the Rosenblatt filter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RosenblattStats {
    /// Candidates evaluated.
    pub inferences: u64,
    /// Candidates accepted.
    pub accepted: u64,
    /// Candidates rejected.
    pub rejected: u64,
    /// Error-correction updates applied.
    pub corrections: u64,
}

/// A classic Rosenblatt perceptron prefetch filter over a lookahead source.
#[derive(Debug, Clone)]
pub struct RosenblattFilter<S> {
    source: S,
    cfg: RosenblattConfig,
    weights: [i16; INPUTS],
    table: Vec<Option<Tracked>>,
    /// Counter block.
    pub stats: RosenblattStats,
    candidate_buf: Vec<Candidate>,
}

impl<S: LookaheadSource> RosenblattFilter<S> {
    /// Wraps `source` with a default-configured filter.
    pub fn new(source: S) -> Self {
        Self::with_config(source, RosenblattConfig::default())
    }

    /// Wraps `source` with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `table_entries` is not a power of two.
    pub fn with_config(source: S, cfg: RosenblattConfig) -> Self {
        assert!(cfg.table_entries.is_power_of_two(), "table size must be a power of two");
        Self {
            source,
            weights: [0; INPUTS],
            table: vec![None; cfg.table_entries],
            stats: RosenblattStats::default(),
            candidate_buf: Vec::new(),
            cfg,
        }
    }

    /// Borrow of the weight vector (for analysis).
    pub fn weights(&self) -> &[i16] {
        &self.weights
    }

    fn featurize(inputs: &FeatureInputs) -> [bool; INPUTS] {
        let mut bits = [false; INPUTS];
        let mut k = 0;
        for b in 0..16 {
            bits[k] = (inputs.trigger_addr >> (6 + b)) & 1 == 1;
            k += 1;
        }
        for b in 0..12 {
            bits[k] = (inputs.trigger_pc >> (2 + b)) & 1 == 1;
            k += 1;
        }
        let mag = inputs.delta.unsigned_abs() as u64 | if inputs.delta < 0 { 0x40 } else { 0 };
        for b in 0..7 {
            bits[k] = (mag >> b) & 1 == 1;
            k += 1;
        }
        bits[k] = true; // bias input
        bits
    }

    fn dot(&self, bits: &[bool; INPUTS]) -> i32 {
        self.weights
            .iter()
            .zip(bits)
            .map(|(&w, &x)| if x { i32::from(w) } else { -i32::from(w) })
            .sum()
    }

    fn correct(&mut self, bits: &[bool; INPUTS], toward_useful: bool) {
        self.stats.corrections += 1;
        let limit = self.cfg.weight_limit;
        for (w, &x) in self.weights.iter_mut().zip(bits) {
            // Error-correction rule: w += y * x, with x in {-1, +1}.
            let dir = if x == toward_useful { 1 } else { -1 };
            *w = (*w + dir).clamp(-limit, limit);
        }
    }

    fn slot(&self, block: u64) -> (usize, u16) {
        let idx = (block as usize) & (self.table.len() - 1);
        let tag = ((block >> self.table.len().trailing_zeros()) & 0x3F) as u16;
        (idx, tag)
    }

    fn resolve(&mut self, addr: u64, useful: bool) {
        let (idx, tag) = self.slot(addr >> 6);
        if let Some(t) = self.table[idx] {
            if t.tag == tag && !t.resolved {
                if t.predicted_useful != useful {
                    self.correct(&t.bits, useful);
                }
                if let Some(t) = &mut self.table[idx] {
                    t.resolved = true;
                }
            }
        }
    }
}

impl<S: LookaheadSource> Prefetcher for RosenblattFilter<S> {
    fn on_demand_access(&mut self, ctx: &AccessContext, out: &mut Vec<PrefetchRequest>) {
        // A demand access to a tracked candidate resolves it as useful.
        self.resolve(ctx.addr, true);

        let mut cands = std::mem::take(&mut self.candidate_buf);
        cands.clear();
        self.source.candidates(ctx, &mut cands);
        for c in &cands {
            // Filtering an *unmodified* baseline: only depth-1 suggestions
            // (what the throttled prefetcher would have issued first) are
            // considered; the deep speculative stream stays off.
            if c.meta.depth > 4 {
                continue;
            }
            let inputs = FeatureInputs {
                trigger_addr: ctx.addr,
                trigger_pc: c.meta.trigger_pc,
                delta: c.meta.delta,
                ..FeatureInputs::default()
            };
            let bits = Self::featurize(&inputs);
            let sum = self.dot(&bits);
            self.stats.inferences += 1;
            let accept = sum >= self.cfg.threshold;
            let (idx, tag) = self.slot(c.addr >> 6);
            self.table[idx] =
                Some(Tracked { tag, bits, predicted_useful: accept, resolved: false });
            if accept {
                self.stats.accepted += 1;
                out.push(PrefetchRequest::new(c.addr, FillLevel::L2));
            } else {
                self.stats.rejected += 1;
            }
        }
        self.candidate_buf = cands;
    }

    fn on_useful_prefetch(&mut self, addr: u64) {
        // No provenance tracking here: the classic design predates source
        // attribution, so feedback reaches the source unattributed.
        self.source.on_useful_prefetch(Feedback::unattributed(addr));
        self.resolve(addr, true);
    }

    fn on_eviction(&mut self, info: &EvictionInfo) {
        if info.was_prefetch && !info.was_used {
            self.resolve(info.addr, false);
        }
    }

    fn on_llc_eviction(&mut self, info: &EvictionInfo) {
        if info.was_prefetch && !info.was_used {
            self.resolve(info.addr, false);
        }
    }

    fn on_prefetch_fill(&mut self, addr: u64, _level: FillLevel) {
        self.source.on_prefetch_fill(Feedback::unattributed(addr));
    }

    fn name(&self) -> &'static str {
        "rosenblatt"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppf_prefetchers::{CandidateMeta, SourceId};

    struct OneAhead;
    impl LookaheadSource for OneAhead {
        fn candidates(&mut self, ctx: &AccessContext, out: &mut Vec<Candidate>) {
            out.push(Candidate {
                addr: ctx.addr + 64,
                meta: CandidateMeta {
                    depth: 1,
                    signature: 0,
                    confidence: 50,
                    delta: 1,
                    trigger_pc: ctx.pc,
                    trigger_addr: ctx.addr,
                    source: SourceId::PRIMARY,
                },
            });
        }
        fn name(&self) -> &'static str {
            "one-ahead"
        }
    }

    fn ctx(pc: u64, addr: u64) -> AccessContext {
        AccessContext { pc, addr, is_store: false, l2_hit: false, cycle: 0, core: 0 }
    }

    #[test]
    fn cold_filter_accepts() {
        let mut f = RosenblattFilter::new(OneAhead);
        let mut out = Vec::new();
        f.on_demand_access(&ctx(0x400, 0x1000), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn error_correction_learns_to_reject_bad_pc() {
        let mut f = RosenblattFilter::new(OneAhead);
        let mut out = Vec::new();
        // PC 0xBAD0's candidates always evict unused.
        for i in 0..200u64 {
            out.clear();
            let addr = 0x40_0000 + i * 128;
            f.on_demand_access(&ctx(0xBAD0, addr), &mut out);
            f.on_eviction(&EvictionInfo {
                addr: addr + 64,
                was_prefetch: true,
                was_used: false,
            });
        }
        out.clear();
        f.on_demand_access(&ctx(0xBAD0, 0x80_0000), &mut out);
        assert!(out.is_empty(), "repeatedly useless PC must be filtered");
        assert!(f.stats.corrections > 0);
    }

    #[test]
    fn corrections_only_on_mispredictions() {
        let mut f = RosenblattFilter::new(OneAhead);
        let mut out = Vec::new();
        // Useful candidates with a cold (accepting) filter: prediction
        // correct, no corrections.
        for i in 0..50u64 {
            out.clear();
            let addr = 0x10_0000 + i * 64;
            f.on_demand_access(&ctx(0x400, addr), &mut out);
            f.on_useful_prefetch(addr + 64);
        }
        assert_eq!(f.stats.corrections, 0);
    }

    #[test]
    fn deep_candidates_are_ignored() {
        struct DeepOnly;
        impl LookaheadSource for DeepOnly {
            fn candidates(&mut self, ctx: &AccessContext, out: &mut Vec<Candidate>) {
                out.push(Candidate {
                    addr: ctx.addr + 64,
                    meta: CandidateMeta {
                        depth: 9,
                        signature: 0,
                        confidence: 50,
                        delta: 1,
                        trigger_pc: ctx.pc,
                        trigger_addr: ctx.addr,
                        source: SourceId::PRIMARY,
                    },
                });
            }
            fn name(&self) -> &'static str {
                "deep"
            }
        }
        let mut f = RosenblattFilter::new(DeepOnly);
        let mut out = Vec::new();
        f.on_demand_access(&ctx(0x400, 0x1000), &mut out);
        assert!(out.is_empty(), "unmodified-baseline filtering has no deep stream");
    }

    #[test]
    fn weights_stay_clamped() {
        let mut f = RosenblattFilter::with_config(
            OneAhead,
            RosenblattConfig { weight_limit: 4, ..RosenblattConfig::default() },
        );
        let mut out = Vec::new();
        for i in 0..500u64 {
            out.clear();
            let addr = 0x20_0000 + i * 128;
            f.on_demand_access(&ctx(0x500, addr), &mut out);
            f.on_eviction(&EvictionInfo { addr: addr + 64, was_prefetch: true, was_used: false });
        }
        assert!(f.weights().iter().all(|&w| (-4..=4).contains(&w)));
    }
}
