//! The hashed-perceptron weight store.
//!
//! A hashed perceptron (Tarjan & Skadron) keeps one small table of signed
//! weights per feature. Inference reads one weight per table (indexed by the
//! feature's hash) and sums them; training increments or decrements exactly
//! those weights. Weights are 5-bit saturating counters in `[-16, +15]` —
//! the paper found 5 bits the best accuracy/area trade-off (Sec 3.1).
//!
//! # Data layout
//!
//! The per-feature tables are stored as **one contiguous `i32` arena** with
//! a precomputed base offset and index mask per feature (see DESIGN.md §5b).
//! A feature's local hash index maps to an arena position with one add and
//! one and (`base[f] + (local & mask[f])`); [`Perceptron::globalize`] does
//! that mapping once per candidate and the resulting [`IndexList`] of arena
//! positions drives inference ([`Perceptron::sum_at`]) and training
//! ([`Perceptron::train_at`]) as a single gather over a flat slice — no
//! per-table pointer chasing and no heap allocation.

use crate::features::{IndexList, MAX_FEATURES};

/// Minimum weight value (5-bit signed).
pub const WEIGHT_MIN: i8 = -16;
/// Maximum weight value (5-bit signed).
pub const WEIGHT_MAX: i8 = 15;

/// Candidates per transposed block in [`Perceptron::sum_batch`]. Arbitrary
/// batch sizes are chunked to this, so the stack-resident transpose buffer
/// stays at `MAX_FEATURES * BATCH_CHUNK * 4` bytes (4 KiB).
const BATCH_CHUNK: usize = 64;

/// An inline, fixed-capacity snapshot of the weights at an [`IndexList`]'s
/// arena positions — the training-event log's carrier. `Copy` and
/// heap-free, unlike the `Vec<i8>` it replaced, so snapshotting weights on
/// the filter's hot path never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WeightList {
    raw: [i8; MAX_FEATURES],
    len: u8,
}

impl WeightList {
    /// Number of weights captured.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no weights were captured.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The captured weights in feature order.
    pub fn as_slice(&self) -> &[i8] {
        &self.raw[..self.len as usize]
    }
}

impl std::ops::Index<usize> for WeightList {
    type Output = i8;

    fn index(&self, i: usize) -> &i8 {
        &self.as_slice()[i]
    }
}

impl FromIterator<i8> for WeightList {
    /// # Panics
    ///
    /// Panics if the iterator yields more than [`MAX_FEATURES`] weights.
    fn from_iter<T: IntoIterator<Item = i8>>(iter: T) -> Self {
        let mut raw = [0i8; MAX_FEATURES];
        let mut len = 0usize;
        for w in iter {
            assert!(len < MAX_FEATURES, "more than MAX_FEATURES weights");
            raw[len] = w;
            len += 1;
        }
        Self { raw, len: len as u8 }
    }
}

/// A bank of per-feature weight tables flattened into one arena.
#[derive(Debug, Clone)]
pub struct Perceptron {
    /// All tables' weights, concatenated in feature order.
    arena: Vec<i32>,
    /// Arena offset of each feature's table.
    bases: Vec<u32>,
    /// `entries - 1` per feature (all sizes are powers of two).
    masks: Vec<u32>,
    /// Bumped on every weight mutation ([`Perceptron::train_at`],
    /// [`Perceptron::load_weights`]). Batched scoring records the epoch it
    /// scored under; a later epoch means the cached sums may be stale and
    /// the unjudged tail must be rescored (see `PpfFilter::judge_scored`).
    epoch: u64,
}

impl Perceptron {
    /// Creates one zeroed table per entry of `sizes`.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty or any size is not a power of two.
    pub fn new(sizes: &[usize]) -> Self {
        assert!(!sizes.is_empty(), "need at least one feature table");
        let mut bases = Vec::with_capacity(sizes.len());
        let mut masks = Vec::with_capacity(sizes.len());
        let mut total = 0usize;
        for &s in sizes {
            assert!(s.is_power_of_two(), "table size must be a power of two");
            bases.push(total as u32);
            masks.push((s - 1) as u32);
            total += s;
        }
        Self { arena: vec![0; total], bases, masks, epoch: 0 }
    }

    /// Number of feature tables.
    pub fn num_tables(&self) -> usize {
        self.bases.len()
    }

    /// Weight-mutation counter: unchanged epoch between two reads means no
    /// weight changed in between, so cached inference sums are still exact.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Entries in one feature's table.
    pub fn table_len(&self, feature: usize) -> usize {
        self.masks[feature] as usize + 1
    }

    /// One feature's weights as a slice of the arena (for the paper's
    /// Figure 6 histograms).
    pub fn feature_weights(&self, feature: usize) -> &[i32] {
        let base = self.bases[feature] as usize;
        &self.arena[base..base + self.table_len(feature)]
    }

    /// Reads one weight by feature and local (pre-mask) index.
    pub fn get(&self, feature: usize, index: usize) -> i32 {
        self.arena[self.bases[feature] as usize + (index & self.masks[feature] as usize)]
    }

    /// Reads one weight by arena position (from [`Perceptron::globalize`]) —
    /// the single-index form of [`Perceptron::sum_at`]'s gather, used by
    /// decision-time telemetry to attribute each feature's contribution.
    #[inline]
    pub fn weight_at(&self, global: u32) -> i32 {
        self.arena[global as usize]
    }

    /// Maps per-feature local indices to arena positions: one add and one
    /// mask per feature, done once per candidate at inference time. The
    /// result is stored in the Prefetch/Reject tables so training reuses
    /// it without rehashing.
    pub fn globalize(&self, locals: &IndexList) -> IndexList {
        assert_eq!(locals.len(), self.bases.len(), "one index per feature table");
        locals
            .as_slice()
            .iter()
            .zip(self.bases.iter().zip(&self.masks))
            .map(|(&local, (&base, &mask))| base + (local & mask))
            .collect()
    }

    /// Inference over arena positions from [`Perceptron::globalize`]: a
    /// single gather-and-sum over the flat weight slice, vectorized by
    /// [`ppf_sim::simd::sum_gather_i32`] (AVX2 gathers when available,
    /// bit-identical portable unroll otherwise — `i32` addition over 5-bit
    /// weights cannot overflow, so lane order doesn't matter).
    pub fn sum_at(&self, globals: &IndexList) -> i32 {
        ppf_sim::simd::sum_gather_i32(&self.arena, globals.as_slice())
    }

    /// Batched inference: scores `lists[c]` into `out[c]` for every
    /// candidate in one call. Index lists are transposed into feature-major
    /// order on the stack so each feature's weight-table cache lines are
    /// touched once per chunk of [`BATCH_CHUNK`] candidates, then summed by
    /// the same SIMD gather machinery as [`Perceptron::sum_at`]. Results
    /// are bit-identical to calling `sum_at` per candidate at this epoch.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than `lists` or any list's arity differs
    /// from the number of feature tables.
    pub fn sum_batch(&self, lists: &[IndexList], out: &mut [i32]) {
        assert!(out.len() >= lists.len(), "output slice shorter than batch");
        let features = self.bases.len();
        let mut trans = [0u32; MAX_FEATURES * BATCH_CHUNK];
        for (chunk, out_chunk) in
            lists.chunks(BATCH_CHUNK).zip(out.chunks_mut(BATCH_CHUNK))
        {
            for (c, list) in chunk.iter().enumerate() {
                let idx = list.as_slice();
                assert_eq!(idx.len(), features, "one index per feature table");
                for (f, &i) in idx.iter().enumerate() {
                    trans[f * BATCH_CHUNK + c] = i;
                }
            }
            ppf_sim::simd::sum_batch_transposed(
                &self.arena,
                &trans,
                features,
                BATCH_CHUNK,
                chunk.len(),
                out_chunk,
            );
        }
    }

    /// Training over arena positions: bump every selected weight up
    /// (`true`) or down (`false`), saturating at the 5-bit range.
    pub fn train_at(&mut self, globals: &IndexList, up: bool) {
        self.epoch += 1;
        for &i in globals.as_slice() {
            let w = &mut self.arena[i as usize];
            *w = if up {
                (*w + 1).min(i32::from(WEIGHT_MAX))
            } else {
                (*w - 1).max(i32::from(WEIGHT_MIN))
            };
        }
    }

    /// Reads the weights at arena positions (for the training-event log).
    /// Returns an inline fixed-capacity [`WeightList`] — no heap traffic on
    /// the event-logging path.
    pub fn weights_at(&self, globals: &IndexList) -> WeightList {
        globals.as_slice().iter().map(|&i| self.arena[i as usize] as i8).collect()
    }

    /// Inference from per-feature local indices (convenience for tests and
    /// offline analysis; the hot path globalizes once and uses
    /// [`Perceptron::sum_at`]).
    ///
    /// # Panics
    ///
    /// Panics if `indices.len()` differs from the number of tables.
    pub fn sum(&self, indices: &[usize]) -> i32 {
        assert_eq!(indices.len(), self.bases.len(), "one index per feature table");
        indices.iter().enumerate().map(|(f, &i)| self.get(f, i)).sum()
    }

    /// Training from per-feature local indices (see [`Perceptron::sum`]).
    ///
    /// # Panics
    ///
    /// Panics if `indices.len()` differs from the number of tables.
    pub fn train(&mut self, indices: &[usize], up: bool) {
        assert_eq!(indices.len(), self.bases.len(), "one index per feature table");
        let globals: IndexList = indices
            .iter()
            .enumerate()
            .map(|(f, &i)| self.bases[f] + (i as u32 & self.masks[f]))
            .collect();
        self.train_at(&globals, up);
    }

    /// Total storage in bits (5 bits per weight, as in hardware — the
    /// simulator's `i32` arena is a speed/layout choice, not a budget one).
    pub fn storage_bits(&self) -> u64 {
        self.arena.len() as u64 * 5
    }

    /// Serializes all weights into a flat byte vector (one `i8` per weight,
    /// tables concatenated in order). Pair with [`Perceptron::load_weights`]
    /// to warm-start a filter from a previous run. The byte format is
    /// unchanged from the per-table layout: the arena *is* the
    /// concatenation.
    pub fn save_weights(&self) -> Vec<u8> {
        self.arena.iter().map(|&w| (w as i8) as u8).collect()
    }

    /// Restores weights produced by [`Perceptron::save_weights`].
    ///
    /// # Errors
    ///
    /// Returns the expected length if `bytes` has the wrong size, or the
    /// offending value if any byte is outside the 5-bit weight range.
    pub fn load_weights(&mut self, bytes: &[u8]) -> Result<(), String> {
        if bytes.len() != self.arena.len() {
            return Err(format!("expected {} weights, got {}", self.arena.len(), bytes.len()));
        }
        for &b in bytes {
            let w = b as i8;
            if !(WEIGHT_MIN..=WEIGHT_MAX).contains(&w) {
                return Err(format!("weight {w} outside the 5-bit range"));
            }
        }
        self.epoch += 1;
        for (slot, &b) in self.arena.iter_mut().zip(bytes) {
            *slot = i32::from(b as i8);
        }
        Ok(())
    }

    /// FNV-1a digest of the full weight arena (as the `i8` values
    /// [`Perceptron::save_weights`] serializes). Two perceptrons with equal
    /// digests hold bit-identical weights — the cheap equality check the
    /// serving daemon's warm-start verification and the checkpoint tests
    /// rely on.
    pub fn weights_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &w in &self.arena {
            h ^= u64::from((w as i8) as u8);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// The theoretical output range `[min, max]` of [`Perceptron::sum`].
    pub fn sum_range(&self) -> (i32, i32) {
        let n = self.bases.len() as i32;
        (n * i32::from(WEIGHT_MIN), n * i32::from(WEIGHT_MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn globals(p: &Perceptron, locals: &[usize]) -> IndexList {
        p.globalize(&locals.iter().map(|&i| i as u32).collect())
    }

    #[test]
    fn zero_initialised() {
        let p = Perceptron::new(&[64, 128]);
        assert_eq!(p.sum(&[3, 100]), 0);
    }

    #[test]
    fn train_moves_sum() {
        let mut p = Perceptron::new(&[64, 64]);
        p.train(&[1, 2], true);
        assert_eq!(p.sum(&[1, 2]), 2);
        p.train(&[1, 2], false);
        p.train(&[1, 2], false);
        assert_eq!(p.sum(&[1, 2]), -2);
    }

    #[test]
    fn flat_path_matches_local_path() {
        let mut p = Perceptron::new(&[64, 128, 4096]);
        let locals = [5usize, 100, 4000];
        let g = globals(&p, &locals);
        p.train_at(&g, true);
        p.train_at(&g, true);
        assert_eq!(p.sum_at(&g), p.sum(&locals));
        assert_eq!(p.sum_at(&g), 6);
        p.train(&locals, false);
        assert_eq!(p.sum_at(&g), 3);
    }

    #[test]
    fn weights_saturate() {
        let mut p = Perceptron::new(&[8]);
        let g = globals(&p, &[3]);
        for _ in 0..100 {
            p.train_at(&g, true);
        }
        assert_eq!(p.get(0, 3), i32::from(WEIGHT_MAX));
        for _ in 0..100 {
            p.train_at(&g, false);
        }
        assert_eq!(p.get(0, 3), i32::from(WEIGHT_MIN));
    }

    #[test]
    fn indices_are_masked() {
        let p = Perceptron::new(&[16]);
        assert_eq!(p.get(0, 16), p.get(0, 0));
        assert_eq!(p.get(0, 31), p.get(0, 15));
        // globalize applies the same mask.
        assert_eq!(globals(&p, &[16]), globals(&p, &[0]));
    }

    #[test]
    fn tables_are_independent() {
        let mut p = Perceptron::new(&[64, 64]);
        p.train(&[5, 9], true);
        assert_eq!(p.get(0, 9), 0);
        assert_eq!(p.get(1, 5), 0);
        assert_eq!(p.get(0, 5), 1);
    }

    #[test]
    fn arena_layout_is_concatenation() {
        let mut p = Perceptron::new(&[64, 128]);
        assert_eq!(p.num_tables(), 2);
        assert_eq!(p.table_len(0), 64);
        assert_eq!(p.table_len(1), 128);
        p.train(&[0, 0], true);
        // Feature 1's slot 0 lives at arena offset 64.
        assert_eq!(p.feature_weights(1)[0], 1);
        assert_eq!(p.feature_weights(0)[0], 1);
        assert_eq!(p.feature_weights(0).len() + p.feature_weights(1).len(), 192);
    }

    #[test]
    fn storage_accounting() {
        // The paper's Table 3 perceptron block:
        // 4×4096 + 2×2048 + 2×1024 + 1×128 weights at 5 bits = 113,280 bits.
        let p = Perceptron::new(&[4096, 4096, 4096, 4096, 2048, 2048, 1024, 1024, 128]);
        assert_eq!(p.storage_bits(), 113_280);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut p = Perceptron::new(&[64, 128]);
        p.train(&[3, 70], true);
        p.train(&[3, 70], true);
        p.train(&[9, 9], false);
        let saved = p.save_weights();
        let mut q = Perceptron::new(&[64, 128]);
        q.load_weights(&saved).expect("roundtrip");
        assert_eq!(q.sum(&[3, 70]), p.sum(&[3, 70]));
        assert_eq!(q.sum(&[9, 9]), p.sum(&[9, 9]));
    }

    #[test]
    fn load_rejects_bad_shapes_and_values() {
        let mut p = Perceptron::new(&[64]);
        assert!(p.load_weights(&[0u8; 63]).is_err(), "wrong length");
        let mut bad = vec![0u8; 64];
        bad[0] = 100; // 100 as i8 = 100, outside [-16, 15]
        assert!(p.load_weights(&bad).is_err(), "out-of-range weight");
    }

    #[test]
    fn sum_range_matches_weights() {
        let p = Perceptron::new(&[64; 9]);
        assert_eq!(p.sum_range(), (-144, 135));
    }

    #[test]
    #[should_panic(expected = "one index per feature table")]
    fn wrong_arity_panics() {
        Perceptron::new(&[64, 64]).sum(&[1]);
    }

    #[test]
    fn sum_batch_matches_per_candidate() {
        let mut p = Perceptron::new(&[64, 128, 4096]);
        // Scatter some trained weight so sums are non-trivial.
        for i in 0..200usize {
            p.train(&[i % 64, (i * 7) % 128, (i * 13) % 4096], i % 3 != 0);
        }
        // Sizes straddling the 8-lane blocks and the 64-candidate chunk.
        for n in [0usize, 1, 7, 8, 9, 40, 63, 64, 65, 130] {
            let lists: Vec<IndexList> = (0..n)
                .map(|c| globals(&p, &[c % 64, (c * 3) % 128, (c * 11) % 4096]))
                .collect();
            let mut out = vec![0i32; n];
            p.sum_batch(&lists, &mut out);
            for (c, list) in lists.iter().enumerate() {
                assert_eq!(out[c], p.sum_at(list), "batch {n}, candidate {c}");
            }
        }
    }

    #[test]
    fn epoch_tracks_weight_mutations() {
        let mut p = Perceptron::new(&[64, 128]);
        assert_eq!(p.epoch(), 0);
        let g = globals(&p, &[3, 70]);
        p.train_at(&g, true);
        assert_eq!(p.epoch(), 1);
        let saved = p.save_weights();
        assert_eq!(p.epoch(), 1, "read-only ops leave the epoch alone");
        p.load_weights(&saved).expect("roundtrip");
        assert_eq!(p.epoch(), 2, "bulk weight load moves the epoch");
    }

    #[test]
    fn weight_list_carrier() {
        let mut p = Perceptron::new(&[64, 128]);
        let g = globals(&p, &[3, 70]);
        p.train_at(&g, true);
        p.train_at(&g, false);
        p.train_at(&g, false);
        let w = p.weights_at(&g);
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
        assert_eq!(w.as_slice(), &[-1, -1]);
        assert_eq!(w[0], -1);
        assert_eq!(WeightList::default().len(), 0);
        let collected: WeightList = [1i8, -2, 3].into_iter().collect();
        assert_eq!(collected.as_slice(), &[1, -2, 3]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        Perceptron::new(&[100]);
    }
}
