//! The hashed-perceptron weight store.
//!
//! A hashed perceptron (Tarjan & Skadron) keeps one small table of signed
//! weights per feature. Inference reads one weight per table (indexed by the
//! feature's hash) and sums them; training increments or decrements exactly
//! those weights. Weights are 5-bit saturating counters in `[-16, +15]` —
//! the paper found 5 bits the best accuracy/area trade-off (Sec 3.1).

/// Minimum weight value (5-bit signed).
pub const WEIGHT_MIN: i8 = -16;
/// Maximum weight value (5-bit signed).
pub const WEIGHT_MAX: i8 = 15;

/// One feature's table of 5-bit weights.
#[derive(Debug, Clone)]
pub struct WeightTable {
    weights: Vec<i8>,
}

impl WeightTable {
    /// Creates a zeroed table with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "table size must be a power of two");
        Self { weights: vec![0; entries] }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Reads the weight at `index` (masked into range).
    pub fn get(&self, index: usize) -> i8 {
        self.weights[index & (self.weights.len() - 1)]
    }

    /// Saturating increment/decrement of the weight at `index`.
    pub fn bump(&mut self, index: usize, up: bool) {
        let i = index & (self.weights.len() - 1);
        let w = self.weights[i];
        self.weights[i] = if up { (w + 1).min(WEIGHT_MAX) } else { (w - 1).max(WEIGHT_MIN) };
    }

    /// All weights (for the paper's Figure 6 histograms).
    pub fn weights(&self) -> &[i8] {
        &self.weights
    }
}

/// A bank of weight tables, one per feature.
#[derive(Debug, Clone)]
pub struct Perceptron {
    tables: Vec<WeightTable>,
}

impl Perceptron {
    /// Creates one zeroed table per entry of `sizes`.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty or any size is not a power of two.
    pub fn new(sizes: &[usize]) -> Self {
        assert!(!sizes.is_empty(), "need at least one feature table");
        Self { tables: sizes.iter().map(|&s| WeightTable::new(s)).collect() }
    }

    /// Number of feature tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Inference: sum of one weight per table.
    ///
    /// # Panics
    ///
    /// Panics if `indices.len()` differs from the number of tables.
    pub fn sum(&self, indices: &[usize]) -> i32 {
        assert_eq!(indices.len(), self.tables.len(), "one index per feature table");
        self.tables.iter().zip(indices).map(|(t, &i)| i32::from(t.get(i))).sum()
    }

    /// Reads the individual weights selected by `indices` (for analysis).
    pub fn weights_at(&self, indices: &[usize]) -> Vec<i8> {
        assert_eq!(indices.len(), self.tables.len(), "one index per feature table");
        self.tables.iter().zip(indices).map(|(t, &i)| t.get(i)).collect()
    }

    /// Training: bump every selected weight up (`true`) or down (`false`).
    pub fn train(&mut self, indices: &[usize], up: bool) {
        assert_eq!(indices.len(), self.tables.len(), "one index per feature table");
        for (t, &i) in self.tables.iter_mut().zip(indices) {
            t.bump(i, up);
        }
    }

    /// Borrow of one feature's table.
    pub fn table(&self, feature: usize) -> &WeightTable {
        &self.tables[feature]
    }

    /// Total storage in bits (5 bits per weight).
    pub fn storage_bits(&self) -> u64 {
        self.tables.iter().map(|t| t.len() as u64 * 5).sum()
    }

    /// Serializes all weights into a flat byte vector (one `i8` per weight,
    /// tables concatenated in order). Pair with [`Perceptron::load_weights`]
    /// to warm-start a filter from a previous run.
    pub fn save_weights(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.tables.iter().map(WeightTable::len).sum());
        for t in &self.tables {
            out.extend(t.weights().iter().map(|&w| w as u8));
        }
        out
    }

    /// Restores weights produced by [`Perceptron::save_weights`].
    ///
    /// # Errors
    ///
    /// Returns the expected length if `bytes` has the wrong size, or the
    /// offending value if any byte is outside the 5-bit weight range.
    pub fn load_weights(&mut self, bytes: &[u8]) -> Result<(), String> {
        let expected: usize = self.tables.iter().map(WeightTable::len).sum();
        if bytes.len() != expected {
            return Err(format!("expected {expected} weights, got {}", bytes.len()));
        }
        for &b in bytes {
            let w = b as i8;
            if !(WEIGHT_MIN..=WEIGHT_MAX).contains(&w) {
                return Err(format!("weight {w} outside the 5-bit range"));
            }
        }
        let mut cursor = 0;
        for t in &mut self.tables {
            for i in 0..t.len() {
                t.weights[i] = bytes[cursor] as i8;
                cursor += 1;
            }
        }
        Ok(())
    }

    /// The theoretical output range `[min, max]` of [`Perceptron::sum`].
    pub fn sum_range(&self) -> (i32, i32) {
        let n = self.tables.len() as i32;
        (n * i32::from(WEIGHT_MIN), n * i32::from(WEIGHT_MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let p = Perceptron::new(&[64, 128]);
        assert_eq!(p.sum(&[3, 100]), 0);
    }

    #[test]
    fn train_moves_sum() {
        let mut p = Perceptron::new(&[64, 64]);
        p.train(&[1, 2], true);
        assert_eq!(p.sum(&[1, 2]), 2);
        p.train(&[1, 2], false);
        p.train(&[1, 2], false);
        assert_eq!(p.sum(&[1, 2]), -2);
    }

    #[test]
    fn weights_saturate() {
        let mut t = WeightTable::new(8);
        for _ in 0..100 {
            t.bump(3, true);
        }
        assert_eq!(t.get(3), WEIGHT_MAX);
        for _ in 0..100 {
            t.bump(3, false);
        }
        assert_eq!(t.get(3), WEIGHT_MIN);
    }

    #[test]
    fn indices_are_masked() {
        let t = WeightTable::new(16);
        assert_eq!(t.get(16), t.get(0));
        assert_eq!(t.get(31), t.get(15));
    }

    #[test]
    fn tables_are_independent() {
        let mut p = Perceptron::new(&[64, 64]);
        p.train(&[5, 9], true);
        assert_eq!(p.table(0).get(9), 0);
        assert_eq!(p.table(1).get(5), 0);
        assert_eq!(p.table(0).get(5), 1);
    }

    #[test]
    fn storage_accounting() {
        // The paper's Table 3 perceptron block:
        // 4×4096 + 2×2048 + 2×1024 + 1×128 weights at 5 bits = 113,280 bits.
        let p = Perceptron::new(&[4096, 4096, 4096, 4096, 2048, 2048, 1024, 1024, 128]);
        assert_eq!(p.storage_bits(), 113_280);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut p = Perceptron::new(&[64, 128]);
        p.train(&[3, 70], true);
        p.train(&[3, 70], true);
        p.train(&[9, 9], false);
        let saved = p.save_weights();
        let mut q = Perceptron::new(&[64, 128]);
        q.load_weights(&saved).expect("roundtrip");
        assert_eq!(q.sum(&[3, 70]), p.sum(&[3, 70]));
        assert_eq!(q.sum(&[9, 9]), p.sum(&[9, 9]));
    }

    #[test]
    fn load_rejects_bad_shapes_and_values() {
        let mut p = Perceptron::new(&[64]);
        assert!(p.load_weights(&[0u8; 63]).is_err(), "wrong length");
        let mut bad = vec![0u8; 64];
        bad[0] = 100; // 100 as i8 = 100, outside [-16, 15]
        assert!(p.load_weights(&bad).is_err(), "out-of-range weight");
    }

    #[test]
    fn sum_range_matches_weights() {
        let p = Perceptron::new(&[64; 9]);
        assert_eq!(p.sum_range(), (-144, 135));
    }

    #[test]
    #[should_panic(expected = "one index per feature table")]
    fn wrong_arity_panics() {
        Perceptron::new(&[64, 64]).sum(&[1]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        WeightTable::new(100);
    }
}
