//! The hashed-perceptron weight store.
//!
//! A hashed perceptron (Tarjan & Skadron) keeps one small table of signed
//! weights per feature. Inference reads one weight per table (indexed by the
//! feature's hash) and sums them; training increments or decrements exactly
//! those weights. Weights are 5-bit saturating counters in `[-16, +15]` —
//! the paper found 5 bits the best accuracy/area trade-off (Sec 3.1).
//!
//! # Data layout
//!
//! The per-feature tables are stored as **one contiguous `i32` arena** with
//! a precomputed base offset and index mask per feature (see DESIGN.md §5b).
//! A feature's local hash index maps to an arena position with one add and
//! one and (`base[f] + (local & mask[f])`); [`Perceptron::globalize`] does
//! that mapping once per candidate and the resulting [`IndexList`] of arena
//! positions drives inference ([`Perceptron::sum_at`]) and training
//! ([`Perceptron::train_at`]) as a single gather over a flat slice — no
//! per-table pointer chasing and no heap allocation.

use crate::features::IndexList;

/// Minimum weight value (5-bit signed).
pub const WEIGHT_MIN: i8 = -16;
/// Maximum weight value (5-bit signed).
pub const WEIGHT_MAX: i8 = 15;

/// A bank of per-feature weight tables flattened into one arena.
#[derive(Debug, Clone)]
pub struct Perceptron {
    /// All tables' weights, concatenated in feature order.
    arena: Vec<i32>,
    /// Arena offset of each feature's table.
    bases: Vec<u32>,
    /// `entries - 1` per feature (all sizes are powers of two).
    masks: Vec<u32>,
}

impl Perceptron {
    /// Creates one zeroed table per entry of `sizes`.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty or any size is not a power of two.
    pub fn new(sizes: &[usize]) -> Self {
        assert!(!sizes.is_empty(), "need at least one feature table");
        let mut bases = Vec::with_capacity(sizes.len());
        let mut masks = Vec::with_capacity(sizes.len());
        let mut total = 0usize;
        for &s in sizes {
            assert!(s.is_power_of_two(), "table size must be a power of two");
            bases.push(total as u32);
            masks.push((s - 1) as u32);
            total += s;
        }
        Self { arena: vec![0; total], bases, masks }
    }

    /// Number of feature tables.
    pub fn num_tables(&self) -> usize {
        self.bases.len()
    }

    /// Entries in one feature's table.
    pub fn table_len(&self, feature: usize) -> usize {
        self.masks[feature] as usize + 1
    }

    /// One feature's weights as a slice of the arena (for the paper's
    /// Figure 6 histograms).
    pub fn feature_weights(&self, feature: usize) -> &[i32] {
        let base = self.bases[feature] as usize;
        &self.arena[base..base + self.table_len(feature)]
    }

    /// Reads one weight by feature and local (pre-mask) index.
    pub fn get(&self, feature: usize, index: usize) -> i32 {
        self.arena[self.bases[feature] as usize + (index & self.masks[feature] as usize)]
    }

    /// Reads one weight by arena position (from [`Perceptron::globalize`]) —
    /// the single-index form of [`Perceptron::sum_at`]'s gather, used by
    /// decision-time telemetry to attribute each feature's contribution.
    #[inline]
    pub fn weight_at(&self, global: u32) -> i32 {
        self.arena[global as usize]
    }

    /// Maps per-feature local indices to arena positions: one add and one
    /// mask per feature, done once per candidate at inference time. The
    /// result is stored in the Prefetch/Reject tables so training reuses
    /// it without rehashing.
    pub fn globalize(&self, locals: &IndexList) -> IndexList {
        assert_eq!(locals.len(), self.bases.len(), "one index per feature table");
        locals
            .as_slice()
            .iter()
            .zip(self.bases.iter().zip(&self.masks))
            .map(|(&local, (&base, &mask))| base + (local & mask))
            .collect()
    }

    /// Inference over arena positions from [`Perceptron::globalize`]: a
    /// single gather-and-sum over the flat weight slice.
    pub fn sum_at(&self, globals: &IndexList) -> i32 {
        globals.as_slice().iter().map(|&i| self.arena[i as usize]).sum()
    }

    /// Training over arena positions: bump every selected weight up
    /// (`true`) or down (`false`), saturating at the 5-bit range.
    pub fn train_at(&mut self, globals: &IndexList, up: bool) {
        for &i in globals.as_slice() {
            let w = &mut self.arena[i as usize];
            *w = if up {
                (*w + 1).min(i32::from(WEIGHT_MAX))
            } else {
                (*w - 1).max(i32::from(WEIGHT_MIN))
            };
        }
    }

    /// Reads the weights at arena positions (for the training-event log).
    pub fn weights_at(&self, globals: &IndexList) -> Vec<i8> {
        globals.as_slice().iter().map(|&i| self.arena[i as usize] as i8).collect()
    }

    /// Inference from per-feature local indices (convenience for tests and
    /// offline analysis; the hot path globalizes once and uses
    /// [`Perceptron::sum_at`]).
    ///
    /// # Panics
    ///
    /// Panics if `indices.len()` differs from the number of tables.
    pub fn sum(&self, indices: &[usize]) -> i32 {
        assert_eq!(indices.len(), self.bases.len(), "one index per feature table");
        indices.iter().enumerate().map(|(f, &i)| self.get(f, i)).sum()
    }

    /// Training from per-feature local indices (see [`Perceptron::sum`]).
    ///
    /// # Panics
    ///
    /// Panics if `indices.len()` differs from the number of tables.
    pub fn train(&mut self, indices: &[usize], up: bool) {
        assert_eq!(indices.len(), self.bases.len(), "one index per feature table");
        let globals: IndexList = indices
            .iter()
            .enumerate()
            .map(|(f, &i)| self.bases[f] + (i as u32 & self.masks[f]))
            .collect();
        self.train_at(&globals, up);
    }

    /// Total storage in bits (5 bits per weight, as in hardware — the
    /// simulator's `i32` arena is a speed/layout choice, not a budget one).
    pub fn storage_bits(&self) -> u64 {
        self.arena.len() as u64 * 5
    }

    /// Serializes all weights into a flat byte vector (one `i8` per weight,
    /// tables concatenated in order). Pair with [`Perceptron::load_weights`]
    /// to warm-start a filter from a previous run. The byte format is
    /// unchanged from the per-table layout: the arena *is* the
    /// concatenation.
    pub fn save_weights(&self) -> Vec<u8> {
        self.arena.iter().map(|&w| (w as i8) as u8).collect()
    }

    /// Restores weights produced by [`Perceptron::save_weights`].
    ///
    /// # Errors
    ///
    /// Returns the expected length if `bytes` has the wrong size, or the
    /// offending value if any byte is outside the 5-bit weight range.
    pub fn load_weights(&mut self, bytes: &[u8]) -> Result<(), String> {
        if bytes.len() != self.arena.len() {
            return Err(format!("expected {} weights, got {}", self.arena.len(), bytes.len()));
        }
        for &b in bytes {
            let w = b as i8;
            if !(WEIGHT_MIN..=WEIGHT_MAX).contains(&w) {
                return Err(format!("weight {w} outside the 5-bit range"));
            }
        }
        for (slot, &b) in self.arena.iter_mut().zip(bytes) {
            *slot = i32::from(b as i8);
        }
        Ok(())
    }

    /// The theoretical output range `[min, max]` of [`Perceptron::sum`].
    pub fn sum_range(&self) -> (i32, i32) {
        let n = self.bases.len() as i32;
        (n * i32::from(WEIGHT_MIN), n * i32::from(WEIGHT_MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn globals(p: &Perceptron, locals: &[usize]) -> IndexList {
        p.globalize(&locals.iter().map(|&i| i as u32).collect())
    }

    #[test]
    fn zero_initialised() {
        let p = Perceptron::new(&[64, 128]);
        assert_eq!(p.sum(&[3, 100]), 0);
    }

    #[test]
    fn train_moves_sum() {
        let mut p = Perceptron::new(&[64, 64]);
        p.train(&[1, 2], true);
        assert_eq!(p.sum(&[1, 2]), 2);
        p.train(&[1, 2], false);
        p.train(&[1, 2], false);
        assert_eq!(p.sum(&[1, 2]), -2);
    }

    #[test]
    fn flat_path_matches_local_path() {
        let mut p = Perceptron::new(&[64, 128, 4096]);
        let locals = [5usize, 100, 4000];
        let g = globals(&p, &locals);
        p.train_at(&g, true);
        p.train_at(&g, true);
        assert_eq!(p.sum_at(&g), p.sum(&locals));
        assert_eq!(p.sum_at(&g), 6);
        p.train(&locals, false);
        assert_eq!(p.sum_at(&g), 3);
    }

    #[test]
    fn weights_saturate() {
        let mut p = Perceptron::new(&[8]);
        let g = globals(&p, &[3]);
        for _ in 0..100 {
            p.train_at(&g, true);
        }
        assert_eq!(p.get(0, 3), i32::from(WEIGHT_MAX));
        for _ in 0..100 {
            p.train_at(&g, false);
        }
        assert_eq!(p.get(0, 3), i32::from(WEIGHT_MIN));
    }

    #[test]
    fn indices_are_masked() {
        let p = Perceptron::new(&[16]);
        assert_eq!(p.get(0, 16), p.get(0, 0));
        assert_eq!(p.get(0, 31), p.get(0, 15));
        // globalize applies the same mask.
        assert_eq!(globals(&p, &[16]), globals(&p, &[0]));
    }

    #[test]
    fn tables_are_independent() {
        let mut p = Perceptron::new(&[64, 64]);
        p.train(&[5, 9], true);
        assert_eq!(p.get(0, 9), 0);
        assert_eq!(p.get(1, 5), 0);
        assert_eq!(p.get(0, 5), 1);
    }

    #[test]
    fn arena_layout_is_concatenation() {
        let mut p = Perceptron::new(&[64, 128]);
        assert_eq!(p.num_tables(), 2);
        assert_eq!(p.table_len(0), 64);
        assert_eq!(p.table_len(1), 128);
        p.train(&[0, 0], true);
        // Feature 1's slot 0 lives at arena offset 64.
        assert_eq!(p.feature_weights(1)[0], 1);
        assert_eq!(p.feature_weights(0)[0], 1);
        assert_eq!(p.feature_weights(0).len() + p.feature_weights(1).len(), 192);
    }

    #[test]
    fn storage_accounting() {
        // The paper's Table 3 perceptron block:
        // 4×4096 + 2×2048 + 2×1024 + 1×128 weights at 5 bits = 113,280 bits.
        let p = Perceptron::new(&[4096, 4096, 4096, 4096, 2048, 2048, 1024, 1024, 128]);
        assert_eq!(p.storage_bits(), 113_280);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut p = Perceptron::new(&[64, 128]);
        p.train(&[3, 70], true);
        p.train(&[3, 70], true);
        p.train(&[9, 9], false);
        let saved = p.save_weights();
        let mut q = Perceptron::new(&[64, 128]);
        q.load_weights(&saved).expect("roundtrip");
        assert_eq!(q.sum(&[3, 70]), p.sum(&[3, 70]));
        assert_eq!(q.sum(&[9, 9]), p.sum(&[9, 9]));
    }

    #[test]
    fn load_rejects_bad_shapes_and_values() {
        let mut p = Perceptron::new(&[64]);
        assert!(p.load_weights(&[0u8; 63]).is_err(), "wrong length");
        let mut bad = vec![0u8; 64];
        bad[0] = 100; // 100 as i8 = 100, outside [-16, 15]
        assert!(p.load_weights(&bad).is_err(), "out-of-range weight");
    }

    #[test]
    fn sum_range_matches_weights() {
        let p = Perceptron::new(&[64; 9]);
        assert_eq!(p.sum_range(), (-144, 135));
    }

    #[test]
    #[should_panic(expected = "one index per feature table")]
    fn wrong_arity_panics() {
        Perceptron::new(&[64, 64]).sum(&[1]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        Perceptron::new(&[100]);
    }
}
