//! Perceptron introspection: who is deciding, and how close the calls are.
//!
//! Three views into a trained filter (paper Sec 5.5 / Fig. 6 territory):
//!
//! * **Weight saturation** — per feature, how many weights sit pinned at
//!   the 5-bit rails ([`WEIGHT_MIN`]/[`WEIGHT_MAX`]). A table that is mostly
//!   saturated has run out of dynamic range; one that is mostly zero is not
//!   participating in decisions. Computed on demand from the weight arena
//!   ([`weight_saturation`]) — nothing is recorded on the hot path.
//! * **Contribution attribution** — at decision time each feature's weight
//!   is accumulated into an accept- or reject-side total
//!   ([`DecisionTelemetry`]), so [`render_report`] can show the mean
//!   contribution each feature made to the sums that crossed (or missed)
//!   the thresholds.
//! * **Margin histograms** — the distribution of `sum − τ_hi` and
//!   `sum − τ_lo` at decision time. Mass piled up just below a threshold
//!   means many near-misses: those candidates are one training event away
//!   from flipping.
//!
//! Recording is double-gated exactly like the simulator's hooks: without
//! the `telemetry` cargo feature the guard in
//! [`PpfFilter::infer_indexed`](crate::PpfFilter::infer_indexed) folds to
//! `false` at compile time, and at runtime `PPF_TELEMETRY` must enable it
//! (or a test calls
//! [`PpfFilter::set_telemetry_enabled`](crate::PpfFilter::set_telemetry_enabled)).
//! All recording state is fixed-size arrays, so the telemetry-enabled hot
//! path still allocates nothing — the counting-allocator test covers it.

use crate::features::{FeatureKind, IndexList, MAX_FEATURES};
use crate::filter::{Decision, PpfFilter};
use crate::perceptron::{Perceptron, WEIGHT_MAX, WEIGHT_MIN};
use ppf_sim::TelemetryConfig;

/// Buckets in each threshold-margin histogram.
pub const MARGIN_BUCKETS: usize = 16;

/// Margin units per bucket.
const MARGIN_WIDTH: i32 = 4;

/// Margins below `-MARGIN_SPAN` clamp into the first bucket, margins at or
/// above `+MARGIN_SPAN - MARGIN_WIDTH`... the last.
const MARGIN_SPAN: i32 = (MARGIN_BUCKETS as i32 / 2) * MARGIN_WIDTH;

/// Maps a threshold margin (`sum − τ`) to its histogram bucket. Buckets are
/// `MARGIN_WIDTH` wide, centred so bucket `MARGIN_BUCKETS/2` starts at
/// margin 0; the first and last buckets absorb everything beyond the span.
fn margin_bucket(margin: i32) -> usize {
    (margin + MARGIN_SPAN).div_euclid(MARGIN_WIDTH).clamp(0, MARGIN_BUCKETS as i32 - 1) as usize
}

/// Human-readable range label for one margin bucket.
fn margin_bucket_label(bucket: usize) -> String {
    let lo = bucket as i32 * MARGIN_WIDTH - MARGIN_SPAN;
    if bucket == 0 {
        format!("<={:+}", lo + MARGIN_WIDTH - 1)
    } else if bucket == MARGIN_BUCKETS - 1 {
        format!(">={lo:+}")
    } else {
        format!("{:+}..{:+}", lo, lo + MARGIN_WIDTH - 1)
    }
}

/// Decision-time telemetry recorded by
/// [`PpfFilter::infer_indexed`](crate::PpfFilter::infer_indexed) when
/// enabled: per-feature contribution attribution and threshold-margin
/// histograms. Fixed-size state only — recording never allocates.
#[derive(Debug, Clone)]
pub struct DecisionTelemetry {
    enabled: bool,
    accepts: u64,
    rejects: u64,
    accept_contrib: [i64; MAX_FEATURES],
    reject_contrib: [i64; MAX_FEATURES],
    hi_margin: [u64; MARGIN_BUCKETS],
    lo_margin: [u64; MARGIN_BUCKETS],
}

impl DecisionTelemetry {
    /// Telemetry off; recording is a no-op.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            accepts: 0,
            rejects: 0,
            accept_contrib: [0; MAX_FEATURES],
            reject_contrib: [0; MAX_FEATURES],
            hi_margin: [0; MARGIN_BUCKETS],
            lo_margin: [0; MARGIN_BUCKETS],
        }
    }

    /// Resolves enablement from `PPF_TELEMETRY` (same conventions as the
    /// simulator's [`TelemetryConfig::from_env`]); always disabled without
    /// the `telemetry` feature.
    pub fn from_env() -> Self {
        let mut t = Self::disabled();
        t.set_enabled(TelemetryConfig::from_env().interval != 0);
        t
    }

    /// Whether decisions are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables recording. Forced off when the `telemetry`
    /// feature is not compiled in, so the guard in the inference hot path
    /// stays statically false and the hook folds away.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = cfg!(feature = "telemetry") && enabled;
    }

    /// Decisions recorded that accepted the candidate (either fill level).
    pub fn accepts(&self) -> u64 {
        self.accepts
    }

    /// Decisions recorded that rejected the candidate.
    pub fn rejects(&self) -> u64 {
        self.rejects
    }

    /// Summed weight contribution per feature over accepted decisions.
    pub fn accept_contrib(&self) -> &[i64; MAX_FEATURES] {
        &self.accept_contrib
    }

    /// Summed weight contribution per feature over rejected decisions.
    pub fn reject_contrib(&self) -> &[i64; MAX_FEATURES] {
        &self.reject_contrib
    }

    /// Histogram of `sum − τ_hi` at decision time.
    pub fn hi_margin(&self) -> &[u64; MARGIN_BUCKETS] {
        &self.hi_margin
    }

    /// Histogram of `sum − τ_lo` at decision time.
    pub fn lo_margin(&self) -> &[u64; MARGIN_BUCKETS] {
        &self.lo_margin
    }

    /// Records one decision: attributes each feature's weight to the
    /// accept or reject side and buckets both threshold margins.
    #[inline]
    pub fn record(
        &mut self,
        perceptron: &Perceptron,
        indices: &IndexList,
        sum: i32,
        decision: Decision,
        tau_hi: i32,
        tau_lo: i32,
    ) {
        let contrib = if decision == Decision::Reject {
            self.rejects += 1;
            &mut self.reject_contrib
        } else {
            self.accepts += 1;
            &mut self.accept_contrib
        };
        for (f, &g) in indices.as_slice().iter().enumerate() {
            contrib[f] += i64::from(perceptron.weight_at(g));
        }
        self.hi_margin[margin_bucket(sum - tau_hi)] += 1;
        self.lo_margin[margin_bucket(sum - tau_lo)] += 1;
    }
}

/// Weight-saturation summary for one feature's table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaturationRow {
    /// The feature.
    pub feature: FeatureKind,
    /// Table entries.
    pub entries: usize,
    /// Weights pinned at [`WEIGHT_MIN`].
    pub at_min: usize,
    /// Weights pinned at [`WEIGHT_MAX`].
    pub at_max: usize,
    /// Weights that have moved off zero.
    pub nonzero: usize,
}

impl SaturationRow {
    /// Fraction of the table pinned at either rail.
    pub fn saturated_fraction(&self) -> f64 {
        (self.at_min + self.at_max) as f64 / self.entries as f64
    }
}

/// Scans the weight arena and summarises saturation per feature (the
/// paper's Fig. 6 raw material). On-demand and allocating — cold paths
/// only.
pub fn weight_saturation(filter: &PpfFilter) -> Vec<SaturationRow> {
    filter
        .features()
        .iter()
        .enumerate()
        .map(|(f, &feature)| {
            let weights = filter.perceptron().feature_weights(f);
            SaturationRow {
                feature,
                entries: weights.len(),
                at_min: weights.iter().filter(|&&w| w == i32::from(WEIGHT_MIN)).count(),
                at_max: weights.iter().filter(|&&w| w == i32::from(WEIGHT_MAX)).count(),
                nonzero: weights.iter().filter(|&&w| w != 0).count(),
            }
        })
        .collect()
}

/// Renders the full introspection report: weight saturation, decision
/// attribution, margin histograms, and the Reject-Table recovery counters.
/// This backs [`Ppf`](crate::Ppf)'s `telemetry_dump` for the simulator's
/// diagnostic paths (invariant violations, end-of-run reporting).
pub fn render_report(filter: &PpfFilter) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "ppf introspection");

    let _ = writeln!(out, "  weight saturation (rails {WEIGHT_MIN}/{WEIGHT_MAX}):");
    let _ = writeln!(
        out,
        "    {:<20} {:>7} {:>7} {:>7} {:>8} {:>6}",
        "feature", "entries", "at_min", "at_max", "nonzero", "sat%"
    );
    for row in weight_saturation(filter) {
        let _ = writeln!(
            out,
            "    {:<20} {:>7} {:>7} {:>7} {:>8} {:>5.1}%",
            row.feature.label(),
            row.entries,
            row.at_min,
            row.at_max,
            row.nonzero,
            row.saturated_fraction() * 100.0
        );
    }

    let t = filter.telemetry();
    let decisions = t.accepts() + t.rejects();
    if decisions > 0 {
        let _ = writeln!(
            out,
            "  decision attribution ({} accepts, {} rejects):",
            t.accepts(),
            t.rejects()
        );
        let _ = writeln!(
            out,
            "    {:<20} {:>12} {:>12}",
            "feature", "mean(accept)", "mean(reject)"
        );
        for (f, feature) in filter.features().iter().enumerate() {
            let mean = |total: i64, n: u64| {
                if n == 0 {
                    0.0
                } else {
                    total as f64 / n as f64
                }
            };
            let _ = writeln!(
                out,
                "    {:<20} {:>12.3} {:>12.3}",
                feature.label(),
                mean(t.accept_contrib()[f], t.accepts()),
                mean(t.reject_contrib()[f], t.rejects())
            );
        }
        for (name, hist) in [("sum-tau_hi", t.hi_margin()), ("sum-tau_lo", t.lo_margin())] {
            let _ = write!(out, "  margin {name}:");
            for (b, &count) in hist.iter().enumerate() {
                if count > 0 {
                    let _ = write!(out, " {}:{}", margin_bucket_label(b), count);
                }
            }
            out.push('\n');
        }
    } else {
        let _ = writeln!(
            out,
            "  decision telemetry: no decisions recorded \
             (build with --features telemetry and set PPF_TELEMETRY)"
        );
    }

    let s = &filter.stats;
    // Per-source attribution only means something for fused (hybrid)
    // streams: bare sources put every decision in slot 0, so the block is
    // suppressed to keep single-source reports byte-stable.
    let multi_source = s
        .accepted_by_source
        .iter()
        .zip(&s.rejected_by_source)
        .skip(1)
        .any(|(&a, &r)| a + r > 0);
    if multi_source {
        let _ = writeln!(out, "  per-source decisions:");
        let _ = writeln!(out, "    {:<8} {:>10} {:>10} {:>8}", "source", "accepted", "rejected", "acc%");
        for (i, (&a, &r)) in
            s.accepted_by_source.iter().zip(&s.rejected_by_source).enumerate()
        {
            if a + r > 0 {
                let _ = writeln!(
                    out,
                    "    {i:<8} {a:>10} {r:>10} {:>7.1}%",
                    a as f64 / (a + r) as f64 * 100.0
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "  reject-table recoveries: {} (of {} rejects); replacement trains: {}",
        s.false_negative_recoveries, s.rejected, s.replacement_trains
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureInputs;
    use crate::filter::PpfConfig;

    fn inputs(addr: u64, conf: u8) -> FeatureInputs {
        FeatureInputs {
            trigger_addr: addr,
            trigger_pc: 0x400100,
            confidence: conf,
            delta: 1,
            depth: 1,
            ..FeatureInputs::default()
        }
    }

    #[test]
    fn margin_buckets_cover_the_line() {
        assert_eq!(margin_bucket(i32::MIN / 2), 0);
        assert_eq!(margin_bucket(i32::MAX / 2), MARGIN_BUCKETS - 1);
        assert_eq!(margin_bucket(0), MARGIN_BUCKETS / 2);
        // Adjacent margins across a bucket edge land in adjacent buckets.
        assert_eq!(margin_bucket(-1), MARGIN_BUCKETS / 2 - 1);
        assert_eq!(margin_bucket(MARGIN_WIDTH), MARGIN_BUCKETS / 2 + 1);
        // Extremes get open-ended labels, the middle gets a range.
        assert!(margin_bucket_label(0).starts_with("<="));
        assert!(margin_bucket_label(MARGIN_BUCKETS - 1).starts_with(">="));
        assert!(margin_bucket_label(MARGIN_BUCKETS / 2).contains(".."));
    }

    #[test]
    fn saturation_rows_match_tables_and_count_rails() {
        // Keep accepting (low τ) and keep training (low θ_n) so repeated
        // unused evictions drive the selected weights all the way to the
        // negative rail instead of stopping at the reject threshold.
        let cfg = PpfConfig { tau_hi: -500, tau_lo: -500, theta_n: -1000, ..PpfConfig::default() };
        let mut f = PpfFilter::new(cfg);
        let i = inputs(0x2000, 10);
        // Drive the shared indices to the negative rail.
        for _ in 0..40 {
            let (d, sum) = f.infer(&i);
            f.record(0x2000, i, sum, d);
            f.train_on_eviction(0x2000, false);
        }
        let rows = weight_saturation(&f);
        assert_eq!(rows.len(), f.features().len());
        for (row, &kind) in rows.iter().zip(f.features()) {
            assert_eq!(row.feature, kind);
            assert_eq!(row.entries, kind.table_entries());
            assert!(row.at_min <= row.entries && row.at_max <= row.entries);
        }
        let pinned: usize = rows.iter().map(|r| r.at_min).sum();
        assert!(pinned > 0, "negative training should pin some weights at the rail");
        let nonzero: usize = rows.iter().map(|r| r.nonzero).sum();
        assert!(nonzero >= pinned);
    }

    #[test]
    fn per_source_block_only_renders_for_fused_streams() {
        let mut f = PpfFilter::default();
        let i0 = inputs(0x3000, 50);
        let (d, sum) = f.infer(&i0);
        f.record(0x3000, i0, sum, d);
        assert!(
            !render_report(&f).contains("per-source decisions"),
            "bare-source reports must stay byte-stable"
        );
        let i1 = FeatureInputs { source: 1, ..inputs(0x4000, 50) };
        let (d, sum) = f.infer(&i1);
        f.record(0x4000, i1, sum, d);
        let report = render_report(&f);
        assert!(report.contains("per-source decisions"), "{report}");
        assert!(report.contains("source"), "{report}");
    }

    #[test]
    fn report_renders_without_telemetry() {
        let f = PpfFilter::default();
        let report = render_report(&f);
        assert!(report.contains("weight saturation"), "{report}");
        assert!(report.contains("no decisions recorded"), "{report}");
        assert!(report.contains("reject-table recoveries"), "{report}");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn recording_attributes_every_decision() {
        let mut f = PpfFilter::default();
        f.set_telemetry_enabled(true);
        for n in 0..50u64 {
            let a = 0x8000 + n * 64;
            let i = inputs(a, 30);
            let (d, sum) = f.infer(&i);
            f.record(a, i, sum, d);
            f.train_on_eviction(a, false);
        }
        let t = f.telemetry();
        assert_eq!(t.accepts() + t.rejects(), f.stats.inferences);
        assert_eq!(t.hi_margin().iter().sum::<u64>(), f.stats.inferences);
        assert_eq!(t.lo_margin().iter().sum::<u64>(), f.stats.inferences);
        // The eviction loop drives sums negative, so the reject side must
        // have accumulated negative contributions.
        assert!(t.rejects() > 0);
        assert!(t.reject_contrib().iter().sum::<i64>() < 0);
        let report = render_report(&f);
        assert!(report.contains("decision attribution"), "{report}");
        assert!(report.contains("margin sum-tau_hi:"), "{report}");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn disabled_telemetry_records_nothing() {
        let mut f = PpfFilter::default();
        f.set_telemetry_enabled(false);
        let i = inputs(0x1000, 80);
        f.infer(&i);
        assert_eq!(f.telemetry().accepts() + f.telemetry().rejects(), 0);
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn enable_is_forced_off_without_the_feature() {
        let mut f = PpfFilter::default();
        f.set_telemetry_enabled(true);
        assert!(!f.telemetry().enabled());
        let i = inputs(0x1000, 80);
        f.infer(&i);
        assert_eq!(f.telemetry().accepts() + f.telemetry().rejects(), 0);
    }
}
