//! Perceptron-Based Prefetch Filtering (PPF) — Bhatia et al., ISCA 2019.
//!
//! PPF is an online hashed-perceptron filter between a lookahead prefetcher
//! and the prefetch insertion queue. The underlying prefetcher is re-tuned
//! to speculate as deeply as possible; PPF inspects each candidate through
//! nine cheap features (addresses, PC hashes, signature/delta/depth/
//! confidence metadata), sums 5-bit weights, and either rejects it or routes
//! it to the L2 or LLC. Feedback from demand hits and evictions trains the
//! weights online; a Reject Table recovers false negatives.
//!
//! # Quick start
//!
//! ```
//! use ppf::Ppf;
//! use ppf_prefetchers::Spp;
//! use ppf_sim::{run_single_core, SystemConfig};
//! use ppf_trace::SequentialStream;
//!
//! let trace = Box::new(SequentialStream::new(0x10_0000, 1 << 12, 0x400000, 4));
//! let prefetcher = Ppf::new(Spp::default());
//! let report = run_single_core(
//!     SystemConfig::single_core(),
//!     "stream",
//!     trace,
//!     Box::new(prefetcher),
//!     1_000,
//!     10_000,
//! );
//! assert!(report.ipc() > 0.0);
//! ```
//!
//! # Crate layout
//!
//! * [`perceptron`] — the hashed-perceptron weight bank (5-bit weights),
//! * [`features`] — the nine retained features plus the paper's rejected
//!   candidates (for the Sec 5.5 selection methodology),
//! * [`tables`] — the Prefetch and Reject metadata tables (Tables 2–3),
//! * [`filter`] — inference, recording, and training ([`PpfFilter`]),
//! * [`introspect`] — weight-saturation reports, decision-time contribution
//!   attribution, and threshold-margin histograms (telemetry),
//! * [`wrapper`] — [`Ppf`], the [`ppf_sim::Prefetcher`] adapter over any
//!   [`ppf_prefetchers::LookaheadSource`],
//! * [`budget`] — the hardware storage budget (39.34 KB, Table 3),
//! * [`rosenblatt`] — the related-work comparison filter (Wang & Luo,
//!   Sec 7.4): a single error-correction perceptron over an unmodified
//!   baseline, reproduced to contrast with PPF's design.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod budget;
pub mod features;
pub mod filter;
pub mod introspect;
pub mod perceptron;
pub mod rosenblatt;
pub mod tables;
pub mod wrapper;

pub use budget::{adder_tree_depth, default_budget, StorageBudget};
pub use features::{FeatureInputs, FeatureKind, IndexList, MAX_FEATURES};
pub use filter::{
    batch_window_from_env, Decision, FilterStats, PpfConfig, PpfFilter, ScoredBatch,
    TrainingEvent, DEFAULT_BATCH_WINDOW, MAX_BATCH,
};
pub use introspect::{
    render_report, weight_saturation, DecisionTelemetry, SaturationRow, MARGIN_BUCKETS,
};
pub use perceptron::{Perceptron, WeightList, WEIGHT_MAX, WEIGHT_MIN};
pub use rosenblatt::{RosenblattConfig, RosenblattFilter, RosenblattStats};
pub use tables::{MetaTable, TableEntry};
pub use wrapper::{Ppf, PpfStats};
